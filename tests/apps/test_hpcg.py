"""Tests for the HPCG problem operators, CG solver, and variant models."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.hpcg.cg import conjugate_gradient
from repro.apps.hpcg.problem import (
    CsrOperator,
    LfricHelmholtzOperator,
    MatrixFreeOperator,
    Problem,
    make_operator,
)
from repro.apps.hpcg.variants import (
    HPCG_VARIANTS,
    UnsupportedVariantError,
)
from repro.systems.registry import get_system


PROBLEM = Problem(12, 12, 12)


class TestOperators:
    def test_csr_and_matrix_free_agree(self):
        """The CSR matrix and the stencil are the same operator."""
        rng = np.random.default_rng(0)
        x = rng.standard_normal(PROBLEM.n)
        csr = CsrOperator(PROBLEM)
        mf = MatrixFreeOperator(PROBLEM)
        np.testing.assert_allclose(csr.apply(x), mf.apply(x), rtol=1e-12)

    def test_operator_is_symmetric(self):
        rng = np.random.default_rng(1)
        x, y = rng.standard_normal((2, PROBLEM.n))
        for kind in ("csr", "matrix-free", "lfric"):
            op = make_operator(kind, PROBLEM)
            assert np.dot(op.apply(x), y) == pytest.approx(
                np.dot(x, op.apply(y)), rel=1e-10
            ), kind

    def test_operator_is_positive_definite(self):
        rng = np.random.default_rng(2)
        for kind in ("csr", "matrix-free", "lfric"):
            op = make_operator(kind, PROBLEM)
            for _ in range(5):
                x = rng.standard_normal(PROBLEM.n)
                assert np.dot(x, op.apply(x)) > 0, kind

    def test_diagonal_matches_matrix(self):
        csr = CsrOperator(PROBLEM)
        mf = MatrixFreeOperator(PROBLEM)
        np.testing.assert_allclose(
            csr.diagonal()[PROBLEM.n // 2], mf.diagonal()[PROBLEM.n // 2]
        )

    def test_lfric_diagonal_is_true_diagonal(self):
        op = LfricHelmholtzOperator(PROBLEM)
        e = np.zeros(PROBLEM.n)
        idx = PROBLEM.n // 2
        e[idx] = 1.0
        assert op.apply(e)[idx] == pytest.approx(op.diagonal()[idx])

    def test_nnz_count_27_point(self):
        csr = CsrOperator(Problem(8, 8, 8))
        # interior rows have 27 entries; boundary fewer
        assert csr.nnz <= 27 * 512
        assert csr.nnz >= 8 * 512  # even corners keep 8 neighbours

    def test_traffic_ordering(self):
        """CSR moves much more data per flop than matrix-free."""
        csr = CsrOperator(PROBLEM)
        mf = MatrixFreeOperator(PROBLEM)
        csr_bpf = csr.ideal_bytes_per_apply() / csr.flops_per_apply()
        mf_bpf = mf.ideal_bytes_per_apply() / mf.flops_per_apply()
        assert csr_bpf > 3 * mf_bpf

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            make_operator("dense", PROBLEM)

    def test_apply_counts(self):
        op = MatrixFreeOperator(PROBLEM)
        op.apply(np.zeros(PROBLEM.n))
        op.apply(np.zeros(PROBLEM.n))
        assert op.apply_count == 2


class TestConjugateGradient:
    @pytest.mark.parametrize("kind", ["csr", "matrix-free", "lfric"])
    def test_converges(self, kind):
        op = make_operator(kind, PROBLEM)
        result = conjugate_gradient(op, PROBLEM.rhs(), max_iterations=200,
                                    tolerance=1e-8)
        assert result.converged
        assert result.final_relative_residual < 1e-8

    def test_solution_solves_system(self):
        op = make_operator("matrix-free", PROBLEM)
        b = PROBLEM.rhs()
        result = conjugate_gradient(op, b, max_iterations=300, tolerance=1e-10)
        np.testing.assert_allclose(op.apply(result.x), b, atol=1e-6)

    def test_preconditioning_helps(self):
        """Jacobi preconditioning must not slow convergence on this SPD
        problem (for LFRic's varying diagonal it genuinely helps)."""
        op = make_operator("lfric", PROBLEM)
        b = PROBLEM.rhs()
        pc = conjugate_gradient(op, b, max_iterations=150, preconditioned=True)
        plain = conjugate_gradient(
            make_operator("lfric", PROBLEM), b, max_iterations=150,
            preconditioned=False,
        )
        assert pc.iterations <= plain.iterations + 1

    def test_flop_accounting_positive_and_scales(self):
        op = make_operator("csr", PROBLEM)
        r1 = conjugate_gradient(op, PROBLEM.rhs(), max_iterations=5,
                                tolerance=0.0)
        r2 = conjugate_gradient(op, PROBLEM.rhs(), max_iterations=10,
                                tolerance=0.0)
        assert 0 < r1.flops < r2.flops
        assert 0 < r1.ideal_bytes < r2.ideal_bytes

    def test_residual_history_recorded(self):
        op = make_operator("csr", PROBLEM)
        r = conjugate_gradient(op, PROBLEM.rhs(), max_iterations=10,
                               tolerance=0.0)
        assert len(r.residual_norms) == 11

    def test_warm_start(self):
        op = make_operator("matrix-free", PROBLEM)
        b = PROBLEM.rhs()
        exact = conjugate_gradient(op, b, max_iterations=300,
                                   tolerance=1e-12).x
        warm = conjugate_gradient(op, b, x0=exact, max_iterations=3)
        assert warm.converged


class TestVariantModels:
    def node(self, name, part=None):
        return get_system(name).partition(part).node

    def test_table2_cascade_lake(self):
        node = self.node("isambard-macs", "cascadelake")
        expected = {"original": 24.0, "intel-avx2": 39.0,
                    "matrix-free": 51.0, "lfric": 18.5}
        for name, paper in expected.items():
            got = HPCG_VARIANTS[name].gflops_on(node)
            assert got == pytest.approx(paper, rel=0.02), name

    def test_table2_rome(self):
        node = self.node("archer2")
        expected = {"original": 39.2, "matrix-free": 124.2, "lfric": 56.0}
        for name, paper in expected.items():
            got = HPCG_VARIANTS[name].gflops_on(node)
            assert got == pytest.approx(paper, rel=0.02), name

    def test_intel_na_on_rome(self):
        with pytest.raises(UnsupportedVariantError):
            HPCG_VARIANTS["intel-avx2"].gflops_on(self.node("archer2"))

    def test_equation_1_efficiencies(self):
        """E_I = 1.625, E_A = 2.125 (Cascade Lake), E_A = 3.168 (Rome)."""
        from repro.analysis.efficiency import variant_efficiency

        cl = self.node("isambard-macs", "cascadelake")
        rome = self.node("archer2")
        e_i = variant_efficiency(
            HPCG_VARIANTS["intel-avx2"].gflops_on(cl),
            HPCG_VARIANTS["original"].gflops_on(cl),
        )
        e_a_cl = variant_efficiency(
            HPCG_VARIANTS["matrix-free"].gflops_on(cl),
            HPCG_VARIANTS["original"].gflops_on(cl),
        )
        e_a_rome = variant_efficiency(
            HPCG_VARIANTS["matrix-free"].gflops_on(rome),
            HPCG_VARIANTS["original"].gflops_on(rome),
        )
        assert e_i == pytest.approx(1.625, rel=0.02)
        assert e_a_cl == pytest.approx(2.125, rel=0.02)
        assert e_a_rome == pytest.approx(3.168, rel=0.02)
        # the paper's conclusion: algorithmic change beats implementation
        assert e_a_cl > e_i
