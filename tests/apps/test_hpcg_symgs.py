"""Tests for the SymGS preconditioner and the spec lockfile round-trip."""

import numpy as np
import pytest

from repro.apps.hpcg.cg import SymGsPreconditioner, conjugate_gradient
from repro.apps.hpcg.problem import CsrOperator, MatrixFreeOperator, Problem

PROBLEM = Problem(10, 10, 10)


class TestSymGs:
    def test_requires_assembled_matrix(self):
        with pytest.raises(TypeError, match="matrix-free"):
            SymGsPreconditioner(MatrixFreeOperator(PROBLEM))

    def test_apply_is_spd(self):
        """<r, M^-1 r> > 0 and <r1, M^-1 r2> symmetric."""
        pc = SymGsPreconditioner(CsrOperator(PROBLEM))
        rng = np.random.default_rng(0)
        r1, r2 = rng.standard_normal((2, PROBLEM.n))
        assert np.dot(r1, pc.apply(r1)) > 0
        assert np.dot(r1, pc.apply(r2)) == pytest.approx(
            np.dot(r2, pc.apply(r1)), rel=1e-9
        )

    def test_symgs_beats_jacobi_in_iterations(self):
        """The reason HPCG uses it: far better spectral clustering."""
        b = PROBLEM.rhs()
        jac = conjugate_gradient(CsrOperator(PROBLEM), b, max_iterations=200,
                                 tolerance=1e-8, preconditioner="jacobi")
        sgs = conjugate_gradient(CsrOperator(PROBLEM), b, max_iterations=200,
                                 tolerance=1e-8, preconditioner="symgs")
        assert sgs.converged and jac.converged
        assert sgs.iterations < jac.iterations

    def test_symgs_costs_more_per_iteration(self):
        """...and the flip side: ~2x the memory traffic per iteration
        (the indirect-access cost Section 3.2 discusses)."""
        op = CsrOperator(PROBLEM)
        pc = SymGsPreconditioner(op)
        assert pc.ideal_bytes_per_apply() > op.ideal_bytes_per_apply()

    def test_unknown_preconditioner_rejected(self):
        with pytest.raises(ValueError, match="unknown preconditioner"):
            conjugate_gradient(CsrOperator(PROBLEM), PROBLEM.rhs(),
                               preconditioner="ilu")

    def test_solution_correct_under_symgs(self):
        op = CsrOperator(PROBLEM)
        b = PROBLEM.rhs()
        result = conjugate_gradient(op, b, max_iterations=200,
                                    tolerance=1e-10, preconditioner="symgs")
        np.testing.assert_allclose(op.apply(result.x), b, atol=1e-6)


class TestLockfileRoundTrip:
    def test_from_dict_inverts_dag_dict(self):
        from repro.pkgmgr.concretizer import concretize
        from repro.pkgmgr.spec import Spec
        from repro.systems.registry import system_environment

        for system in ("archer2", "csd3"):
            env = system_environment(system)
            original = concretize("hpgmg%gcc", env=env)
            reloaded = Spec.from_dict(original.dag_dict())
            assert reloaded.dag_hash() == original.dag_hash()
            assert reloaded.format() == original.format()

    def test_installer_manifest_roundtrip(self, tmp_path):
        from repro.pkgmgr.concretizer import concretize
        from repro.pkgmgr.environment import Environment
        from repro.pkgmgr.installer import Installer

        manifest = str(tmp_path / "store.json")
        spec = concretize("stream", env=Environment.basic("x"))
        first = Installer(manifest_path=manifest)
        first.install(spec)
        second = Installer(manifest_path=manifest)
        assert second.is_installed(spec)
        # a rebuild=False install is now fully cache-served
        records = second.install(spec, rebuild=False)
        assert not any(r.fresh for r in records)

    def test_cli_install_then_find(self, tmp_path, capsys):
        from repro.pkgmgr.cli import main as pkg_main

        store = str(tmp_path / "store.json")
        assert pkg_main(["--store", store, "install", "stream"]) == 0
        capsys.readouterr()
        assert pkg_main(["--store", store, "find", "stream"]) == 0
        out = capsys.readouterr().out
        assert "stream@5.10" in out

    def test_cli_lock_prints_lockfile(self, capsys):
        from repro.pkgmgr.cli import main as pkg_main

        assert pkg_main(["--system", "archer2", "lock", "hpgmg%gcc"]) == 0
        out = capsys.readouterr().out
        import json

        doc = json.loads(out)
        assert doc["environment"] == "archer2"
        assert len(doc["specs"]) == 1
