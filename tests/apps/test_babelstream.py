"""Tests for the BabelStream kernels, simulator, and benchmark class."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.babelstream.kernels import (
    KERNELS,
    StreamArrays,
    StreamKernels,
    VerificationError,
)
from repro.apps.babelstream.simulator import (
    BabelStreamRun,
    default_array_size,
)
from repro.machine.progmodel import UnsupportedModelError
from repro.systems.registry import get_system


def node_of(system, partition=None):
    return get_system(system).partition(partition).node


class TestKernels:
    def test_kernels_compute_correctly(self):
        arrays = StreamArrays.initialise(1024)
        k = StreamKernels(arrays)
        k.run_all(10)
        k.verify(10)  # must not raise

    def test_verification_catches_corruption(self):
        arrays = StreamArrays.initialise(1024)
        k = StreamKernels(arrays)
        k.run_all(5)
        arrays.a[3] = 1e6
        with pytest.raises(VerificationError):
            k.verify(5)

    def test_verification_catches_wrong_dot(self):
        arrays = StreamArrays.initialise(1024)
        k = StreamKernels(arrays)
        k.run_all(5)
        k.last_dot = -1.0
        with pytest.raises(VerificationError):
            k.verify(5)

    def test_expected_values_recurrence(self):
        a, b, c = StreamKernels.expected_values(1)
        # one round from (0.1, 0.2, 0): c=a=0.1; b=0.04; c=0.14; a=0.096
        assert c == pytest.approx(0.1 + 0.4 * 0.1)
        assert b == pytest.approx(0.4 * 0.1)
        assert a == pytest.approx(0.4 * c + b)

    def test_traffic_accounting(self):
        arrays = StreamArrays.initialise(100)
        k = StreamKernels(arrays)
        assert k.bytes_for("Copy") == 2 * 100 * 8
        assert k.bytes_for("Triad") == 3 * 100 * 8
        assert k.bytes_for("Dot") == 2 * 100 * 8
        assert k.flops_for("Triad") == 200
        with pytest.raises(KeyError):
            k.bytes_for("Quad")

    @given(st.integers(min_value=1, max_value=60))
    @settings(max_examples=10, deadline=None)
    def test_verify_passes_for_any_iteration_count(self, num_times):
        arrays = StreamArrays.initialise(256)
        k = StreamKernels(arrays)
        k.run_all(num_times)
        k.verify(num_times)


class TestArraySizing:
    def test_paper_rule_2_25_on_cascade_lake(self):
        assert default_array_size(node_of("isambard-macs", "cascadelake")) == 2**25

    def test_paper_rule_2_29_on_milan(self):
        assert default_array_size(node_of("noctua2")) == 2**29

    def test_rule_on_thunderx2(self):
        """A 2^25 array is *exactly* 4x ThunderX2's 64 MB of L3; the rule
        takes the cache-safe side of that boundary and doubles (the paper
        kept 2^25 there -- our rule only ever errs toward more safety)."""
        assert default_array_size(node_of("isambard")) == 2**26

    def test_gpu_uses_small_llc(self):
        assert default_array_size(node_of("isambard-macs", "volta")) == 2**25


class TestSimulator:
    def test_output_format(self):
        run = BabelStreamRun(node_of("csd3"), "omp", num_times=20)
        stdout, seconds = run.render_output()
        assert stdout.startswith("BabelStream")
        for kernel in KERNELS:
            assert f"\n{kernel}" in stdout
        assert seconds > 0

    def test_unsupported_model_raises(self):
        run = BabelStreamRun(node_of("csd3"), "cuda")
        with pytest.raises(UnsupportedModelError):
            run.execute()

    def test_determinism(self):
        a = BabelStreamRun(node_of("csd3"), "omp").render_output()
        b = BabelStreamRun(node_of("csd3"), "omp").render_output()
        assert a == b

    def test_triad_below_peak(self):
        node = node_of("csd3")
        results, _ = BabelStreamRun(node, "omp").execute()
        triad = [r for r in results if r.name == "Triad"][0]
        assert 0 < triad.gbytes_per_sec < node.peak_bandwidth_gbs

    def test_cuda_near_peak_on_volta(self):
        node = node_of("isambard-macs", "volta")
        results, _ = BabelStreamRun(node, "cuda").execute()
        triad = [r for r in results if r.name == "Triad"][0]
        assert triad.gbytes_per_sec / 900.0 > 0.88

    def test_small_array_inflates_fom(self):
        """Violating the sizing rule reports cache bandwidth (the hazard)."""
        node = node_of("noctua2")
        honest, _ = BabelStreamRun(node, "omp", array_size=2**29).execute()
        cheat, _ = BabelStreamRun(node, "omp", array_size=2**20).execute()
        t_honest = [r for r in honest if r.name == "Triad"][0]
        t_cheat = [r for r in cheat if r.name == "Triad"][0]
        assert t_cheat.gbytes_per_sec > 2 * t_honest.gbytes_per_sec

    def test_min_le_avg_le_max(self):
        results, _ = BabelStreamRun(node_of("archer2"), "omp").execute()
        for r in results:
            assert r.min_seconds <= r.avg_seconds <= r.max_seconds


class TestBenchmarkClass:
    def test_variants_cover_all_models(self):
        from repro.apps.babelstream.benchmark import BabelStreamBenchmark
        from repro.machine.progmodel import PROGRAMMING_MODELS

        names = {t.model for t in BabelStreamBenchmark.variants()}
        assert names == set(PROGRAMMING_MODELS)

    def test_spec_carries_model_variant(self):
        from repro.apps.babelstream.benchmark import BabelStreamBenchmark

        t = [v for v in BabelStreamBenchmark.variants() if v.model == "omp"][0]
        assert t.spack_spec == "babelstream +omp"
        assert "omp" in t.tags
