"""Tests for the multigrid solver and the HPGMG cluster timing model."""

import numpy as np
import pytest

from repro.apps.hpgmg.model import HPGMG_CALIBRATION, HpgmgTimingModel
from repro.apps.hpgmg.multigrid import (
    FmgSolver,
    MultigridError,
    PoissonFV,
    prolong,
    restrict,
)
from repro.systems.registry import get_system


class TestOperator:
    def test_symmetry(self):
        op = PoissonFV(8)
        rng = np.random.default_rng(0)
        x, y = rng.standard_normal((2, 8, 8, 8))
        assert np.sum(op.apply(x) * y) == pytest.approx(
            np.sum(x * op.apply(y)), rel=1e-12
        )

    def test_positive_definite(self):
        op = PoissonFV(8)
        rng = np.random.default_rng(1)
        x = rng.standard_normal((8, 8, 8))
        assert np.sum(x * op.apply(x)) > 0

    def test_bad_dims_rejected(self):
        with pytest.raises(MultigridError):
            PoissonFV(12)
        with pytest.raises(MultigridError):
            PoissonFV(1)


class TestTransfers:
    def test_restrict_preserves_constants(self):
        fine = np.full((8, 8, 8), 3.0)
        np.testing.assert_allclose(restrict(fine), 3.0)

    def test_prolong_preserves_constants(self):
        coarse = np.full((4, 4, 4), 2.0)
        np.testing.assert_allclose(prolong(coarse), 2.0)

    def test_prolong_shape(self):
        assert prolong(np.zeros((4, 4, 4))).shape == (8, 8, 8)

    def test_prolong_reproduces_linears_in_interior(self):
        n = 8
        x = (np.arange(n) + 0.5) / n
        coarse = np.broadcast_to(x[:, None, None], (n, n, n)).copy()
        fine = prolong(coarse)
        xf = (np.arange(2 * n) + 0.5) / (2 * n)
        expected = np.broadcast_to(xf[:, None, None], (2 * n,) * 3)
        np.testing.assert_allclose(fine[2:-2], expected[2:-2], atol=1e-12)


class TestSolver:
    def test_v_cycle_rate_h_independent(self):
        """W-cycles converge at a depth-independent rate (~0.3)."""
        rates = {}
        rng = np.random.default_rng(3)
        for n in (16, 32, 64):
            s = FmgSolver(n, coarsest=4)
            f = rng.standard_normal((n, n, n))
            u = np.zeros_like(f)
            op = s.finest.operator
            prev = np.linalg.norm(op.residual(u, f))
            for _ in range(5):
                u = s.v_cycle(0, u, f)
                cur = np.linalg.norm(op.residual(u, f))
                rate, prev = cur / prev, cur
            rates[n] = rate
        assert all(rate < 0.5 for rate in rates.values()), rates
        assert max(rates.values()) < 2 * min(rates.values())

    def test_fmg_reaches_discretization_accuracy(self):
        errs = {}
        for n in (16, 32):
            errs[n] = FmgSolver(n).solve(v_cycles=1, extra_v_cycles=2).max_error
        # error shrinks under refinement (bounded by transfer order here)
        assert errs[32] < errs[16]

    def test_solve_reports_work(self):
        r = FmgSolver(16).solve()
        assert r.weighted_applies > r.dof  # more than one sweep's work

    def test_too_small_hierarchy_rejected(self):
        with pytest.raises(MultigridError):
            FmgSolver(2)

    def test_custom_rhs(self):
        rng = np.random.default_rng(4)
        f = rng.standard_normal((16, 16, 16))
        r = FmgSolver(16).solve(f=f, extra_v_cycles=4)
        assert r.relative_residual < 1e-2
        assert r.max_error is None


class TestTimingModel:
    PAPER = {
        "archer2": (95.36, 83.43, 62.18),
        "cosma8": (81.67, 72.96, 75.09),
        "csd3": (126.10, 94.39, 49.40),
        "isambard-macs": (30.59, 25.55, 17.55),
    }

    def model_for(self, system):
        part = (
            "cascadelake" if system in ("csd3", "isambard-macs") else None
        )
        node = get_system(system).partition(part).node
        return HpgmgTimingModel(system, node, 8, 2, 8)

    @pytest.mark.parametrize("system", sorted(PAPER))
    def test_table4_rows_close_to_paper(self, system):
        # cosma8's nearly-flat row is the hardest to fit; its l1 lands
        # within 6% (all other cells within 5%)
        tolerance = 0.08 if system == "cosma8" else 0.05
        model = self.model_for(system)
        for level, paper in enumerate(self.PAPER[system]):
            got = model.dof_per_second(level) / 1e6
            assert got == pytest.approx(paper, rel=tolerance), (system, level)

    def test_dof_counts_from_paper_args(self):
        """'7 8' with 8 ranks: 8 * 8 * 128^3 = 134.2M DOF at l0."""
        model = self.model_for("archer2")
        assert model.dof_global(0) == 8 * 8 * 128**3
        assert model.dof_global(1) == model.dof_global(0) // 8

    def test_cross_system_shape(self):
        """CSD3 fastest, MACS slowest (~4x) despite identical ISA."""
        l0 = {s: self.model_for(s).dof_per_second(0) for s in self.PAPER}
        assert l0["csd3"] == max(l0.values())
        assert l0["isambard-macs"] == min(l0.values())
        assert l0["csd3"] / l0["isambard-macs"] > 3.5

    def test_cosma8_l2_exceeds_l1(self):
        """The one non-monotone row of Table 4."""
        m = self.model_for("cosma8")
        assert m.dof_per_second(2) > m.dof_per_second(1) * 0.95

    def test_unknown_system_rejected(self):
        node = get_system("archer2").partition(None).node
        with pytest.raises(KeyError):
            HpgmgTimingModel("frontier", node, 8, 2, 8)

    def test_comm_grows_relatively_with_level(self):
        m = self.model_for("csd3")
        frac = [
            m.comm_seconds(l) / m.solve_seconds(l) for l in range(3)
        ]
        assert frac[0] < frac[1] < frac[2]
