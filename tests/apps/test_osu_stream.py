"""Tests for the OSU microbenchmarks and the classic STREAM suite."""

import pytest

from repro.apps.osu.microbench import (
    OSU_SIZES,
    bandwidth_sweep,
    latency_sweep,
)
from repro.machine.interconnect import INTERCONNECTS
from repro.runner.cli import load_suite
from repro.runner.executor import Executor


class TestOsuSweeps:
    def test_latency_monotone_in_size(self):
        sweep = latency_sweep("archer2")
        values = [v for _, v in sweep.points]
        # alpha-beta model: strictly more time for more bytes (mod noise)
        assert values[-1] > values[0]
        assert sweep.smallest == min(values[:3])

    def test_small_message_latency_near_network_alpha(self):
        for system, net in INTERCONNECTS.items():
            sweep = latency_sweep(system)
            assert sweep.smallest == pytest.approx(
                net.latency_us / net.efficiency, rel=0.1
            ), system

    def test_bandwidth_approaches_link_rate(self):
        for system, net in INTERCONNECTS.items():
            sweep = bandwidth_sweep(system)
            peak_mbs = sweep.largest
            link_mbs = net.bandwidth_gbs * net.efficiency * 1e3
            assert 0.5 * link_mbs < peak_mbs <= 1.05 * link_mbs, system

    def test_macs_network_is_the_outlier(self):
        """The microbenchmarks expose what dragged Table 4's MACS row."""
        macs = latency_sweep("isambard-macs").smallest
        csd3 = latency_sweep("csd3").smallest
        assert macs > 4 * csd3

    def test_render_format(self):
        text = latency_sweep("cosma8").render()
        assert text.startswith("# OSU MPI")
        assert len([l for l in text.splitlines() if l[:1].isdigit()]) == len(
            OSU_SIZES
        )

    def test_unknown_system(self):
        with pytest.raises(KeyError):
            latency_sweep("summit")

    def test_deterministic(self):
        assert latency_sweep("archer2") == latency_sweep("archer2")

    def test_value_at(self):
        sweep = bandwidth_sweep("csd3")
        assert sweep.value_at(OSU_SIZES[0]) == sweep.points[0][1]
        with pytest.raises(KeyError):
            sweep.value_at(3)


class TestOsuBenchmarks:
    def test_suite_runs_and_reports(self):
        ex = Executor()
        report = ex.run(load_suite("osu"), "archer2")
        assert report.success
        foms = {
            r.case.test.name: r.perfvars for r in report.passed
        }
        assert foms["OsuLatency"]["min_latency"][1] == "us"
        assert foms["OsuBandwidth"]["max_bandwidth"][0] > 1000

    def test_inter_node_layout(self):
        cls = [c for c in load_suite("osu") if c.__name__ == "OsuLatency"][0]
        test = cls()
        assert test.num_tasks == 2
        assert test.num_tasks_per_node == 1  # forces the network path


class TestStreamSuite:
    def test_suite_selects_only_stream(self):
        names = {c.__name__ for c in load_suite("stream")}
        assert names == {"StreamBenchmark"}
        names = {c.__name__ for c in load_suite("babelstream")}
        assert names == {"BabelStreamBenchmark"}

    def test_stream_output_format(self):
        ex = Executor()
        report = ex.run(load_suite("stream"), "csd3")
        assert report.success
        result = report.passed[0]
        assert "Solution Validates" in result.stdout
        assert set(result.perfvars) == {"Copy", "Scale", "Add", "Triad"}

    def test_stream_agrees_with_babelstream_omp(self):
        """Cross-benchmark consistency: same kernels, same platform,
        same machine model -> Triad within noise."""
        ex = Executor()
        stream = ex.run(load_suite("stream"), "archer2").passed[0]
        babel = ex.run(load_suite("babelstream"), "archer2",
                       tags=["omp"]).passed[0]
        s = stream.perfvars["Triad"][0]
        b = babel.perfvars["Triad"][0]
        assert s == pytest.approx(b, rel=0.05)
