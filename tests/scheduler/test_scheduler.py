"""Scheduler simulation tests: lifecycle, allocation invariants, dialects."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.scheduler import (
    AllocationError,
    Job,
    JobState,
    LocalScheduler,
    NodePool,
    PbsScheduler,
    SchedulerError,
    SlurmScheduler,
    make_scheduler,
)
from repro.scheduler.events import EventQueue, SimClock


def ok_payload(seconds=10.0, text="done"):
    def payload(ctx):
        return text, seconds

    return payload


class TestEventQueue:
    def test_events_run_in_time_order(self):
        q = EventQueue()
        seen = []
        q.schedule(5.0, lambda: seen.append("b"))
        q.schedule(1.0, lambda: seen.append("a"))
        q.schedule(9.0, lambda: seen.append("c"))
        q.run_until_idle()
        assert seen == ["a", "b", "c"]
        assert q.clock.now == 9.0

    def test_ties_break_by_insertion(self):
        q = EventQueue()
        seen = []
        q.schedule(1.0, lambda: seen.append(1))
        q.schedule(1.0, lambda: seen.append(2))
        q.run_until_idle()
        assert seen == [1, 2]

    def test_cannot_schedule_in_past(self):
        q = EventQueue(SimClock(100.0))
        with pytest.raises(ValueError):
            q.schedule(50.0, lambda: None)

    def test_clock_monotone(self):
        c = SimClock()
        c.advance_to(5.0)
        with pytest.raises(ValueError):
            c.advance_to(4.0)
        with pytest.raises(ValueError):
            c.advance_by(-1)


class TestNodePool:
    def test_allocate_release_roundtrip(self):
        pool = NodePool("nid", 4, 128)
        nodes = pool.allocate(2, job_id=1)
        assert pool.num_free == 2
        pool.release(nodes, job_id=1)
        assert pool.num_free == 4
        pool.check_invariants()

    def test_oversubscription_rejected(self):
        pool = NodePool("nid", 2, 128)
        pool.allocate(2, job_id=1)
        with pytest.raises(AllocationError):
            pool.allocate(1, job_id=2)

    def test_impossible_request_rejected(self):
        pool = NodePool("nid", 2, 128)
        with pytest.raises(AllocationError):
            pool.allocate(3, job_id=1)

    def test_wrong_owner_release_rejected(self):
        pool = NodePool("nid", 2, 128)
        nodes = pool.allocate(1, job_id=1)
        with pytest.raises(AllocationError):
            pool.release(nodes, job_id=2)


class TestJob:
    def test_nodes_needed_explicit_layout(self):
        """The paper's HPGMG layout: 8 tasks, 2 per node -> 4 nodes."""
        job = Job("hpgmg", ok_payload(), num_tasks=8, num_tasks_per_node=2,
                  num_cpus_per_task=8)
        assert job.nodes_needed(cores_per_node=128) == 4

    def test_nodes_needed_derived_layout(self):
        job = Job("b", ok_payload(), num_tasks=256, num_cpus_per_task=1)
        assert job.nodes_needed(cores_per_node=128) == 2

    def test_overpacked_node_rejected(self):
        job = Job("b", ok_payload(), num_tasks=4, num_tasks_per_node=4,
                  num_cpus_per_task=64)
        with pytest.raises(ValueError):
            job.nodes_needed(cores_per_node=128)

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            Job("x", ok_payload(), num_tasks=0)
        with pytest.raises(ValueError):
            Job("x", ok_payload(), num_cpus_per_task=0)


class TestSchedulerLifecycle:
    def test_job_completes(self):
        sched = SlurmScheduler(num_nodes=4, cores_per_node=128)
        jid = sched.submit(Job("j", ok_payload(30.0, "hello")))
        sched.wait_all()
        res = sched.result(jid)
        assert res.state is JobState.COMPLETED
        assert res.stdout == "hello"
        assert res.run_seconds == pytest.approx(30.0)
        assert res.queue_seconds >= 0

    def test_payload_exception_fails_job(self):
        def boom(ctx):
            raise RuntimeError("segfault")

        sched = SlurmScheduler(num_nodes=1, cores_per_node=16)
        jid = sched.submit(Job("j", boom))
        sched.wait_all()
        res = sched.result(jid)
        assert res.state is JobState.FAILED
        assert "segfault" in res.stderr
        assert res.exit_code != 0

    def test_timeout(self):
        sched = SlurmScheduler(num_nodes=1, cores_per_node=16)
        jid = sched.submit(Job("j", ok_payload(9999.0), time_limit=100.0))
        sched.wait_all()
        assert sched.result(jid).state is JobState.TIMEOUT

    def test_queueing_when_full(self):
        sched = SlurmScheduler(num_nodes=1, cores_per_node=16)
        a = sched.submit(Job("a", ok_payload(50.0), num_tasks=16))
        b = sched.submit(Job("b", ok_payload(50.0), num_tasks=16))
        sched.wait_all()
        ra, rb = sched.result(a), sched.result(b)
        assert rb.start_time >= ra.end_time  # b waited for a's nodes

    def test_account_required(self):
        sched = SlurmScheduler(num_nodes=1, cores_per_node=16,
                               require_account=True)
        with pytest.raises(SchedulerError, match="account"):
            sched.submit(Job("j", ok_payload()))
        sched.submit(Job("j", ok_payload(), account="t01"))

    def test_qos_required_archer2_style(self):
        sched = SlurmScheduler(num_nodes=1, cores_per_node=16, require_qos=True)
        with pytest.raises(SchedulerError, match="qos|QoS"):
            sched.submit(Job("j", ok_payload()))

    def test_too_large_job_rejected_at_submit(self):
        sched = SlurmScheduler(num_nodes=2, cores_per_node=16)
        with pytest.raises(SchedulerError, match="needs"):
            sched.submit(Job("j", ok_payload(), num_tasks=64))

    def test_cancel_pending(self):
        sched = SlurmScheduler(num_nodes=1, cores_per_node=16)
        jid = sched.submit(Job("j", ok_payload()))
        sched.cancel(jid)
        assert sched.job(jid).state is JobState.CANCELLED

    def test_result_before_finish_raises(self):
        sched = SlurmScheduler(num_nodes=1, cores_per_node=16)
        jid = sched.submit(Job("j", ok_payload()))
        with pytest.raises(SchedulerError):
            sched.result(jid)

    def test_make_scheduler_factory(self):
        assert make_scheduler("slurm", num_nodes=1, cores_per_node=4).kind == "slurm"
        assert make_scheduler("pbs", num_nodes=1, cores_per_node=4).kind == "pbs"
        assert make_scheduler("local").kind == "local"
        with pytest.raises(SchedulerError):
            make_scheduler("loadleveler")


class _OneShotNodeFail:
    """Minimal fault-injector stub: first job start loses its node."""

    class _Fault:
        transient = True

        def describe(self):
            return "injected node failure"

    def __init__(self):
        self.armed = True

    def on_submit(self, job):
        pass

    def on_start(self, job):
        if self.armed:
            self.armed = False
            return self._Fault()
        return None


class TestCancel:
    """The scancel contract: queued, running, and finished jobs."""

    def test_cancel_queued_sets_result(self):
        sched = SlurmScheduler(num_nodes=1, cores_per_node=16)
        blocker = sched.submit(Job("a", ok_payload(100.0), num_tasks=16))
        queued = sched.submit(Job("b", ok_payload(100.0), num_tasks=16))
        # let 'a' dispatch so 'b' is genuinely queued, then cancel 'b'
        sched.events.schedule_in(5.0, lambda: sched.cancel(queued))
        sched.wait_all()
        res = sched.result(queued)
        assert res.state is JobState.CANCELLED
        assert res.exit_code != 0
        # the blocker is untouched and the pool drains clean
        assert sched.result(blocker).state is JobState.COMPLETED
        assert sched.pool.num_free == sched.pool.num_nodes

    def test_cancel_running_terminates_and_frees_nodes(self):
        sched = SlurmScheduler(num_nodes=1, cores_per_node=16)
        stdout = "line1\nline2\nline3\nline4\n"
        victim = sched.submit(
            Job("victim", ok_payload(100.0, stdout), num_tasks=16)
        )
        waiter = sched.submit(Job("waiter", ok_payload(10.0), num_tasks=16))
        # dispatch_latency=1.0, so the victim runs [1, 101); kill at 51
        acted = []
        sched.events.schedule_in(51.0, lambda: acted.append(
            sched.cancel(victim, reason="scancel by test")))
        sched.wait_all()
        assert acted == [True]
        res = sched.result(victim)
        assert res.state is JobState.CANCELLED
        assert res.exit_code != 0
        assert "scancel by test" in res.stderr
        # partial stdout: a strict prefix, cut at a line boundary
        assert res.stdout and stdout.startswith(res.stdout)
        assert len(res.stdout) < len(stdout)
        assert res.stdout.endswith("\n")
        # the allocation was released and the waiter reused it promptly:
        # it finishes long before the victim's original 100s would allow
        wres = sched.result(waiter)
        assert wres.state is JobState.COMPLETED
        assert wres.end_time < 101.0
        assert sched.pool.num_free == sched.pool.num_nodes
        sched.pool.check_invariants()

    def test_cancel_finished_is_noop(self):
        sched = SlurmScheduler(num_nodes=1, cores_per_node=16)
        jid = sched.submit(Job("j", ok_payload(10.0, "done")))
        sched.wait_all()
        assert sched.cancel(jid) is False  # scancel semantics
        res = sched.result(jid)
        assert res.state is JobState.COMPLETED
        assert res.stdout == "done"

    def test_cancel_unknown_job_raises(self):
        sched = SlurmScheduler(num_nodes=1, cores_per_node=16)
        with pytest.raises(SchedulerError, match="no such job"):
            sched.cancel(424242)

    def test_cancel_as_hung_is_transient(self):
        """The watchdog's kill path: HUNG, with partial output."""
        sched = SlurmScheduler(num_nodes=1, cores_per_node=16)
        jid = sched.submit(Job("wedged", ok_payload(1e6, "tick\n" * 100)))
        sched.events.schedule_in(
            100.0,
            lambda: sched.cancel(jid, state=JobState.HUNG,
                                 reason="watchdog: no progress"),
        )
        sched.wait_all()
        res = sched.result(jid)
        assert res.state is JobState.HUNG
        assert res.state.transient_failure  # the retry taxonomy re-runs it
        assert "watchdog" in res.stderr
        assert sched.pool.num_free == sched.pool.num_nodes

    def test_node_fail_mid_run_releases_allocation(self):
        sched = SlurmScheduler(
            num_nodes=1, cores_per_node=16,
            fault_injector=_OneShotNodeFail(),
        )
        dead = sched.submit(
            Job("dead", ok_payload(100.0, "a\nb\nc\nd\n"), num_tasks=16)
        )
        succ = sched.submit(Job("succ", ok_payload(10.0), num_tasks=16))
        sched.wait_all()
        dres = sched.result(dead)
        assert dres.state is JobState.NODE_FAIL
        assert dres.state.transient_failure
        assert "lost node" in dres.stderr
        assert len(dres.stdout) < len("a\nb\nc\nd\n")  # truncated log
        # the successor ran on the recycled allocation
        assert sched.result(succ).state is JobState.COMPLETED
        assert sched.pool.num_free == sched.pool.num_nodes
        sched.pool.check_invariants()


class TestScripts:
    def test_sbatch_script(self):
        sched = SlurmScheduler(num_nodes=8, cores_per_node=128)
        job = Job("hpgmg", ok_payload(), num_tasks=8, num_tasks_per_node=2,
                  num_cpus_per_task=8, qos="standard", partition="standard")
        text = sched.render_script(job, "srun ./hpgmg-fv 7 8")
        assert "#SBATCH --nodes=4" in text
        assert "#SBATCH --ntasks=8" in text
        assert "#SBATCH --cpus-per-task=8" in text
        assert "#SBATCH --qos=standard" in text
        assert "srun ./hpgmg-fv 7 8" in text

    def test_qsub_script(self):
        sched = PbsScheduler(num_nodes=4, cores_per_node=40)
        job = Job("babelstream", ok_payload(), num_tasks=1,
                  num_cpus_per_task=40, partition="clxq", account="br-proj")
        text = sched.render_script(job, "./babelstream -s 33554432")
        assert "#PBS -q clxq" in text
        assert "#PBS -A br-proj" in text
        assert "ncpus=40" in text

    def test_local_script(self):
        sched = LocalScheduler()
        text = sched.render_script(Job("x", ok_payload()), "./a.out")
        assert text.splitlines()[1] == "./a.out"


class TestSchedulerProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=8),  # tasks
                st.floats(min_value=1.0, max_value=500.0),  # duration
            ),
            min_size=1,
            max_size=12,
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_all_jobs_finish_and_pool_is_clean(self, reqs):
        """Conservation: whatever the workload, every job ends and every
        node is returned."""
        sched = SlurmScheduler(num_nodes=4, cores_per_node=8)
        ids = []
        for tasks, dur in reqs:
            ids.append(
                sched.submit(
                    Job(f"j{len(ids)}", ok_payload(dur), num_tasks=tasks,
                        num_tasks_per_node=2)
                )
            )
        sched.wait_all()
        assert sched.pool.num_free == sched.pool.num_nodes
        for jid in ids:
            assert sched.result(jid).state is JobState.COMPLETED

    @given(st.integers(min_value=1, max_value=6))
    @settings(max_examples=10, deadline=None)
    def test_fifo_start_order_for_equal_jobs(self, n):
        sched = SlurmScheduler(num_nodes=1, cores_per_node=4)
        ids = [
            sched.submit(Job(f"j{i}", ok_payload(10.0), num_tasks=4))
            for i in range(n)
        ]
        sched.wait_all()
        starts = [sched.result(j).start_time for j in ids]
        assert starts == sorted(starts)
