"""Property tests for the scaled scheduler core (hot-path tentpole).

Two refactors carry exact-equivalence obligations:

* the slotted :class:`~repro.scheduler.allocation.NodePool` replaced a
  sorted-free-list implementation; placement must stay *identical* --
  same node names handed out in the same order, for any interleaving of
  allocate / release / drain operations -- because node names land in
  job scripts, traces and health ledgers;
* the tombstone-cancelling, batch-draining
  :class:`~repro.scheduler.events.EventQueue` must dispatch exactly like
  the step-at-a-time original, with cancellation invisible to the
  simulated timeline.

The reference model below *is* the old allocator, kept verbatim (minus
docstrings) as the oracle.
"""

from typing import Callable, Dict, List, Optional

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.scheduler.allocation import AllocationError, NodePool
from repro.scheduler.events import EventQueue, SimClock


class ReferencePool:
    """The pre-slotted NodePool: eager name list, sorted free list."""

    def __init__(self, name_prefix, num_nodes, cores_per_node, avoid=None):
        self.cores_per_node = cores_per_node
        self.all_nodes = [
            f"{name_prefix}{i:04d}" for i in range(1, num_nodes + 1)
        ]
        self.free = list(self.all_nodes)
        self.busy: Dict[str, int] = {}
        self.avoid = avoid

    @property
    def num_free(self):
        return len(self.free)

    def allocate(self, count, job_id):
        if count > len(self.all_nodes):
            raise AllocationError("exceeds pool size")
        if count > self.num_free:
            raise AllocationError("not enough free nodes")
        if self.avoid is not None:
            healthy = [n for n in self.free if not self.avoid(n)]
            drained = [n for n in self.free if self.avoid(n)]
            candidates = healthy + drained
        else:
            candidates = self.free
        taken = candidates[:count]
        taken_set = set(taken)
        self.free = [n for n in self.free if n not in taken_set]
        for node in taken:
            self.busy[node] = job_id
        return taken

    def release(self, nodes, job_id):
        for node in nodes:
            del self.busy[node]
            self.free.append(node)
        self.free.sort()


def op_sequences():
    """Random allocate/release/drain walks (values decoded per state)."""
    op = st.tuples(
        st.sampled_from(["alloc", "release", "drain", "undrain"]),
        st.integers(min_value=0, max_value=10 ** 6),
    )
    return st.lists(op, min_size=1, max_size=60)


class TestSlottedPoolMatchesReference:
    @settings(max_examples=120, deadline=None)
    @given(num_nodes=st.integers(min_value=1, max_value=33),
           ops=op_sequences())
    def test_same_placement_for_any_walk(self, num_nodes, ops):
        drained: set = set()
        ref = ReferencePool("nid", num_nodes, 128,
                            avoid=lambda n: n in drained)
        new = NodePool("nid", num_nodes, 128,
                       avoid=lambda n: n in drained,
                       avoid_active=lambda: bool(drained))
        active: Dict[int, List[str]] = {}
        job_id = 0
        for kind, magnitude in ops:
            if kind == "alloc":
                count = 1 + magnitude % max(1, num_nodes)
                job_id += 1
                if count > ref.num_free:
                    with pytest.raises(AllocationError):
                        new.allocate(count, job_id)
                    continue
                got_ref = ref.allocate(count, job_id)
                got_new = new.allocate(count, job_id)
                assert got_new == got_ref  # same nodes, same order
                active[job_id] = got_new
            elif kind == "release" and active:
                victim = sorted(active)[magnitude % len(active)]
                nodes = active.pop(victim)
                ref.release(nodes, victim)
                new.release(nodes, victim)
            elif kind == "drain":
                drained.add(f"nid{1 + magnitude % num_nodes:04d}")
            elif kind == "undrain":
                drained.discard(f"nid{1 + magnitude % num_nodes:04d}")
            assert new.free == ref.free
            assert new.num_free == ref.num_free
            new.check_invariants()

    def test_names_match_reference_above_9999_nodes(self):
        # widths beyond {:04d} must stay lexicographically == numerically
        big = NodePool("nid", 12000, 128)
        first = big.allocate(3, 1)
        assert first == ["nid00001", "nid00002", "nid00003"]
        assert big.all_nodes[-1] == "nid12000"
        assert sorted(big.all_nodes) == big.all_nodes

    def test_avoid_not_consulted_when_inactive(self):
        # the any_drained short-circuit: a healthy campaign's allocator
        # hot path must never pay for per-node drain lookups
        calls = []

        def avoid(node):
            calls.append(node)
            return False

        pool = NodePool("nid", 8, 128, avoid=avoid,
                        avoid_active=lambda: False)
        pool.allocate(4, 1)
        assert calls == []

    def test_release_to_foreign_owner_still_raises(self):
        pool = NodePool("nid", 4, 128)
        nodes = pool.allocate(2, 1)
        with pytest.raises(AllocationError):
            pool.release(nodes, 2)


class TestEventQueueSemantics:
    def test_batched_drain_matches_stepping(self):
        def run(drain):
            queue = EventQueue(SimClock())
            log = []
            for at, tag in [(2.0, "a"), (1.0, "b"), (2.0, "c"), (1.0, "d")]:
                queue.schedule(at, log.append, (at, tag))
            if drain:
                queue.run_until_idle()
            else:
                while queue.step():
                    pass
            return log, queue.clock.now

        assert run(drain=True) == run(drain=False)
        log, now = run(drain=True)
        assert log == [(1.0, "b"), (1.0, "d"), (2.0, "a"), (2.0, "c")]
        assert now == 2.0

    def test_cancellation_is_invisible_to_the_clock(self):
        queue = EventQueue(SimClock())
        log = []
        doomed = queue.schedule(9.0, log.append, "doomed")
        queue.schedule(3.0, log.append, "kept")
        assert queue.pending == 2
        assert queue.cancel(doomed) is True
        assert queue.cancel(doomed) is False  # idempotent
        assert queue.pending == 1
        queue.run_until_idle()
        assert log == ["kept"]
        # the tombstone at t=9 was discarded without advancing time
        assert queue.clock.now == 3.0

    def test_cancel_after_run_is_a_noop(self):
        queue = EventQueue(SimClock())
        ran = []
        entry = queue.schedule(1.0, ran.append, 1)
        queue.run_until_idle()
        assert ran == [1]
        assert queue.cancel(entry) is False
        assert queue.pending == 0

    def test_runaway_detection_still_trips(self):
        queue = EventQueue(SimClock())

        def rearm():
            queue.schedule_in(1.0, rearm)

        queue.schedule(0.0, rearm)
        with pytest.raises(RuntimeError, match="did not drain"):
            queue.run_until_idle(max_events=1000)

    def test_budget_scales_past_the_default(self):
        # a caller with a known-large workload can raise the ceiling
        queue = EventQueue(SimClock())
        remaining = [1500]

        def chain():
            remaining[0] -= 1
            if remaining[0]:
                queue.schedule_in(1.0, chain)

        queue.schedule(0.0, chain)
        with pytest.raises(RuntimeError):
            queue.run_until_idle(max_events=1000)
        queue.clear()
        remaining[0] = 1500
        queue2 = EventQueue(SimClock())
        remaining2 = [1500]

        def chain2():
            remaining2[0] -= 1
            if remaining2[0]:
                queue2.schedule_in(1.0, chain2)

        queue2.schedule(0.0, chain2)
        assert queue2.run_until_idle(max_events=5000) == 1500

    def test_clear_drops_pending_events(self):
        queue = EventQueue(SimClock())
        queue.schedule(1.0, lambda: None)
        queue.schedule(2.0, lambda: None)
        assert queue.clear() == 2
        assert queue.pending == 0
        assert queue.run_until_idle() == 0
