"""Tests for the hardware registry: the paper's Tables 1 and 5 as data."""

import pytest

from repro.systems.hardware import MiB
from repro.systems.registry import (
    SYSTEMS,
    UnknownSystemError,
    get_system,
    system_environment,
)


class TestTable5:
    """Processor details of every system (Table 5 of the paper)."""

    EXPECTED = {
        # system: (vendor, microarch, cores/socket, clock GHz)
        "isambard": ("Marvell", "thunderx2", 32, 2.5),
        "cosma8": ("AMD", "rome", 64, 2.6),
        "archer2": ("AMD", "rome", 64, 2.25),
        "csd3": ("Intel", "cascadelake", 28, 2.2),
        "noctua2": ("AMD", "milan", 64, 2.45),
    }

    @pytest.mark.parametrize("system", sorted(EXPECTED))
    def test_row(self, system):
        vendor, march, cores, clock = self.EXPECTED[system]
        proc = get_system(system).default_partition.node.processor
        assert proc.vendor == vendor
        assert proc.microarch == march
        assert proc.cores_per_socket == cores
        assert proc.clock_ghz == clock

    def test_isambard_macs_partitions(self):
        system = get_system("isambard-macs")
        cl = system.partition("cascadelake").node
        assert cl.processor.model.startswith("Xeon Gold 6230")
        assert cl.processor.cores_per_socket == 20
        assert cl.processor.clock_ghz == 2.1
        volta = system.partition("volta").node
        assert volta.gpu is not None
        assert volta.gpu.model.startswith("Tesla V100")
        assert volta.gpu.compute_units == 80

    def test_all_nodes_dual_socket(self):
        for name, system in SYSTEMS.items():
            for part in system.partitions.values():
                assert part.node.sockets == 2, name


class TestTable1:
    """Peak memory bandwidths used as Figure 2 denominators."""

    def test_cascade_lake_282(self):
        node = get_system("isambard-macs").partition("cascadelake").node
        assert node.peak_bandwidth_gbs == pytest.approx(2 * 140.784)

    def test_thunderx2_288(self):
        assert get_system("isambard").default_partition.node.peak_bandwidth_gbs == 288.0

    def test_milan_2x204_8(self):
        assert get_system("noctua2").default_partition.node.peak_bandwidth_gbs == pytest.approx(2 * 204.8)

    def test_v100_900(self):
        node = get_system("isambard-macs").partition("volta").node
        assert node.peak_bandwidth_gbs == 900.0

    def test_milan_l3_is_512mb(self):
        """'256 MB per socket L3 cache size, equating to 512 MB'."""
        node = get_system("noctua2").default_partition.node
        assert node.llc_bytes == 512 * MiB

    def test_cascadelake_l3_is_27_5mb_per_socket(self):
        node = get_system("isambard-macs").partition("cascadelake").node
        assert node.processor.llc.size_bytes == int(27.5 * MiB)


class TestDerivedQuantities:
    def test_peak_gflops_positive_and_sane(self):
        for name, system in SYSTEMS.items():
            for part in system.partitions.values():
                gf = part.node.peak_gflops
                assert 100 < gf < 20000, (name, gf)

    def test_gpu_node_arch_facts(self):
        node = get_system("isambard-macs").partition("volta").node
        assert node.device == "gpu"
        assert node.arch_target == "volta"
        assert node.arch_vendor == "nvidia"

    def test_cpu_node_arch_facts(self):
        node = get_system("isambard").default_partition.node
        assert node.device == "cpu"
        assert node.arch_target == "aarch64"
        assert node.arch_vendor == "marvell"


class TestEnvironments:
    def test_unknown_system(self):
        with pytest.raises(UnknownSystemError):
            get_system("lumi")
        with pytest.raises(UnknownSystemError):
            system_environment("lumi")

    def test_unknown_partition(self):
        with pytest.raises(UnknownSystemError):
            get_system("archer2:gpu")

    def test_volta_environment_arch_switched(self):
        env = system_environment("isambard-macs:volta")
        assert env.arch["device"] == "gpu"
        env_cpu = system_environment("isambard-macs:cascadelake")
        assert env_cpu.arch["device"] == "cpu"

    def test_archer2_prefers_cray_mpich(self):
        env = system_environment("archer2")
        assert env.preferences["mpi"].startswith("cray-mpich")

    def test_every_system_has_gcc(self):
        for name in SYSTEMS:
            env = system_environment(name)
            assert any(c.name == "gcc" for c in env.compilers), name
