"""The ``repro-bench`` exit-code contract (CI's interface to campaigns).

A campaign that *ran* distinguishes three outcomes:

* ``0`` -- every selected case passed;
* ``1`` -- the campaign completed, but some cases failed;
* ``2`` -- the campaign ABORTED (circuit breaker, durability failure):
  results are partial and must not be interpreted as a verdict.

Flag-validation errors keep exiting 1 (and argparse's own usage errors
keep exiting 2 via SystemExit) -- only the *campaign* outcomes above
are new surface.
"""

import pytest

from repro.runner.cli import main as bench_main


def run(tmp_path, *extra, suite="stream"):
    return bench_main([
        "-c", suite, "-r", "--system", "archer2",
        "--perflog-dir", str(tmp_path / "pl"), *extra,
    ])


def test_clean_campaign_exits_zero(tmp_path, capsys):
    assert run(tmp_path) == 0
    assert "ABORTED" not in capsys.readouterr().out


def test_completed_with_failed_cases_exits_one(tmp_path, capsys):
    # HPCG_Intel's MKL binary refuses the non-Intel archer2 nodes: a
    # designed build conflict, i.e. a *completed* campaign with failures
    rc = run(tmp_path, suite="hpcg")
    assert rc == 1
    out = capsys.readouterr().out
    assert "ABORTED" not in out


def test_aborted_campaign_exits_two(tmp_path, capsys):
    rc = run(
        tmp_path,
        "--inject-faults", "build:1.0x99", "--max-retries", "0",
        "--max-failures", "1",
    )
    assert rc == 2
    assert "ABORTED" in capsys.readouterr().out


def test_validation_errors_still_exit_one(tmp_path, capsys):
    assert run(tmp_path, "--max-retries", "-1") == 1
    assert "error:" in capsys.readouterr().err


def test_usage_errors_still_raise_argparse_exit(tmp_path):
    with pytest.raises(SystemExit) as exc:
        bench_main(["--no-such-flag"])
    assert exc.value.code == 2  # argparse's own convention, unchanged
