"""Fleet chaos smoke: the supervisor's robustness contract, end to end.

The ISSUE's acceptance criteria, as tests:

* N >= 4 campaigns multiplexed over a shared simulated cluster under a
  case-level fault storm produce perflogs byte-identical to their
  standalone one-shot runs;
* the supervisor killed mid-fleet at swept seeds and restarted
  converges to the same bytes, with completed cases never re-executed;
* one campaign forced to abort (breaker trip) does not prevent the
  others from completing (bulkhead isolation);
* a drain request checkpoints running campaigns and a restarted
  supervisor resumes them with zero re-executed completed cases;
* a crashed supervisor's leases expire and a *different* worker
  reclaims and finishes its campaigns.

Execution counting is file-based (the temp suite appends every real
program invocation to ``FLEET_COUNT_FILE``) because the suite module is
re-executed per prepare; class-level counters would reset.
"""

import os

import pytest

from repro.faults import FaultPlan
from repro.fleet.queue import CampaignQueue
from repro.fleet.service import CampaignService, CampaignSpec
from repro.fleet.supervisor import FleetSupervisor, SupervisorCrash
from repro.fleet.timeline import ResultsTimeline

pytestmark = pytest.mark.chaos

PINNED_TS = "2026-01-01T00:00:00"

#: case-level transient storm + enough retry budget to absorb it
CASE_STORM = "build:0.3,submit:0.3,timeout:0.3,hook:0.3"
STORM_RETRIES = 5

SUITE_SRC = '''
"""Temp fleet suite: deterministic FOMs + file-based execution count."""

import os

from repro.runner import sanity as sn
from repro.runner.benchmark import RegressionTest, rfm_test
from repro.runner.fields import parameter


def _note(name):
    path = os.environ.get("FLEET_COUNT_FILE")
    if path:
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(name + "\\n")


def _drift():
    path = os.environ.get("FLEET_DRIFT_FILE")
    if not path or not os.path.exists(path):
        return 1.0
    text = open(path, encoding="utf-8").read().strip()
    return float(text) if text else 1.0


@rfm_test
class FleetBenchX(RegressionTest):
    size = parameter([1, 2, 3, 4, 5, 6])

    def program(self, ctx):
        _note(self.name)
        return "bw: {0}\\n".format(self.size * 100.0), 1.0

    def check_sanity(self, stdout):
        sn.assert_found(r"bw", stdout)

    def extract_performance(self, stdout):
        v = sn.extractsingle(r"bw: ([\\d.]+)", stdout, 1, float)
        return {"bandwidth": (v, "MB/s")}


@rfm_test
class FleetBenchY(RegressionTest):
    size = parameter([1, 2])

    def program(self, ctx):
        _note(self.name)
        return "bw: {0}\\n".format(self.size * 50.0 * _drift()), 1.0

    def check_sanity(self, stdout):
        sn.assert_found(r"bw", stdout)

    def extract_performance(self, stdout):
        v = sn.extractsingle(r"bw: ([\\d.]+)", stdout, 1, float)
        return {"bandwidth": (v, "MB/s")}
'''


@pytest.fixture
def suite(tmp_path):
    path = tmp_path / "fleet_suite.py"
    path.write_text(SUITE_SRC)
    return str(path)


def make_spec(tmp_path, suite, tag, storm=True, **overrides):
    base = dict(
        suites=[suite],
        system="archer2",
        perflog_dir=str(tmp_path / f"perflogs-{tag}"),
        perflog_timestamp=PINNED_TS,
        inject_faults=CASE_STORM if storm else None,
        max_retries=STORM_RETRIES if storm else 2,
        fault_seed=42,
    )
    base.update(overrides)
    return CampaignSpec(**base)


def perflog_bytes(prefix):
    out = {}
    for root, _, files in os.walk(prefix):
        for fname in files:
            path = os.path.join(root, fname)
            with open(path, "rb") as fh:
                out[os.path.relpath(path, prefix)] = fh.read()
    return out


def standalone_logs(tmp_path, suite, n, storm=True):
    """Each campaign's reference run: one-shot, serial, no supervisor."""
    logs = []
    for i in range(n):
        spec = make_spec(tmp_path, suite, f"solo-{i}", storm=storm)
        report = CampaignService().run(spec)
        assert report.success
        logs.append(perflog_bytes(spec.perflog_dir))
    return logs


def submit_fleet(tmp_path, suite, n, storm=True, **spec_overrides):
    queue = CampaignQueue(str(tmp_path / "fleet.q"))
    ids = []
    for i in range(n):
        spec = make_spec(
            tmp_path, suite, f"fleet-{i}", storm=storm,
            journal=str(tmp_path / f"journal-{i}.jsonl"),
            **spec_overrides,
        )
        ids.append(queue.submit(spec.to_doc(), now=queue.max_time()))
    return queue, ids


def test_fleet_matches_standalone_runs_under_fault_storm(tmp_path, suite):
    """Acceptance: N=4 multiplexed storm campaigns, byte-identical."""
    solo = standalone_logs(tmp_path, suite, 4)
    queue, ids = submit_fleet(tmp_path, suite, 4)
    report = FleetSupervisor(queue, slice_cases=3, max_concurrent=4).run()
    assert len(report.completed) == 4
    for i in range(4):
        fleet_logs = perflog_bytes(str(tmp_path / f"perflogs-fleet-{i}"))
        assert fleet_logs and fleet_logs == solo[i]
    states = queue.load()
    assert all(states[cid].status == "completed" for cid in ids)
    assert all(states[cid].passed == 8 for cid in ids)
    assert report.metrics["counters"]["fleet.slices"] >= 12  # multiplexed


@pytest.mark.parametrize("seed", [1, 3, 5, 11])
def test_supervisor_killed_and_restarted_converges(tmp_path, suite, seed):
    """Acceptance: kill the supervisor mid-fleet at swept seeds, restart
    with the same identity, converge to the standalone bytes."""
    solo = standalone_logs(tmp_path, suite, 4)
    queue, ids = submit_fleet(tmp_path, suite, 4)
    plan = FaultPlan.parse("supervisor-crash:0.7x2", seed=seed)
    crashes = 0
    while True:
        supervisor = FleetSupervisor(
            queue, worker="w0", slice_cases=3, max_concurrent=4,
            faults=plan,
        )
        try:
            report = supervisor.run()
            break
        except SupervisorCrash:
            crashes += 1
            assert crashes < 20, "crash storm failed to converge"
    states = queue.load()
    assert all(states[cid].status == "completed" for cid in ids)
    for i in range(4):
        fleet_logs = perflog_bytes(str(tmp_path / f"perflogs-fleet-{i}"))
        assert fleet_logs and fleet_logs == solo[i]
    # the sweep must actually kill somewhere or this test is vacuous;
    # rate 0.7 over 4 campaigns x seeds {1,3,5,11} selects every time
    assert crashes >= 1


def test_aborted_campaign_is_bulkheaded(tmp_path, suite):
    """Acceptance: one campaign trips its breaker; the others finish."""
    queue, good_ids = submit_fleet(tmp_path, suite, 3)
    doomed_spec = make_spec(
        tmp_path, suite, "doomed", storm=False,
        inject_faults="build:1.0x99",  # permanent once retries exhaust
        max_retries=0, max_failures=1,
        journal=str(tmp_path / "journal-doomed.jsonl"),
    )
    doomed = queue.submit(doomed_spec.to_doc(), now=queue.max_time())
    supervisor = FleetSupervisor(queue, slice_cases=3, max_concurrent=4)
    report = supervisor.run()
    states = queue.load()
    assert states[doomed].status == "aborted"
    assert "circuit breaker" in states[doomed].detail \
        or states[doomed].detail  # breaker message recorded
    for cid in good_ids:
        assert states[cid].status == "completed"
    assert report.metrics["counters"]["fleet.degraded.aborted"] == 1
    assert len(report.completed) == 3


def test_drain_checkpoints_and_restart_never_reexecutes(
    tmp_path, suite, monkeypatch
):
    """Acceptance: drain mid-fleet; the restarted supervisor resumes
    with zero re-executed completed cases (execution-counted)."""
    count_file = tmp_path / "invocations.txt"
    monkeypatch.setenv("FLEET_COUNT_FILE", str(count_file))
    queue, ids = submit_fleet(tmp_path, suite, 2, storm=False)

    supervisor = FleetSupervisor(queue, worker="w0", slice_cases=2,
                                 max_concurrent=2)
    slices_seen = []
    supervisor.on_slice = lambda cid, n: (
        slices_seen.append(cid),
        supervisor.request_drain() if len(slices_seen) == 3 else None,
    )
    report = supervisor.run()
    assert report.drained
    assert all(o.status == "released" for o in report.outcomes.values())
    executed_at_drain = count_file.read_text().splitlines()
    assert 0 < len(executed_at_drain) < 16  # genuinely mid-fleet
    # drain marker is durable
    assert any(r.get("kind") == "drain" for r in queue.entries())

    resumed = FleetSupervisor(queue, worker="w0", slice_cases=2,
                              max_concurrent=2).run()
    assert len(resumed.completed) == 2
    states = queue.load()
    assert all(states[cid].status == "completed" for cid in ids)
    executed = count_file.read_text().splitlines()
    # 2 campaigns x 8 cases, each executed exactly once across the
    # drain/restart boundary: zero re-execution of completed cases
    assert len(executed) == 16
    from collections import Counter
    assert all(n == 2 for n in Counter(executed).values())  # once per campaign


def test_cross_queue_drain_request_reaches_running_supervisor(
    tmp_path, suite
):
    """`repro-fleet drain` path: a drain-request *record* (another
    process) stops the supervisor at the next slice boundary."""
    queue, ids = submit_fleet(tmp_path, suite, 2, storm=False)
    supervisor = FleetSupervisor(queue, slice_cases=2, max_concurrent=2)
    supervisor.on_slice = lambda cid, n: (
        queue.request_drain(now=supervisor.clock.now) if n == 1 else None
    )
    report = supervisor.run()
    assert report.drained
    # and a fresh supervisor (no drain flag) finishes the fleet
    final = FleetSupervisor(queue, slice_cases=2, max_concurrent=2).run()
    assert not final.drained  # old requests don't re-trigger
    assert all(s.status == "completed" for s in queue.load().values())


def test_crashed_workers_leases_expire_and_another_worker_finishes(
    tmp_path, suite, monkeypatch
):
    """Lease-based recovery across *identities*: w1 must wait out w0's
    lease TTL, then reclaim, resume from the journal and finish."""
    count_file = tmp_path / "invocations.txt"
    monkeypatch.setenv("FLEET_COUNT_FILE", str(count_file))
    solo = standalone_logs(tmp_path, suite, 2, storm=False)
    # the reference runs above counted executions too; start clean
    count_file.write_text("")
    queue, ids = submit_fleet(tmp_path, suite, 2, storm=False)

    w0 = FleetSupervisor(
        queue, worker="w0", slice_cases=2, max_concurrent=2,
        faults=FaultPlan.parse("supervisor-crash:1.0", seed=0),
    )
    with pytest.raises(SupervisorCrash):
        w0.run()
    mid = queue.load()
    assert any(s.status == "leased" and s.worker == "w0"
               for s in mid.values())

    w1 = FleetSupervisor(queue, worker="w1", slice_cases=2,
                         max_concurrent=2)
    report = w1.run()
    assert len(report.completed) == 2
    for i in range(2):
        fleet_logs = perflog_bytes(str(tmp_path / f"perflogs-fleet-{i}"))
        assert fleet_logs and fleet_logs == solo[i]
    from collections import Counter
    counts = Counter(count_file.read_text().splitlines())
    assert all(n == 2 for n in counts.values())  # nothing re-executed


def test_lease_expire_fault_is_contained_and_converges(tmp_path, suite):
    """The lease-expire chaos kind: the supervisor abandons leases
    mid-campaign, reclaims them after the TTL, and still converges."""
    solo = standalone_logs(tmp_path, suite, 2, storm=False)
    queue, ids = submit_fleet(tmp_path, suite, 2, storm=False)
    supervisor = FleetSupervisor(
        queue, worker="w0", slice_cases=2, max_concurrent=2,
        faults=FaultPlan.parse("lease-expire:1.0", seed=0),
    )
    report = supervisor.run()
    assert report.metrics["counters"]["fleet.leases.expired"] >= 1
    assert all(s.status == "completed" for s in queue.load().values())
    for i in range(2):
        fleet_logs = perflog_bytes(str(tmp_path / f"perflogs-fleet-{i}"))
        assert fleet_logs and fleet_logs == solo[i]


def test_node_quotas_gate_admission(tmp_path, suite):
    """Per-tenant quotas + the cluster budget serialize node-hungry
    campaigns without starving them."""
    queue = CampaignQueue(str(tmp_path / "fleet.q"))
    ids = []
    for i, tenant in enumerate(["acme", "acme", "labs"]):
        spec = make_spec(
            tmp_path, suite, f"fleet-{i}", storm=False,
            journal=str(tmp_path / f"journal-{i}.jsonl"),
        )
        ids.append(queue.submit(spec.to_doc(), tenant=tenant, nodes=2,
                                now=queue.max_time()))
    supervisor = FleetSupervisor(
        queue, slice_cases=4, max_concurrent=4,
        cluster_nodes=4, tenant_quotas={"acme": 2},
    )
    report = supervisor.run()
    assert len(report.completed) == 3  # gated, not starved
    counters = report.metrics["counters"]
    assert counters.get("fleet.admission.quota", 0) >= 1
    assert all(s.status == "completed" for s in queue.load().values())


def test_timeline_flags_the_stepped_cell_over_sequential_runs(
    tmp_path, suite, monkeypatch
):
    """Acceptance: an injected FOM step-change across 6 sequential
    fleet runs flags exactly the (benchmark x system) cells that
    stepped -- FleetBenchY's, never FleetBenchX's."""
    drift_file = tmp_path / "drift.txt"
    drift_file.write_text("1.0")
    monkeypatch.setenv("FLEET_DRIFT_FILE", str(drift_file))
    queue = CampaignQueue(str(tmp_path / "fleet.q"))
    timeline = ResultsTimeline(str(tmp_path / "fleet.timeline"))
    spec_doc = make_spec(tmp_path, suite, "seq", storm=False).to_doc()
    for run in range(6):
        if run == 3:
            drift_file.write_text("1.3")  # the injected step
        queue.submit(dict(spec_doc), now=queue.max_time())
        report = FleetSupervisor(
            queue, slice_cases=4, timeline=timeline
        ).run()
        assert len(report.completed) == 1
    findings = timeline.detect_regressions(min_runs=5)
    assert findings, "the injected step was not detected"
    flagged_tests = {f.key[0] for f in findings}
    assert all(t.startswith("FleetBenchY") for t in flagged_tests)
    assert len(findings) == 2  # both FleetBenchY sizes stepped
    for f in findings:
        assert f.change.index == 3
        assert f.change.direction == "improved"
    # all six runs share one spec content id (one timeline row family)
    assert len({f.key[2] for f in findings}) == 1
