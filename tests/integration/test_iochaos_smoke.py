"""I/O chaos smoke test: a storage-fault storm must converge or fail loudly.

The storage-resilience tentpole's headline properties:

* Under ``--durability degrade``, a seeded storm of all five I/O fault
  kinds (``enospc``, ``eio``, ``torn``, ``bitrot``, ``fsync-lie``) at
  >=5% per artifact operation completes the campaign and produces
  perflogs *byte-identical* to a fault-free run -- on every execution
  policy.  Accelerator artifacts (result store, trace, ingest cache)
  may degrade away; the primary record may not.
* Under ``--durability strict`` the same storm fail-stops
  deterministically, naming the artifact that could not be persisted.
* ``repro-fsck`` detects and heals 100% of injected artifact
  corruption: torn tails, mid-file bit rot, rotten store objects.
"""

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan
from repro.iofaults import flip_byte, tear_tail
from repro.obs.jsonl import read_jsonl
from repro.runner import sanity as sn
from repro.runner.benchmark import RegressionTest
from repro.runner.executor import Executor
from repro.runner.fields import parameter
from repro.runner.fsck import main as fsck_main
from repro.runner.resilience import RetryPolicy
from repro.runner.results import CaseResultStore

pytestmark = pytest.mark.iochaos

PINNED_TS = "2026-01-01T00:00:00"
RETRY = RetryPolicy(max_attempts=3, jitter=0.0)

#: every I/O fault kind at once, 8% per artifact operation
STORM = "enospc:0.08,eio:0.08,torn:0.08,bitrot:0.08,fsync-lie:0.08"


class IoChaosBench(RegressionTest):
    """Six deterministic cases; module-level so procs workers unpickle."""

    size = parameter([1, 2, 3, 4, 5, 6])

    def program(self, ctx):
        return f"bw {self.size}: {self.size * 100.0}\n", 1.0

    def check_sanity(self, stdout):
        sn.assert_found(r"bw", stdout)

    def extract_performance(self, stdout):
        v = sn.extractsingle(r": ([\d.]+)", stdout, 1, float)
        return {"bandwidth": (v, "MB/s")}


def campaign(tmp_path, tag, *, spec=None, seed=0, policy="serial",
             workers=1, durability="strict", trace=False, store=False,
             journal=False, **run_kwargs):
    """One campaign run -> (outcome, report, {relpath: perflog bytes}).

    The storm campaigns deliberately run *without* a journal: journal
    write failures always fail-stop (by design), which would make
    convergence-under-storm a coin flip rather than a property.
    """
    prefix = str(tmp_path / f"perflogs-{tag}")
    ex = Executor(perflog_prefix=prefix, perflog_timestamp=PINNED_TS)
    cases = ex.expand_cases([IoChaosBench], "archer2")
    faults = FaultPlan.parse(spec, seed=seed) if spec is not None else None
    report = ex.run_cases(
        cases,
        policy=policy,
        workers=workers,
        retry=RETRY,
        faults=faults,
        durability=durability,
        trace=str(tmp_path / f"trace-{tag}.jsonl") if trace else None,
        result_store=str(tmp_path / f"store-{tag}") if store else None,
        journal=str(tmp_path / f"journal-{tag}.jsonl") if journal else None,
        **run_kwargs,
    )
    logs = {}
    for root, _, files in os.walk(prefix):
        for fname in files:
            if not fname.endswith(".log"):
                continue  # .sums sidecars are storm-only, by design
            path = os.path.join(root, fname)
            with open(path, "rb") as fh:
                logs[os.path.relpath(path, prefix)] = fh.read()
    outcome = [
        (r.case.display_name, r.passed, sorted(r.perfvars.items()))
        for r in report.results
    ]
    return outcome, report, logs


def test_seed_3_storm_actually_bites(tmp_path):
    """Guard: the storm degrades real artifacts, or this file lies."""
    _, report, _ = campaign(tmp_path, "guard", spec=STORM, seed=3,
                            durability="degrade", trace=True, store=True)
    assert report.success
    assert report.degraded, "no storage faults absorbed -- storm too weak"
    assert "Degraded:" in report.summary()


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_storm_converges_to_clean_perflogs(tmp_path_factory, seed):
    """Degrade mode: every seed's storm ends in byte-identical perflogs."""
    tmp_path = tmp_path_factory.mktemp(f"iochaos-{seed}")
    clean_outcome, clean_report, clean_logs = campaign(tmp_path, "clean")
    for policy, workers in (("serial", 1), ("async", 4)):
        storm_outcome, storm_report, storm_logs = campaign(
            tmp_path, f"storm-{policy}", spec=STORM, seed=seed,
            policy=policy, workers=workers, durability="degrade",
            trace=True, store=True,
        )
        assert storm_report.success
        assert storm_outcome == clean_outcome
        assert storm_logs == clean_logs  # byte-identical perflogs
    assert clean_report.degraded is None


def test_storm_converges_on_procs_policy(tmp_path):
    clean_outcome, _, clean_logs = campaign(tmp_path, "clean")
    storm_outcome, storm_report, storm_logs = campaign(
        tmp_path, "storm-procs", spec=STORM, seed=11, policy="procs",
        workers=4, durability="degrade", trace=True, store=True,
    )
    assert storm_report.success
    assert storm_outcome == clean_outcome
    assert storm_logs == clean_logs


def test_strict_mode_aborts_deterministically(tmp_path):
    """A perflog that cannot be persisted fail-stops, naming the artifact."""
    runs = []
    for tag in ("a", "b"):
        _, report, _ = campaign(tmp_path, f"strict-{tag}",
                                spec="enospc:1.0@perflog", seed=42,
                                durability="strict")
        runs.append(report)
    for report in runs:
        assert not report.success
        assert report.aborted is not None
        assert "perflog" in report.aborted
    # identical diagnostics modulo the per-run output directory
    assert (runs[0].aborted.replace("strict-a", "strict-b")
            == runs[1].aborted)
    assert ([r.case.display_name for r in runs[0].results]
            == [r.case.display_name for r in runs[1].results])


def test_degrade_survives_total_store_and_trace_loss(tmp_path):
    """Accelerators failing 100% of the time still cost only speed."""
    clean_outcome, _, clean_logs = campaign(tmp_path, "clean")
    outcome, report, logs = campaign(
        tmp_path, "dead-accels", spec="eio:1.0@store,eio:1.0@trace",
        seed=1, durability="degrade", trace=True, store=True,
    )
    assert report.success
    assert outcome == clean_outcome
    assert logs == clean_logs
    assert report.degraded
    assert set(report.degraded) <= {"store", "trace", "ingest"}


def _one_perflog(prefix):
    for root, _, files in os.walk(prefix):
        for fname in files:
            if fname.endswith(".log"):
                return os.path.join(root, fname)
    raise AssertionError("campaign produced no perflog")


def test_fsck_heals_all_injected_corruption(tmp_path, capsys):
    """The healer end-to-end: detect, repair, verify clean."""
    prefix = str(tmp_path / "perflogs-heal")
    ex = Executor(perflog_prefix=prefix, perflog_timestamp=PINNED_TS)
    ex.perflog.enable_sums()  # arm sidecars so mid-file rot is healable
    cases = ex.expand_cases([IoChaosBench], "archer2")
    journal = str(tmp_path / "journal.jsonl")
    trace = str(tmp_path / "trace.jsonl")
    store_root = str(tmp_path / "store")
    report = ex.run_cases(cases, retry=RETRY, journal=journal,
                          trace=trace, result_store=store_root)
    assert report.success

    # injected damage: one of every corruption class
    tear_tail(journal, drop=9)          # torn tail (crash signature)
    flip_byte(trace)                    # mid-file bit rot
    log = _one_perflog(prefix)
    flip_byte(log)                      # rot inside a checksummed range
    objects = sorted(os.listdir(os.path.join(store_root, "objects")))
    flip_byte(os.path.join(store_root, "objects", objects[0]))
    tear_tail(os.path.join(store_root, "pack.jsonl"), drop=5)

    targets = [prefix, journal, trace, store_root]
    assert fsck_main(targets) == 1          # check mode: damage reported
    assert fsck_main(["--repair"] + targets) == 0  # every problem healed
    assert fsck_main(targets) == 0          # independent clean re-check
    capsys.readouterr()

    # healed artifacts are actually consumable again
    assert read_jsonl(journal)
    assert read_jsonl(trace)
    reopened = CaseResultStore(store_root)
    assert len(reopened) == len(objects) - 1  # rotten object became a miss


def test_fsck_provenance_seeding(tmp_path, capsys):
    """--provenance walks the campaign's own artifact naming."""
    prov = {
        "system": "archer2",
        "cases": [],
        "trace_file": str(tmp_path / "trace.jsonl"),
        "resilience": {"journal": str(tmp_path / "journal.jsonl")},
    }
    with open(tmp_path / "trace.jsonl", "w", encoding="utf-8") as fh:
        fh.write(json.dumps({"kind": "meta"}) + "\n")
    with open(tmp_path / "journal.jsonl", "w", encoding="utf-8") as fh:
        fh.write(json.dumps({"kind": "case"}) + "\n")
    prov_path = tmp_path / "provenance.json"
    with open(prov_path, "w", encoding="utf-8") as fh:
        json.dump(prov, fh)
    assert fsck_main(["--provenance", str(prov_path)]) == 0
    out = capsys.readouterr().out
    assert "trace.jsonl" in out and "journal.jsonl" in out
