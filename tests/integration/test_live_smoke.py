"""Live analytics smoke (tier-1): the streaming plane's acceptance run.

The live tentpole's contract, as tests:

* a chaos-seeded campaign watched live produces windowed aggregates
  that reconcile **exactly** with the post-hoc journal counts and the
  end-of-run metrics snapshot -- live is not an estimate;
* ``repro-top --replay`` over the finished trace renders a dashboard
  byte-identical across serial / async / procs policies (the trace is
  byte-identical, so everything derived from it must be too);
* replaying the trace reconstructs the same case/latency/system state
  the live sink accumulated while the campaign ran;
* the live-status artifact survives the fsck contract: sealed lines
  verify, torn tails heal, and ``--provenance`` discovers it.
"""

import json
import os

import pytest

from repro.faults import FaultPlan
from repro.obs.live import read_live_status, replay_trace
from repro.obs.top import main as top_main
from repro.obs.top import render_dashboard
from repro.runner import sanity as sn
from repro.runner.benchmark import RegressionTest
from repro.runner.executor import Executor
from repro.runner.fields import parameter
from repro.runner.resilience import CampaignJournal, RetryPolicy

pytestmark = pytest.mark.chaos

CHAOS_SPEC = "build:0.3,submit:0.3,timeout:0.3,hook:0.3"
RETRY = RetryPolicy(max_attempts=6, jitter=0.0)


class LiveBench(RegressionTest):
    """Six deterministic cases; module-level so procs workers unpickle."""

    size = parameter([1, 2, 3, 4, 5, 6])

    def program(self, ctx):
        return f"bw {self.size}: {self.size * 100.0}\n", 1.0

    def check_sanity(self, stdout):
        sn.assert_found(r"bw", stdout)

    def extract_performance(self, stdout):
        v = sn.extractsingle(r": ([\d.]+)", stdout, 1, float)
        return {"bandwidth": (v, "MB/s")}


def campaign(tmp_path, tag, seed=42, policy="serial", workers=1,
             trace=True, live=True, **run_kwargs):
    ex = Executor()
    cases = ex.expand_cases([LiveBench], "archer2")
    faults = FaultPlan.parse(CHAOS_SPEC, seed=seed) if seed is not None \
        else None
    trace_path = str(tmp_path / f"trace-{tag}.jsonl") if trace else None
    live_path = str(tmp_path / f"{tag}.live.jsonl") if live else None
    report = ex.run_cases(cases, policy=policy, workers=workers,
                          retry=RETRY, faults=faults, trace=trace_path,
                          metrics=True, live=live_path, **run_kwargs)
    return report, trace_path, live_path


class TestLiveReconciliation:
    def test_live_aggregates_match_journal_and_metrics(self, tmp_path):
        journal_path = str(tmp_path / "journal.jsonl")
        report, _, live = campaign(tmp_path, "chaos",
                                   journal=journal_path)
        assert report.success
        assert report.live_status_path == live

        _, statuses = read_live_status(live)
        snap = statuses[-1]["snapshot"]
        records = CampaignJournal(journal_path).load().values()
        counters = report.metrics["counters"]

        # the live case tallies equal the journal-derived truth...
        assert snap["cases"]["total"] == len(records) == 6
        assert snap["cases"]["passed"] == sum(
            1 for r in records if r["status"] == "passed")
        assert snap["cases"]["failed"] == sum(
            1 for r in records if r["status"] == "failed")
        assert snap["cases"]["attempts_extra"] == sum(
            r["attempts"] - 1 for r in records)
        # ... and the end-of-run metrics snapshot
        assert snap["cases"]["total"] == counters["cases.total"]
        assert snap["cases"]["retried"] == counters["cases.retried"]
        assert snap["totals"]["faults.injected"] == \
            counters["faults.injected"]

    def test_live_state_equals_trace_replay(self, tmp_path):
        _, trace, live = campaign(tmp_path, "replay")
        _, statuses = read_live_status(live)
        live_snap = statuses[-1]["snapshot"]
        replay_snap = replay_trace(trace).snapshot()
        # perflog rows/files arrive via note_append, which a trace
        # cannot carry; sources differ by construction
        for snap in (live_snap, replay_snap):
            for key in ("source", "rows", "files"):
                snap.pop(key)
            for rec in snap["systems"].values():
                rec.pop("rows")
        assert live_snap == replay_snap

    def test_untraced_campaign_still_aggregates(self, tmp_path):
        report, _, live = campaign(tmp_path, "untraced", trace=False)
        _, statuses = read_live_status(live)
        snap = statuses[-1]["snapshot"]
        assert snap["cases"]["total"] == 6
        assert snap["latency"]["queue"]["count"] >= 6
        assert snap["latency"]["run"]["count"] >= 6
        assert snap["rates"]["cases_per_second"] > 0


class TestReplayDashboardDeterminism:
    def test_byte_identical_across_policies(self, tmp_path, capsys):
        renders = {}
        for policy, workers in (("serial", 1), ("async", 4), ("procs", 2)):
            _, trace, _ = campaign(tmp_path, policy, policy=policy,
                                   workers=workers, live=False)
            assert top_main(["--replay", trace]) == 0
            renders[policy] = capsys.readouterr().out
        assert renders["serial"] == renders["async"] == renders["procs"]

    def test_replay_json_is_machine_readable(self, tmp_path, capsys):
        _, trace, _ = campaign(tmp_path, "json", live=False)
        assert top_main(["--replay", trace, "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["source"] == "replay"
        assert doc["cases"]["total"] == 6


class TestLiveStatusArtifact:
    def test_top_once_over_real_campaign(self, tmp_path, capsys):
        _, _, live = campaign(tmp_path, "cli")
        assert top_main([live, "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro-top -- t=+" in out and "archer2" in out

    def test_fsck_verifies_and_heals_live_status(self, tmp_path, capsys):
        from repro.runner.fsck import main as fsck_main

        _, _, live = campaign(tmp_path, "fsck")
        assert fsck_main([live]) == 0
        out = capsys.readouterr().out
        assert "live-status" in out

        # tear the tail mid-append; fsck heals, repro-top still renders
        with open(live, "ab") as fh:
            fh.write(b'{"kind": "status", "torn')
        assert fsck_main([live]) == 1
        assert fsck_main(["--repair", live]) == 0
        capsys.readouterr()
        assert top_main([live, "--once"]) == 0

    def test_provenance_discovers_live_status(self, tmp_path):
        from repro.core.provenance import RunProvenance
        from repro.runner.fsck import targets_from_provenance

        report, trace, live = campaign(tmp_path, "prov")
        prov = RunProvenance(system="archer2")
        for result in report.results:
            prov.add_case(result)
        prov.attach_metrics(report.metrics, trace_path=trace,
                            live_status=report.live_status_path)
        prov_path = str(tmp_path / "provenance.json")
        with open(prov_path, "w", encoding="utf-8") as fh:
            fh.write(prov.to_json())

        loaded = RunProvenance.from_json(open(prov_path).read())
        assert loaded.live_status == live
        assert live in targets_from_provenance(prov_path)


class TestFleetLiveStatus:
    def _submit(self, qpath, tmp_path, tag, *extra):
        from repro.fleet.cli import main as fleet_main

        return fleet_main([
            "submit", "--queue", qpath, "-c", "stream",
            "--system", "archer2",
            "--perflog-dir", str(tmp_path / f"pl-{tag}"), *extra,
        ])

    def test_fleet_run_emits_and_status_reads(self, tmp_path, capsys):
        from repro.fleet.cli import main as fleet_main

        qpath = str(tmp_path / "fleet.q")
        assert self._submit(qpath, tmp_path, "a", "--tenant", "acme") == 0
        assert self._submit(qpath, tmp_path, "b") == 0
        assert fleet_main(["run", "--queue", qpath, "--live-status"]) == 0
        capsys.readouterr()

        live = qpath + ".live.jsonl"
        assert os.path.exists(live)
        _, statuses = read_live_status(live)
        snap = statuses[-1]["snapshot"]
        assert len(snap["fleet"]) == 2
        assert all(c["status"] == "completed"
                   for c in snap["fleet"].values())
        assert snap["tenants"]["acme"]["campaigns"] == 1

        # repro-fleet status surfaces the live per-campaign progress
        assert fleet_main(["status", "--queue", qpath]) == 0
        out = capsys.readouterr().out
        assert "live: t=+" in out
        assert "1/1 case(s) (100%)" in out

        # and repro-top renders the fleet grid from the same artifact
        assert top_main([live, "--once"]) == 0
        out = capsys.readouterr().out
        assert "FLEET" in out and "tenants" in out

    def test_dashboard_renders_fleet_progress_live(self, tmp_path):
        """Supervisor-fed sink: progress is observable between slices."""
        from repro.fleet.queue import CampaignQueue
        from repro.fleet.service import CampaignService, CampaignSpec
        from repro.fleet.supervisor import FleetSupervisor
        from repro.obs.live import LiveStatsSink

        qpath = str(tmp_path / "fleet.q")
        queue = CampaignQueue(qpath)
        spec = CampaignSpec(suites=["stream"], system="archer2",
                            perflog_dir=str(tmp_path / "pl-live"))
        queue.submit(spec.to_doc(), campaign_id="camp-live")
        sink = LiveStatsSink()
        sup = FleetSupervisor(queue, worker="w0",
                              service=CampaignService(), live=sink)
        summary = sup.run()
        assert [c.id for c in summary.completed] == ["camp-live"]
        snap = sink.snapshot()
        info = snap["fleet"]["camp-live"]
        assert info["status"] == "completed"
        assert info["done"] == info["total"] > 0
        text = render_dashboard(snap)
        assert "camp-live" in text and "100%" in text
