"""Chaos smoke test: a seeded fault storm must converge to the clean run.

The resilience stack's headline property (ISSUE: campaign resilience):
with *transient-only* injected faults, a fixed seed and enough retry
budget, a chaos campaign -- including one simulated mid-campaign crash
plus ``--resume`` -- produces byte-identical perflogs and the same
pass/fail outcome as a fault-free serial run.  Determinism makes chaos
testing itself a reproducible experiment (Principle 6 applied to the
framework's own testing).
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan
from repro.runner import sanity as sn
from repro.runner.benchmark import RegressionTest, run_before
from repro.runner.executor import Executor
from repro.runner.fields import parameter, variable
from repro.runner.resilience import CampaignAborted, CampaignJournal, RetryPolicy

pytestmark = pytest.mark.chaos

PINNED_TS = "2026-01-01T00:00:00"

#: ~30% transient fault probability at every injection layer
CHAOS_SPEC = "build:0.3,submit:0.3,timeout:0.3,hook:0.3"

#: worst case a single target draws all four kinds, each burning one
#: attempt, so five attempts always suffice; six adds slack
RETRY = RetryPolicy(max_attempts=6, jitter=0.0)


class ChaosBench(RegressionTest):
    """Six deterministic cases with a (retry-idempotent) user hook."""

    size = parameter([1, 2, 3, 4, 5, 6])
    tuned = variable(bool, value=False)
    #: simulated crash switch: program invocation that raises
    kill_at = None
    invocations = 0

    @run_before("run")
    def tune(self):
        self.tuned = True  # assignment: safe to re-run on retry

    def program(self, ctx):
        cls = ChaosBench
        if cls.kill_at is not None and cls.invocations >= cls.kill_at:
            raise CampaignAborted("simulated crash")
        cls.invocations += 1
        assert self.tuned
        return f"bw {self.size}: {self.size * 100.0}\n", 1.0

    def check_sanity(self, stdout):
        sn.assert_found(r"bw", stdout)

    def extract_performance(self, stdout):
        v = sn.extractsingle(r": ([\d.]+)", stdout, 1, float)
        return {"bandwidth": (v, "MB/s")}


@pytest.fixture(autouse=True)
def _reset():
    ChaosBench.kill_at = None
    ChaosBench.invocations = 0
    yield
    ChaosBench.kill_at = None
    ChaosBench.invocations = 0


def campaign(tmp_path, tag, seed=None, policy="serial", workers=1,
             journal=None, resume=False, spec=CHAOS_SPEC, **run_kwargs):
    """One campaign run -> (observable outcome, report, perflog bytes)."""
    prefix = str(tmp_path / f"perflogs-{tag}")
    ex = Executor(perflog_prefix=prefix, perflog_timestamp=PINNED_TS)
    cases = ex.expand_cases([ChaosBench], "archer2")
    faults = FaultPlan.parse(spec, seed=seed) if seed is not None else None
    report = ex.run_cases(cases, policy=policy, workers=workers,
                          retry=RETRY, faults=faults,
                          journal=journal, resume=resume, **run_kwargs)
    logs = {}
    for root, _, files in os.walk(prefix):
        for fname in files:
            path = os.path.join(root, fname)
            with open(path, "rb") as fh:
                logs[os.path.relpath(path, prefix)] = fh.read()
    outcome = [
        (r.case.display_name, r.passed, sorted(r.perfvars.items()))
        for r in report.results
    ]
    return outcome, report, logs


def test_seed_42_actually_injects_faults(tmp_path):
    """Guard: the chaos rate is high enough to matter, or this file lies."""
    _, report, _ = campaign(tmp_path, "guard", seed=42)
    assert report.faults_injected > 0
    assert report.retried


def test_chaos_converges_to_fault_free_run(tmp_path):
    clean_outcome, clean_report, clean_logs = campaign(tmp_path, "clean")
    chaos_outcome, chaos_report, chaos_logs = campaign(tmp_path, "chaos",
                                                      seed=42)
    assert clean_report.success and chaos_report.success
    assert chaos_outcome == clean_outcome
    assert chaos_logs == clean_logs  # byte-identical perflogs


def test_chaos_is_deterministic_across_policies(tmp_path):
    serial = campaign(tmp_path, "ser", seed=42, policy="serial")
    parallel = campaign(tmp_path, "par", seed=42, policy="async", workers=4)
    assert parallel[0] == serial[0]
    assert parallel[2] == serial[2]
    # even the retry accounting is identical
    assert ([(r.attempts, r.backoff_schedule, r.fault_log)
             for r in parallel[1].results] ==
            [(r.attempts, r.backoff_schedule, r.fault_log)
             for r in serial[1].results])


def test_chaos_with_crash_and_resume_matches_clean_run(tmp_path):
    """The full gauntlet: fault storm + power loss + --resume."""
    clean_outcome, _, clean_logs = campaign(tmp_path, "clean")

    journal = str(tmp_path / "journal.jsonl")
    ChaosBench.invocations = 0  # the clean run above also counted
    ChaosBench.kill_at = 3  # die mid-campaign, mid-fault-storm
    _, crashed, _ = campaign(tmp_path, "merged", seed=42, journal=journal)
    assert crashed.aborted == "simulated crash"
    completed_before_crash = len(CampaignJournal(journal).load())
    assert 1 <= completed_before_crash < 6

    ChaosBench.kill_at = None
    _, resumed, merged_logs = campaign(tmp_path, "merged", seed=42,
                                       journal=journal, resume=True)
    assert resumed.success
    assert len(resumed.resumed) == completed_before_crash  # skipped, not re-run
    outcome = [(r.case.display_name, r.passed, sorted(r.perfvars.items()))
               for r in resumed.results]
    assert outcome == clean_outcome
    assert merged_logs == clean_logs


#: the slow-fault storm (DESIGN.md section 6.4): hangs, stragglers and
#: degraded nodes rather than fail-fast errors
SLOW_SPEC = "hang:0.4,slow:0.5,sicknode:0.6"

#: the full mitigation stack the storm is run under
SLOW_KWARGS = dict(
    watchdog="run=50,heartbeat=5",
    speculation=True,
    straggler_factor=1.5,
    drain_after=2,
)


def test_slow_storm_seed_7_actually_bites(tmp_path):
    """Guard: seed 7 produces hangs, stragglers AND drains -- the
    mitigation tests below exercise all three paths, or this file lies."""
    _, report, _ = campaign(tmp_path, "guard", seed=7, spec=SLOW_SPEC,
                            **SLOW_KWARGS)
    assert report.hung_attempts > 0
    assert report.speculated
    assert report.drained_nodes
    assert report.watchdog is not None and report.watchdog["hung_jobs"]


def test_slow_storm_converges_with_zero_hung_forever_cases(tmp_path):
    """The tentpole acceptance run: hang/slow/sicknode chaos under
    --watchdog --speculate --drain-after completes (nothing wedges),
    drains the sick nodes, and the perflogs are byte-identical to a
    fault-free serial run."""
    import time

    clean_outcome, clean_report, clean_logs = campaign(tmp_path, "clean")
    t0 = time.monotonic()
    storm_outcome, storm_report, storm_logs = campaign(
        tmp_path, "storm", seed=7, spec=SLOW_SPEC, **SLOW_KWARGS
    )
    wall = time.monotonic() - t0
    assert storm_report.success  # zero hung-forever cases
    assert storm_outcome == clean_outcome
    assert storm_logs == clean_logs  # byte-identical perflogs
    assert storm_report.drained_nodes  # the sick node was drained
    assert "Hung:" in storm_report.summary()
    assert "Drained" in storm_report.summary()
    # a simulated hang must never consume real time: everything above
    # (including 1e6-second hangs) runs on the virtual clock
    assert wall < 60.0


def test_undetected_hang_devolves_to_timeout_not_wedge(tmp_path):
    """Without a watchdog a hang still terminates (as walltime TIMEOUT on
    the simulated clock) and the retry path recovers it."""
    outcome, report, logs = campaign(tmp_path, "nodog", seed=7,
                                     spec="hang@*_2*")
    assert report.success
    (hung_case,) = [r for r in report.results if r.attempts > 1]
    assert hung_case.case.test.size == 2
    assert hung_case.hung_attempts == 0  # TIMEOUT, not a watchdog kill
    assert any("hang" in f for f in hung_case.fault_log)


def test_watchdog_kills_hang_early_and_retry_recovers(tmp_path):
    outcome, report, _ = campaign(tmp_path, "dog", seed=7,
                                  spec="hang@*_2*",
                                  watchdog="run=50,heartbeat=10")
    assert report.success
    (hung_case,) = [r for r in report.results if r.hung_attempts]
    assert hung_case.case.test.size == 2
    assert hung_case.passed and hung_case.attempts == 2
    assert report.watchdog["hung_jobs"]  # forensics recorded


def test_health_state_survives_crash_and_resume(tmp_path):
    """Tentpole acceptance: a node drained before the crash stays
    drained after --resume, restored from the journal's health records."""
    from repro.runner.resilience import CampaignJournal

    journal = str(tmp_path / "journal.jsonl")
    # permanent degradation of one named node; drain on first strike
    ChaosBench.kill_at = 3  # power loss mid-campaign
    _, crashed, _ = campaign(tmp_path, "hcrash", seed=7,
                             spec="sicknode@nid0001#*", journal=journal,
                             drain_after=1)
    assert crashed.aborted == "simulated crash"
    assert "nid0001" in crashed.drained_nodes
    snapshot = CampaignJournal(journal).health_snapshot()
    assert snapshot is not None and "nid0001" in snapshot["drained"]

    # resume WITHOUT any faults: the drain can only come from the journal
    ChaosBench.kill_at = None
    _, resumed, _ = campaign(tmp_path, "hresume", journal=journal,
                             resume=True, drain_after=1)
    assert resumed.success
    assert "nid0001" in resumed.drained_nodes
    assert resumed.health["nodes"]["nid0001"]["strikes"] >= 1


def test_mitigation_machinery_is_inert_without_faults(tmp_path):
    """Tier-1 guard: arming watchdog + speculation + drain on a healthy
    campaign changes nothing -- outcome, summary counters and perflog
    bytes all match the plain default-path run."""
    clean_outcome, clean_report, clean_logs = campaign(tmp_path, "plain")
    armed_outcome, armed_report, armed_logs = campaign(
        tmp_path, "armed", **SLOW_KWARGS
    )
    assert armed_outcome == clean_outcome
    assert armed_logs == clean_logs
    assert armed_report.hung_attempts == 0
    assert not armed_report.speculated
    assert not armed_report.drained_nodes
    assert armed_report.summary() == clean_report.summary()


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_slow_storm_convergence_holds_for_any_seed(tmp_path_factory, seed):
    """Property: the slow-fault storm converges for every seed."""
    tmp_path = tmp_path_factory.mktemp(f"slow-{seed}")
    ChaosBench.kill_at = None
    clean = campaign(tmp_path, "clean")
    storm = campaign(tmp_path, "storm", seed=seed, spec=SLOW_SPEC,
                     **SLOW_KWARGS)
    assert storm[1].success
    assert storm[0] == clean[0]
    assert storm[2] == clean[2]


@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_convergence_holds_for_any_seed(tmp_path_factory, seed):
    """Property: transient-only chaos converges regardless of the seed."""
    tmp_path = tmp_path_factory.mktemp(f"chaos-{seed}")
    ChaosBench.kill_at = None
    clean = campaign(tmp_path, "clean")
    chaos = campaign(tmp_path, "chaos", seed=seed)
    assert chaos[1].success
    assert chaos[0] == clean[0]
    assert chaos[2] == clean[2]
