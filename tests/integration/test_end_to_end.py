"""End-to-end integration: CLI -> scheduler -> perflogs -> plots -> audit.

These tests exercise the full workflow of the paper's Figure 1 across
module boundaries, including the exact command lines from the artifact
appendix.
"""

import os

import numpy as np
import pytest

from repro.core.framework import BenchmarkingFramework
from repro.postprocess.perflog_reader import read_perflogs
from repro.runner.cli import main as bench_main


class TestPaperInvocations:
    """The three appendix invocations, end to end through the CLI."""

    def test_babelstream_appendix_a11(self, tmp_path, capsys):
        rc = bench_main([
            "-c", "benchmarks/apps/babelstream", "-r", "--tag", "omp",
            "--system=isambard-macs:cascadelake",
            "-S", "build_locally=false",
            "-S", "spack_spec=babelstream%gcc@9.2.0 +omp",
            "--perflog-dir", str(tmp_path),
        ])
        assert rc == 0
        frame = read_perflogs(str(tmp_path))
        triad = frame.filter_eq("perf_var", "Triad")
        assert len(triad) == 1
        # the pinned compiler went into the concretized spec
        assert "gcc@9.2.0" in triad["spec"][0]
        # efficiency against Table 1's 282 GB/s sits in the Figure 2 band
        assert 0.6 < triad["perf_value"][0] / 281.568 < 0.85

    def test_hpcg_appendix_a12(self, tmp_path, capsys):
        rc = bench_main([
            "-c", "hpcg", "-r", "-n", "HPCG_", "-x", "HPCG_Intel",
            "--system", "isambard-macs:cascadelake",
            "--performance-report",
            "--perflog-dir", str(tmp_path),
        ])
        assert rc == 0
        frame = read_perflogs(str(tmp_path))
        tests_run = set(frame["test"])
        assert tests_run == {"HPCG_Original", "HPCG_MatrixFree", "HPCG_LFRic"}

    def test_hpgmg_appendix_a13(self, tmp_path, capsys):
        rc = bench_main([
            "-c", "hpgmg", "-r", "-J--qos=standard", "--system", "archer2",
            "-S", "spack_spec=hpgmg%gcc",
            "--setvar=num_cpus_per_task=8",
            "--setvar=num_tasks_per_node=2",
            "--setvar=num_tasks=8",
            "--perflog-dir", str(tmp_path),
        ])
        assert rc == 0
        frame = read_perflogs(str(tmp_path))
        assert set(frame["perf_var"]) == {"l0", "l1", "l2"}
        l0 = frame.filter_eq("perf_var", "l0")["perf_value"][0]
        assert l0 == pytest.approx(95.36, rel=0.07)


class TestCrossSystemAssimilation:
    def test_perflogs_from_isolated_systems_concatenate(self, tmp_path):
        """The Section 2.4 workflow: separate systems, one DataFrame."""
        for system in ("archer2", "cosma8", "csd3"):
            rc = bench_main([
                "-c", "hpgmg", "-r", "--system", system,
                "--perflog-dir", str(tmp_path),
            ])
            assert rc == 0
        frame = read_perflogs(str(tmp_path))
        assert set(frame["system"]) == {"archer2", "cosma8", "csd3"}
        pivot_index, series = frame.filter_eq("perf_var", "l0").pivot(
            "system", "perf_var", "perf_value"
        )
        assert len(pivot_index) == 3

    def test_failed_combinations_logged_not_lost(self, tmp_path):
        """A '*' box ends up in the perflog as an explicit failure."""
        rc = bench_main([
            "-c", "babelstream", "-r", "--tag", "cuda",
            "--system", "csd3", "--perflog-dir", str(tmp_path),
        ])
        assert rc == 1  # the run failed, visibly
        frame = read_perflogs(str(tmp_path))
        assert frame["result"][0].startswith("fail:")
        assert np.isnan(frame["perf_value"][0])


class TestDeterministicCampaigns:
    def test_identical_perflogs_modulo_timestamp(self, tmp_path):
        dirs = [tmp_path / "run1", tmp_path / "run2"]
        for d in dirs:
            rc = bench_main([
                "-c", "babelstream", "-r", "--tag", "omp",
                "--system", "noctua2", "--perflog-dir", str(d),
            ])
            assert rc == 0
        contents = []
        for d in dirs:
            frame = read_perflogs(str(d))
            contents.append(
                [(r["perf_var"], r["perf_value"]) for r in frame.to_records()]
            )
        assert contents[0] == contents[1]


class TestFullFrameworkCampaign:
    def test_campaign_with_provenance_and_audit(self, tmp_path):
        fw = BenchmarkingFramework(perflog_prefix=str(tmp_path / "pl"))
        result = fw.run_campaign(
            "hpcg", ["archer2"], name_patterns=["HPCG_Original"]
        )
        assert result.reports["archer2"].success
        audit = fw.audit(result)
        assert all(a.compliant for a in audit)
        paths = fw.write_provenance(result, str(tmp_path / "prov"))
        assert os.path.exists(paths[0])
        # the perflog was written alongside
        assert read_perflogs(str(tmp_path / "pl"))["test"][0] == "HPCG_Original"
