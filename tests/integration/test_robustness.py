"""Robustness and failure-injection tests across module boundaries."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.pkgmgr.spec import SpecParseError, parse_spec
from repro.postprocess.cli import main as plot_main
from repro.runner.cli import main as bench_main
from repro.scheduler import Job, JobState, SlurmScheduler


class TestSpecFuzzing:
    """The parser must reject garbage with SpecParseError, never crash."""

    junk = st.text(
        alphabet="abc123@%+~^=.,:- \t", min_size=0, max_size=40
    )

    @given(junk)
    @settings(max_examples=200, deadline=None)
    def test_parse_never_raises_unexpected(self, text):
        try:
            spec = parse_spec(text)
        except (SpecParseError, Exception) as exc:
            # only the declared error family may escape
            assert isinstance(exc, (SpecParseError, ValueError)), type(exc)
            return
        # whatever parsed must re-parse to itself
        assert parse_spec(spec.format()) == spec


class TestSchedulerBackfill:
    def test_small_job_backfills_around_blocked_head(self):
        """A 1-node job may start while a 4-node job waits for space."""
        sched = SlurmScheduler(num_nodes=4, cores_per_node=8)

        def payload(seconds):
            return lambda ctx: ("ok", seconds)

        # occupy 2 nodes for a long time
        blocker = sched.submit(Job("blocker", payload(1000.0), num_tasks=16,
                                   num_tasks_per_node=8))
        # head of queue needs 4 nodes: cannot start yet
        big = sched.submit(Job("big", payload(100.0), num_tasks=32,
                               num_tasks_per_node=8))
        # a 1-node job can use one of the two remaining nodes meanwhile
        small = sched.submit(Job("small", payload(10.0), num_tasks=8,
                                 num_tasks_per_node=8))
        sched.wait_all()
        r_small = sched.result(small)
        r_big = sched.result(big)
        assert r_small.start_time < r_big.start_time
        assert all(
            sched.result(j).state is JobState.COMPLETED
            for j in (blocker, big, small)
        )

    def test_backfill_never_starves_the_head(self):
        """Conservative backfill: an equal-size later job must not jump
        the blocked head."""
        sched = SlurmScheduler(num_nodes=2, cores_per_node=8)

        def payload(seconds):
            return lambda ctx: ("ok", seconds)

        sched.submit(Job("run", payload(100.0), num_tasks=16,
                         num_tasks_per_node=8))
        head = sched.submit(Job("head", payload(10.0), num_tasks=16,
                                num_tasks_per_node=8))
        rival = sched.submit(Job("rival", payload(10.0), num_tasks=16,
                                 num_tasks_per_node=8))
        sched.wait_all()
        assert sched.result(head).start_time <= sched.result(rival).start_time


class TestMalformedInputs:
    def test_cli_rejects_bad_setvar(self, capsys):
        rc = bench_main([
            "-c", "hpgmg", "-r", "--system", "archer2",
            "--setvar", "num_tasks",  # missing '='
        ])
        assert rc == 1
        assert "VAR=VALUE" in capsys.readouterr().err

    def test_cli_rejects_bad_setvar_type(self, capsys):
        rc = bench_main([
            "-c", "hpgmg", "-r", "--system", "archer2",
            "--setvar", "num_tasks=lots",
        ])
        assert rc == 1

    def test_plot_cli_bad_config(self, tmp_path, capsys):
        log = tmp_path / "x"
        log.mkdir()
        cfg = tmp_path / "bad.yaml"
        cfg.write_text("filters: [")
        # create one valid perflog first
        assert bench_main([
            "-c", "osu", "-r", "--system", "csd3",
            "--perflog-dir", str(log),
        ]) == 0
        assert plot_main([str(log), "--config", str(cfg)]) == 1

    def test_timeseries_unknown_fom(self, tmp_path, capsys):
        log = tmp_path / "pl"
        assert bench_main([
            "-c", "osu", "-r", "--system", "csd3",
            "--perflog-dir", str(log),
        ]) == 0
        assert plot_main([str(log), "--timeseries", "nonexistent"]) == 1

    def test_timeseries_renders(self, tmp_path, capsys):
        log = tmp_path / "pl"
        for _ in range(3):
            assert bench_main([
                "-c", "osu", "-r", "--system", "csd3",
                "--perflog-dir", str(log),
            ]) == 0
        svg = tmp_path / "ts.svg"
        rc = plot_main([str(log), "--timeseries", "min_latency",
                        "--svg", str(svg)])
        assert rc == 0
        assert svg.exists()
        assert "OsuLatency" in capsys.readouterr().out


class TestNumericalEdgeCases:
    def test_hpcg_tiny_grid(self):
        from repro.apps.hpcg.cg import conjugate_gradient
        from repro.apps.hpcg.problem import Problem, make_operator

        p = Problem(2, 2, 2)
        op = make_operator("matrix-free", p)
        r = conjugate_gradient(op, p.ones_rhs(), max_iterations=50)
        assert r.converged

    def test_hpcg_anisotropic_grid(self):
        from repro.apps.hpcg.cg import conjugate_gradient
        from repro.apps.hpcg.problem import Problem, make_operator

        p = Problem(16, 4, 8)
        for kind in ("csr", "matrix-free", "lfric"):
            op = make_operator(kind, p)
            r = conjugate_gradient(op, p.rhs(), max_iterations=300,
                                   tolerance=1e-8)
            assert r.converged, kind

    def test_zero_rhs_converges_immediately(self):
        from repro.apps.hpcg.cg import conjugate_gradient
        from repro.apps.hpcg.problem import Problem, make_operator

        p = Problem(8, 8, 8)
        op = make_operator("csr", p)
        r = conjugate_gradient(op, np.zeros(p.n))
        assert r.converged
        assert np.all(r.x == 0)

    def test_babelstream_single_element(self):
        from repro.apps.babelstream.kernels import StreamArrays, StreamKernels

        k = StreamKernels(StreamArrays.initialise(1))
        k.run_all(3)
        k.verify(3)
