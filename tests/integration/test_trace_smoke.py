"""Trace smoke test (tier-1): observability under a chaos campaign.

The observability tentpole's acceptance run: a seeded fault-injection
campaign recorded with ``--trace`` must produce a trace file that
parses, whose spans nest correctly, and whose embedded metrics totals
agree with the counts an auditor would derive from the campaign
journal.  And because every timestamp is simulated, the trace bytes
are identical whether the campaign ran serially or on four worker
threads -- the timeline is part of the reproducible artifact.
"""

import json
import os

import pytest

from repro.faults import FaultPlan
from repro.obs.trace import load_trace, validate_nesting
from repro.runner import sanity as sn
from repro.runner.benchmark import RegressionTest
from repro.runner.executor import Executor
from repro.runner.fields import parameter
from repro.runner.resilience import CampaignJournal, RetryPolicy

pytestmark = pytest.mark.chaos

CHAOS_SPEC = "build:0.3,submit:0.3,timeout:0.3,hook:0.3"
RETRY = RetryPolicy(max_attempts=6, jitter=0.0)


class TraceBench(RegressionTest):
    """Six deterministic cases, enough to make a fault storm interesting."""

    size = parameter([1, 2, 3, 4, 5, 6])

    def program(self, ctx):
        return f"bw {self.size}: {self.size * 100.0}\n", 1.0

    def check_sanity(self, stdout):
        sn.assert_found(r"bw", stdout)

    def extract_performance(self, stdout):
        v = sn.extractsingle(r": ([\d.]+)", stdout, 1, float)
        return {"bandwidth": (v, "MB/s")}


def campaign(tmp_path, tag, seed=None, policy="serial", workers=1,
             **run_kwargs):
    ex = Executor()
    cases = ex.expand_cases([TraceBench], "archer2")
    faults = FaultPlan.parse(CHAOS_SPEC, seed=seed) if seed is not None \
        else None
    trace = str(tmp_path / f"trace-{tag}.jsonl")
    report = ex.run_cases(cases, policy=policy, workers=workers,
                          retry=RETRY, faults=faults, trace=trace,
                          metrics=True, **run_kwargs)
    return report, trace


class TestChaosTraceSmoke:
    def test_trace_parses_nests_and_matches_journal(self, tmp_path):
        journal_path = str(tmp_path / "journal.jsonl")
        report, trace = campaign(tmp_path, "chaos", seed=42,
                                 journal=journal_path)
        assert report.success and report.faults_injected > 0

        meta, spans, metrics = load_trace(trace)
        assert meta["format"] == "repro-trace" and meta["version"] == 1
        assert validate_nesting(spans) == []
        assert metrics == report.metrics  # trace embeds the same snapshot

        # the metrics totals agree with journal-derived counts
        journal = CampaignJournal(journal_path)
        records = journal.load().values()
        counters = metrics["counters"]
        assert counters["cases.total"] == len(records) == 6
        assert counters["cases.passed"] == sum(
            1 for r in records if r["status"] == "passed")
        assert counters["cases.failed"] == sum(
            1 for r in records if r["status"] == "failed")
        # ... and with the retry accounting
        assert counters["retry.attempts_extra"] == sum(
            r["attempts"] - 1 for r in records)
        assert counters["faults.injected"] == report.faults_injected

    def test_every_case_has_a_track_with_staged_attempts(self, tmp_path):
        report, trace = campaign(tmp_path, "clean")
        _, spans, _ = load_trace(trace)
        tracks = {s["track"] for s in spans}
        for result in report.results:
            assert result.case.display_name in tracks
        assert "campaign" in tracks
        # each clean case shows the canonical stage ladder under one attempt
        case_spans = [s for s in spans
                      if s["track"] == report.results[0].case.display_name]
        names = [s["name"] for s in case_spans]
        assert names[0] == "attempt"
        for stage in ("build", "run", "sanity", "performance"):
            assert stage in names
        # campaign track lays cases end to end in consumption order
        bars = [s for s in spans
                if s["track"] == "campaign" and s["name"] != "wave"]
        assert [b["attrs"]["status"] for b in bars] == ["passed"] * 6
        for prev, cur in zip(bars, bars[1:]):
            assert cur["t0"] == pytest.approx(prev["t1"])

    def test_trace_bytes_identical_across_policies(self, tmp_path):
        _, serial = campaign(tmp_path, "ser", seed=42, policy="serial")
        _, threaded = campaign(tmp_path, "par", seed=42, policy="async",
                               workers=4)
        with open(serial, "rb") as a, open(threaded, "rb") as b:
            assert a.read() == b.read()

    def test_repro_trace_cli_reads_the_real_artifact(self, tmp_path, capsys):
        from repro.obs.cli import main

        _, trace = campaign(tmp_path, "cli", seed=42)
        assert main([trace]) == 0
        out = capsys.readouterr().out
        assert "repro-trace v1" in out and "== campaign" in out
        assert main([trace, "--validate"]) == 0
        chrome = str(tmp_path / "chrome.json")
        assert main([trace, "--chrome", chrome]) == 0
        doc = json.load(open(chrome))
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])

    def test_provenance_carries_metrics_and_trace_pointer(self, tmp_path):
        from repro.core.provenance import RunProvenance

        report, trace = campaign(tmp_path, "prov", seed=42)
        prov = RunProvenance(system="archer2")
        for result in report.results:
            prov.add_case(result)
        prov.attach_metrics(report.metrics,
                            trace_path=os.path.basename(trace))
        loaded = RunProvenance.from_json(prov.to_json())
        assert loaded.metrics["counters"]["cases.total"] == 6
        assert loaded.trace_file == os.path.basename(trace)
