"""Tests for performance-regression tracking over perflog history."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.regression import RegressionTracker
from repro.postprocess.dataframe import DataFrame
from repro.runner.cli import main as bench_main
from repro.postprocess.perflog_reader import read_perflogs

KEY = ("archer2", "compute", "SomeTest", "Triad")


def tracker(**kw):
    defaults = dict(threshold=0.05, min_history=3, zscore_gate=2.0)
    defaults.update(kw)
    return RegressionTracker(**defaults)


class TestAssessSeries:
    def test_stable_series_ok(self):
        finding = tracker().assess_series(KEY, [100, 101, 99, 100, 100.5])
        assert finding.status == "ok"

    def test_regression_detected(self):
        finding = tracker().assess_series(KEY, [100, 101, 99, 100, 80])
        assert finding.status == "regressed"
        assert finding.change_fraction < -0.05

    def test_improvement_detected(self):
        finding = tracker().assess_series(KEY, [100, 101, 99, 100, 130])
        assert finding.status == "improved"

    def test_insufficient_history(self):
        finding = tracker().assess_series(KEY, [100, 90])
        assert finding.status == "insufficient-history"

    def test_noise_gate_suppresses_jittery_series(self):
        """A 6% dip inside a +/-10% noise band is not a regression."""
        noisy = [100, 112, 91, 108, 94, 110, 90, 94]
        finding = tracker().assess_series(KEY, noisy)
        assert finding.status == "ok"

    def test_lower_is_better_direction(self):
        t = tracker(higher_is_better={"latency": False})
        key = KEY[:3] + ("latency",)
        worse = t.assess_series(key, [10, 10, 10, 10, 12])
        assert worse.status == "regressed"
        better = t.assess_series(key, [10, 10, 10, 10, 8])
        assert better.status == "improved"

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            RegressionTracker(threshold=0.0)

    @given(st.lists(st.floats(min_value=50, max_value=51), min_size=5,
                    max_size=30))
    @settings(max_examples=25, deadline=None)
    def test_near_constant_series_never_regresses(self, values):
        finding = tracker().assess_series(KEY, values)
        assert finding.status in ("ok", "insufficient-history")


class TestFromFrames:
    def frame(self, values, result="pass"):
        n = len(values)
        return DataFrame(
            {
                "system": ["archer2"] * n,
                "partition": ["compute"] * n,
                "test": ["T"] * n,
                "perf_var": ["Triad"] * n,
                "perf_value": values,
                "result": [result] * n,
            }
        )

    def test_check_builds_report(self):
        report = tracker().check(self.frame([100, 100, 100, 100, 70]))
        assert len(report.findings) == 1
        assert not report.ok
        assert report.exit_code() == 1
        assert "regressed" in report.render()

    def test_failed_runs_excluded_from_series(self):
        good = self.frame([100, 100, 100, 100])
        bad = self.frame([1.0], result="fail:sanity")
        both = DataFrame.concat([good, bad])
        report = tracker().check(both)
        assert report.findings[0].history_length == 4
        assert report.ok

    def test_multiple_series_keyed_separately(self):
        a = self.frame([100, 100, 100, 100])
        b = self.frame([5, 5, 5, 5])
        b = b.with_column("perf_var", lambda r: "Copy")
        report = tracker().check(DataFrame.concat([a, b]))
        assert len(report.findings) == 2


class TestCiPipeline:
    def test_repeated_campaigns_are_regression_free(self, tmp_path):
        """The paper's CI vision: run the suite on a cadence; identical
        code on an identical system must gate green."""
        for _ in range(4):
            rc = bench_main([
                "-c", "hpgmg", "-r", "--system", "cosma8",
                "--perflog-dir", str(tmp_path),
            ])
            assert rc == 0
        report = tracker().check_perflogs(str(tmp_path))
        assert report.findings  # l0, l1, l2 series
        assert report.ok, report.render()

    def test_injected_regression_gates_red(self, tmp_path):
        for _ in range(4):
            assert bench_main([
                "-c", "hpgmg", "-r", "--system", "cosma8",
                "--perflog-dir", str(tmp_path),
            ]) == 0
        # simulate a system-software regression by appending a bad run
        frame = read_perflogs(str(tmp_path))
        logpath = frame["perflog_path"][0]
        last = open(logpath).read().strip().splitlines()[-1]
        parts = last.split("|")
        parts[9] = str(float(parts[9]) * 0.5)  # halve the FOM
        with open(logpath, "a") as fh:
            fh.write("|".join(parts) + "\n")
        report = tracker().check_perflogs(str(tmp_path))
        assert not report.ok
        assert any(f.change_fraction < -0.4 for f in report.regressions)
