"""Tests for the Principles auditor, workflow, provenance, and framework."""

import json
import os

import pytest

from repro.core.framework import BenchmarkingFramework
from repro.core.principles import PRINCIPLES, ComplianceAuditor
from repro.core.provenance import RunProvenance
from repro.core.workflow import BenchmarkingWorkflow
from repro.runner.cli import load_suite
from repro.runner.executor import Executor


@pytest.fixture(scope="module")
def omp_result():
    """One real campaign reused across the module (runs take a second)."""
    fw = BenchmarkingFramework()
    return fw, fw.run_campaign("babelstream", ["archer2", "csd3"],
                               tags=["omp"])


class TestPrinciples:
    def test_all_six_stated(self):
        assert sorted(PRINCIPLES) == [1, 2, 3, 4, 5, 6]
        for p in PRINCIPLES.values():
            assert p.statement and p.title

    def test_framework_run_audits_clean(self, omp_result):
        fw, result = omp_result
        reports = fw.audit(result)
        assert reports, "no passing cases to audit"
        for report in reports:
            assert report.compliant, report.violations()

    def test_audit_detects_missing_foms(self, omp_result):
        fw, result = omp_result
        case = result.all_results[0]
        stolen, case.perfvars = case.perfvars, {}
        try:
            report = ComplianceAuditor().audit(case)
            assert not report.compliant
            assert any("P1" in v for v in report.violations())
        finally:
            case.perfvars = stolen

    def test_audit_detects_tampered_foms(self, omp_result):
        """P6: stored FOMs must re-extract from the stored output."""
        fw, result = omp_result
        case = result.all_results[0]
        stolen = dict(case.perfvars)
        case.perfvars = {k: (v * 2, u) for k, (v, u) in stolen.items()}
        try:
            report = ComplianceAuditor().audit(case)
            assert any("P6" in v for v in report.violations())
        finally:
            case.perfvars = stolen

    def test_audit_detects_cached_binary(self):
        """P3: skipping the rebuild is flagged."""
        classes = load_suite("babelstream")
        ex = Executor()
        first = ex.run(classes, "csd3", tags=["omp"])
        # second run with rebuild disabled -> root comes from cache
        cases = ex.expand_cases(classes, "csd3", tags=["omp"],
                                setvars={"rebuild": "false"})
        second = ex.run_cases(cases)
        report = ComplianceAuditor().audit(second.results[0])
        assert any("P3" in v for v in report.violations())

    def test_render_mentions_every_principle(self, omp_result):
        fw, result = omp_result
        text = ComplianceAuditor().audit(result.all_results[0]).render()
        for num in range(1, 7):
            assert f"P{num}" in text


class TestWorkflow:
    def test_frame_has_rows_per_fom(self, omp_result):
        _, result = omp_result
        frame = result.frame
        assert set(frame.unique("platform")) == {"archer2", "csd3"}
        assert len(frame.filter_eq("perf_var", "Triad")) == 2

    def test_fom_lookup(self, omp_result):
        _, result = omp_result
        value = result.fom("archer2", "BabelStreamBenchmark_omp", "Triad")
        assert value > 100
        with pytest.raises(KeyError):
            result.fom("archer2", "BabelStreamBenchmark_omp", "Quad")

    def test_efficiencies_and_portability(self, omp_result):
        _, result = omp_result
        effs = result.efficiencies("Triad")["BabelStreamBenchmark_omp"]
        assert set(effs) == {"archer2", "csd3"}
        assert all(0.5 < e < 1.0 for e in effs.values())
        pp = result.portability("Triad")["BabelStreamBenchmark_omp"]
        assert min(effs.values()) <= pp <= max(effs.values())

    def test_failed_case_appears_with_none(self):
        workflow = BenchmarkingWorkflow(
            load_suite("babelstream"), ["isambard"], tags=["cuda"]
        )
        result = workflow.run()
        effs = result.efficiencies("Triad")
        assert effs["BabelStreamBenchmark_cuda"]["isambard"] is None
        assert result.portability("Triad")["BabelStreamBenchmark_cuda"] == 0.0


class TestProvenance:
    def test_json_roundtrip(self, omp_result):
        fw, result = omp_result
        prov = fw.provenance(result)["archer2"]
        text = prov.to_json()
        doc = json.loads(text)
        assert doc["system"] == "archer2"
        back = RunProvenance.from_json(text)
        assert back.spec_hashes() == prov.spec_hashes()

    def test_provenance_carries_reproduction_material(self, omp_result):
        fw, result = omp_result
        entry = fw.provenance(result)["archer2"].entries[0]
        assert entry["spec"].startswith("babelstream")
        assert entry["job_script"].startswith("#!/bin/bash")
        assert "srun" in entry["run_command"]
        assert entry["perfvars"]["Triad"]["unit"] == "GB/s"

    def test_write_provenance(self, omp_result, tmp_path):
        fw, result = omp_result
        paths = fw.write_provenance(result, str(tmp_path))
        assert len(paths) == 2
        assert all(os.path.exists(p) for p in paths)


class TestFrameworkFacade:
    def test_suite_and_system_discovery(self):
        fw = BenchmarkingFramework()
        assert "babelstream" in fw.available_suites()
        assert "archer2" in fw.available_systems()

    def test_campaign_determinism(self):
        """The reproducibility thesis, end to end: identical campaigns
        produce identical FOMs."""
        fw = BenchmarkingFramework()
        a = fw.run_campaign("babelstream", ["csd3"], tags=["omp"])
        b = fw.run_campaign("babelstream", ["csd3"], tags=["omp"])
        va = a.fom("csd3", "BabelStreamBenchmark_omp", "Triad")
        vb = b.fom("csd3", "BabelStreamBenchmark_omp", "Triad")
        assert va == vb
