"""Concretizer tests: pinning, virtuals, externals, conflicts, idempotence."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.pkgmgr.concretizer import ConcretizationError, Concretizer, concretize
from repro.pkgmgr.compilers import Compiler, CompilerRegistry
from repro.pkgmgr.environment import Environment, ExternalPackage
from repro.pkgmgr.spec import Spec
from repro.pkgmgr.version import Version
from repro.systems.registry import system_environment


@pytest.fixture
def generic_env():
    return Environment.basic("testsys")


class TestBasics:
    def test_concrete_output_is_concrete(self, generic_env):
        s = concretize("babelstream", env=generic_env)
        assert s.concrete
        assert s.version == Version("4.0")  # preferred, not newest

    def test_anonymous_spec_rejected(self, generic_env):
        with pytest.raises(ConcretizationError):
            concretize("%gcc", env=generic_env)

    def test_unknown_package_rejected(self, generic_env):
        with pytest.raises(ConcretizationError, match="unknown package"):
            concretize("no-such-package", env=generic_env)

    def test_version_constraint_respected(self, generic_env):
        s = concretize("babelstream@5.0", env=generic_env)
        assert s.version == Version("5.0")

    def test_unsatisfiable_version_raises(self, generic_env):
        with pytest.raises(ConcretizationError, match="no declared version"):
            concretize("babelstream@99.0", env=generic_env)

    def test_default_variants_applied(self, generic_env):
        s = concretize("hpgmg", env=generic_env)
        assert s.variants["fv"] is True
        assert s.variants["fe"] is False

    def test_unknown_variant_rejected(self, generic_env):
        with pytest.raises(ConcretizationError, match="no variant"):
            concretize("hpgmg +turbo", env=generic_env)

    def test_arch_facts_injected(self, generic_env):
        s = concretize("babelstream", env=generic_env)
        assert s.variants["target"] == "x86_64"
        assert s.variants["device"] == "cpu"

    def test_compiler_defaults_to_system_default(self, generic_env):
        s = concretize("babelstream", env=generic_env)
        assert s.compiler.name == "gcc"

    def test_compiler_propagates_to_deps(self, generic_env):
        s = concretize("hpgmg%gcc", env=generic_env)
        for node in s.traverse():
            assert node.compiler.name == "gcc"

    def test_missing_compiler_raises(self, generic_env):
        with pytest.raises(Exception, match="no compiler"):
            concretize("babelstream%cce", env=generic_env)

    def test_recorded_in_lockfile(self, generic_env):
        s = concretize("babelstream", env=generic_env)
        assert s.dag_hash() in generic_env.lockfile


class TestDependencies:
    def test_build_dep_attached(self, generic_env):
        s = concretize("babelstream", env=generic_env)
        assert "cmake" in s

    def test_conditional_dep_included_when_variant_on(self, generic_env):
        s = concretize("babelstream +kokkos", env=generic_env)
        assert "kokkos" in s

    def test_conditional_dep_excluded_when_off(self, generic_env):
        s = concretize("babelstream", env=generic_env)
        assert "kokkos" not in s

    def test_transitive_deps(self, generic_env):
        # kokkos backend=cuda pulls cuda transitively (on a gpu env)
        env = Environment.basic("gpusys")
        env.arch = {"target": "volta", "device": "gpu", "vendor": "nvidia"}
        s = concretize("babelstream +kokkos ^kokkos backend=cuda", env=env)
        assert "cuda" in s

    def test_explicit_dep_version_honoured(self, generic_env):
        s = concretize("babelstream ^cmake@3.20.2", env=generic_env)
        assert s["cmake"].version == Version("3.20.2")

    def test_dep_version_range_from_recipe(self, generic_env):
        s = concretize("babelstream", env=generic_env)
        assert s["cmake"].version >= Version("3.13")


class TestVirtuals:
    def test_mpi_resolved_to_provider(self, generic_env):
        s = concretize("hpgmg", env=generic_env)
        providers = {"openmpi", "mvapich2", "cray-mpich", "intel-oneapi-mpi", "mpich"}
        assert providers & {n.name for n in s.traverse()}

    def test_environment_preference_wins(self):
        env = Environment.basic("prefsys")
        env.preferences["mpi"] = "mvapich2@2.3.6"
        s = concretize("hpgmg", env=env)
        assert "mvapich2" in s
        assert s["mvapich2"].version == Version("2.3.6")

    def test_explicit_provider_overrides_preference(self):
        env = Environment.basic("prefsys")
        env.preferences["mpi"] = "mvapich2"
        s = concretize("hpgmg ^openmpi", env=env)
        assert "openmpi" in s
        assert "mvapich2" not in s

    def test_bad_preference_raises(self):
        env = Environment.basic("badpref")
        env.preferences["mpi"] = "cmake"  # cmake does not provide mpi
        with pytest.raises(ConcretizationError, match="does not provide"):
            concretize("hpgmg", env=env)


class TestExternals:
    def test_external_version_pinned(self):
        env = Environment.basic("extsys")
        env.add_external(ExternalPackage("cmake@3.20.2"))
        s = concretize("babelstream", env=env)
        assert s["cmake"].version == Version("3.20.2")
        assert s["cmake"].external

    def test_external_provider_preferred_over_build(self):
        env = Environment.basic("extsys")
        env.add_external(ExternalPackage("mvapich2@2.3.6"))
        s = concretize("hpgmg", env=env)
        assert "mvapich2" in s


class TestConflicts:
    def test_tbb_conflict_on_aarch64(self):
        env = system_environment("isambard")
        with pytest.raises(ConcretizationError, match="conflict"):
            concretize("babelstream +tbb", env=env)

    def test_cuda_conflict_on_cpu(self):
        env = system_environment("csd3")
        with pytest.raises(ConcretizationError, match="conflict"):
            concretize("babelstream +cuda", env=env)

    def test_cuda_allowed_on_volta(self):
        env = system_environment("isambard-macs:volta")
        s = concretize("babelstream +cuda %gcc@9.2.0", env=env)
        assert s.variants["cuda"] is True

    def test_mkl_hpcg_rejected_on_amd(self):
        env = system_environment("archer2")
        with pytest.raises(ConcretizationError, match="conflict"):
            concretize("hpcg implementation=intel-avx2", env=env)

    def test_mkl_hpcg_allowed_on_intel(self):
        env = system_environment("csd3")
        s = concretize("hpcg implementation=intel-avx2", env=env)
        assert "intel-oneapi-mkl" in s

    def test_std_ranges_needs_modern_gcc(self):
        env = system_environment("isambard-macs")
        with pytest.raises(ConcretizationError, match="conflict"):
            concretize("babelstream +std-ranges %gcc@9.2.0", env=env)
        ok = concretize("babelstream +std-ranges %gcc@12.1.0", env=env)
        assert ok.compiler.version == Version("12.1.0")


class TestTable3:
    """The paper's Table 3: concretized hpgmg%gcc build deps per system."""

    EXPECTED = {
        "archer2": ("11.2.0", "3.10.12", "cray-mpich", "8.1.23"),
        "cosma8": ("11.1.0", "2.7.15", "mvapich2", "2.3.6"),
        "csd3": ("11.2.0", "3.8.2", "openmpi", "4.0.4"),
        "isambard-macs": ("9.2.0", "3.7.5", "openmpi", "4.0.3"),
    }

    @pytest.mark.parametrize("system", sorted(EXPECTED))
    def test_row(self, system):
        gcc, python, mpi_name, mpi_ver = self.EXPECTED[system]
        env = system_environment(system)
        s = concretize("hpgmg%gcc", env=env)
        assert str(s.compiler.version) == gcc
        assert str(s["python"].version) == python
        assert mpi_name in s
        assert str(s[mpi_name].version) == mpi_ver


class TestDeterminismAndIdempotence:
    def test_same_input_same_hash(self):
        a = concretize("hpgmg%gcc", env=system_environment("archer2"))
        b = concretize("hpgmg%gcc", env=system_environment("archer2"))
        assert a.dag_hash() == b.dag_hash()

    def test_concretizing_concrete_is_identity(self, generic_env):
        once = concretize("babelstream +omp", env=generic_env)
        twice = concretize(once, env=generic_env)
        assert once == twice

    def test_build_order_deps_first(self, generic_env):
        conc = Concretizer(env=generic_env)
        s = conc.concretize("hpgmg")
        order = [n.name for n in conc.build_order(s)]
        assert order.index("hpgmg") == len(order) - 1
        assert order.index("python") < order.index("hpgmg")

    variant_sets = st.lists(
        st.sampled_from(["+omp", "~omp", "+kokkos", "+std-data"]),
        max_size=2,
        unique=True,
    )

    @given(variant_sets)
    @settings(max_examples=20, deadline=None)
    def test_concretization_satisfies_input(self, variants):
        text = "babelstream " + " ".join(variants)
        try:
            abstract = Spec(text)
        except Exception:
            return  # contradictory variant text, parser rejects
        env = Environment.basic("propsys")
        try:
            s = concretize(abstract, env=env)
        except ConcretizationError:
            return
        assert s.satisfies(abstract)
        assert s.concrete
