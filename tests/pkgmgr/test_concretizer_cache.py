"""The concretization memo cache: accounting, invalidation, Principles.

The cache (:mod:`repro.pkgmgr.memo`) may reuse a *solve* but must never
compromise the paper's principles: the root binary is still rebuilt every
run (Principle 3), every concretization still lands in the environment
lockfile (Principle 4), and a changed system configuration can never be
served a stale solution (the content-addressed key differs).
"""

import pytest

from repro.core.principles import ComplianceAuditor
from repro.core.provenance import RunProvenance
from repro.pkgmgr.concretizer import Concretizer
from repro.pkgmgr.environment import Environment, ExternalPackage
from repro.pkgmgr.memo import CacheStats, ConcretizationCache
from repro.pkgmgr.spec import Spec
from repro.runner import sanity as sn
from repro.runner.benchmark import SpackTest
from repro.runner.executor import Executor
from repro.systems.registry import system_environment


@pytest.fixture
def cache():
    return ConcretizationCache()


def solve(spec, env, cache):
    conc = Concretizer(env=env, cache=cache)
    result = conc.concretize(spec)
    return result, conc.last_cache_hit


class TestAccounting:
    def test_miss_then_hit(self, cache):
        env = Environment.basic("sys")
        first, hit1 = solve("babelstream", env, cache)
        second, hit2 = solve("babelstream", env, cache)
        assert (hit1, hit2) == (False, True)
        assert cache.stats.hits == 1 and cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5
        assert first.dag_hash() == second.dag_hash()

    def test_different_spec_is_a_miss(self, cache):
        env = Environment.basic("sys")
        solve("babelstream", env, cache)
        _, hit = solve("babelstream@5.0", env, cache)
        assert hit is False
        assert len(cache) == 2

    def test_no_cache_attached_reports_none(self):
        conc = Concretizer(env=Environment.basic("sys"))
        conc.concretize("babelstream")
        assert conc.last_cache_hit is None

    def test_lru_eviction_accounted(self):
        small = ConcretizationCache(max_entries=2)
        env = Environment.basic("sys")
        for spec in ("babelstream", "stream", "hpcg"):
            solve(spec, env, small)
        assert len(small) == 2
        assert small.stats.evictions == 1
        # the oldest entry (babelstream) was evicted -> miss again
        _, hit = solve("babelstream", env, small)
        assert hit is False

    def test_stats_as_dict(self):
        stats = CacheStats()
        stats.hits, stats.misses = 4, 1
        assert stats.as_dict() == {
            "hits": 4, "misses": 1, "evictions": 0, "hit_rate": 0.8,
        }
        assert CacheStats().hit_rate == 0.0


class TestIsolation:
    def test_hits_return_defensive_copies(self, cache):
        env = Environment.basic("sys")
        a, _ = solve("babelstream", env, cache)
        b, _ = solve("babelstream", env, cache)
        assert a is not b
        # mutating one returned DAG must not poison the memo table
        b.name = "mutated"
        c, hit = solve("babelstream", env, cache)
        assert hit is True
        assert c.name == "babelstream"

    def test_store_copies_its_input(self, cache):
        env = Environment.basic("sys")
        a, _ = solve("babelstream", env, cache)
        a.name = "mutated-after-store"
        b, hit = solve("babelstream", env, cache)
        assert hit is True and b.name == "babelstream"

    def test_lockfile_still_records_cached_solves(self, cache):
        """Principle 4: every concretization lands in the lockfile."""
        env = Environment.basic("sys")
        solve("babelstream", env, cache)
        fresh = Environment.basic("sys")
        spec, hit = solve("babelstream", fresh, cache)
        assert hit is True
        assert spec.dag_hash() in fresh.lockfile


class TestInvalidation:
    def test_equivalent_environments_share_solutions(self, cache):
        """Fresh per-case Environment objects fingerprint identically."""
        a = system_environment("archer2")
        b = system_environment("archer2")
        assert a is not b
        assert a.config_fingerprint() == b.config_fingerprint()
        solve("babelstream%gcc", a, cache)
        _, hit = solve("babelstream%gcc", b, cache)
        assert hit is True

    def test_new_external_invalidates(self, cache):
        env = Environment.basic("sys")
        solve("hpcg", env, cache)
        changed = Environment.basic("sys")
        changed.add_external(ExternalPackage("openmpi@4.1.2"))
        assert (changed.config_fingerprint()
                != Environment.basic("sys").config_fingerprint())
        _, hit = solve("hpcg", changed, cache)
        assert hit is False

    def test_changed_preference_invalidates(self, cache):
        env = Environment.basic("sys")
        solve("hpcg", env, cache)
        changed = Environment.basic("sys")
        changed.preferences["mpi"] = "openmpi"
        _, hit = solve("hpcg", changed, cache)
        assert hit is False

    def test_changed_arch_invalidates(self, cache):
        env = Environment.basic("sys")
        solve("babelstream", env, cache)
        changed = Environment.basic("sys")
        changed.arch["target"] = "aarch64"
        _, hit = solve("babelstream", changed, cache)
        assert hit is False

    def test_name_and_lockfile_do_not_invalidate(self, cache):
        a = Environment.basic("one")
        b = Environment.basic("two")
        solve("babelstream", a, cache)  # populates a's lockfile too
        assert a.config_fingerprint() == b.config_fingerprint()
        _, hit = solve("babelstream", b, cache)
        assert hit is True


class TestNegativeCaching:
    """Unsatisfiable solves are memoized too: one miss per unique
    spec x system, impossible combinations included."""

    def test_conflict_is_memoized(self, cache):
        from repro.pkgmgr.concretizer import ConcretizationError

        env = Environment.basic("sys")  # CPU-only architecture
        conc1 = Concretizer(env=env, cache=cache)
        with pytest.raises(ConcretizationError) as first:
            conc1.concretize("babelstream +cuda")
        assert conc1.last_cache_hit is False

        conc2 = Concretizer(env=Environment.basic("sys"), cache=cache)
        with pytest.raises(ConcretizationError) as second:
            conc2.concretize("babelstream +cuda")
        assert conc2.last_cache_hit is True
        # the re-raised error is the recorded one, verbatim
        assert str(second.value) == str(first.value)
        assert cache.stats.misses == 1 and cache.stats.hits == 1

    def test_failure_does_not_pollute_lockfile(self, cache):
        from repro.pkgmgr.concretizer import ConcretizationError

        env = Environment.basic("sys")
        solve("babelstream +cuda".replace(" +cuda", ""), env, cache)
        before = dict(env.lockfile)
        with pytest.raises(ConcretizationError):
            Concretizer(env=env, cache=cache).concretize("babelstream +cuda")
        with pytest.raises(ConcretizationError):
            Concretizer(env=env, cache=cache).concretize("babelstream +cuda")
        assert env.lockfile == before


class CachedSpackEcho(SpackTest):
    """Minimal package-built benchmark for executor-level cache tests."""

    def __init__(self, **p):
        super().__init__(**p)
        self.spack_spec = "stream"

    def program(self, ctx):
        return "OUT: 42.5\n", 1.0

    def check_sanity(self, stdout):
        sn.assert_found(r"OUT:", stdout)

    def extract_performance(self, stdout):
        v = sn.extractsingle(r"([\d.]+)", stdout, 1, float)
        return {"value": (v, "units")}


class TestExecutorIntegration:
    def test_campaign_reuses_solves_but_rebuilds_roots(self):
        """Two runs of one campaign: solve cached, Principle 3 intact."""
        ex = Executor()
        first = ex.run([CachedSpackEcho], "csd3")
        second = ex.run([CachedSpackEcho], "csd3")
        assert first.success and second.success
        assert first.results[0].concretize_cache_hit is False
        assert second.results[0].concretize_cache_hit is True
        assert ex.concretizer_cache.stats.hits >= 1
        # the cached solve still passes the full Principles audit: the
        # installer rebuilt the root ("Successfully installed" in the
        # build log), so P3 holds
        for result in (first.results[0], second.results[0]):
            report = ComplianceAuditor().audit(result)
            ok, msg = report.findings[3]
            assert ok, msg

    def test_provenance_records_cache_hits(self):
        ex = Executor()
        prov = RunProvenance(system="csd3")
        for report in (ex.run([CachedSpackEcho], "csd3"),
                       ex.run([CachedSpackEcho], "csd3")):
            for r in report.results:
                prov.add_case(r)
        hits = [e["concretize_cache_hit"] for e in prov.entries]
        assert hits == [False, True]
        # round-trips through JSON
        again = RunProvenance.from_json(prov.to_json())
        assert [e["concretize_cache_hit"] for e in again.entries] == hits

    def test_non_spack_tests_record_no_cache_state(self):
        from repro.runner.benchmark import RegressionTest

        class Plain(RegressionTest):
            def program(self, ctx):
                return "ok\n", 1.0

        ex = Executor()
        report = ex.run([Plain], "csd3")
        assert report.success
        assert report.results[0].concretize_cache_hit is None

    def test_bad_max_entries_rejected(self):
        with pytest.raises(ValueError):
            ConcretizationCache(max_entries=0)
