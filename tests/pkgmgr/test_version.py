"""Unit and property tests for version ordering and range algebra."""

import pytest
from hypothesis import given, strategies as st

from repro.pkgmgr.version import (
    Version,
    VersionError,
    VersionList,
    VersionRange,
    ver,
)


# ---------------------------------------------------------------------------
# Version basics
# ---------------------------------------------------------------------------

class TestVersion:
    def test_parse_components(self):
        assert Version("11.2.0").components == (11, 2, 0)

    def test_parse_alpha_suffix(self):
        assert Version("2.3.7rc1").components == (2, 3, 7, "rc", 1)

    def test_equality(self):
        assert Version("1.2") == Version("1.2")
        assert Version("1.2") != Version("1.2.0")

    def test_ordering_numeric(self):
        assert Version("9.2.0") < Version("10.3.0")
        assert Version("1.9") < Version("1.10")

    def test_prefix_sorts_before_longer(self):
        assert Version("1.2") < Version("1.2.0")

    def test_alpha_sorts_after_numeric_component(self):
        assert Version("1.2") < Version("1.2a")

    def test_str_roundtrip(self):
        assert str(Version("2023.1.0")) == "2023.1.0"

    def test_hashable(self):
        assert len({Version("1.0"), Version("1.0"), Version("2.0")}) == 2

    def test_from_version(self):
        assert Version(Version("3.1")) == Version("3.1")

    def test_from_int(self):
        assert Version(3) == Version("3")

    def test_empty_raises(self):
        with pytest.raises(VersionError):
            Version("")

    def test_illegal_chars_raise(self):
        with pytest.raises(VersionError):
            Version("1.2:3")

    def test_is_prefix_of(self):
        assert Version("11").is_prefix_of(Version("11.2.0"))
        assert not Version("11.2").is_prefix_of(Version("11.3.0"))
        assert Version("11.2.0").is_prefix_of(Version("11.2.0"))

    def test_prefix_constraint_satisfaction(self):
        assert Version("11.2.0").satisfies(Version("11"))
        assert not Version("12.1.0").satisfies(Version("11"))

    def test_up_to(self):
        assert Version("11.2.0").up_to(2) == Version("11.2")
        with pytest.raises(VersionError):
            Version("11.2.0").up_to(0)


# ---------------------------------------------------------------------------
# VersionRange
# ---------------------------------------------------------------------------

class TestVersionRange:
    def test_closed_range_includes(self):
        r = VersionRange(Version("1.2"), Version("1.6"))
        assert r.includes(Version("1.4"))
        assert r.includes(Version("1.2"))
        assert r.includes(Version("1.6"))
        assert not r.includes(Version("1.7"))
        assert not r.includes(Version("1.1"))

    def test_open_low(self):
        r = VersionRange(None, Version("3.13"))
        assert r.includes(Version("1.0"))
        assert r.includes(Version("3.13.4"))  # prefix-inclusive high end
        assert not r.includes(Version("3.14"))

    def test_open_high(self):
        r = VersionRange(Version("3.13"), None)
        assert r.includes(Version("3.26.3"))
        assert not r.includes(Version("3.12"))

    def test_backwards_raises(self):
        with pytest.raises(VersionError):
            VersionRange(Version("2.0"), Version("1.0"))

    def test_intersection_overlap(self):
        a = VersionRange(Version("1.0"), Version("2.0"))
        b = VersionRange(Version("1.5"), Version("3.0"))
        both = a.intersection(b)
        assert both == VersionRange(Version("1.5"), Version("2.0"))

    def test_intersection_disjoint_is_none(self):
        a = VersionRange(Version("1.0"), Version("2.0"))
        b = VersionRange(Version("3.0"), Version("4.0"))
        assert a.intersection(b) is None
        assert not a.overlaps(b)

    def test_str(self):
        assert str(VersionRange(Version("1.2"), None)) == "1.2:"
        assert str(VersionRange(None, Version("1.2"))) == ":1.2"


# ---------------------------------------------------------------------------
# VersionList
# ---------------------------------------------------------------------------

class TestVersionList:
    def test_empty_is_any(self):
        assert VersionList().is_any
        assert VersionList().includes(Version("42"))

    def test_parse_union(self):
        vl = VersionList.parse("1.2,1.4:1.6")
        assert vl.includes(Version("1.2"))
        assert vl.includes(Version("1.5"))
        assert not vl.includes(Version("1.3"))

    def test_intersect_narrows(self):
        a = VersionList.parse("1.0:2.0")
        b = VersionList.parse("1.5:3.0")
        both = a.intersect(b)
        assert both.includes(Version("1.7"))
        assert not both.includes(Version("1.2"))

    def test_intersect_disjoint_empty(self):
        a = VersionList.parse("1.0:1.4")
        b = VersionList.parse("2.0:")
        assert a.intersect(b).empty

    def test_intersect_any_identity(self):
        a = VersionList.parse("1.2:")
        assert a.intersect(VersionList()) == a
        assert VersionList().intersect(a) == a

    def test_point_intersection_becomes_version(self):
        a = VersionList.parse(":1.5")
        b = VersionList.parse("1.5:")
        both = a.intersect(b)
        assert both.includes(Version("1.5"))
        assert not both.includes(Version("1.4"))

    def test_highest_of(self):
        vl = VersionList.parse(":11")
        cands = [Version("9.2.0"), Version("11.2.0"), Version("12.1.0")]
        assert vl.highest_of(cands) == Version("11.2.0")

    def test_highest_of_none(self):
        vl = VersionList.parse("99:")
        assert vl.highest_of([Version("1.0")]) is None

    def test_str_any(self):
        assert str(VersionList()) == ":"


# ---------------------------------------------------------------------------
# ver() convenience
# ---------------------------------------------------------------------------

def test_ver_dispatch():
    assert isinstance(ver("1.2"), Version)
    assert isinstance(ver("1.2:"), VersionRange)
    assert isinstance(ver("1.2,1.4"), VersionList)


# ---------------------------------------------------------------------------
# property-based: total order and algebra laws
# ---------------------------------------------------------------------------

version_strings = st.lists(
    st.integers(min_value=0, max_value=40), min_size=1, max_size=4
).map(lambda parts: ".".join(map(str, parts)))


@given(version_strings, version_strings)
def test_ordering_is_total(a, b):
    va, vb = Version(a), Version(b)
    assert (va < vb) + (vb < va) + (va == vb) == 1


@given(version_strings, version_strings, version_strings)
def test_ordering_is_transitive(a, b, c):
    va, vb, vc = sorted([Version(a), Version(b), Version(c)])
    assert va <= vb <= vc
    assert va <= vc


@given(version_strings)
def test_version_satisfies_own_prefixes(s):
    v = Version(s)
    for i in range(1, len(v.components) + 1):
        assert v.satisfies(v.up_to(i))


@given(version_strings, version_strings, version_strings)
def test_range_intersection_soundness(a, b, c):
    """v in (A ∩ B)  <=>  v in A and v in B."""
    lo, hi = sorted([Version(a), Version(b)])
    r1 = VersionRange(lo, hi)
    r2 = VersionRange(lo, None)
    v = Version(c)
    both = r1.intersection(r2)
    in_both = both is not None and both.includes(v)
    assert in_both == (r1.includes(v) and r2.includes(v))


@given(version_strings, version_strings)
def test_versionlist_intersect_commutes(a, b):
    la = VersionList.parse(f"{a}:")
    lb = VersionList.parse(f":{b}")
    x = la.intersect(lb)
    y = lb.intersect(la)
    for probe in (a, b, "0", "999.999"):
        assert x.includes(Version(probe)) == y.includes(Version(probe))
