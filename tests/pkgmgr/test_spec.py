"""Tests for the spec grammar: parsing, satisfaction, constraining, hashing."""

import pytest
from hypothesis import given, strategies as st

from repro.pkgmgr.spec import CompilerSpec, Spec, SpecParseError, parse_spec
from repro.pkgmgr.version import Version


class TestParsing:
    def test_bare_name(self):
        s = Spec("babelstream")
        assert s.name == "babelstream"
        assert s.versions.is_any
        assert s.compiler is None

    def test_version(self):
        s = Spec("hpcg@3.1")
        assert s.version == Version("3.1")

    def test_version_range(self):
        s = Spec("cmake@3.13:")
        assert s.versions.includes(Version("3.26.3"))
        assert not s.versions.includes(Version("3.12"))

    def test_compiler(self):
        s = Spec("babelstream%gcc@9.2.0")
        assert s.compiler == CompilerSpec("gcc", None) or s.compiler.name == "gcc"
        assert s.compiler.version == Version("9.2.0")

    def test_compiler_unversioned(self):
        s = Spec("hpgmg%gcc")
        assert s.compiler.name == "gcc"
        assert s.compiler.versions.is_any

    def test_bool_variants(self):
        s = Spec("babelstream +omp~cuda")
        assert s.variants["omp"] is True
        assert s.variants["cuda"] is False

    def test_minus_variant(self):
        s = Spec("babelstream -cuda")
        assert s.variants["cuda"] is False

    def test_kv_variant(self):
        s = Spec("hpcg implementation=matrix-free")
        assert s.variants["implementation"] == "matrix-free"

    def test_multi_kv_variant(self):
        s = Spec("gcc languages=c,fortran")
        assert s.variants["languages"] == ("c", "fortran")

    def test_paper_spec_babelstream(self):
        """The exact spec from the paper's appendix A.1.1."""
        s = Spec("babelstream%gcc@9.2.0 +omp")
        assert s.name == "babelstream"
        assert s.compiler.name == "gcc"
        assert s.compiler.version == Version("9.2.0")
        assert s.variants["omp"] is True

    def test_dependency(self):
        s = Spec("hpgmg ^openmpi@4.0.4")
        assert "openmpi" in s.dependencies
        assert s.dependencies["openmpi"].version == Version("4.0.4")

    def test_dependency_with_compiler(self):
        s = Spec("hpgmg ^openmpi%gcc@11")
        assert s.dependencies["openmpi"].compiler.name == "gcc"

    def test_two_dependencies(self):
        s = Spec("hpgmg ^openmpi ^python@3.10")
        assert set(s.dependencies) == {"openmpi", "python"}

    def test_anonymous_spec(self):
        s = Spec("%gcc@11")
        assert s.name is None
        assert s.compiler.name == "gcc"

    def test_empty_string_gives_anonymous(self):
        s = Spec("")
        assert s.name is None

    def test_whitespace_tolerated(self):
        s = Spec("  babelstream   +omp  ")
        assert s.variants["omp"] is True

    def test_bad_character_raises(self):
        with pytest.raises(SpecParseError):
            parse_spec("babelstream!")

    def test_double_name_raises(self):
        with pytest.raises(SpecParseError):
            parse_spec("foo bar")

    def test_two_compilers_raise(self):
        with pytest.raises(SpecParseError):
            parse_spec("foo%gcc%oneapi")

    def test_dangling_caret_raises(self):
        with pytest.raises(SpecParseError):
            parse_spec("foo ^")

    def test_conflicting_bool_variant_raises(self):
        with pytest.raises(Exception):
            parse_spec("foo +omp~omp")

    def test_from_spec_copies(self):
        a = Spec("hpcg@3.1")
        b = Spec(a)
        assert a == b and a is not b

    def test_from_bad_type_raises(self):
        with pytest.raises(SpecParseError):
            Spec(42)


class TestSatisfies:
    def test_name_mismatch(self):
        assert not Spec("hpcg").satisfies("hpgmg")

    def test_version_pin(self):
        assert Spec("hpcg@3.1").satisfies("hpcg@3.1")
        assert Spec("hpcg@3.1").satisfies("hpcg@3:")
        assert not Spec("hpcg@3.1").satisfies("hpcg@4:")

    def test_anonymous_constraint_matches_any_name(self):
        assert Spec("hpcg@3.1").satisfies("@3:")

    def test_compiler_constraint(self):
        s = Spec("foo%gcc@11.2.0")
        assert s.satisfies("%gcc")
        assert s.satisfies("%gcc@11")
        assert not s.satisfies("%oneapi")
        assert not Spec("foo").satisfies("%gcc")

    def test_variant_constraint(self):
        s = Spec("babelstream +omp~cuda")
        assert s.satisfies("+omp")
        assert s.satisfies("~cuda")
        assert not s.satisfies("+cuda")
        assert not Spec("babelstream").satisfies("+omp")

    def test_multi_variant_membership(self):
        s = Spec("gcc languages=c,fortran")
        assert s.satisfies("languages=c")
        assert not s.satisfies("languages=go")

    def test_dependency_constraint(self):
        s = Spec("hpgmg ^openmpi@4.0.4")
        assert s.satisfies("hpgmg ^openmpi@4:")
        assert not s.satisfies("hpgmg ^openmpi@4.1:")
        assert not s.satisfies("hpgmg ^mvapich2")


class TestConstrain:
    def test_merges_versions(self):
        out = Spec("cmake@3.13:").constrain(Spec("cmake@:3.20"))
        assert out.versions.includes(Version("3.20.2"))
        assert not out.versions.includes(Version("3.26.3"))

    def test_disjoint_versions_raise(self):
        with pytest.raises(SpecParseError):
            Spec("cmake@:3.13").constrain(Spec("cmake@3.20:"))

    def test_name_fill_in(self):
        out = Spec("%gcc").constrain(Spec("hpcg"))
        assert out.name == "hpcg"

    def test_different_names_raise(self):
        with pytest.raises(SpecParseError):
            Spec("hpcg").constrain(Spec("hpgmg"))

    def test_compiler_merge(self):
        out = Spec("foo%gcc").constrain(Spec("foo%gcc@11"))
        assert not out.compiler.versions.is_any

    def test_compiler_clash_raises(self):
        with pytest.raises(SpecParseError):
            Spec("foo%gcc").constrain(Spec("foo%oneapi"))

    def test_variant_clash_raises(self):
        with pytest.raises(Exception):
            Spec("foo+omp").constrain(Spec("foo~omp"))

    def test_concrete_cannot_be_constrained(self):
        s = Spec("foo@1.0")
        s.mark_concrete()
        with pytest.raises(SpecParseError):
            s.constrain(Spec("foo@1.0"))


class TestDagOps:
    def test_traverse_yields_all(self):
        s = Spec("hpgmg ^openmpi ^python")
        names = {n.name for n in s.traverse()}
        assert names == {"hpgmg", "openmpi", "python"}

    def test_getitem(self):
        s = Spec("hpgmg ^openmpi@4.0.4")
        assert s["openmpi"].version == Version("4.0.4")
        assert s["hpgmg"] is s
        with pytest.raises(KeyError):
            s["cuda"]

    def test_contains(self):
        s = Spec("hpgmg ^openmpi")
        assert "openmpi" in s
        assert "hpgmg" in s
        assert "cuda" not in s

    def test_dag_hash_stable(self):
        a = Spec("hpcg@3.1 +omp ^openmpi@4.0.4")
        b = Spec("hpcg@3.1 +omp ^openmpi@4.0.4")
        assert a.dag_hash() == b.dag_hash()

    def test_dag_hash_differs_on_variant(self):
        assert Spec("hpcg@3.1+omp").dag_hash() != Spec("hpcg@3.1~omp").dag_hash()

    def test_tree_renders_deps_indented(self):
        text = Spec("hpgmg ^openmpi@4.0.4").tree()
        lines = text.splitlines()
        assert lines[0].startswith("hpgmg")
        assert lines[1].startswith("    openmpi")


class TestRoundTrip:
    CASES = [
        "babelstream",
        "hpcg@3.1",
        "cmake@3.13:",
        "babelstream%gcc@9.2.0 +omp",
        "hpcg implementation=matrix-free",
        "hpgmg%gcc ^openmpi@4.0.4 ^python@3.10.12",
        "gcc languages=c,fortran",
    ]

    @pytest.mark.parametrize("text", CASES)
    def test_parse_format_parse_fixpoint(self, text):
        once = parse_spec(text)
        twice = parse_spec(once.format())
        assert once == twice


# property-based round trip over generated specs -----------------------------

names = st.sampled_from(["hpcg", "babelstream", "hpgmg", "cmake", "openmpi"])
versions = st.sampled_from(["1.0", "3.1", "4.0.4", "11.2.0"])
bool_variants = st.dictionaries(
    st.sampled_from(["omp", "cuda", "tbb", "fv"]), st.booleans(), max_size=3
)


@given(names, st.none() | versions, bool_variants)
def test_constructed_specs_roundtrip(name, version, variants):
    text = name
    if version:
        text += f"@{version}"
    for k, v in variants.items():
        text += f" {'+' if v else '~'}{k}"
    spec = parse_spec(text)
    assert parse_spec(spec.format()) == spec
    # a spec always satisfies itself
    assert spec.satisfies(spec)
