"""Tests for the recipe API, repositories, variants, installer and CLI."""

import pytest

from repro.pkgmgr.cli import main as pkg_main
from repro.pkgmgr.concretizer import Concretizer, concretize
from repro.pkgmgr.environment import Environment
from repro.pkgmgr.installer import BuildFailure, Installer
from repro.pkgmgr.package import (
    PackageBase,
    PackageError,
    depends_on,
    variant,
    version,
)
from repro.pkgmgr.repository import (
    RepoPath,
    Repository,
    UnknownPackageError,
    builtin_repo,
    default_repo_path,
)
from repro.pkgmgr.spec import Spec
from repro.pkgmgr.variant import Variant, VariantError, VariantMap
from repro.pkgmgr.version import Version


# ---------------------------------------------------------------------------
# Variant declarations
# ---------------------------------------------------------------------------

class TestVariant:
    def test_boolean_validate(self):
        v = Variant("omp")
        assert v.validate(True) is True
        assert v.validate("true") is True
        assert v.validate("off") is False
        with pytest.raises(VariantError):
            v.validate("sideways")

    def test_valued_validate(self):
        v = Variant("impl", default="a", values=("a", "b"))
        assert v.validate("b") == "b"
        with pytest.raises(VariantError):
            v.validate("c")

    def test_multi_validate_sorts(self):
        v = Variant("langs", default="c", values=("c", "fortran"), multi=True)
        assert v.validate("fortran,c") == ("c", "fortran")

    def test_bad_default_raises(self):
        with pytest.raises(VariantError):
            Variant("impl", default="z", values=("a", "b"))

    def test_map_merge_conflict(self):
        with pytest.raises(VariantError):
            VariantMap({"omp": True}).merge(VariantMap({"omp": False}))

    def test_map_merge_multi_union(self):
        out = VariantMap({"langs": ("c",)}).merge(VariantMap({"langs": ("fortran",)}))
        assert out["langs"] == ("c", "fortran")

    def test_map_str_format(self):
        m = VariantMap({"omp": True, "cuda": False, "impl": "csr"})
        assert str(m) == "~cuda+omp impl=csr"


# ---------------------------------------------------------------------------
# Recipe API
# ---------------------------------------------------------------------------

class TestRecipeApi:
    def test_kebab_case_name(self):
        from repro.pkgmgr.recipes.mpi import CrayMpich

        assert CrayMpich.name() == "cray-mpich"

    def test_preferred_version_flag_wins(self):
        from repro.pkgmgr.recipes.benchmarks import Babelstream

        assert Babelstream.preferred_version() == Version("4.0")

    def test_deprecated_excluded_from_preferred(self):
        from repro.pkgmgr.recipes.tools import Python

        assert Python.preferred_version() != Version("2.7.15")

    def test_describe_uses_docstring(self):
        from repro.pkgmgr.recipes.benchmarks import Hpgmg

        assert "multigrid" in Hpgmg.describe().lower()

    def test_instantiation_checks_name(self):
        from repro.pkgmgr.recipes.benchmarks import Hpcg

        with pytest.raises(PackageError):
            Hpcg(Spec("babelstream"))

    def test_no_versions_raises(self):
        class Empty(PackageBase):
            pass

        with pytest.raises(PackageError):
            Empty.preferred_version()

    def test_directive_inheritance(self):
        class Base(PackageBase):
            version("1.0")
            variant("base-opt", default=True)

        class Derived(Base):
            version("2.0")

        assert "base-opt" in Derived.variants_decl
        assert Version("1.0") in Derived.versions_decl
        assert Version("2.0") in Derived.versions_decl


# ---------------------------------------------------------------------------
# Repositories
# ---------------------------------------------------------------------------

class TestRepository:
    def test_builtin_has_all_paper_packages(self):
        repo = builtin_repo()
        for name in (
            "babelstream",
            "hpcg",
            "hpcg-lfric",
            "hpgmg",
            "gcc",
            "openmpi",
            "mvapich2",
            "cray-mpich",
            "python",
            "cmake",
            "intel-oneapi-mkl",
            "intel-tbb",
            "cuda",
            "kokkos",
        ):
            assert name in repo, name

    def test_custom_repo_shadows_builtin(self):
        class Babelstream(PackageBase):
            """Site-patched babelstream."""

            version("99.0")

        local = Repository("site")
        local.add(Babelstream)
        path = RepoPath([local, builtin_repo()])
        assert path.get("babelstream").preferred_version() == Version("99.0")
        assert path.providing_repo("babelstream") == "site"
        # concretization through the custom path picks the site version
        s = concretize(
            "babelstream", env=Environment.basic("x"), repo=path
        )
        assert s.version == Version("99.0")

    def test_duplicate_recipe_rejected(self):
        repo = Repository("dup")

        class Foo(PackageBase):
            version("1.0")

        repo.add(Foo)
        with pytest.raises(PackageError):
            class Foo(PackageBase):  # noqa: F811 - intentionally same name
                version("2.0")

            repo.add(Foo)

    def test_unknown_package_error(self):
        with pytest.raises(UnknownPackageError):
            default_repo_path().get("nonexistent-package")

    def test_non_recipe_rejected(self):
        with pytest.raises(PackageError):
            Repository("x").add(object)


# ---------------------------------------------------------------------------
# Installer
# ---------------------------------------------------------------------------

class TestInstaller:
    def test_install_produces_records_in_dep_order(self):
        env = Environment.basic("inst")
        s = concretize("hpgmg", env=env)
        installer = Installer()
        records = installer.install(s)
        names = [r.spec.name for r in records]
        assert names[-1] == "hpgmg"
        assert all(r.log for r in records)

    def test_root_rebuilt_every_time(self):
        """Principle 3: the benchmark binary is rebuilt on every run."""
        env = Environment.basic("inst")
        s = concretize("babelstream", env=env)
        installer = Installer()
        first = installer.install(s)
        second = installer.install(s)
        root_second = [r for r in second if r.spec.name == "babelstream"][0]
        assert root_second.fresh
        dep_second = [r for r in second if r.spec.name == "cmake"][0]
        assert not dep_second.fresh  # deps cached, like Spack

    def test_no_rebuild_flag_respects_cache(self):
        env = Environment.basic("inst")
        s = concretize("babelstream", env=env)
        installer = Installer()
        installer.install(s)
        cached = installer.install(s, rebuild=False)
        assert not any(r.fresh for r in cached)

    def test_external_not_built(self):
        from repro.systems.registry import system_environment

        env = system_environment("archer2")
        s = concretize("hpgmg%gcc", env=env)
        installer = Installer()
        records = installer.install(s)
        mpich = [r for r in records if r.spec.name == "cray-mpich"][0]
        assert mpich.external and mpich.build_seconds == 0.0

    def test_failure_injection(self):
        env = Environment.basic("inst")
        s = concretize("babelstream", env=env)

        def fail_babelstream(spec):
            return "simulated compiler ICE" if spec.name == "babelstream" else None

        installer = Installer(fail_hook=fail_babelstream)
        with pytest.raises(BuildFailure, match="compiler ICE"):
            installer.install(s)

    def test_abstract_spec_rejected(self):
        with pytest.raises(ValueError):
            Installer().install(Spec("babelstream"))

    def test_build_seconds_accumulate(self):
        env = Environment.basic("inst")
        s = concretize("babelstream", env=env)
        installer = Installer()
        installer.install(s)
        assert installer.total_build_seconds > 0


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------

class TestCli:
    def test_list(self, capsys):
        assert pkg_main(["list", "hp*"]) == 0
        out = capsys.readouterr().out
        assert "hpcg" in out and "hpgmg" in out

    def test_info(self, capsys):
        assert pkg_main(["info", "babelstream"]) == 0
        out = capsys.readouterr().out
        assert "versions:" in out and "omp" in out

    def test_info_unknown(self, capsys):
        assert pkg_main(["info", "nope"]) == 1

    def test_spec_with_system(self, capsys):
        assert pkg_main(["--system", "archer2", "spec", "hpgmg%gcc"]) == 0
        out = capsys.readouterr().out
        assert "cray-mpich@8.1.23" in out

    def test_spec_conflict_errors(self, capsys):
        assert pkg_main(["--system", "isambard", "spec", "babelstream +tbb"]) == 1

    def test_install(self, capsys):
        assert pkg_main(["install", "babelstream"]) == 0
        out = capsys.readouterr().out
        assert "Successfully installed babelstream" in out

    def test_providers(self, capsys):
        assert pkg_main(["providers", "mpi"]) == 0
        out = capsys.readouterr().out
        assert "openmpi" in out
