"""Straggler mitigation: speculative duplicates never corrupt output.

The tentpole's determinism rule under test: with speculation enabled,
exactly one attempt per case is ever published -- perflog rows and
journal records stay single-writer, byte-identical to a serial,
speculation-free run -- and the accepted attempt is chosen by simulated
first-completion with a deterministic tie-break (original preferred).
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan
from repro.runner import sanity as sn
from repro.runner.benchmark import RegressionTest
from repro.runner.executor import Executor
from repro.runner.fields import parameter
from repro.runner.parallel import SpeculationPolicy
from repro.runner.pipeline import CaseResult
from repro.runner.resilience import CampaignJournal, RetryPolicy

pytestmark = pytest.mark.speculative

PINNED_TS = "2026-01-01T00:00:00"
RETRY = RetryPolicy(max_attempts=6, jitter=0.0)


class SpecBench(RegressionTest):
    """Six deterministic cases, equal pace unless a fault slows one."""

    size = parameter([1, 2, 3, 4, 5, 6])

    def program(self, ctx):
        return f"bw {self.size}: {self.size * 100.0}\n", 1.0

    def check_sanity(self, stdout):
        sn.assert_found(r"bw", stdout)

    def extract_performance(self, stdout):
        v = sn.extractsingle(r": ([\d.]+)", stdout, 1, float)
        return {"bandwidth": (v, "MB/s")}


class NaturalStraggler(RegressionTest):
    """The last case is *genuinely* slow: re-running it cannot help."""

    size = parameter([1, 2, 3, 4, 5, 6])

    def program(self, ctx):
        dur = 10.0 if self.size == 6 else 1.0
        return f"bw {self.size}: {self.size * 100.0}\n", dur

    def check_sanity(self, stdout):
        sn.assert_found(r"bw", stdout)

    def extract_performance(self, stdout):
        v = sn.extractsingle(r": ([\d.]+)", stdout, 1, float)
        return {"bandwidth": (v, "MB/s")}


def campaign(tmp_path, tag, cls=SpecBench, faults=None, journal=None,
             policy="serial", workers=1, **kwargs):
    prefix = str(tmp_path / f"perflogs-{tag}")
    ex = Executor(perflog_prefix=prefix, perflog_timestamp=PINNED_TS)
    cases = ex.expand_cases([cls], "archer2")
    report = ex.run_cases(cases, retry=RETRY, faults=faults, journal=journal,
                          policy=policy, workers=workers, **kwargs)
    logs = {}
    for root, _, files in os.walk(prefix):
        for fname in files:
            path = os.path.join(root, fname)
            with open(path, "rb") as fh:
                logs[os.path.relpath(path, prefix)] = fh.read()
    return report, logs


class TestPolicyUnit:
    def result(self, duration, passed=True):
        r = CaseResult(case=None)
        r.passed = passed
        r.job_seconds = duration
        return r

    def test_validation(self):
        with pytest.raises(ValueError):
            SpeculationPolicy(straggler_factor=1.0)
        with pytest.raises(ValueError):
            SpeculationPolicy(min_peers=0)

    def test_needs_min_peers_before_flagging(self):
        pol = SpeculationPolicy(straggler_factor=2.0, min_peers=3)
        slow = self.result(100.0)
        assert not pol.is_straggler(slow)  # no peers yet: median is noise
        for _ in range(3):
            pol.note_completed(self.result(1.0))
        assert pol.is_straggler(slow)
        assert not pol.is_straggler(self.result(1.5))  # under 2x median

    def test_failed_results_do_not_feed_the_median(self):
        pol = SpeculationPolicy(min_peers=2)
        for _ in range(5):
            pol.note_completed(self.result(100.0, passed=False))
        # only failures seen: still not enough *trusted* peers
        assert not pol.is_straggler(self.result(500.0))

    def test_choose_first_completion_wins(self):
        pol = SpeculationPolicy()
        orig, dup = self.result(8.0), self.result(1.0)
        assert pol.choose(orig, dup) is dup

    def test_choose_tie_prefers_original(self):
        pol = SpeculationPolicy()
        orig, dup = self.result(8.0), self.result(8.0)
        assert pol.choose(orig, dup) is orig

    def test_choose_failed_duplicate_never_displaces(self):
        pol = SpeculationPolicy()
        orig, dup = self.result(8.0), self.result(1.0, passed=False)
        assert pol.choose(orig, dup) is orig


class TestCampaignSpeculation:
    def test_transient_straggle_is_rescued_by_the_duplicate(self, tmp_path):
        # slow@...: one case-targeted transient degradation (x8); the
        # duplicate attempt runs fault-free and wins
        faults = FaultPlan.parse("slow@*_6*", seed=1)
        report, logs = campaign(tmp_path, "spec", faults=faults,
                                speculation=True, straggler_factor=2.0)
        assert report.success
        winners = [r for r in report.results if r.speculated]
        assert len(winners) == 1
        assert winners[0].speculation_won
        assert winners[0].case.test.size == 6
        # the accepted attempt ran at healthy pace
        assert winners[0].job_seconds == pytest.approx(1.0)
        clean_report, clean_logs = campaign(tmp_path, "clean")
        assert logs == clean_logs  # byte-identical output

    def test_natural_straggler_keeps_original_on_tie(self, tmp_path):
        # a genuinely slow case: the duplicate is exactly as slow, so the
        # deterministic tie-break keeps the original attempt
        report, logs = campaign(tmp_path, "nat", cls=NaturalStraggler,
                                speculation=True, straggler_factor=2.0)
        assert report.success
        flagged = [r for r in report.results if r.speculated]
        assert len(flagged) == 1
        assert not flagged[0].speculation_won
        assert flagged[0].job_seconds == pytest.approx(10.0)
        clean_report, clean_logs = campaign(tmp_path, "natclean",
                                            cls=NaturalStraggler)
        assert logs == clean_logs

    def test_disabled_by_default(self, tmp_path):
        report, _ = campaign(tmp_path, "off", cls=NaturalStraggler)
        assert not any(r.speculated for r in report.results)

    def test_summary_counts_speculation(self, tmp_path):
        faults = FaultPlan.parse("slow@*_6*", seed=1)
        report, _ = campaign(tmp_path, "sum", faults=faults,
                             speculation=True)
        assert "Speculated 1 straggler case(s) (1 duplicate(s) won)" in (
            report.summary()
        )

    @settings(max_examples=6, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_no_double_writes_for_any_seed(self, tmp_path_factory, seed):
        """Property: whatever the seed slows down, each case lands in
        the journal exactly once and the perflogs match the clean run."""
        tmp_path = tmp_path_factory.mktemp(f"spec-{seed}")
        clean_report, clean_logs = campaign(tmp_path, "clean")
        journal_path = str(tmp_path / "journal.jsonl")
        faults = FaultPlan.parse("slow:0.5,sicknode:0.3", seed=seed)
        report, logs = campaign(tmp_path, "chaos", faults=faults,
                                journal=journal_path,
                                speculation=True, straggler_factor=1.5,
                                drain_after=2)
        assert report.success
        assert logs == clean_logs  # single-writer perflogs, byte-identical
        fingerprints = [
            rec["fingerprint"]
            for rec in CampaignJournal(journal_path).entries()
            if "fingerprint" in rec
        ]
        assert len(fingerprints) == len(set(fingerprints)) == 6

    def test_deterministic_across_policies(self, tmp_path):
        faults_a = FaultPlan.parse("slow:0.6", seed=11)
        faults_b = FaultPlan.parse("slow:0.6", seed=11)
        ser_report, ser_logs = campaign(tmp_path, "ser", faults=faults_a,
                                        speculation=True,
                                        straggler_factor=1.5)
        par_report, par_logs = campaign(tmp_path, "par", faults=faults_b,
                                        speculation=True,
                                        straggler_factor=1.5,
                                        policy="async", workers=4)
        assert ser_logs == par_logs
        assert (
            [(r.case.display_name, r.speculated, r.speculation_won)
             for r in ser_report.results]
            == [(r.case.display_name, r.speculated, r.speculation_won)
                for r in par_report.results]
        )
