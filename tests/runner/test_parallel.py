"""The serial/async equivalence property: one campaign, one output.

The async execution policy (``repro.runner.parallel``) promises that a
campaign produces *identical* observable output -- the run summary, every
case's Figures of Merit, and the perflog bytes on disk -- regardless of
the policy or the worker count.  These tests lock that property in, both
with hand-picked campaigns (dependencies, multi-variant, multi-platform)
and with hypothesis-driven worker counts.
"""

import os
import tempfile
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runner import sanity as sn
from repro.runner.benchmark import RegressionTest
from repro.runner.executor import Executor
from repro.runner.fields import parameter, variable
from repro.runner.parallel import (
    dependency_waves,
    order_by_dependencies,
    run_waves,
)

PINNED_TS = "2026-01-01T00:00:00"


class WaveProducer(RegressionTest):
    """Baseline FOM other tests consume (forces a second wavefront)."""

    crash = variable(bool, value=False)

    def program(self, ctx):
        if self.crash:
            raise RuntimeError("producer crashed")
        return "baseline: 200.0\n", 1.0

    def check_sanity(self, stdout):
        sn.assert_found(r"baseline", stdout)

    def extract_performance(self, stdout):
        v = sn.extractsingle(r"baseline: ([\d.]+)", stdout, 1, float)
        return {"baseline": (v, "units")}


class WaveConsumer(RegressionTest):
    depends_on_tests = ("WaveProducer",)

    def program(self, ctx):
        base = self.dependency_results["WaveProducer"].perfvars["baseline"][0]
        return f"relative: {84.0 / base}\n", 1.0

    def check_sanity(self, stdout):
        sn.assert_found(r"relative", stdout)

    def extract_performance(self, stdout):
        v = sn.extractsingle(r"relative: ([\d.]+)", stdout, 1, float)
        return {"relative": (v, "ratio")}


class FanOut(RegressionTest):
    """Many independent variants: the bulk of wave 0."""

    size = parameter([1, 2, 3, 4, 5])

    def program(self, ctx):
        return f"size {self.size}: {self.size * 1.5}\n", 1.0

    def check_sanity(self, stdout):
        sn.assert_found(r"size", stdout)

    def extract_performance(self, stdout):
        v = sn.extractsingle(r": ([\d.]+)", stdout, 1, float)
        return {"value": (v, "units")}


CAMPAIGN = [WaveProducer, WaveConsumer, FanOut]
PLATFORMS = ["csd3", "archer2"]


def run_campaign(policy, workers, classes=CAMPAIGN, platforms=PLATFORMS,
                 crash_producer=False):
    """One full campaign -> (summary, perfvars list, perflog bytes map)."""
    with tempfile.TemporaryDirectory() as prefix:
        ex = Executor(perflog_prefix=prefix)
        ex.perflog.timestamp = PINNED_TS  # byte-reproducible logs
        cases = []
        for platform in platforms:
            cases.extend(ex.expand_cases(classes, platform))
        if crash_producer:
            for case in cases:
                if isinstance(case.test, WaveProducer):
                    case.test.crash = True
        report = ex.run_cases(cases, policy=policy, workers=workers)
        logs = {}
        for root, _, files in os.walk(prefix):
            for fname in files:
                path = os.path.join(root, fname)
                with open(path, "rb") as fh:
                    logs[os.path.relpath(path, prefix)] = fh.read()
        perfvars = [(r.case.display_name, sorted(r.perfvars.items()))
                    for r in report.results]
        return report.summary(), perfvars, logs


class TestWavefronts:
    def test_independent_campaign_is_one_wave(self):
        ex = Executor()
        ordered = order_by_dependencies(ex.expand_cases([FanOut], "csd3"))
        waves = dependency_waves(ordered)
        assert len(waves) == 1
        assert sorted(waves[0]) == list(range(len(ordered)))

    def test_consumers_land_in_later_waves(self):
        ex = Executor()
        cases = ex.expand_cases([WaveConsumer, WaveProducer, FanOut], "csd3")
        ordered = order_by_dependencies(cases)
        waves = dependency_waves(ordered)
        assert len(waves) == 2
        wave_of = {i: w for w, idxs in enumerate(waves) for i in idxs}
        for i, case in enumerate(ordered):
            expected = 1 if isinstance(case.test, WaveConsumer) else 0
            assert wave_of[i] == expected, case.display_name

    def test_run_waves_rejects_bad_worker_count(self):
        with pytest.raises(ValueError, match="workers"):
            run_waves([], lambda c: None, workers=0)

    def test_executor_rejects_unknown_policy(self):
        ex = Executor()
        with pytest.raises(ValueError, match="policy"):
            ex.run_cases([], policy="turbo")

    def test_results_keep_input_order_despite_completion_order(self):
        """Slow-first cases must not reorder the result list."""

        class Jittered(RegressionTest):
            delay = parameter([0.05, 0.0, 0.03, 0.01])

            def program(self, ctx):
                time.sleep(self.delay)
                return f"d {self.delay}\n", 1.0

            def extract_performance(self, stdout):
                v = sn.extractsingle(r"d ([\d.]+)", stdout, 1, float)
                return {"d": (v, "s")}

        ex = Executor()
        cases = ex.expand_cases([Jittered], "csd3")
        expected = [c.test.name for c in cases]
        report = ex.run_cases(cases, policy="async", workers=4)
        assert [r.case.test.name for r in report.results] == expected


class TestPolicyEquivalence:
    def test_async_matches_serial_exactly(self):
        serial = run_campaign("serial", 1)
        for workers in (1, 2, 4):
            assert run_campaign("async", workers) == serial

    def test_equivalence_survives_failures(self):
        """Crashed producers and dep-failed consumers log identically."""
        serial = run_campaign("serial", 1, crash_producer=True)
        summary, perfvars, logs = serial
        assert "dependencies not satisfied" in summary
        assert run_campaign("async", 4, crash_producer=True) == serial
        # the dep-failed consumer still leaves a perflog record
        consumer_logs = [b for p, b in logs.items() if "WaveConsumer" in p]
        assert consumer_logs and all(b"fail:setup" in b
                                     for b in consumer_logs)

    @settings(max_examples=8, deadline=None)
    @given(workers=st.integers(min_value=1, max_value=6))
    def test_any_worker_count_is_serial_identical(self, workers):
        assert run_campaign("async", workers) == run_campaign("serial", 1)

    def test_single_platform_dependency_chain(self):
        serial = run_campaign("serial", 1, platforms=["csd3"])
        assert run_campaign("async", 3, platforms=["csd3"]) == serial
