"""Process-pool policy: serial-identical artifacts, enforced limits.

The scaling tentpole's correctness contract: ``--policy=procs`` runs
each case's pipeline simulation in a worker process, yet every campaign
artifact -- perflog rows, journal records, the span trace -- is
*byte-identical* to the serial policy's, even under a fault storm with
watchdog kills and speculative duplicates in play.  The campaign
features whose state is inherently global across cases (node-health
draining, ``sicknode`` clauses, Spack install databases) are rejected
up front instead of silently diverging.
"""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan
from repro.runner import sanity as sn
from repro.runner.benchmark import RegressionTest, SpackTest
from repro.runner.executor import Executor
from repro.runner.fields import parameter
from repro.runner.procs import ProcsPool, procs_unsupported
from repro.runner.resilience import CampaignJournal, RetryPolicy

pytestmark = pytest.mark.chaos

PINNED_TS = "2026-01-01T00:00:00"
RETRY = RetryPolicy(max_attempts=6, jitter=0.0)
#: every case-targeted fault kind at once: transient stage failures,
#: degradations (speculation fodder) and hangs (watchdog fodder)
CHAOS_SPEC = "build:0.3,submit:0.3,timeout:0.3,hook:0.3,slow:0.4,hang:0.2"
WATCHDOG = "run=40,build=50,heartbeat=10"


class ProcsProbe(RegressionTest):
    """Eight deterministic cases; module-level so workers can unpickle."""

    size = parameter([1, 2, 3, 4, 5, 6, 7, 8])

    def program(self, ctx):
        return f"bw {self.size}: {self.size * 100.0}\n", 1.0

    def check_sanity(self, stdout):
        sn.assert_found(r"bw", stdout)

    def extract_performance(self, stdout):
        v = sn.extractsingle(r": ([\d.]+)", stdout, 1, float)
        return {"bandwidth": (v, "MB/s")}


class MiniSpack(SpackTest):
    spack_spec = "zlib@1.2.13"

    def program(self, ctx):
        return "ok\n", 1.0

    def check_sanity(self, stdout):
        sn.assert_found(r"ok", stdout)


def campaign(tmp_path, tag, seed=None, policy="serial", workers=1,
             **run_kwargs):
    """One campaign; returns (report, {artifact name: bytes})."""
    prefix = str(tmp_path / f"perflogs-{tag}")
    journal_path = str(tmp_path / f"journal-{tag}.jsonl")
    trace_path = str(tmp_path / f"trace-{tag}.jsonl")
    ex = Executor(perflog_prefix=prefix, perflog_timestamp=PINNED_TS)
    cases = ex.expand_cases([ProcsProbe], "archer2")
    faults = (
        FaultPlan.parse(CHAOS_SPEC, seed=seed) if seed is not None else None
    )
    report = ex.run_cases(cases, policy=policy, workers=workers,
                          retry=RETRY, faults=faults, journal=journal_path,
                          trace=trace_path, **run_kwargs)
    artifacts = {}
    for root, _, files in os.walk(prefix):
        for fname in files:
            path = os.path.join(root, fname)
            with open(path, "rb") as fh:
                artifacts[f"perflog:{os.path.relpath(path, prefix)}"] = \
                    fh.read()
    with open(journal_path, "rb") as fh:
        artifacts["journal"] = fh.read()
    with open(trace_path, "rb") as fh:
        artifacts["trace"] = fh.read()
    return report, artifacts


def outcome(report):
    return [
        (r.case.display_name, r.passed, r.attempts, r.speculated,
         r.speculation_won, r.hung_attempts, tuple(r.fault_log))
        for r in report.results
    ]


class TestProcsEquivalence:
    def test_clean_campaign_bytes_match_serial(self, tmp_path):
        ser_report, ser = campaign(tmp_path, "ser")
        pro_report, pro = campaign(tmp_path, "pro", policy="procs",
                                   workers=4)
        assert ser_report.success and pro_report.success
        assert ser == pro
        assert outcome(ser_report) == outcome(pro_report)

    def test_chaos_campaign_bytes_match_serial(self, tmp_path):
        """Fault storm + watchdog + speculation, all at once."""
        ser_report, ser = campaign(tmp_path, "ser", seed=42,
                                   watchdog=WATCHDOG, speculation=True,
                                   straggler_factor=1.5)
        pro_report, pro = campaign(tmp_path, "pro", seed=42,
                                   policy="procs", workers=4,
                                   watchdog=WATCHDOG, speculation=True,
                                   straggler_factor=1.5)
        # the storm must actually have done something worth comparing
        assert ser_report.faults_injected > 0
        assert ser == pro
        assert outcome(ser_report) == outcome(pro_report)
        assert ser_report.summary() == pro_report.summary()

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_chaos_bytes_match_for_any_seed(self, tmp_path_factory, seed):
        """Property: whatever the seed makes the storm do -- retries,
        hangs, degradations, duplicates -- procs output is serial's."""
        tmp_path = tmp_path_factory.mktemp(f"procs-{seed}")
        ser_report, ser = campaign(tmp_path, "ser", seed=seed,
                                   watchdog=WATCHDOG, speculation=True,
                                   straggler_factor=1.5)
        pro_report, pro = campaign(tmp_path, "pro", seed=seed,
                                   policy="procs", workers=4,
                                   watchdog=WATCHDOG, speculation=True,
                                   straggler_factor=1.5)
        assert ser == pro
        assert outcome(ser_report) == outcome(pro_report)

    def test_journal_batching_writes_identical_bytes(self, tmp_path):
        _, unit = campaign(tmp_path, "unit", seed=7)
        _, batched = campaign(tmp_path, "batch", seed=7, journal_batch=16)
        assert unit["journal"] == batched["journal"]
        _, pro = campaign(tmp_path, "probatch", seed=7, policy="procs",
                          workers=4, journal_batch=16)
        assert unit == pro

    def test_resume_and_quarantine_stay_parent_side(self, tmp_path):
        """A resumed procs campaign replays journaled cases without
        touching the pool, exactly as serial does."""
        journal_path = str(tmp_path / "journal-res.jsonl")
        ex = Executor()
        cases = ex.expand_cases([ProcsProbe], "archer2")
        first = ex.run_cases(cases, journal=journal_path)
        assert first.success
        again = Executor().run_cases(
            ex.expand_cases([ProcsProbe], "archer2"),
            policy="procs", workers=2, journal=journal_path, resume=True,
        )
        assert again.success
        assert all(r.resumed for r in again.results)


class TestProcsLimits:
    def test_rejects_drain_after(self, tmp_path):
        ex = Executor()
        cases = ex.expand_cases([ProcsProbe], "archer2")
        with pytest.raises(ValueError, match="drain"):
            ex.run_cases(cases, policy="procs", workers=2, drain_after=2)

    def test_rejects_sicknode_clauses(self, tmp_path):
        ex = Executor()
        cases = ex.expand_cases([ProcsProbe], "archer2")
        faults = FaultPlan.parse("sicknode:0.3", seed=1)
        with pytest.raises(ValueError, match="sicknode"):
            ex.run_cases(cases, policy="procs", workers=2, faults=faults)

    def test_rejects_spack_campaigns(self, tmp_path):
        ex = Executor()
        cases = ex.expand_cases([MiniSpack], "archer2")
        with pytest.raises(ValueError, match="Spack"):
            ex.run_cases(cases, policy="procs", workers=2)

    def test_unsupported_reports_nothing_for_clean_campaigns(self):
        ex = Executor()
        cases = ex.expand_cases([ProcsProbe], "archer2")
        faults = FaultPlan.parse("build:0.3,slow:0.2", seed=1)
        assert procs_unsupported(faults=faults, cases=cases) is None

    def test_pool_validates_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ProcsPool(0)
