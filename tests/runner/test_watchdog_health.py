"""Slow-fault robustness units: watchdog deadlines and node health.

The tentpole's two new subsystems (DESIGN.md section 6.4) in isolation:

* :mod:`repro.runner.watchdog` -- spec parsing, heartbeat observability,
  the deadline kill (a wedged job ends HUNG with its allocation freed);
* :mod:`repro.runner.health` -- EWMA scoring, strike-based draining,
  snapshot/restore merging, and the pool's drain-aware placement.
"""

import pytest

from repro.runner import sanity as sn
from repro.runner.health import HealthTracker
from repro.runner.watchdog import (
    Watchdog,
    WatchdogSpec,
    WatchdogSpecError,
    as_watchdog,
)
from repro.scheduler import Job, JobState, NodePool, SlurmScheduler
from repro.scheduler.job import JobResult


def payload(seconds, text="out\n" * 50):
    return lambda ctx: (text, seconds)


class TestWatchdogSpec:
    def test_bare_seconds_is_run_deadline(self):
        spec = WatchdogSpec.parse("600")
        assert spec.run == 600.0
        assert spec.build is None

    def test_clause_grammar(self):
        spec = WatchdogSpec.parse("run=600,build=300,heartbeat=10")
        assert (spec.run, spec.build, spec.heartbeat) == (600.0, 300.0, 10.0)

    def test_format_roundtrip(self):
        spec = WatchdogSpec.parse("run=600,build=300,heartbeat=10")
        assert WatchdogSpec.parse(spec.format()) == spec

    @pytest.mark.parametrize(
        "bad", ["", "abc", "run=abc", "walltime=5", "run=0", "heartbeat=-1"]
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(WatchdogSpecError):
            WatchdogSpec.parse(bad)

    def test_as_watchdog_coercions(self):
        assert as_watchdog(None) is None
        dog = as_watchdog("120")
        assert isinstance(dog, Watchdog) and dog.spec.run == 120.0
        assert as_watchdog(dog) is dog
        assert as_watchdog(WatchdogSpec(run=5.0)).spec.run == 5.0


class TestWatchdogKill:
    def test_hung_job_is_killed_at_deadline(self):
        dog = Watchdog(WatchdogSpec(run=100.0, heartbeat=10.0))
        sched = SlurmScheduler(num_nodes=1, cores_per_node=16, watchdog=dog)
        wedged = sched.submit(Job("wedged", payload(1e6), num_tasks=16))
        succ = sched.submit(Job("succ", payload(10.0), num_tasks=16))
        sched.wait_all()
        res = sched.result(wedged)
        assert res.state is JobState.HUNG
        assert res.state.transient_failure
        assert "watchdog" in res.stderr
        # the kill fired at start + deadline, not at the 1e6s "finish"
        assert res.end_time == pytest.approx(res.start_time + 100.0)
        # allocation recycled: the successor completed on the freed node
        assert sched.result(succ).state is JobState.COMPLETED
        assert sched.pool.num_free == sched.pool.num_nodes
        assert dog.hung_count == 1
        assert dog.hung_jobs == [f"wedged#{wedged}"]

    def test_healthy_job_is_untouched(self):
        dog = Watchdog(WatchdogSpec(run=100.0, heartbeat=10.0))
        sched = SlurmScheduler(num_nodes=1, cores_per_node=16, watchdog=dog)
        jid = sched.submit(Job("fine", payload(50.0, "hello")))
        sched.wait_all()
        res = sched.result(jid)
        assert res.state is JobState.COMPLETED
        assert res.stdout == "hello"
        assert dog.hung_count == 0

    def test_heartbeats_record_progress(self):
        dog = Watchdog(WatchdogSpec(run=1000.0, heartbeat=10.0))
        sched = SlurmScheduler(num_nodes=1, cores_per_node=16, watchdog=dog)
        sched.submit(Job("j", payload(35.0)))
        sched.wait_all()
        # beats at +10, +20, +30 into a 35s job; the +40 one sees it done
        assert [round(b.elapsed) for b in dog.heartbeats] == [10, 20, 30]
        fracs = [b.progress for b in dog.heartbeats]
        assert fracs == sorted(fracs)  # monotone progress
        assert all(0.0 < f <= 1.0 for f in fracs)

    def test_no_deadline_means_no_kill(self):
        dog = Watchdog(WatchdogSpec(run=None, heartbeat=50.0))
        sched = SlurmScheduler(num_nodes=1, cores_per_node=16, watchdog=dog)
        jid = sched.submit(Job("slowpoke", payload(400.0)))
        sched.wait_all()
        assert sched.result(jid).state is JobState.COMPLETED
        assert dog.hung_count == 0

    def test_build_budget(self):
        dog = Watchdog(WatchdogSpec(build=300.0))
        assert dog.check_build("case-a", 299.0) is None
        violation = dog.check_build("case-b", 301.0)
        assert violation is not None and "build hung" in violation
        assert dog.hung_builds == ["case-b"]
        assert dog.hung_count == 1

    def test_as_dict_is_json_ready(self):
        dog = Watchdog(WatchdogSpec(run=60.0))
        info = dog.as_dict()
        assert info["spec"] == "run=60,heartbeat=30"
        assert info["hung_jobs"] == []


class TestHealthTracker:
    def test_ewma_score_and_strikes(self):
        h = HealthTracker(alpha=0.3)
        h.record_fault("nid0001", "hang")
        assert h.score("nid0001") == pytest.approx(0.7)
        assert h.strikes("nid0001") == 1
        h.record_ok("nid0001")
        assert h.score("nid0001") == pytest.approx(0.7 * 0.7 + 0.3)
        assert h.strikes("nid0001") == 1  # credits never erase strikes

    def test_unknown_node_is_pristine(self):
        h = HealthTracker()
        assert h.score("nid9999") == 1.0
        assert h.strikes("nid9999") == 0
        assert not h.is_drained("nid9999")

    def test_drain_at_threshold(self):
        h = HealthTracker(drain_after=2)
        h.record_fault("nid0002", "slow")
        assert not h.is_drained("nid0002")
        h.record_fault("nid0002", "sick")
        assert h.is_drained("nid0002")
        assert h.drained == ["nid0002"]

    def test_no_threshold_never_drains(self):
        h = HealthTracker(drain_after=None)
        for _ in range(10):
            h.record_fault("nid0001", "hang")
        assert not h.is_drained("nid0001")

    def test_validation(self):
        with pytest.raises(ValueError):
            HealthTracker(drain_after=0)
        with pytest.raises(ValueError):
            HealthTracker(alpha=0.0)
        with pytest.raises(ValueError):
            HealthTracker(alpha=1.5)

    def test_snapshot_restore_merges_worse_view(self):
        before = HealthTracker(drain_after=2)
        before.record_fault("nid0001", "hang")
        before.record_fault("nid0001", "hang")  # drained
        before.record_ok("nid0002")
        snap = before.snapshot()

        after = HealthTracker(drain_after=2)
        after.record_fault("nid0002", "slow")  # fresh local knowledge
        after.restore(snap)
        # a node drained before the crash stays drained after it
        assert after.is_drained("nid0001")
        assert after.strikes("nid0001") == 2
        # merge keeps the worse view of each node
        assert after.strikes("nid0002") == 1
        assert after.score("nid0002") == pytest.approx(0.7)

    def test_restore_rederives_drains_for_lowered_threshold(self):
        lax = HealthTracker(drain_after=5)
        lax.record_fault("nid0001", "hang")
        lax.record_fault("nid0001", "hang")
        snap = lax.snapshot()
        assert snap["drained"] == []

        strict = HealthTracker(drain_after=2)
        strict.restore(snap)
        assert strict.is_drained("nid0001")

    def test_dirty_flag_lifecycle(self):
        h = HealthTracker()
        assert not h.dirty
        h.record_ok("nid0001")
        assert h.dirty
        h.snapshot()  # journaling clears it
        assert not h.dirty
        h.as_dict()  # provenance read must NOT clear it
        h.record_fault("nid0001", "hang")
        assert h.dirty
        h.as_dict()
        assert h.dirty


class TestDrainAwareAllocation:
    def test_healthy_nodes_preferred(self):
        pool = NodePool("nid", 4, 16, avoid=lambda n: n == "nid0001")
        taken = pool.allocate(3, job_id=1)
        assert "nid0001" not in taken

    def test_drained_nodes_are_last_resort(self):
        # soft drain: a fully-drained pool still serves rather than wedge
        pool = NodePool("nid", 2, 16, avoid=lambda n: True)
        taken = pool.allocate(2, job_id=1)
        assert sorted(taken) == ["nid0001", "nid0002"]

    def test_scheduler_attributes_hang_to_nodes(self):
        health = HealthTracker(drain_after=1)
        dog = Watchdog(WatchdogSpec(run=50.0))
        sched = SlurmScheduler(num_nodes=2, cores_per_node=16,
                               watchdog=dog, health=health)
        wedged = sched.submit(Job("wedged", payload(1e6), num_tasks=16))
        sched.wait_all()
        assert sched.result(wedged).state is JobState.HUNG
        # every node of the hung allocation took a strike and drained
        assert health.strikes("nid0001") == 1
        assert health.is_drained("nid0001")
        # the untouched node is pristine
        assert health.strikes("nid0002") == 0

    def test_scheduler_credits_clean_completion(self):
        health = HealthTracker()
        sched = SlurmScheduler(num_nodes=1, cores_per_node=16, health=health)
        sched.submit(Job("fine", payload(10.0)))
        sched.wait_all()
        assert health.score("nid0001") == 1.0  # EWMA toward 1 from 1
        snap = health.as_dict()
        assert snap["nodes"]["nid0001"]["credits"] == 1


class TestAssertReference:
    """Satellite: negative references must not invert the window."""

    def test_positive_reference(self):
        assert sn.assert_reference(100.0, 100.0)
        assert sn.assert_reference(96.0, 100.0)
        with pytest.raises(sn.SanityError):
            sn.assert_reference(90.0, 100.0)

    def test_negative_reference_window_is_ordered(self):
        # ref=-100 with -/+5%: raw bounds are [-95, -105] -- backwards;
        # they must be reordered so the correct value passes
        assert sn.assert_reference(-100.0, -100.0)
        assert sn.assert_reference(-96.0, -100.0)
        assert sn.assert_reference(-104.0, -100.0)
        with pytest.raises(sn.SanityError):
            sn.assert_reference(-110.0, -100.0)
        with pytest.raises(sn.SanityError):
            sn.assert_reference(-90.0, -100.0)

    def test_zero_reference_raises_clearly(self):
        with pytest.raises(sn.SanityError, match="assert_bounded"):
            sn.assert_reference(0.1, 0.0)

    def test_asymmetric_window(self):
        assert sn.assert_reference(119.0, 100.0, -0.02, 0.2)
        with pytest.raises(sn.SanityError):
            sn.assert_reference(97.0, 100.0, -0.02, 0.2)


def test_cancelled_job_result_is_complete():
    """A HUNG result carries times/nodes, usable by the pipeline."""
    dog = Watchdog(WatchdogSpec(run=25.0))
    sched = SlurmScheduler(num_nodes=1, cores_per_node=16, watchdog=dog)
    jid = sched.submit(Job("wedged", payload(1e6, "x\n" * 10)))
    sched.wait_all()
    res = sched.result(jid)
    assert isinstance(res, JobResult)
    assert res.nodes == ["nid0001"]
    assert res.exit_code != 0
    assert res.end_time > res.start_time >= res.submit_time
