"""Tests for ReFrame-style dependencies between tests."""

import pytest

from repro.runner import sanity as sn
from repro.runner.benchmark import RegressionTest
from repro.runner.executor import Executor
from repro.runner.fields import variable


class ProducerTest(RegressionTest):
    """Measures a baseline FOM that downstream tests consume."""

    crash = variable(bool, value=False)

    def program(self, ctx):
        if self.crash:
            raise RuntimeError("producer crashed")
        return "baseline: 100.0\n", 1.0

    def check_sanity(self, stdout):
        sn.assert_found(r"baseline", stdout)

    def extract_performance(self, stdout):
        v = sn.extractsingle(r"baseline: ([\d.]+)", stdout, 1, float)
        return {"baseline": (v, "units")}


class ConsumerTest(RegressionTest):
    """Reports its FOM relative to the producer's (an efficiency)."""

    depends_on_tests = ("ProducerTest",)

    def program(self, ctx):
        base = self.dependency_results["ProducerTest"].perfvars["baseline"][0]
        return f"relative: {42.0 / base}\n", 1.0

    def check_sanity(self, stdout):
        sn.assert_found(r"relative", stdout)

    def extract_performance(self, stdout):
        v = sn.extractsingle(r"relative: ([\d.]+)", stdout, 1, float)
        return {"relative": (v, "ratio")}


class TestDependencies:
    def test_consumer_sees_producer_result(self):
        ex = Executor()
        report = ex.run_cases(
            ex.expand_cases([ConsumerTest, ProducerTest], "csd3")
        )
        assert report.success
        consumer = [r for r in report.results
                    if r.case.test.name == "ConsumerTest"][0]
        assert consumer.perfvars["relative"][0] == pytest.approx(0.42)

    def test_order_is_dependency_driven_not_list_driven(self):
        """Even listed consumer-first, the producer runs first."""
        ex = Executor()
        cases = ex.expand_cases([ConsumerTest], "csd3") + ex.expand_cases(
            [ProducerTest], "csd3"
        )
        report = ex.run_cases(cases)
        assert report.success

    def test_failed_dependency_skips_consumer(self):
        ex = Executor()
        cases = ex.expand_cases(
            [ProducerTest, ConsumerTest], "csd3", setvars=None
        )
        for case in cases:
            if isinstance(case.test, ProducerTest):
                case.test.crash = True
        report = ex.run_cases(cases)
        consumer = [r for r in report.results
                    if r.case.test.name == "ConsumerTest"][0]
        assert not consumer.passed
        assert "dependencies not satisfied" in consumer.failure_reason

    def test_missing_dependency_reported(self):
        ex = Executor()
        report = ex.run_cases(ex.expand_cases([ConsumerTest], "csd3"))
        assert not report.success
        assert "ProducerTest" in report.results[0].failure_reason

    def test_dependency_cycle_rejected(self):
        class A(RegressionTest):
            depends_on_tests = ("B",)

            def program(self, ctx):
                return "x", 1.0

        class B(RegressionTest):
            depends_on_tests = ("A",)

            def program(self, ctx):
                return "x", 1.0

        ex = Executor()
        with pytest.raises(ValueError, match="cycle"):
            ex.run_cases(ex.expand_cases([A, B], "csd3"))

    def test_dependencies_are_per_platform(self):
        """A producer on archer2 does not satisfy a consumer on csd3."""
        ex = Executor()
        cases = ex.expand_cases([ProducerTest], "archer2") + ex.expand_cases(
            [ConsumerTest], "csd3"
        )
        report = ex.run_cases(cases)
        consumer = [r for r in report.results
                    if r.case.test.name == "ConsumerTest"][0]
        assert not consumer.passed
