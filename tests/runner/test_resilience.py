"""Tests for the retry/quarantine/circuit-breaker resilience layer."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultClock, FaultPlan, InjectedFault
from repro.pkgmgr.concretizer import ConcretizationError
from repro.pkgmgr.installer import BuildFailure
from repro.pkgmgr.spec import Spec


def build_failure(reason):
    return BuildFailure(Spec("demo@1.0"), [], reason)
from repro.runner import sanity as sn
from repro.runner.benchmark import RegressionTest, run_after, run_before
from repro.runner.executor import Executor
from repro.runner.fields import variable
from repro.runner.pipeline import infra_failure, run_case
from repro.runner.resilience import (
    CampaignAborted,
    CircuitBreaker,
    Quarantine,
    RetryPolicy,
    is_transient,
)
from repro.runner.sanity import SanityError
from repro.scheduler.base import AdmissionError, SchedulerError


class Echo(RegressionTest):
    message = variable(str, value="value 42.0")

    def program(self, ctx):
        return f"OUT: {self.message}\n", 1.0

    def check_sanity(self, stdout):
        sn.assert_found(r"OUT:", stdout)

    def extract_performance(self, stdout):
        v = sn.extractsingle(r"([\d.]+)", stdout, 1, float)
        return {"value": (v, "units")}


class BadHook(Echo):
    """A benchmark whose user hook crashes (satellite regression)."""

    @run_after("setup")
    def explode(self):
        raise RuntimeError("user hook bug")


class BadRunHook(Echo):
    @run_before("run")
    def explode_late(self):
        raise KeyError("missing key")


def one_case(cls, system="archer2"):
    ex = Executor()
    cases = ex.expand_cases([cls], system)
    assert len(cases) == 1
    return cases[0]


class TestRetryTaxonomy:
    @pytest.mark.parametrize(
        "exc",
        [
            SchedulerError("submit flake"),
            build_failure("compiler node hiccup"),
            OSError("disk glitch"),
        ],
    )
    def test_transient(self, exc):
        assert is_transient(exc)

    @pytest.mark.parametrize(
        "exc",
        [
            AdmissionError("account required"),   # SchedulerError subclass!
            ConcretizationError("conflict"),
            SanityError("pattern not found"),
            ValueError("bad config"),
            KeyError("oops"),
            TypeError("wrong type"),
            RuntimeError("unknown bug"),          # unknown -> permanent
        ],
    )
    def test_permanent(self, exc):
        assert not is_transient(exc)

    def test_injected_fault_carries_its_own_transience(self):
        plan = FaultPlan.at("build", attempts=1)
        plan_perm = FaultPlan.at("build", attempts=None)
        with pytest.raises(InjectedFault) as t:
            plan.fire("build", "a")
        with pytest.raises(InjectedFault) as p:
            plan_perm.fire("build", "a")
        assert is_transient(t.value)
        assert not is_transient(p.value)


class TestRetryPolicy:
    def test_backoff_grows_exponentially_and_caps(self):
        policy = RetryPolicy(backoff_base=1.0, backoff_factor=2.0,
                             backoff_max=4.0, jitter=0.0, max_attempts=6)
        assert policy.schedule("case") == [1.0, 2.0, 4.0, 4.0, 4.0]

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(jitter=0.25, seed=9)
        a = policy.backoff(1, "case-a")
        assert a == RetryPolicy(jitter=0.25, seed=9).backoff(1, "case-a")
        assert 0.75 <= a <= 1.25

    def test_single_is_one_attempt(self):
        assert RetryPolicy.single().max_attempts == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_base": -1.0},
            {"backoff_factor": 0.5},
            {"jitter": 1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31),
           attempt=st.integers(min_value=1, max_value=10))
    def test_backoff_never_negative(self, seed, attempt):
        policy = RetryPolicy(jitter=0.5, seed=seed, max_attempts=11)
        assert policy.backoff(attempt, "k") >= 0.0


class TestCircuitBreaker:
    def test_unlimited_never_trips(self):
        breaker = CircuitBreaker(None)
        for _ in range(100):
            breaker.record_failure()
        assert not breaker.tripped

    def test_trips_at_budget(self):
        breaker = CircuitBreaker(2)
        breaker.record_failure()
        assert not breaker.tripped
        breaker.record_failure()
        assert breaker.tripped
        assert "max-failures=2" in breaker.describe()

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            CircuitBreaker(0)


class TestQuarantine:
    def test_threshold_and_seed(self):
        q = Quarantine(threshold=2)
        assert not q.is_quarantined("fp")
        q.record_failure("fp")
        assert not q.is_quarantined("fp")
        q.record_failure("fp")
        assert q.is_quarantined("fp")
        q2 = Quarantine(threshold=2)
        q2.seed({"fp": 2})
        assert q2.is_quarantined("fp")

    def test_disabled(self):
        q = Quarantine(threshold=None)
        for _ in range(10):
            q.record_failure("fp")
        assert not q.is_quarantined("fp")


class TestHookHardening:
    """Satellite: a raising hook fails the *case*, not the campaign."""

    def test_setup_hook_exception_is_stage_failure(self):
        result = run_case(one_case(BadHook))
        assert not result.passed
        assert result.failing_stage == "setup"
        assert "explode" in result.failure_reason
        assert "RuntimeError" in result.failure_reason
        assert "user hook bug" in result.failure_reason
        assert not result.retryable  # unknown exception -> permanent

    def test_run_hook_exception_names_hook_and_stage(self):
        result = run_case(one_case(BadRunHook))
        assert result.failing_stage == "run"
        assert "explode_late" in result.failure_reason

    def test_campaign_survives_hook_crash(self):
        ex = Executor()
        cases = ex.expand_cases([BadHook, Echo], "archer2")
        report = ex.run_cases(cases)
        assert len(report.failed) == 1
        assert len(report.passed) == 1
        assert "hook" in report.failed[0].failure_reason


class TestExplicitSkipFlag:
    """Satellite: skips are an explicit field, never substring inference."""

    def test_invalid_platform_is_skip(self):
        class Picky(Echo):
            valid_systems = ["csd3:*"]

        result = run_case(one_case(Picky, system="archer2"))
        assert result.skipped
        assert not result.passed

    def test_failure_text_mentioning_not_valid_is_not_a_skip(self):
        class Liar(Echo):
            def check_sanity(self, stdout):
                raise SanityError("output not valid for this check")

        result = run_case(one_case(Liar))
        assert not result.skipped
        assert result.failing_stage == "sanity"


class TestAccountDefaults:
    """Satellite: account/QoS fallbacks live in system config, not code."""

    def test_shipped_systems_declare_defaults(self):
        from repro.runner.config import default_site_config

        site = default_site_config()
        for name, system in site.systems.items():
            if system.requires_account:
                assert system.default_account, name

    def test_archer2_keeps_paper_accounting(self):
        case = one_case(Echo)
        result = run_case(case)
        assert result.passed
        assert "--account=z19" in result.job_script
        assert "--qos=standard" in result.job_script

    def test_explicit_account_overrides_default(self):
        case = one_case(Echo)
        case.account = "t01"
        result = run_case(case)
        assert "--account=t01" in result.job_script

    def test_missing_account_fails_admission_cleanly(self):
        case = one_case(Echo)
        case.system = dataclasses.replace(case.system, default_account=None)
        result = run_case(case, retry=RetryPolicy(max_attempts=3))
        assert not result.passed
        assert result.failing_stage == "run"
        assert "account" in result.failure_reason
        assert result.attempts == 1  # AdmissionError is permanent: no retry


class TestRunCaseRetry:
    def test_transient_build_fault_retried_to_success(self):
        case = one_case(Echo)
        faults = FaultPlan.at("build", attempts=2)
        result = run_case(case, retry=RetryPolicy(max_attempts=4, jitter=0.0),
                          faults=faults)
        assert result.passed
        assert result.attempts == 3
        assert result.backoff_schedule == [1.0, 2.0]
        assert len(result.fault_log) == 2
        assert all(f.startswith("injected:build@") for f in result.fault_log)

    def test_backoff_sleeps_virtual_clock_only(self):
        case = one_case(Echo)
        faults = FaultPlan.at("submit", attempts=1)
        clock = FaultClock()
        result = run_case(case, retry=RetryPolicy(max_attempts=2, jitter=0.0),
                          faults=faults, clock=clock)
        assert result.passed
        assert clock.slept_seconds == 1.0

    def test_permanent_fault_exhausts_budget_and_quarantines(self):
        case = one_case(Echo)
        faults = FaultPlan.at("submit", attempts=None)
        result = run_case(case, retry=RetryPolicy(max_attempts=3), faults=faults)
        assert not result.passed
        assert result.attempts == 1   # permanent: not worth retrying
        assert not result.quarantined

    def test_timeout_fault_is_node_failure_with_partial_stdout(self):
        case = one_case(Echo)
        faults = FaultPlan.at("timeout", attempts=1)
        result = run_case(case, faults=faults)  # single attempt
        assert not result.passed
        assert result.failing_stage == "run"
        assert "NODE_FAIL" in result.failure_reason
        assert result.retryable

    def test_timeout_fault_recovered_on_retry(self):
        case = one_case(Echo)
        faults = FaultPlan.at("timeout", attempts=1)
        result = run_case(case, retry=RetryPolicy(max_attempts=2, jitter=0.0),
                          faults=faults)
        assert result.passed
        assert result.attempts == 2

    def test_retry_budget_exhaustion_marks_quarantined(self):
        case = one_case(Echo)
        faults = FaultPlan.at("submit", attempts=10)  # outlasts the budget
        result = run_case(case, retry=RetryPolicy(max_attempts=3), faults=faults)
        assert not result.passed
        assert result.attempts == 3
        assert result.quarantined
        assert result.retryable

    def test_infra_failure_is_structured(self):
        case = one_case(Echo)
        result = infra_failure(case, OSError("filesystem went away"))
        assert not result.passed
        assert result.failing_stage == "internal"
        assert "filesystem went away" in result.failure_reason
        assert result.retryable


class TestCircuitBreakerInCampaign:
    def test_max_failures_stops_campaign(self):
        class AlwaysFails(Echo):
            def check_sanity(self, stdout):
                raise SanityError("never right")

        ex = Executor()
        cases = ex.expand_cases([AlwaysFails], "archer2",
                                environs=["default", "gcc@11.2.0"])
        assert len(cases) == 2
        report = ex.run_cases(cases, max_failures=1)
        assert report.aborted is not None
        assert "circuit breaker" in report.aborted
        assert len(report.results) == 1  # second case never ran
        assert "ABORTED" in report.summary()
        assert not report.success

    def test_breaker_trip_point_is_policy_independent(self):
        class Flaky(Echo):
            def check_sanity(self, stdout):
                raise SanityError("no")

        def trip(policy, workers):
            ex = Executor()
            cases = ex.expand_cases([Flaky, Echo], "archer2")
            report = ex.run_cases(cases, policy=policy, workers=workers,
                                  max_failures=1)
            return [r.case.display_name for r in report.results], report.aborted

        assert trip("serial", 1) == trip("async", 4)

    def test_campaign_aborted_passes_the_guards(self):
        # CampaignAborted is a BaseException: neither run_case's blanket
        # guard nor run_waves' infra guard may swallow it
        with pytest.raises(CampaignAborted):
            raise CampaignAborted("deliberate")
        assert not isinstance(CampaignAborted("x"), Exception)
