"""Tests for --dry-run, repro-plot --check-regressions, repro-pkg env,
and the line-chart renderer."""

import pytest

from repro.pkgmgr.cli import main as pkg_main
from repro.postprocess.cli import main as plot_main
from repro.postprocess.plotting import line_chart_svg
from repro.runner.cli import main as bench_main


class TestDryRun:
    def test_renders_paper_job_script_without_running(self, capsys, tmp_path):
        rc = bench_main([
            "-c", "hpgmg", "-r", "--dry-run", "--system", "archer2",
            "-J--qos=standard",
            "--setvar=num_tasks=8", "--setvar=num_tasks_per_node=2",
            "--setvar=num_cpus_per_task=8",
            "--perflog-dir", str(tmp_path / "pl"),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "#SBATCH --nodes=4" in out
        assert "srun --ntasks=8 --cpus-per-task=8 hpgmg-fv 7 8" in out
        assert "spec: hpgmg@0.4%gcc@11.2.0" in out
        # nothing ran: no perflogs
        assert not (tmp_path / "pl").exists()

    def test_dry_run_shows_build_conflicts(self, capsys):
        rc = bench_main([
            "-c", "babelstream", "-r", "--dry-run", "--tag", "cuda",
            "--system", "csd3",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "BUILD WOULD FAIL" in out

    def test_dry_run_pbs_dialect(self, capsys):
        rc = bench_main([
            "-c", "babelstream", "-r", "--dry-run", "--tag", "omp",
            "--system", "isambard",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "#PBS" in out and "aprun" in out


class TestSlowFaultFlags:
    """repro-bench --watchdog / --speculate / --drain-after plumbing."""

    def _run(self, tmp_path, *extra):
        return bench_main([
            "-c", "stream", "-r", "--system", "archer2",
            "--perflog-dir", str(tmp_path / "pl"), *extra,
        ])

    def test_quiet_run_with_all_flags(self, capsys, tmp_path):
        rc = self._run(
            tmp_path,
            "--watchdog", "run=600,build=300,heartbeat=10",
            "--speculate", "--straggler-factor", "3.0",
            "--drain-after", "2",
        )
        out = capsys.readouterr().out
        assert rc == 0
        # a healthy campaign: the machinery stays silent in the summary
        assert "Hung" not in out
        assert "Drained" not in out

    def test_watchdog_with_chaos_reports_hung(self, capsys, tmp_path):
        rc = self._run(
            tmp_path,
            "--inject-faults", "hang@*", "--fault-seed", "7",
            "--watchdog", "run=100", "--max-retries", "3",
        )
        out = capsys.readouterr().out
        assert rc == 0  # the watchdog + retry recovered the hang
        assert "Hung:" in out

    def test_bad_watchdog_spec_rejected(self, capsys, tmp_path):
        rc = self._run(tmp_path, "--watchdog", "run=abc")
        assert rc == 1
        assert "--watchdog" in capsys.readouterr().err

    def test_bad_straggler_factor_rejected(self, capsys, tmp_path):
        rc = self._run(tmp_path, "--speculate", "--straggler-factor", "0.5")
        assert rc == 1
        assert "--straggler-factor" in capsys.readouterr().err

    def test_bad_drain_after_rejected(self, capsys, tmp_path):
        rc = self._run(tmp_path, "--drain-after", "0")
        assert rc == 1
        assert "--drain-after" in capsys.readouterr().err


class TestPlotCiGate:
    def _populate(self, tmp_path, runs=4):
        for _ in range(runs):
            assert bench_main([
                "-c", "osu", "-r", "--system", "csd3",
                "--perflog-dir", str(tmp_path),
            ]) == 0

    def test_green_on_stable_history(self, tmp_path, capsys):
        self._populate(tmp_path)
        rc = plot_main([str(tmp_path), "--check-regressions"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 regression(s)" in out

    def test_red_on_injected_regression(self, tmp_path, capsys):
        self._populate(tmp_path)
        import glob

        log = sorted(glob.glob(str(tmp_path / "**" / "*.log"),
                               recursive=True))[0]
        last = open(log).read().strip().splitlines()[-1].split("|")
        # max_bandwidth is higher-is-better: halving it is a regression
        last[9] = str(float(last[9]) * 0.5)
        with open(log, "a") as fh:
            fh.write("|".join(last) + "\n")
        rc = plot_main([str(tmp_path), "--check-regressions"])
        assert rc == 1
        assert "regressed" in capsys.readouterr().out


class TestPkgEnvCommand:
    def test_env_for_system(self, capsys):
        assert pkg_main(["env", "archer2"]) == 0
        out = capsys.readouterr().out
        assert "cray-mpich@8.1.23" in out
        assert "mpi -> cray-mpich@8.1.23" in out
        assert "PrgEnv-gnu" in out

    def test_env_defaults_to_generic(self, capsys):
        assert pkg_main(["env"]) == 0
        out = capsys.readouterr().out
        assert "environment: generic" in out


class TestLineChart:
    SERIES = {"archer2": [(1, 1.0), (8, 5.9), (64, 20.1)],
              "csd3": [(1, 1.0), (8, 6.5)]}

    def test_wellformed_svg(self):
        svg = line_chart_svg(self.SERIES, title="speedup", log_x=True)
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert svg.count("<path") == 2
        assert svg.count("<circle") == 5
        assert "speedup" in svg

    def test_empty_series(self):
        svg = line_chart_svg({"a": []})
        assert svg.startswith("<svg")


class TestScalingFlags:
    """repro-bench --site / --policy=procs / --journal-batch / --profile."""

    FLEET_YAML = (
        "systems:\n"
        "  - name: fleet\n"
        "    description: synthetic test fleet\n"
        "    scheduler: slurm\n"
        "    num_nodes: 512\n"
    )

    def _run(self, tmp_path, *extra):
        return bench_main([
            "-c", "stream", "-r", "--system", "archer2",
            "--perflog-dir", str(tmp_path / "pl"), *extra,
        ])

    def test_site_yaml_adds_a_fleet_system(self, capsys, tmp_path):
        site = tmp_path / "fleet.yaml"
        site.write_text(self.FLEET_YAML)
        rc = bench_main([
            "-c", "stream", "-r", "--system", "fleet",
            "--site", str(site),
            "--perflog-dir", str(tmp_path / "pl"),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "fleet" in out

    def test_missing_site_file_errors(self, capsys, tmp_path):
        rc = self._run(tmp_path, "--site", str(tmp_path / "nope.yaml"))
        assert rc == 1
        assert "--site" in capsys.readouterr().err

    def test_procs_rejects_spack_suites_cleanly(self, capsys, tmp_path):
        # every built-in suite is Spack-managed, which --policy=procs
        # refuses (per-worker install databases would break determinism);
        # the CLI must turn that into a clean error, not a traceback
        rc = self._run(tmp_path, "--policy=procs", "-j", "2")
        err = capsys.readouterr().err
        assert rc == 1
        assert "--policy=procs" in err
        assert "async" in err

    def test_journal_batch_plumbs_through(self, capsys, tmp_path):
        journal = tmp_path / "j.jsonl"
        rc = self._run(tmp_path, "--journal", str(journal),
                       "--journal-batch", "8")
        assert rc == 0
        assert journal.exists()

    def test_bad_journal_batch_rejected(self, capsys, tmp_path):
        rc = self._run(tmp_path, "--journal-batch", "0")
        assert rc == 1
        assert "--journal-batch" in capsys.readouterr().err

    def test_profile_prints_hotspot_table(self, capsys, tmp_path):
        rc = self._run(tmp_path, "--profile")
        err = capsys.readouterr().err
        assert rc == 0
        assert "profile (top 25" in err
        assert "cumulative" in err

    def test_profile_dumps_pstats_file(self, capsys, tmp_path):
        out_path = tmp_path / "prof.pstats"
        rc = self._run(tmp_path, "--profile", str(out_path))
        err = capsys.readouterr().err
        assert rc == 0
        assert out_path.exists()
        assert str(out_path) in err


class TestSweepFiles:
    """repro-bench -c my_sweep.py: user sweep files, reframe-style."""

    SWEEP = '''
from repro.runner import sanity as sn
from repro.runner.benchmark import RegressionTest, rfm_test
from repro.runner.fields import parameter


@rfm_test
class FleetSweep(RegressionTest):
    point = parameter([1, 2, 3, 4])

    def program(self, ctx):
        return f"p {self.point}: {self.point * 10.0}\\n", 1.0

    def check_sanity(self, stdout):
        sn.assert_found(r"p", stdout)

    def extract_performance(self, stdout):
        v = sn.extractsingle(r": ([\\d.]+)", stdout, 1, float)
        return {"value": (v, "MB/s")}
'''

    def test_fleet_walkthrough_with_procs(self, capsys, tmp_path):
        # the README walkthrough end to end: custom sweep file, synthetic
        # fleet from a --site YAML, process-pool policy, batched journal
        sweep = tmp_path / "fleet_sweep.py"
        sweep.write_text(self.SWEEP)
        site = tmp_path / "fleet.yaml"
        site.write_text(TestScalingFlags.FLEET_YAML)
        rc = bench_main([
            "-c", str(sweep), "-r", "--system", "fleet",
            "--site", str(site), "--policy=procs", "-j", "2",
            "--journal", str(tmp_path / "j.jsonl"), "--journal-batch", "8",
            "--perflog-dir", str(tmp_path / "pl"),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "4 passed" in out
        assert (tmp_path / "j.jsonl").exists()

    def test_missing_sweep_file_errors(self, capsys, tmp_path):
        rc = bench_main([
            "-c", str(tmp_path / "nope.py"), "-r", "--system", "archer2",
        ])
        assert rc == 1
        assert "does not exist" in capsys.readouterr().err

    def test_broken_sweep_file_errors_cleanly(self, capsys, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        rc = bench_main(["-c", str(bad), "-r", "--system", "archer2"])
        assert rc == 1
        assert "SyntaxError" in capsys.readouterr().err
