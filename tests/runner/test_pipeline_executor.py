"""Tests for config, the pipeline, executor, perflog and the CLI."""

import os

import pytest

from repro.runner import sanity as sn
from repro.runner.benchmark import (
    ProgramContext,
    RegressionTest,
    SpackTest,
)
from repro.runner.benchmark import TestRegistry as RunnerRegistry
from repro.runner.cli import main as bench_main
from repro.runner.config import ConfigError, default_site_config
from repro.runner.executor import Executor
from repro.runner.fields import parameter, variable
from repro.runner.perflog import PERFLOG_FIELDS, format_record
from repro.runner.pipeline import TestCase as RunnerCase
from repro.runner.pipeline import run_case
from repro.systems.registry import UnknownSystemError


class EchoTest(RegressionTest):
    """A minimal benchmark used across these tests."""

    message = variable(str, value="hello world 42.5")
    executable = variable(str, value="echo")

    def program(self, ctx):
        return f"OUT: {self.message}\n", 1.0

    def check_sanity(self, stdout):
        sn.assert_found(r"OUT:", stdout)

    def extract_performance(self, stdout):
        value = sn.extractsingle(r"([\d.]+)", stdout, 1, float)
        return {"value": (value, "units")}


class TestSiteConfig:
    def test_all_paper_systems_configured(self):
        site = default_site_config()
        assert set(site.systems) == {
            "archer2", "cosma8", "csd3", "isambard", "isambard-macs",
            "noctua2",
        }

    def test_get_with_partition(self):
        site = default_site_config()
        system, part = site.get("isambard-macs:volta")
        assert part.node.gpu is not None

    def test_get_unknown_system(self):
        with pytest.raises(UnknownSystemError):
            default_site_config().get("summit")

    def test_get_unknown_partition(self):
        with pytest.raises(ConfigError):
            default_site_config().get("archer2:gpu")

    def test_hostname_detection(self):
        site = default_site_config()
        assert site.detect("ln01") == "archer2"
        assert site.detect("unknown-host") is None

    def test_environs_have_default_first(self):
        site = default_site_config()
        _, part = site.get("isambard-macs")
        assert part.environs[0].name == "default"
        # MACS default is the gcc 9.2.0 module
        assert part.environs[0].compiler_version == "9.2.0"

    def test_merge_yaml_new_system(self):
        site = default_site_config()
        site.merge_yaml(
            "systems:\n"
            "  - name: mylaptop\n"
            "    scheduler: local\n"
            "    launcher: local\n"
        )
        system, part = site.get("mylaptop")
        assert part.scheduler == "local"

    def test_merge_yaml_bad_doc(self):
        with pytest.raises(ConfigError):
            default_site_config().merge_yaml("systems:\n  - nope: 1\n")


def make_case(test=None, platform="csd3", environ="default"):
    site = default_site_config()
    system, part = site.get(platform)
    return RunnerCase(
        test=test or EchoTest(),
        system=system,
        partition=part,
        environ_name=environ,
    )


class TestPipeline:
    def test_happy_path(self):
        result = run_case(make_case())
        assert result.passed
        assert result.perfvars["value"][0] == 42.5
        assert "OUT:" in result.stdout
        assert result.job_script.startswith("#!/bin/bash")
        assert "echo" in result.run_command

    def test_invalid_platform_skips(self):
        t = EchoTest()
        t.valid_systems = ["archer2"]
        result = run_case(make_case(t, platform="csd3"))
        assert not result.passed
        assert result.failing_stage == "setup"
        assert result.skipped

    def test_invalid_environ(self):
        t = EchoTest()
        t.valid_prog_environs = ["gcc@99*"]
        result = run_case(make_case(t))
        assert result.failing_stage == "setup"

    def test_sanity_failure_reported(self):
        class Broken(EchoTest):
            def program(self, ctx):
                return "garbage\n", 1.0

        result = run_case(make_case(Broken()))
        assert result.failing_stage == "sanity"

    def test_program_crash_is_run_failure(self):
        class Crash(EchoTest):
            def program(self, ctx):
                raise RuntimeError("SIGSEGV")

        result = run_case(make_case(Crash()))
        assert result.failing_stage == "run"
        assert "SIGSEGV" in result.failure_reason

    def test_timeout_is_run_failure(self):
        class Slow(EchoTest):
            def program(self, ctx):
                return "OUT: 1\n", 1e9

        t = Slow()
        t.time_limit = 10.0
        result = run_case(make_case(t))
        assert result.failing_stage == "run"
        assert "TIMEOUT" in result.failure_reason.upper()

    def test_reference_check(self):
        t = EchoTest()
        t.reference = {"csd3:*": {"value": (42.5, -0.01, 0.01, "units")}}
        assert run_case(make_case(t)).passed
        t2 = EchoTest()
        t2.reference = {"csd3:*": {"value": (100.0, -0.01, 0.01, "units")}}
        result = run_case(make_case(t2))
        assert result.failing_stage == "performance"

    def test_spack_test_builds(self):
        class Spacky(SpackTest, EchoTest):
            def __init__(self, **p):
                super().__init__(**p)
                self.spack_spec = "stream"

        result = run_case(make_case(Spacky()))
        assert result.passed
        assert result.concrete_spec is not None
        assert result.concrete_spec.name == "stream"
        assert result.build_seconds > 0

    def test_spack_build_failure_reported(self):
        class BadSpec(SpackTest, EchoTest):
            def __init__(self, **p):
                super().__init__(**p)
                self.spack_spec = "babelstream +cuda"  # CPU platform

        result = run_case(make_case(BadSpec()))
        assert result.failing_stage == "build"
        assert "conflict" in result.failure_reason


class TestExecutor:
    def test_variant_expansion(self):
        class Multi(EchoTest):
            speed = parameter(["fast", "slow"])

        ex = Executor()
        cases = ex.expand_cases([Multi], "csd3")
        assert {c.test.name for c in cases} == {"Multi_fast", "Multi_slow"}

    def test_setvar_applied_and_validated(self):
        ex = Executor()
        cases = ex.expand_cases(
            [EchoTest], "csd3", setvars={"message": "x 7.25"}
        )
        assert cases[0].test.message == "x 7.25"
        with pytest.raises(KeyError, match="no .*such variable"):
            ex.expand_cases([EchoTest], "csd3", setvars={"bogus": "1"})

    def test_report_summary(self):
        ex = Executor()
        report = ex.run([EchoTest], "csd3")
        assert report.success
        text = report.summary()
        assert "[ PASSED ]" in text and "1 passed" in text
        assert "value: 42.5" in report.performance_report()

    def test_tag_filtering(self):
        class Tagged(EchoTest):
            tags = {"special"}

        ex = Executor()
        assert ex.expand_cases([Tagged], "csd3", tags=["special"])
        assert not ex.expand_cases([Tagged], "csd3", tags=["other"])

    def test_name_filtering(self):
        ex = Executor()
        assert ex.expand_cases([EchoTest], "csd3", name_patterns=["Echo"])
        assert not ex.expand_cases([EchoTest], "csd3", exclude=["Echo"])


class TestPerflog:
    def test_format_record_fields(self):
        result = run_case(make_case())
        lines = format_record(result, timestamp="2023-11-12T00:00:00")
        assert len(lines) == 1
        parts = lines[0].split("|")
        assert len(parts) == len(PERFLOG_FIELDS)
        assert parts[2] == "EchoTest"
        assert parts[-1] == "pass"

    def test_failed_case_logged(self):
        class Broken(EchoTest):
            def program(self, ctx):
                return "garbage\n", 1.0

        result = run_case(make_case(Broken()))
        lines = format_record(result)
        assert lines[0].endswith("fail:sanity")

    def test_handler_writes_and_appends(self, tmp_path):
        from repro.runner.perflog import PerflogHandler

        handler = PerflogHandler(str(tmp_path))
        result = run_case(make_case())
        path = handler.emit(result)
        handler.emit(result)
        text = open(path).read().splitlines()
        assert text[0].startswith("timestamp|")
        assert len(text) == 3  # header + two appended records


class TestRegistryAndCli:
    def test_registry_select(self):
        reg = RunnerRegistry()
        reg.register(EchoTest)
        assert reg.names() == ["EchoTest"]
        assert reg.select(name_patterns=["Echo*"])
        assert not reg.select(exclude=["Echo*"])
        with pytest.raises(Exception):
            reg.get("Nothing")

    def test_cli_list(self, capsys):
        assert bench_main(["-c", "hpcg", "--list"]) == 0
        out = capsys.readouterr().out
        assert "HPCG_Original" in out and "HPCG_Intel" in out

    def test_cli_unknown_suite(self, capsys):
        assert bench_main(["-c", "linpack", "--list"]) == 1

    def test_cli_requires_system_when_undetectable(self, capsys):
        rc = bench_main(["-c", "hpcg", "-r"])
        assert rc == 1
        assert "--system" in capsys.readouterr().err

    def test_cli_paper_hpcg_invocation(self, capsys, tmp_path):
        """The appendix A.1.2 invocation, translated."""
        rc = bench_main([
            "-c", "hpcg", "-r", "-n", "HPCG_", "-x", "HPCG_Intel",
            "--system", "isambard-macs:cascadelake",
            "--performance-report",
            "--perflog-dir", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "HPCG_Original" in out
        assert "HPCG_Intel" not in out.split("PERFORMANCE REPORT")[1]

    def test_cli_paper_hpgmg_invocation(self, capsys, tmp_path):
        """The appendix A.1.3 invocation, translated."""
        rc = bench_main([
            "-c", "hpgmg", "-r", "-J--qos=standard", "--system", "archer2",
            "-S", "spack_spec=hpgmg%gcc",
            "--setvar=num_cpus_per_task=8",
            "--setvar=num_tasks_per_node=2",
            "--setvar=num_tasks=8",
            "--perflog-dir", str(tmp_path),
        ])
        assert rc == 0
        log = os.path.join(str(tmp_path), "archer2", "compute",
                           "HpgmgBenchmark.log")
        assert os.path.exists(log)
