"""Tests for the deterministic fault-injection harness (repro.faults)."""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import (
    FAULT_KINDS,
    HANG_FACTOR,
    SICK_FACTOR,
    SLOW_FACTOR,
    Fault,
    FaultClock,
    FaultPlan,
    FaultSpecError,
    InjectedFault,
    SchedulerFaultInjector,
    parse_fault_spec,
    unit_hash,
)


class TestUnitHash:
    def test_deterministic(self):
        assert unit_hash(7, "build", "case-a") == unit_hash(7, "build", "case-a")

    def test_in_unit_interval(self):
        for i in range(50):
            assert 0.0 <= unit_hash(i, "x", str(i)) < 1.0

    def test_seed_changes_draw(self):
        draws = {unit_hash(seed, "build", "case-a") for seed in range(20)}
        assert len(draws) == 20

    def test_parts_are_delimited(self):
        # ("ab", "c") must not collide with ("a", "bc")
        assert unit_hash(0, "ab", "c") != unit_hash(0, "a", "bc")


class TestFaultSpecGrammar:
    def test_rate_clause(self):
        (clause,) = parse_fault_spec("build:0.3")
        assert clause.kind == "build"
        assert clause.rate == 0.3
        assert clause.count == 1
        assert clause.transient

    def test_rate_with_count(self):
        (clause,) = parse_fault_spec("submit:0.2x2")
        assert clause.count == 2

    def test_glob_clause(self):
        (clause,) = parse_fault_spec("hook@HPCG_*")
        assert clause.glob == "HPCG_*"
        assert clause.count == 1

    def test_glob_with_star_count_is_permanent(self):
        (clause,) = parse_fault_spec("perflog@*#*")
        assert clause.count is None
        assert not clause.transient

    def test_multiple_clauses(self):
        clauses = parse_fault_spec("build:0.3,submit:0.2x2,timeout@*hpcg*#1")
        assert [c.kind for c in clauses] == ["build", "submit", "timeout"]

    def test_roundtrip_format(self):
        spec = "build:0.3,submit:0.2x2,timeout@*hpcg*#1,perflog@*#*"
        plan = FaultPlan.parse(spec)
        assert FaultPlan.parse(plan.format()).format() == plan.format()

    @pytest.mark.parametrize(
        "bad",
        [
            "explode:0.3",          # unknown kind
            "build:1.5",            # rate out of range
            "build:abc",            # unparsable rate
            "build:0.3x0",          # zero count
            "build",                # no separator
            "hook@",                # empty glob
            "",                     # empty spec
        ],
    )
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(FaultSpecError):
            parse_fault_spec(bad)


class TestFaultClock:
    def test_attempts_count_per_site(self):
        clock = FaultClock()
        assert clock.next_attempt(("build", "a")) == 1
        assert clock.next_attempt(("build", "a")) == 2
        assert clock.next_attempt(("build", "b")) == 1
        assert clock.attempts(("build", "a")) == 2

    def test_virtual_sleep(self):
        clock = FaultClock()
        clock.sleep(1.5)
        clock.sleep(2.5)
        assert clock.now == 4.0
        assert clock.slept_seconds == 4.0
        with pytest.raises(ValueError):
            clock.sleep(-1)

    def test_reset(self):
        clock = FaultClock()
        clock.sleep(3.0)
        clock.next_attempt(("x",))
        clock.reset()
        assert clock.now == 0.0
        assert clock.attempts(("x",)) == 0

    def test_thread_safety_of_attempt_counter(self):
        clock = FaultClock()

        def bump():
            for _ in range(500):
                clock.next_attempt(("k", "t"))

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert clock.attempts(("k", "t")) == 2000


class TestFaultPlan:
    def test_explicit_fault_fires_once_then_clears(self):
        plan = FaultPlan.at("build", glob="case-*", attempts=1)
        fault = plan.check("build", "case-a")
        assert fault == Fault("build", "case-a", attempt=1, transient=True)
        assert plan.check("build", "case-a") is None  # attempt 2: cleared
        assert plan.fired == 1

    def test_permanent_fault_never_clears(self):
        plan = FaultPlan.at("submit", attempts=None)
        for _ in range(5):
            with pytest.raises(InjectedFault) as err:
                plan.fire("submit", "case-a")
            assert not err.value.transient

    def test_kind_mismatch_does_not_fire(self):
        plan = FaultPlan.at("build")
        assert plan.check("submit", "case-a") is None

    def test_rate_zero_never_rate_one_always(self):
        never = FaultPlan.parse("build:0.0")
        always = FaultPlan.parse("build:1.0")
        for i in range(25):
            assert never.check("build", f"case-{i}") is None
            assert always.check("build", f"case-{i}") is not None

    def test_selection_is_order_independent(self):
        targets = [f"case-{i}" for i in range(40)]
        forward = FaultPlan.parse("build:0.5", seed=3)
        backward = FaultPlan.parse("build:0.5", seed=3)
        hit_fwd = {t for t in targets if forward.check("build", t)}
        hit_bwd = {t for t in reversed(targets) if backward.check("build", t)}
        assert hit_fwd == hit_bwd
        assert 0 < len(hit_fwd) < len(targets)  # seed 3 splits the set

    def test_faults_for_filters_by_target(self):
        plan = FaultPlan.parse("build:1.0,submit:1.0")
        plan.check("build", "a")
        plan.check("submit", "a")
        plan.check("build", "b")
        assert len(plan.faults_for("a")) == 2
        assert [f.kind for f in plan.faults_for("b")] == ["build"]

    def test_describe_mentions_coordinates(self):
        plan = FaultPlan.at("timeout", attempts=None)
        fault = plan.check("timeout", "case-a")
        assert fault.describe() == "injected:timeout@case-a#1:permanent"

    def test_slow_kinds_in_grammar(self):
        clauses = parse_fault_spec("hang:0.2,slow@*_3*,sicknode@nid0001#*")
        assert [c.kind for c in clauses] == ["hang", "slow", "sicknode"]
        assert not clauses[2].transient  # permanently sick node


class TestJobEffects:
    """The slow-fault consultation the scheduler makes at job start."""

    def _effects(self, spec, target="case-a", nodes=("nid0001", "nid0002")):
        plan = FaultPlan.parse(spec)
        injector = SchedulerFaultInjector(plan, target)
        return injector.job_effects(job=None, nodes=list(nodes))

    def test_no_faults_no_degradation(self):
        fx = self._effects("build:1.0")  # wrong kind: inert here
        assert not fx.degraded
        assert fx.slowdown == 1.0
        assert not fx.hung and not fx.sick_nodes

    def test_hang_explodes_duration(self):
        fx = self._effects("hang@case-a")
        assert fx.hung and fx.degraded
        assert fx.slowdown >= HANG_FACTOR

    def test_slow_multiplies(self):
        fx = self._effects("slow@case-a")
        assert fx.degraded and not fx.hung
        assert fx.slowdown == pytest.approx(SLOW_FACTOR)

    def test_sicknode_keys_on_node_names_not_case(self):
        fx = self._effects("sicknode@nid0002#*")
        assert fx.sick_nodes == ["nid0002"]
        assert fx.slowdown == pytest.approx(SICK_FACTOR)
        # a job placed elsewhere is untouched by the same plan
        fx2 = self._effects("sicknode@nid0002#*", nodes=("nid0003",))
        assert not fx2.degraded

    def test_degradations_compound(self):
        fx = self._effects("slow@case-a,sicknode@nid0001#*")
        assert fx.slowdown == pytest.approx(SLOW_FACTOR * SICK_FACTOR)
        assert len(fx.faults) == 2

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        rate=st.floats(min_value=0.0, max_value=1.0),
        kind=st.sampled_from(FAULT_KINDS),
    )
    def test_same_seed_same_schedule(self, seed, rate, kind):
        """Property: fault selection is a pure function of (seed, spec)."""
        targets = [f"case-{i}" for i in range(12)]
        a = FaultPlan([next(iter(parse_fault_spec(f"{kind}:{rate}")))], seed=seed)
        b = FaultPlan.parse(f"{kind}:{rate}", seed=seed)
        hits_a = [bool(a.check(kind, t)) for t in targets]
        hits_b = [bool(b.check(kind, t)) for t in targets]
        assert hits_a == hits_b
