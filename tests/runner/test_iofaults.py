"""Unit tests for the storage-fault plane: grammar, draws, FaultyIO.

The contract under test (DESIGN.md section 6.5/6.6): I/O faults are
selected by ``KIND:RATE@GLOB`` clauses drawn *fresh per operation* (a
disk does not remember which files it already ate), every ``FaultyIO``
append is atomic-or-fail (damage only survives a simulated crash), and
the whole schedule is a pure function of the seed.
"""

import os

import pytest

from repro.faults import (
    FAULT_KINDS,
    IO_FAULT_KINDS,
    FaultPlan,
    FaultSpecError,
    parse_fault_spec,
)
from repro.iofaults import FaultyIO, InjectedIOFault, flip_byte, tear_tail

pytestmark = pytest.mark.iochaos


class TestIoGrammar:
    def test_io_kinds_registered(self):
        for kind in IO_FAULT_KINDS:
            assert kind in FAULT_KINDS

    def test_rate_with_artifact_glob(self):
        (clause,) = parse_fault_spec("torn:0.05@journal")
        assert clause.kind == "torn"
        assert clause.rate == 0.05
        assert clause.glob == "journal"

    def test_bare_rate_clause(self):
        (clause,) = parse_fault_spec("enospc:0.01")
        assert clause.rate == 0.01
        assert clause.glob is None

    def test_glob_only_clause_has_no_rate(self):
        (clause,) = parse_fault_spec("eio@store#2")
        assert clause.rate is None
        assert clause.glob == "store"
        assert clause.count == 2

    def test_roundtrip_format(self):
        spec = "enospc:0.01,torn:0.05@journal,bitrot:0.1x2@store,eio@pack#*"
        plan = FaultPlan.parse(spec)
        assert plan.format() == spec

    def test_storm_spec_parses(self):
        plan = FaultPlan.parse(
            "enospc:0.08,eio:0.08,torn:0.08,bitrot:0.08,fsync-lie:0.08"
        )
        assert plan.has_io_faults
        assert len(plan.clauses) == 5

    def test_case_only_plan_has_no_io_faults(self):
        assert not FaultPlan.parse("build:0.3,submit:0.2").has_io_faults

    def test_bad_rate_rejected(self):
        with pytest.raises(FaultSpecError):
            parse_fault_spec("torn:1.5@journal")


class TestCheckIoDraws:
    def test_same_seed_same_schedule(self):
        plan_a = FaultPlan.parse("torn:0.3@journal", seed=7)
        plan_b = FaultPlan.parse("torn:0.3@journal", seed=7)
        seq_a = [plan_a.check_io("journal") is not None for _ in range(200)]
        seq_b = [plan_b.check_io("journal") is not None for _ in range(200)]
        assert seq_a == seq_b
        assert any(seq_a) and not all(seq_a)

    def test_different_seed_different_schedule(self):
        seqs = []
        for seed in (1, 2):
            plan = FaultPlan.parse("eio:0.5", seed=seed)
            seqs.append(
                [plan.check_io("perflog") is not None for _ in range(64)]
            )
        assert seqs[0] != seqs[1]

    def test_draws_are_fresh_per_operation(self):
        """Unlike case faults, a label is never 'selected forever'."""
        plan = FaultPlan.parse("enospc:0.5", seed=3)
        seq = [plan.check_io("store") is not None for _ in range(64)]
        assert any(seq) and not all(seq)

    def test_glob_filters_labels(self):
        plan = FaultPlan.parse("torn:1.0@journal", seed=0)
        assert plan.check_io("trace") is None
        assert plan.check_io("journal") is not None

    def test_glob_only_clause_fires_on_first_count_ops(self):
        plan = FaultPlan.parse("eio@store#2", seed=0)
        hits = [plan.check_io("store") is not None for _ in range(4)]
        assert hits == [True, True, False, False]

    def test_rate_zero_never_fires(self):
        plan = FaultPlan.parse("bitrot:0.0", seed=0)
        assert all(plan.check_io("pack") is None for _ in range(50))

    def test_case_check_untouched_by_io_clauses(self):
        plan = FaultPlan.parse("torn:1.0")
        assert plan.check("build", "CaseA") is None


def _always(kind):
    return FaultyIO(FaultPlan.parse(f"{kind}:1.0"))


class TestFaultyIOAppend:
    def test_clean_append_without_plan(self, tmp_path):
        io = FaultyIO(None)
        path = str(tmp_path / "a.jsonl")
        io.append(path, b"one\n", "journal")
        io.append(path, b"two\n", "journal")
        assert open(path, "rb").read() == b"one\ntwo\n"

    @pytest.mark.parametrize("kind", ["enospc", "eio"])
    def test_fail_fast_kinds_leave_file_untouched(self, tmp_path, kind):
        path = str(tmp_path / "a.jsonl")
        with open(path, "wb") as fh:
            fh.write(b"intact\n")
        with pytest.raises(InjectedIOFault) as err:
            _always(kind).append(path, b"more\n", "journal")
        assert err.value.transient
        assert open(path, "rb").read() == b"intact\n"

    @pytest.mark.parametrize("kind", ["torn", "bitrot"])
    def test_physical_damage_is_rolled_back(self, tmp_path, kind):
        """Atomic-or-fail: the caller never sees the damaged bytes."""
        path = str(tmp_path / "a.jsonl")
        with open(path, "wb") as fh:
            fh.write(b"intact\n")
        with pytest.raises(InjectedIOFault):
            _always(kind).append(path, b"abcdefgh\n", "journal")
        assert open(path, "rb").read() == b"intact\n"

    def test_fsync_lie_then_crash_leaves_torn_fragment(self, tmp_path):
        path = str(tmp_path / "a.jsonl")
        io = _always("fsync-lie")
        io.append(path, b"0123456789\n", "journal")
        # before the crash the data looks fine...
        assert open(path, "rb").read() == b"0123456789\n"
        assert io.unsynced_paths == [path]
        damaged = io.lose_unsynced()
        # ...after it, only a torn fragment of the unsynced tail remains
        assert damaged == [path]
        data = open(path, "rb").read()
        assert 0 < len(data) < 11
        assert b"0123456789\n".startswith(data)
        assert io.unsynced_paths == []

    def test_injected_fault_is_oserror_with_errno(self, tmp_path):
        with pytest.raises(OSError) as err:
            _always("enospc").append(str(tmp_path / "x"), b"x\n", "perflog")
        import errno

        assert err.value.errno == errno.ENOSPC


class TestFaultyIOAtomic:
    def test_torn_write_atomic_keeps_old_file(self, tmp_path):
        path = str(tmp_path / "doc.json")
        with open(path, "wb") as fh:
            fh.write(b"{}")
        with pytest.raises(InjectedIOFault):
            _always("torn").write_atomic(path, b'{"k": 1}', "store")
        assert open(path, "rb").read() == b"{}"

    def test_bitrot_commits_silently(self, tmp_path):
        """The one kind that *succeeds* with wrong bytes -- checksum food."""
        path = str(tmp_path / "doc.json")
        payload = b'{"k": 12345}'
        _always("bitrot").write_atomic(path, payload, "store")
        landed = open(path, "rb").read()
        assert landed != payload
        assert len(landed) == len(payload)

    def test_replace_guarded(self, tmp_path):
        src, dst = str(tmp_path / "s"), str(tmp_path / "d")
        with open(src, "wb") as fh:
            fh.write(b"x")
        with pytest.raises(InjectedIOFault):
            _always("eio").replace(src, dst, "pack")
        assert os.path.exists(src) and not os.path.exists(dst)


class TestDamageHelpers:
    def test_tear_tail(self, tmp_path):
        path = str(tmp_path / "f")
        with open(path, "wb") as fh:
            fh.write(b"0123456789")
        assert tear_tail(path, drop=4) == 6
        assert open(path, "rb").read() == b"012345"

    def test_flip_byte_never_hits_newline(self, tmp_path):
        path = str(tmp_path / "f")
        original = b"ab\ncd\nef\n"
        with open(path, "wb") as fh:
            fh.write(original)
        pos = flip_byte(path)
        mutated = open(path, "rb").read()
        assert mutated != original
        assert mutated.count(b"\n") == original.count(b"\n")
        assert original[pos] != mutated[pos]
