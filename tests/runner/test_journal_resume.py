"""Crash-safe campaign journal + --resume semantics + perflog durability."""

import json
import os

import pytest

from repro.runner import sanity as sn
from repro.runner.benchmark import RegressionTest
from repro.runner.executor import Executor
from repro.runner.fields import parameter, variable
from repro.runner.perflog import PERFLOG_FIELDS
from repro.runner.resilience import (
    CampaignAborted,
    CampaignJournal,
    case_fingerprint,
    result_from_record,
)
from repro.runner.sanity import SanityError

PINNED_TS = "2026-01-01T00:00:00"


class Member(RegressionTest):
    """Four independent cases -- the campaign the crash tests interrupt."""

    size = parameter([1, 2, 3, 4])
    #: class-level kill switch: crash the campaign once `ran` reaches it
    kill_at = None
    ran = 0

    def program(self, ctx):
        cls = Member
        if cls.kill_at is not None and cls.ran >= cls.kill_at:
            raise CampaignAborted("simulated crash (power loss)")
        cls.ran += 1
        return f"size {self.size}: {self.size * 1.5}\n", 1.0

    def check_sanity(self, stdout):
        sn.assert_found(r"size", stdout)

    def extract_performance(self, stdout):
        v = sn.extractsingle(r": ([\d.]+)", stdout, 1, float)
        return {"value": (v, "units")}


class Hopeless(RegressionTest):
    """Fails every run -- the quarantine candidate."""

    runs = 0

    def program(self, ctx):
        Hopeless.runs += 1
        return "bad\n", 1.0

    def check_sanity(self, stdout):
        raise SanityError("always wrong")


@pytest.fixture(autouse=True)
def _reset_kill_switch():
    Member.kill_at = None
    Member.ran = 0
    Hopeless.runs = 0
    yield
    Member.kill_at = None
    Member.ran = 0


def make_executor(tmp_path, tag):
    prefix = str(tmp_path / f"perflogs-{tag}")
    return Executor(perflog_prefix=prefix, perflog_timestamp=PINNED_TS), prefix


def read_logs(prefix):
    logs = {}
    for root, _, files in os.walk(prefix):
        for fname in files:
            path = os.path.join(root, fname)
            with open(path, "rb") as fh:
                logs[os.path.relpath(path, prefix)] = fh.read()
    return logs


class TestFingerprint:
    def test_stable_across_expansions(self):
        a = Executor().expand_cases([Member], "archer2")
        b = Executor().expand_cases([Member], "archer2")
        assert [case_fingerprint(c) for c in a] == \
               [case_fingerprint(c) for c in b]

    def test_distinct_per_coordinate(self):
        ex = Executor()
        cases = ex.expand_cases([Member], "archer2",
                                environs=["default", "gcc@11.2.0"])
        prints = {case_fingerprint(c) for c in cases}
        assert len(prints) == len(cases) == 8


class TestJournalFile:
    def test_record_roundtrip(self, tmp_path):
        journal = CampaignJournal(str(tmp_path / "j.jsonl"))
        ex, _ = make_executor(tmp_path, "rt")
        cases = ex.expand_cases([Member], "archer2")
        report = ex.run_cases(cases, journal=journal)
        assert report.success
        state = journal.load()
        assert len(state) == 4
        for case in cases:
            record = state[case_fingerprint(case)]
            assert record["status"] == "passed"
            replayed = result_from_record(case, record)
            assert replayed.passed and replayed.resumed
            assert replayed.perfvars == \
                {"value": (case.test.size * 1.5, "units")}

    def test_lines_are_whole_json_records(self, tmp_path):
        """Satellite: single-write appends -- never a partial line."""
        path = tmp_path / "j.jsonl"
        ex, _ = make_executor(tmp_path, "whole")
        ex.run_cases(ex.expand_cases([Member], "archer2"), journal=str(path))
        raw = path.read_text()
        assert raw.endswith("\n")
        for line in raw.splitlines():
            json.loads(line)  # every line parses on its own

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "j.jsonl"
        journal = CampaignJournal(str(path))
        ex, _ = make_executor(tmp_path, "torn")
        ex.run_cases(ex.expand_cases([Member], "archer2"), journal=journal)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"fingerprint": "deadbeef", "status"')  # torn write
        assert len(list(journal.entries())) == 4  # tail ignored

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('not json at all\n{"fingerprint": "ok"}\n')
        with pytest.raises(json.JSONDecodeError):
            list(CampaignJournal(str(path)).entries())

    def test_missing_file_is_empty(self, tmp_path):
        journal = CampaignJournal(str(tmp_path / "absent.jsonl"))
        assert list(journal.entries()) == []
        assert journal.load() == {}


class TestCrashResume:
    def test_resume_skips_completed_cases(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        # --- the uninterrupted reference run -----------------------------
        ref_ex, ref_prefix = make_executor(tmp_path, "ref")
        ref = ref_ex.run_cases(ref_ex.expand_cases([Member], "archer2"))
        assert len(ref.passed) == 4

        # --- campaign killed after two cases -----------------------------
        Member.ran = 0
        Member.kill_at = 2
        ex1, prefix = make_executor(tmp_path, "crash")
        crashed = ex1.run_cases(ex1.expand_cases([Member], "archer2"),
                                journal=path)
        assert crashed.aborted == "simulated crash (power loss)"
        assert len(crashed.passed) == 2
        assert len(CampaignJournal(path).load()) == 2  # proof of progress

        # --- resumed in a fresh process (fresh executor) ------------------
        Member.kill_at = None
        ran_before_resume = Member.ran
        ex2, _ = make_executor(tmp_path, "crash")  # same perflog prefix
        resumed = ex2.run_cases(ex2.expand_cases([Member], "archer2"),
                                journal=path, resume=True)
        assert resumed.success
        assert len(resumed.passed) == 4
        # the journal proves >= 1 case was skipped, not re-run
        assert len(resumed.resumed) == 2
        # only the two incomplete cases executed again
        assert Member.ran == ran_before_resume + 2

        # merged observable output == the uninterrupted run's
        assert read_logs(prefix) == read_logs(ref_prefix)
        ref_vars = [(r.case.display_name, sorted(r.perfvars.items()))
                    for r in ref.results]
        res_vars = [(r.case.display_name, sorted(r.perfvars.items()))
                    for r in resumed.results]
        assert res_vars == ref_vars
        assert "Resumed 2 case(s)" in resumed.summary()

    def test_resume_without_prior_journal_runs_everything(self, tmp_path):
        ex, _ = make_executor(tmp_path, "noprior")
        report = ex.run_cases(ex.expand_cases([Member], "archer2"),
                              journal=str(tmp_path / "new.jsonl"),
                              resume=True)
        assert len(report.passed) == 4
        assert not report.resumed

    def test_failed_cases_rerun_on_resume(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        ex1, _ = make_executor(tmp_path, "failrerun")
        cases = ex1.expand_cases([Hopeless], "archer2")
        ex1.run_cases(cases, journal=path)
        assert Hopeless.runs == 1
        ex2, _ = make_executor(tmp_path, "failrerun")
        report = ex2.run_cases(ex2.expand_cases([Hopeless], "archer2"),
                               journal=path, resume=True)
        assert Hopeless.runs == 2  # failed != completed: it re-ran
        assert not report.resumed

    def test_repeated_failures_quarantine_across_cycles(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        for cycle in range(2):
            ex, _ = make_executor(tmp_path, f"q{cycle}")
            ex.run_cases(ex.expand_cases([Hopeless], "archer2"),
                         journal=path, resume=True,
                         quarantine_threshold=2)
        assert Hopeless.runs == 2
        ex, _ = make_executor(tmp_path, "q-final")
        report = ex.run_cases(ex.expand_cases([Hopeless], "archer2"),
                              journal=path, resume=True,
                              quarantine_threshold=2)
        assert Hopeless.runs == 2  # quarantined: never executed
        (result,) = report.results
        assert result.quarantined
        assert "quarantined" in result.failure_reason
        assert "Quarantined 1 case(s)" in report.summary()


class TestPerflogDurability:
    def test_finally_flush_persists_rows_on_crash(self, tmp_path):
        """Satellite: a huge batch still hits disk when the campaign dies."""
        prefix = str(tmp_path / "perflogs")
        ex = Executor(perflog_prefix=prefix, perflog_batch=10_000,
                      perflog_timestamp=PINNED_TS)
        Member.kill_at = 2
        report = ex.run_cases(ex.expand_cases([Member], "archer2"))
        assert report.aborted
        logs = read_logs(prefix)
        rows = [line for body in logs.values()
                for line in body.decode().splitlines()
                if not line.startswith("timestamp|")]
        assert len(rows) == 2  # both completed cases' rows survived

    def test_no_partial_lines_ever(self, tmp_path):
        """Satellite: every perflog line is whole and well-formed."""
        prefix = str(tmp_path / "perflogs")
        ex = Executor(perflog_prefix=prefix, perflog_batch=3,
                      perflog_timestamp=PINNED_TS)
        ex.run_cases(ex.expand_cases([Member], "archer2"),
                     journal=str(tmp_path / "j.jsonl"))
        for body in read_logs(prefix).values():
            text = body.decode()
            assert text.endswith("\n")
            for line in text.splitlines():
                assert len(line.split("|")) == len(PERFLOG_FIELDS)

    def test_journal_entry_implies_durable_perflog_rows(self, tmp_path):
        """The ordering invariant: journal line => rows already on disk."""
        prefix = str(tmp_path / "perflogs")
        path = str(tmp_path / "j.jsonl")
        ex = Executor(perflog_prefix=prefix, perflog_batch=10_000,
                      perflog_timestamp=PINNED_TS)
        Member.kill_at = 3
        ex.run_cases(ex.expand_cases([Member], "archer2"), journal=path)
        journaled = {r["test"] for r in CampaignJournal(path).entries()}
        on_disk = set()
        for body in read_logs(prefix).values():
            for line in body.decode().splitlines()[1:]:
                on_disk.add(line.split("|")[2])
        assert journaled <= on_disk
        assert len(journaled) == 3


class TestCompaction:
    """Satellite: journal compaction keeps only the latest state."""

    def _bloat(self, tmp_path, cycles=3):
        """Re-run the same campaign into one journal, without --resume,
        so every cycle appends four more case records."""
        path = str(tmp_path / "j.jsonl")
        journal = CampaignJournal(path)
        for cycle in range(cycles):
            ex, _ = make_executor(tmp_path, f"cycle{cycle}")
            # no auto-compact interference: abort-free runs compact, so
            # bloat via the journal API directly on later cycles
            report = ex.run_cases(ex.expand_cases([Member], "archer2"))
            for result in report.results:
                journal.record(result)
        return journal, path

    def test_compact_keeps_latest_record_per_fingerprint(self, tmp_path):
        journal, _ = self._bloat(tmp_path, cycles=3)
        assert len(list(journal.entries())) == 12
        before = journal.load()  # what --resume would reconstruct
        dropped = journal.compact()
        assert dropped == 8
        assert len(list(journal.entries())) == 4
        assert journal.load() == before  # resume state unchanged

    def test_compact_is_idempotent(self, tmp_path):
        journal, _ = self._bloat(tmp_path, cycles=2)
        assert journal.compact() == 4
        assert journal.compact() == 0  # nothing left to drop

    def test_compact_keeps_last_health_snapshot(self, tmp_path):
        journal, _ = self._bloat(tmp_path, cycles=2)
        journal.record_health({"drained": ["nid0001"], "nodes": {}})
        journal.record_health({"drained": ["nid0001", "nid0002"],
                               "nodes": {}})
        journal.compact()
        assert journal.health_snapshot() == {
            "drained": ["nid0001", "nid0002"], "nodes": {},
        }
        healths = [r for r in journal.entries() if r.get("kind") == "health"]
        assert len(healths) == 1  # older snapshots dropped

    def test_compact_preserves_unknown_record_shapes(self, tmp_path):
        journal, path = self._bloat(tmp_path, cycles=2)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"kind": "from-the-future", "x": 1}\n')
        journal.compact()
        assert {"kind": "from-the-future", "x": 1} in list(journal.entries())

    def test_compacted_file_is_atomic_and_whole(self, tmp_path):
        journal, path = self._bloat(tmp_path, cycles=3)
        journal.compact()
        raw = open(path, encoding="utf-8").read()
        assert raw.endswith("\n")
        for line in raw.splitlines():
            json.loads(line)
        assert not os.path.exists(path + ".compact")  # temp cleaned up

    def test_successful_campaign_auto_compacts(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        # crash once (journal keeps failed/partial records, no compact)...
        Member.kill_at = 2
        ex1, _ = make_executor(tmp_path, "auto1")
        crashed = ex1.run_cases(ex1.expand_cases([Member], "archer2"),
                                journal=path)
        assert crashed.aborted
        # ...then resume to completion: the journal is compacted in place
        Member.kill_at = None
        ex2, _ = make_executor(tmp_path, "auto2")
        resumed = ex2.run_cases(ex2.expand_cases([Member], "archer2"),
                                journal=path, resume=True)
        assert resumed.success
        records = list(CampaignJournal(path).entries())
        case_records = [r for r in records if "fingerprint" in r]
        assert len(case_records) == len({r["fingerprint"]
                                         for r in case_records}) == 4

    def test_failed_campaign_is_not_compacted(self, tmp_path):
        path = str(tmp_path / "j.jsonl")
        for _ in range(2):
            ex, _ = make_executor(tmp_path, "keep")
            report = ex.run_cases(ex.expand_cases([Hopeless], "archer2"),
                                  journal=path, quarantine_threshold=None)
            assert not report.success
        # two failing cycles, two records: failure history is evidence
        assert len(list(CampaignJournal(path).entries())) == 2


class TestCompactionComposition:
    """Satellite: compact() composed with replay records and health
    snapshots -- the mixed-journal shape a store-backed, health-tracked
    campaign actually leaves behind."""

    def _mixed_journal(self, tmp_path):
        """Case records x2 cycles + two replays per case + two healths."""
        path = str(tmp_path / "j.jsonl")
        journal = CampaignJournal(path)
        results = []
        for cycle in range(2):
            ex, _ = make_executor(tmp_path, f"mix{cycle}")
            report = ex.run_cases(ex.expand_cases([Member], "archer2"))
            results = report.results
            for result in results:
                journal.record(result)
        journal.record_health({"drained": [], "nodes": {"nid0001": 1}})
        for result in results:
            journal.record_replay(result, key="old-key",
                                  cached_from="run-1")
            journal.record_replay(result, key="new-key",
                                  cached_from="run-2")
        journal.record_health({"drained": ["nid0001"], "nodes": {}})
        return journal, path, results

    def test_compact_keeps_latest_of_every_keyspace(self, tmp_path):
        journal, _, results = self._mixed_journal(tmp_path)
        before = journal.load()
        # 8 case + 2 health + 8 replay = 18 records before compaction
        assert len(list(journal.entries())) == 18
        dropped = journal.compact()
        assert dropped == 9  # 4 stale cases + 4 stale replays + 1 health
        records = list(journal.entries())
        cases = [r for r in records if r.get("kind") is None]
        replays = [r for r in records if r.get("kind") == "replay"]
        healths = [r for r in records if r.get("kind") == "health"]
        assert len(cases) == 4 and journal.load() == before
        # the *latest* replay per fingerprint survived, not the first
        assert len(replays) == 4
        assert all(r["key"] == "new-key" for r in replays)
        assert journal.health_snapshot() == {
            "drained": ["nid0001"], "nodes": {},
        }
        assert len(healths) == 1
        assert journal.compact() == 0  # idempotent on the mixed shape

    def test_resume_after_compact_converges_byte_identically(self, tmp_path):
        """Crash -> compact the partial journal -> resume: same bytes
        as the uninterrupted run.  Compaction must never change what
        --resume reconstructs, even mid-campaign with meta records
        interleaved."""
        path = str(tmp_path / "j.jsonl")
        ref_ex, ref_prefix = make_executor(tmp_path, "cc-ref")
        ref = ref_ex.run_cases(ref_ex.expand_cases([Member], "archer2"))
        assert ref.success

        Member.ran = 0
        Member.kill_at = 2
        ex1, prefix = make_executor(tmp_path, "cc")
        journal = CampaignJournal(path)
        journal.record_health({"drained": [], "nodes": {}})
        crashed = ex1.run_cases(ex1.expand_cases([Member], "archer2"),
                                journal=journal)
        assert crashed.aborted and len(crashed.passed) == 2

        # an operator compacts the crashed campaign's journal offline
        reopened = CampaignJournal(path)
        state_before = reopened.load()
        reopened.compact()
        assert CampaignJournal(path).load() == state_before

        Member.kill_at = None
        ran_before = Member.ran
        ex2, _ = make_executor(tmp_path, "cc")  # same perflog prefix
        resumed = ex2.run_cases(ex2.expand_cases([Member], "archer2"),
                                journal=path, resume=True)
        assert resumed.success and len(resumed.resumed) == 2
        assert Member.ran == ran_before + 2  # nothing re-executed
        assert read_logs(prefix) == read_logs(ref_prefix)
