"""Coverage for hooks, naming, registry edges, and detection ambiguity."""

import pytest

from repro.runner.benchmark import (
    BenchmarkError,
    RegressionTest,
    SpackTest,
    run_after,
    run_before,
)
from repro.runner.config import (
    SiteConfig,
    SystemConfig,
    default_site_config,
)
from repro.runner.executor import Executor
from repro.runner.fields import parameter
from repro.runner.pipeline import TestCase as RunnerCase, run_case
from repro.runner import sanity as sn


class HookedTest(RegressionTest):
    def __init__(self, **p):
        super().__init__(**p)
        self.calls = []

    @run_after("setup")
    def after_setup(self):
        self.calls.append("after_setup")

    @run_before("run")
    def before_run(self):
        self.calls.append("before_run")

    @run_after("run")
    def after_run(self):
        self.calls.append("after_run")

    def program(self, ctx):
        return "ok 1\n", 1.0

    def extract_performance(self, stdout):
        return {"v": (sn.extractsingle(r"(\d)", stdout, 1, float), "u")}


class TestHooks:
    def run_one(self, test):
        site = default_site_config()
        system, part = site.get("csd3")
        return run_case(RunnerCase(test=test, system=system, partition=part))

    def test_hooks_fire_in_stage_order(self):
        test = HookedTest()
        result = self.run_one(test)
        assert result.passed
        assert test.calls == ["after_setup", "before_run", "after_run"]

    def test_inherited_hooks_fire(self):
        class Child(HookedTest):
            @run_before("run")
            def child_before_run(self):
                self.calls.append("child_before_run")

        test = Child()
        self.run_one(test)
        assert "before_run" in test.calls
        assert "child_before_run" in test.calls
        # parent hooks run before child hooks (MRO order, reversed)
        assert test.calls.index("before_run") < test.calls.index(
            "child_before_run"
        )

    def test_after_run_not_called_on_failure(self):
        class Crashy(HookedTest):
            def program(self, ctx):
                raise RuntimeError("boom")

        test = Crashy()
        result = self.run_one(test)
        assert not result.passed
        assert "after_run" not in test.calls


class TestNaming:
    def test_parameterless_name_is_class_name(self):
        assert HookedTest().name == "HookedTest"

    def test_parameter_values_in_name(self):
        class P(RegressionTest):
            model = parameter(["std-data", "omp"])

            def program(self, ctx):
                return "x", 1.0

        names = {t.name for t in P.variants()}
        assert names == {"P_std_data", "P_omp"}

    def test_variants_with_fixed_override(self):
        class P(RegressionTest):
            model = parameter(["a", "b"])

            def program(self, ctx):
                return "x", 1.0

        variants = P.variants(model="a")
        assert all(t.model == "a" for t in variants)


class TestSpackTestEdges:
    def test_missing_spec_is_benchmark_error(self):
        class NoSpec(SpackTest):
            def program(self, ctx):
                return "x", 1.0

        with pytest.raises(BenchmarkError, match="without a spack_spec"):
            NoSpec().effective_spec()

    def test_base_program_is_abstract(self):
        with pytest.raises(NotImplementedError):
            RegressionTest().program(None)


class TestDetectionAmbiguity:
    def test_overlapping_patterns_detect_none(self):
        """The paper's appendix: 'due to ambiguity of login node names ...
        explicitly naming the system ... helps avoid some errors'."""
        site = default_site_config()
        site.add(
            SystemConfig(
                name="impostor",
                description="clashes with archer2 login names",
                partitions=dict(
                    site.get("archer2")[0].partitions
                ),
                hostname_patterns=("ln0*",),
            )
        )
        assert site.detect("ln01") is None  # ambiguous -> refuse to guess

    def test_empty_site(self):
        site = SiteConfig()
        assert site.detect("anything") is None


class TestExecutorEdges:
    def test_unknown_platform_raises_before_running(self):
        ex = Executor()
        with pytest.raises(Exception, match="unknown system"):
            ex.expand_cases([HookedTest], "perlmutter")

    def test_report_of_empty_case_list(self):
        ex = Executor()
        report = ex.run_cases([])
        assert report.success
        assert "Ran 0 case(s)" in report.summary()
