"""Content-addressed result store: keys, invalidation, replay, journal.

The invalidation matrix is the contract: a warm campaign re-executes a
case iff one of the composite key's components changed (spec problem,
system fingerprint, benchmark source, run config) -- and nothing else.
Key stability across process restarts and dict orderings is
hypothesis-tested; torn entries and eviction are tolerated, never fatal.
"""

import json
import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultPlan
from repro.runner import sanity as sn
from repro.runner.benchmark import RegressionTest, SpackTest
from repro.runner.cli import main as bench_main
from repro.runner.config import default_site_config
from repro.runner.executor import Executor
from repro.runner.fields import parameter, variable
from repro.runner.resilience import (
    _SOURCE_HASH_CACHE,
    CampaignJournal,
    RetryPolicy,
    benchmark_source_hash,
    case_fingerprint,
    content_address,
    run_config_fingerprint,
)
from repro.runner.results import CaseResultStore
from repro.runner.watchdog import WatchdogSpec

PINNED_TS = "2026-01-01T00:00:00"


class Alpha(RegressionTest):
    """Stable half of the delta campaign (never edited)."""

    size = parameter([1, 2, 3])

    def program(self, ctx):
        return f"alpha {self.size}: {self.size * 2.0}\n", 1.0

    def check_sanity(self, stdout):
        sn.assert_found(r"alpha", stdout)

    def extract_performance(self, stdout):
        v = sn.extractsingle(r": ([\d.]+)", stdout, 1, float)
        return {"value": (v, "units")}


class Beta(RegressionTest):
    """The half the tests edit (a plain class attr carries the rev)."""

    size = parameter([1, 2, 3])
    rev = "r0"

    def program(self, ctx):
        return f"beta {self.size}: {self.size * 3.0}\n", 1.0

    def check_sanity(self, stdout):
        sn.assert_found(r"beta", stdout)

    def extract_performance(self, stdout):
        v = sn.extractsingle(r": ([\d.]+)", stdout, 1, float)
        return {"value": (v, "units")}


class SpecProbe(SpackTest):
    """Key-only fixture for the spec component (never run)."""

    spack_spec = variable(str, value="babelstream@4.0 +omp")

    def check_sanity(self, stdout):
        sn.assert_found(r".", stdout)


@pytest.fixture(autouse=True)
def _reset_edits():
    yield
    Beta.rev = "r0"
    _SOURCE_HASH_CACHE.clear()


def edit_beta(rev):
    """The in-process stand-in for editing Beta's source between runs."""
    Beta.rev = rev
    # the memo caches per class object; a real edit arrives in a fresh
    # process where the memo starts empty
    _SOURCE_HASH_CACHE.clear()


def make_executor(tmp_path, tag):
    return Executor(
        perflog_prefix=str(tmp_path / f"perflogs-{tag}"),
        perflog_timestamp=PINNED_TS,
    )


def run(tmp_path, tag, store, classes=(Alpha, Beta), **kwargs):
    ex = make_executor(tmp_path, tag)
    cases = ex.expand_cases(list(classes), "archer2")
    report = ex.run_cases(cases, result_store=store, **kwargs)
    return ex, report


def read_tree(prefix):
    out = {}
    for root, _, files in os.walk(prefix):
        for fname in files:
            path = os.path.join(root, fname)
            with open(path, "rb") as fh:
                out[os.path.relpath(path, prefix)] = fh.read()
    return out


# --------------------------------------------------------------------------
# the invalidation matrix (table-driven, key level)
# --------------------------------------------------------------------------

def _case(cls=Beta, system="archer2"):
    ex = Executor()
    return ex.expand_cases([cls], system)[0]


def _fleet_site(num_nodes):
    site = default_site_config()
    site.merge_yaml(
        "systems:\n"
        "  - name: fleet\n"
        f"    num_nodes: {num_nodes}\n"
    )
    return site


MATRIX = [
    ("no_edit", False),
    ("spec", True),
    ("system", True),
    ("source", True),
    ("config", True),
]


@pytest.mark.parametrize("dimension,should_change", MATRIX)
def test_invalidation_matrix(tmp_path, dimension, should_change):
    """Exactly the edited component changes the composite key."""
    store = CaseResultStore(str(tmp_path / "store"))
    if dimension == "spec":
        base = store.key_for(Executor().expand_cases(
            [SpecProbe], "archer2")[0])
        edited = store.key_for(Executor().expand_cases(
            [SpecProbe], "archer2",
            setvars={"spack_spec": "babelstream@4.0 +cuda"})[0])
    elif dimension == "system":
        a = Executor(site=_fleet_site(8)).expand_cases([Beta], "fleet")[0]
        b = Executor(site=_fleet_site(16)).expand_cases([Beta], "fleet")[0]
        base, edited = store.key_for(a), store.key_for(b)
        # same case identity: this is an *edit*, not a different case
        assert case_fingerprint(a) == case_fingerprint(b)
    elif dimension == "source":
        base = store.key_for(_case())
        edit_beta("r1")
        edited = CaseResultStore(str(tmp_path / "s2")).key_for(_case())
    elif dimension == "config":
        case = _case()
        base = store.key_for(case, run_config_fingerprint())
        edited = store.key_for(case, run_config_fingerprint(
            faults=FaultPlan.parse("build:0.3", seed=1)))
    else:  # no_edit: two independent computations, fresh store
        base = store.key_for(_case())
        edited = CaseResultStore(str(tmp_path / "s2")).key_for(_case())
    assert (base != edited) == should_change


def test_changed_fault_injection_invalidates():
    """The case_fingerprint blind spot: --inject-faults must invalidate."""
    keys = {
        run_config_fingerprint(),
        run_config_fingerprint(faults=FaultPlan.parse("build:0.3", seed=0)),
        run_config_fingerprint(faults=FaultPlan.parse("build:0.3", seed=1)),
        run_config_fingerprint(faults=FaultPlan.parse("submit:0.2", seed=0)),
        run_config_fingerprint(retry=RetryPolicy(max_attempts=5)),
        run_config_fingerprint(watchdog_spec=WatchdogSpec(run=9.0)),
        run_config_fingerprint(drain_after=3),
    }
    assert len(keys) == 7  # every knob lands in the key, all distinct


def test_source_hash_sees_factory_attrs():
    """type()-built classes sharing source text still hash distinctly."""
    def factory(tag):
        cls = type("Twin", (Beta,), {"twin_tag": tag})
        return cls

    a, b = factory("x"), factory("y")
    assert benchmark_source_hash(a) != benchmark_source_hash(b)


# --------------------------------------------------------------------------
# key stability (hypothesis + cross-process)
# --------------------------------------------------------------------------

class _FakeTest:
    def __init__(self, name, num_tasks, opts):
        self.name = name
        self.num_tasks = num_tasks
        self.num_tasks_per_node = None
        self.time_limit = None
        self.executable = "x"
        self.executable_opts = opts


class _FakeCase:
    def __init__(self, name, num_tasks, opts, platform, environ):
        self.test = _FakeTest(name, num_tasks, opts)
        self.platform = platform
        self.environ_name = environ
        self.account = None
        self.qos = None


@settings(max_examples=50, deadline=None)
@given(
    name=st.text(min_size=1, max_size=20),
    num_tasks=st.integers(min_value=1, max_value=4096),
    opts=st.lists(st.text(max_size=8), max_size=4),
    spec=st.text(max_size=16),
)
def test_content_address_is_deterministic(name, num_tasks, opts, spec):
    case = _FakeCase(name, num_tasks, opts, "sys:part", "env")
    first = content_address(case, spec_key=spec)
    again = content_address(
        _FakeCase(name, num_tasks, list(opts), "sys:part", "env"),
        spec_key=spec,
    )
    assert first == again
    assert len(first) == 64 and int(first, 16) >= 0


@settings(max_examples=30, deadline=None)
@given(
    max_attempts=st.integers(min_value=1, max_value=9),
    seed=st.integers(min_value=0, max_value=2**31),
    drain=st.one_of(st.none(), st.integers(min_value=1, max_value=9)),
)
def test_run_config_fingerprint_is_deterministic(max_attempts, seed, drain):
    a = run_config_fingerprint(
        retry=RetryPolicy(max_attempts=max_attempts, seed=seed),
        drain_after=drain,
    )
    b = run_config_fingerprint(
        retry=RetryPolicy(max_attempts=max_attempts, seed=seed),
        drain_after=drain,
    )
    assert a == b
    assert a != run_config_fingerprint(
        retry=RetryPolicy(max_attempts=max_attempts + 1, seed=seed),
        drain_after=drain,
    )


SUBPROCESS_KEY = """
import sys
sys.path.insert(0, {src!r})
from repro.runner.executor import Executor
from repro.runner.resilience import run_config_fingerprint
from repro.runner.results import CaseResultStore
sys.path.insert(0, {here!r})
from tests.runner.test_resultstore import Beta
store = CaseResultStore({store!r})
case = Executor().expand_cases([Beta], "archer2")[0]
print(store.key_for(case, run_config_fingerprint()))
"""


def test_key_stable_across_process_restarts(tmp_path):
    """Same class + case -> same key under fresh interpreters and
    randomized hash seeds (no Python ``hash()`` anywhere in the key)."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    src = os.path.join(here, "src")
    script = SUBPROCESS_KEY.format(
        src=src, here=here, store=str(tmp_path / "s"))
    keys = set()
    for hashseed in ("1", "31337"):
        env = dict(os.environ, PYTHONHASHSEED=hashseed)
        out = subprocess.run(
            [sys.executable, "-c", script], env=env,
            capture_output=True, text=True, check=True,
        )
        keys.add(out.stdout.strip())
    local = CaseResultStore(str(tmp_path / "local")).key_for(
        _case(), run_config_fingerprint())
    keys.add(local)
    assert len(keys) == 1, f"key unstable across processes: {keys}"


# --------------------------------------------------------------------------
# delta re-execution (executor level)
# --------------------------------------------------------------------------

def test_warm_run_replays_everything_unchanged(tmp_path):
    store = str(tmp_path / "store")
    _, cold = run(tmp_path, "cold", store)
    assert cold.success and not cold.replayed
    assert cold.result_cache["puts"] == 6

    ex, warm = run(tmp_path, "warm", store)
    assert warm.success
    assert len(warm.replayed) == 6
    assert warm.result_cache["hits"] == 6
    assert warm.result_cache["hit_rate"] == 1.0
    assert "Replayed: 6 case(s)" in warm.summary()
    # byte-identical perflogs: the replayed rows are the cold bytes
    assert (read_tree(str(tmp_path / "perflogs-cold"))
            == read_tree(str(tmp_path / "perflogs-warm")))


def test_edit_reexecutes_exactly_the_delta(tmp_path):
    store = str(tmp_path / "store")
    run(tmp_path, "cold", store)
    edit_beta("r1")
    _, warm = run(tmp_path, "warm", store)
    assert warm.success
    replayed = {r.case.display_name for r in warm.replayed}
    executed = {r.case.display_name for r in warm.results} - replayed
    assert all(name.startswith("Alpha") for name in replayed)
    assert all(name.startswith("Beta") for name in executed)
    assert len(replayed) == 3 and len(executed) == 3
    # the Beta misses classify as *invalidated*: same case identity,
    # different content (the identity index still points at the old key)
    assert warm.result_cache["invalidated"] == 3
    # edited results were re-stored: a third run replays everything
    _, third = run(tmp_path, "third", store)
    assert len(third.replayed) == 6


def test_replay_carries_result_material(tmp_path):
    store = str(tmp_path / "store")
    run(tmp_path, "cold", store)
    _, warm = run(tmp_path, "warm", store)
    result = warm.replayed[0]
    assert result.replayed and not result.resumed
    assert result.cached_from  # the cold campaign's deterministic run id
    assert result.perfvars["value"][1] == "units"
    assert result.run_command
    assert result.stdout


def test_provenance_annotates_replays(tmp_path):
    from repro.core.provenance import RunProvenance

    store = str(tmp_path / "store")
    _, cold = run(tmp_path, "cold", store)
    _, warm = run(tmp_path, "warm", store)

    def entries(report):
        prov = RunProvenance(system="archer2")
        for result in report.results:
            prov.add_case(result)
        return json.loads(prov.to_json())["cases"]

    cold_entries, warm_entries = entries(cold), entries(warm)
    for entry in warm_entries:
        assert entry.pop("replayed") is True
        assert entry.pop("cached_from")
    # modulo the cache annotations, provenance is byte-identical
    assert cold_entries == warm_entries


def test_failed_results_replay_too(tmp_path):
    class Hopeless(RegressionTest):
        runs = 0

        def program(self, ctx):
            Hopeless.runs += 1
            return "bad\n", 1.0

        def check_sanity(self, stdout):
            from repro.runner.sanity import SanityError

            raise SanityError("always wrong")

    store = str(tmp_path / "store")
    _, cold = run(tmp_path, "cold", store, classes=(Hopeless,),
                  retry=RetryPolicy(max_attempts=1))
    assert not cold.success and Hopeless.runs == 1
    _, warm = run(tmp_path, "warm", store, classes=(Hopeless,),
                  retry=RetryPolicy(max_attempts=1))
    assert not warm.success
    assert len(warm.replayed) == 1
    assert Hopeless.runs == 1  # deterministic world: the failure replays


# --------------------------------------------------------------------------
# store durability: corruption, eviction
# --------------------------------------------------------------------------

def test_torn_entry_is_a_miss_not_a_crash(tmp_path):
    store_dir = str(tmp_path / "store")
    run(tmp_path, "cold", store_dir)
    os.unlink(os.path.join(store_dir, "pack.jsonl"))  # force the file path
    objects = os.path.join(store_dir, "objects")
    victims = sorted(os.listdir(objects))
    # one torn mid-write, one outright garbage
    with open(os.path.join(objects, victims[0]), "w") as fh:
        fh.write('{"version": 1, "record": {"stat')
    with open(os.path.join(objects, victims[1]), "w") as fh:
        fh.write("not json at all")
    _, warm = run(tmp_path, "warm", store_dir)
    assert warm.success
    assert len(warm.replayed) == 4
    assert warm.result_cache["corrupted"] == 2
    assert warm.result_cache["misses"] == 2
    # the re-executed cases rewrote their entries: next run is all-warm
    _, third = run(tmp_path, "third", store_dir)
    assert len(third.replayed) == 6


def test_pack_is_a_redundant_replica(tmp_path):
    """An intact pack line serves an entry whose object file was torn."""
    store_dir = str(tmp_path / "store")
    run(tmp_path, "cold", store_dir)
    objects = os.path.join(store_dir, "objects")
    victim = sorted(os.listdir(objects))[0]
    with open(os.path.join(objects, victim), "w") as fh:
        fh.write('{"version": 1, "record": {"stat')  # torn object file
    _, warm = run(tmp_path, "warm", store_dir)
    assert warm.success
    assert len(warm.replayed) == 6  # the pack still has the good bytes
    assert warm.result_cache["corrupted"] == 0


def test_pack_respects_eviction(tmp_path):
    """A pack line whose object file is gone (evicted) is a miss."""
    store_dir = str(tmp_path / "store")
    run(tmp_path, "cold", store_dir)
    objects = os.path.join(store_dir, "objects")
    victim = sorted(os.listdir(objects))[0]
    os.unlink(os.path.join(objects, victim))  # what eviction does
    _, warm = run(tmp_path, "warm", store_dir)
    assert warm.success
    assert len(warm.replayed) == 5
    assert warm.result_cache["misses"] == 1


def test_version_skew_is_a_miss(tmp_path):
    store = CaseResultStore(str(tmp_path / "store"))
    key = "k" * 64
    store.put(key, {"version": 999, "fingerprint": "fp"})
    assert store.lookup(key) is None
    assert store.stats.corrupted == 1


def test_eviction_is_oldest_first(tmp_path):
    store = CaseResultStore(str(tmp_path / "store"), max_entries=2)
    for i, key in enumerate(["a" * 64, "b" * 64, "c" * 64]):
        store.put(key, {"version": 1, "fingerprint": f"fp{i}"})
        path = store._entry_path(key)
        os.utime(path, (1000.0 + i, 1000.0 + i))
        store._evict_locked()
    assert store.stats.evictions >= 1
    assert len(store) <= 2
    assert not os.path.exists(store._entry_path("a" * 64))
    assert os.path.exists(store._entry_path("c" * 64))


def test_missing_artifacts_force_reexecution(tmp_path):
    """An entry stored without trace lines is a miss for --trace."""
    store = str(tmp_path / "store")
    run(tmp_path, "cold", store)  # no tracer: entries carry trace=None
    _, warm = run(tmp_path, "warm", store,
                  trace=str(tmp_path / "trace.jsonl"))
    assert warm.success
    assert not warm.replayed  # all misses: the store lacks their trace
    _, third = run(tmp_path, "third", store,
                   trace=str(tmp_path / "trace3.jsonl"))
    assert len(third.replayed) == 6  # rewritten entries carry the trace


# --------------------------------------------------------------------------
# journal interplay (--resume + --result-store compose)
# --------------------------------------------------------------------------

def test_replays_journal_as_meta_records(tmp_path):
    store = str(tmp_path / "store")
    journal_path = str(tmp_path / "journal.jsonl")
    run(tmp_path, "cold", store)
    _, warm = run(tmp_path, "warm", store, journal=journal_path)
    assert len(warm.replayed) == 6
    journal = CampaignJournal(journal_path)
    records = list(journal.entries())
    replays = [r for r in records if r.get("kind") == "replay"]
    assert len(replays) == 6
    for record in replays:
        assert record["status"] == "passed"
        assert record["key"] and record["cached_from"]
    # replay meta records are invisible to resume state and quarantine
    assert journal.load() == {}
    assert journal.failure_counts() == {}


def test_resume_takes_precedence_over_store(tmp_path):
    """A journal-resumed case neither hits the store nor re-emits rows."""
    store = str(tmp_path / "store")
    journal_path = str(tmp_path / "journal.jsonl")
    run(tmp_path, "cold", store, journal=journal_path)
    ex, resumed = run(tmp_path, "resume", store, journal=journal_path,
                      resume=True)
    assert len(resumed.resumed) == 6
    assert not resumed.replayed
    assert resumed.result_cache["hits"] == 0  # store never consulted
    # resumed cases re-emit nothing: no perflogs in this run's prefix
    assert read_tree(str(tmp_path / "perflogs-resume")) == {}


def test_compact_keeps_latest_replay_per_fingerprint(tmp_path):
    journal = CampaignJournal(str(tmp_path / "journal.jsonl"))

    class R:
        pass

    def fake(status):
        r = R()
        r.passed = status == "passed"
        r.skipped = False

        class C:
            display_name = "case-x"
        r.case = C()
        return r

    journal.record_replay(fake("passed"), key="k1", cached_from="run1",
                          fingerprint="fp1")
    journal.record_replay(fake("failed"), key="k2", cached_from="run2",
                          fingerprint="fp1")
    journal.record_replay(fake("passed"), key="k3", cached_from="run3",
                          fingerprint="fp2")
    # an unknown future record shape must survive compaction untouched
    journal._append({"kind": "future", "fingerprint": "fp9", "x": 1})
    journal.compact()
    records = list(journal.entries())
    replays = {r["fingerprint"]: r for r in records
               if r.get("kind") == "replay"}
    assert set(replays) == {"fp1", "fp2"}
    assert replays["fp1"]["key"] == "k2"  # the *latest* per fingerprint
    assert {"kind": "future", "fingerprint": "fp9", "x": 1} in records


# --------------------------------------------------------------------------
# CLI: --result-store / --cache-stats end to end (Spack suite included)
# --------------------------------------------------------------------------

def test_cli_incremental_spack_campaign(tmp_path, capsys):
    store = str(tmp_path / "store")

    def invoke(tag):
        rc = bench_main([
            "-c", "babelstream", "-r", "--tag", "omp",
            "--system", "archer2",
            "--perflog-dir", str(tmp_path / f"perflogs-{tag}"),
            "--result-store", store,
            "--cache-stats",
            "--performance-report",
        ])
        captured = capsys.readouterr()
        assert rc == 0, captured.out + captured.err
        return captured

    cold = invoke("cold")
    assert "Replayed" not in cold.out
    assert "0 hit(s)" in cold.err
    warm = invoke("warm")
    assert "Replayed: " in warm.out
    assert "(hit rate 100.0%)" in warm.out
    assert "0 miss(es)" in warm.err
    # the replayed Spack case kept its rendered spec: perflog rows (spec
    # column included) are the cold bytes, and the FOM table still renders
    assert (read_tree(str(tmp_path / "perflogs-cold"))
            == read_tree(str(tmp_path / "perflogs-warm")))
    assert "PERFORMANCE REPORT" in warm.out


def test_cli_cache_stats_requires_store(capsys):
    rc = bench_main(["-c", "babelstream", "-r", "--system", "archer2",
                     "--cache-stats"])
    assert rc == 1
    assert "--cache-stats requires --result-store" in capsys.readouterr().err
