"""Tests for runner fields, sanity helpers, and launchers."""

import pytest
from hypothesis import given, strategies as st

from repro.runner import sanity as sn
from repro.runner.fields import (
    FieldError,
    class_parameters,
    class_variables,
    parameter,
    parameter_space,
    variable,
)
from repro.runner.launcher import launcher_for


class TestVariable:
    def test_default_and_override(self):
        class T:
            num_tasks = variable(int, value=4)

        t = T()
        assert t.num_tasks == 4
        t.num_tasks = 8
        assert t.num_tasks == 8

    def test_type_enforced(self):
        class T:
            num_tasks = variable(int, value=1)

        t = T()
        with pytest.raises(FieldError):
            t.num_tasks = "lots"

    def test_bad_default_rejected_at_declaration(self):
        with pytest.raises(FieldError):
            variable(int, value="x")

    def test_none_default_allowed(self):
        class T:
            opt = variable(int, value=None)

        assert T().opt is None

    def test_class_access_returns_descriptor(self):
        class T:
            v = variable(int, value=1)

        assert isinstance(T.v, variable)

    @pytest.mark.parametrize(
        "typ,text,expected",
        [
            (int, "8", 8),
            (float, "2.5", 2.5),
            (bool, "true", True),
            (bool, "0", False),
            (str, "abc", "abc"),
        ],
    )
    def test_coerce(self, typ, text, expected):
        v = variable(typ, value=None)
        assert v.coerce(text) == expected

    def test_coerce_errors(self):
        with pytest.raises(FieldError):
            variable(int, value=None).coerce("eight")
        with pytest.raises(FieldError):
            variable(bool, value=None).coerce("maybe")


class TestParameter:
    def test_space_is_cartesian_product(self):
        class T:
            a = parameter([1, 2])
            b = parameter(["x", "y", "z"])

        assert len(parameter_space(T)) == 6

    def test_empty_parameter_rejected(self):
        with pytest.raises(FieldError):
            parameter([])

    def test_unbound_access_raises(self):
        class T:
            p = parameter([1, 2])

        with pytest.raises(FieldError):
            T().p

    def test_mro_collection(self):
        class Base:
            a = parameter([1])
            v = variable(int, value=0)

        class Child(Base):
            b = parameter([2])

        assert set(class_parameters(Child)) == {"a", "b"}
        assert "v" in class_variables(Child)


class TestSanity:
    OUT = "Triad       215303.741  0.01247\nResult: VALID\n"

    def test_extractall(self):
        vals = sn.extractall(r"Triad\s+([\d.]+)", self.OUT, 1, float)
        assert vals == [215303.741]

    def test_extractsingle_missing_raises(self):
        with pytest.raises(sn.SanityError, match="not found"):
            sn.extractsingle(r"Quad", self.OUT)

    def test_extractsingle_item_out_of_range(self):
        with pytest.raises(sn.SanityError, match="matched"):
            sn.extractsingle(r"Triad", self.OUT, item=3)

    def test_extract_conversion_failure(self):
        with pytest.raises(sn.SanityError, match="convert"):
            sn.extractall(r"(Result)", self.OUT, 1, float)

    def test_assert_found_and_not_found(self):
        assert sn.assert_found(r"VALID", self.OUT)
        with pytest.raises(sn.SanityError):
            sn.assert_found(r"INVALID_MARKER", self.OUT)
        assert sn.assert_not_found(r"INVALID_MARKER", self.OUT)
        with pytest.raises(sn.SanityError):
            sn.assert_not_found(r"VALID", self.OUT)

    def test_assert_bounded(self):
        assert sn.assert_bounded(5, 0, 10)
        with pytest.raises(sn.SanityError):
            sn.assert_bounded(5, 6, None)
        with pytest.raises(sn.SanityError):
            sn.assert_bounded(5, None, 4)

    def test_assert_reference_window(self):
        assert sn.assert_reference(100.0, 100.0)
        assert sn.assert_reference(96.0, 100.0)
        with pytest.raises(sn.SanityError):
            sn.assert_reference(80.0, 100.0)

    def test_count_and_avg(self):
        assert sn.count(r"\d+\.\d+", self.OUT) == 2
        assert sn.avg([1.0, 3.0]) == 2.0
        with pytest.raises(sn.SanityError):
            sn.avg([])

    @given(st.floats(min_value=0.1, max_value=1e6))
    def test_extract_roundtrips_floats(self, x):
        text = f"value={x!r}"
        got = sn.extractsingle(r"value=([\d.e+-]+)", text, 1, float)
        assert got == pytest.approx(x)


class TestLaunchers:
    def test_mpirun(self):
        cmd = launcher_for("mpirun").run_command("./a.out", ["7", "8"], 8)
        assert cmd == "mpirun -np 8 ./a.out 7 8"

    def test_srun_with_cpus(self):
        cmd = launcher_for("srun").run_command("./a.out", [], 8, 4)
        assert "--ntasks=8" in cmd and "--cpus-per-task=4" in cmd

    def test_aprun(self):
        cmd = launcher_for("aprun").run_command("./a.out", [], 16, 2)
        assert cmd.startswith("aprun -n 16 -d 2")

    def test_local_is_bare(self):
        assert launcher_for("local").run_command("./a.out", [], 4) == "./a.out"

    def test_unknown_launcher(self):
        with pytest.raises(KeyError):
            launcher_for("blast-off")
