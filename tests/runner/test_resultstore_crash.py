"""Crash-point sweep for the result store's atomic-commit sites.

Every durable mutation of :class:`CaseResultStore` commits through a
temp-write + ``os.replace`` pair (object files, ``index.json``, pack
compaction) or a single append (``pack.jsonl``).  This sweep kills the
process -- simulated as an exception -- *between the temp write and the
rename* at every such site in a representative workload, then reopens
the store and checks the crash-consistency contract:

* reopening never raises, and every lookup returns either ``None`` (a
  tolerated miss) or exactly the entry that was put;
* leftover ``.tmp`` files are invisible (never counted, never served);
* after recovery plus one compaction, ``pack.jsonl`` carries exactly
  one valid line per surviving object -- no duplicates, no torn lines.
"""

import json
import os

import pytest

from repro.iofaults import tear_tail
from repro.runner.results import ENTRY_VERSION, CaseResultStore, _verify_entry

pytestmark = pytest.mark.iochaos


class SimulatedCrash(BaseException):
    """Not an Exception: nothing in the store may swallow a crash."""


def _key(i: int) -> str:
    return f"cafe{i:04d}" * 5


def _entry(i: int) -> dict:
    return {
        "version": ENTRY_VERSION,
        "key": _key(i),
        "fingerprint": f"fp-{i}",
        "case": f"Case_{i}",
        "record": {"passed": True},
        "perflog": None,
        "trace": None,
    }


def _workload(root: str) -> None:
    """Exercises every rename site: object puts, index flush, pack
    append, and a supersede-heavy phase that forces compaction."""
    store = CaseResultStore(root)
    for i in range(5):
        store.put(_key(i), _entry(i))
    store.flush()
    store.lookup(_key(0))  # loads the pack, arming compaction
    for _ in range(20):
        store.put(_key(0), _entry(0))  # supersedes pile up pack lines
    store.flush()


def _recovery_invariants(root: str) -> None:
    store = CaseResultStore(root)
    for i in range(5):
        entry = store.lookup(_key(i))
        if entry is not None:
            # whatever survived is exactly what was put, never garbage
            assert entry["fingerprint"] == f"fp-{i}"
            assert entry["record"] == {"passed": True}
    # recovery: re-put everything, then compact; the pack must come out
    # canonical -- one valid line per object, no duplicates
    for i in range(5):
        store.put(_key(i), _entry(i))
    store.flush()
    with store._lock:
        store._load_pack_locked()
        store._compact_pack_locked()
    with open(os.path.join(root, "pack.jsonl"), encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    keys = []
    for line in lines:
        doc = json.loads(line)  # every line parses
        assert _verify_entry(doc["entry"]) is not None  # and verifies
        assert os.path.exists(
            os.path.join(root, "objects", doc["key"] + ".json")
        )
        keys.append(doc["key"])
    assert len(keys) == len(set(keys)), "duplicate pack lines"


def _count_renames(tmp_path, monkeypatch) -> int:
    real_replace = os.replace
    calls = []
    monkeypatch.setattr(
        os, "replace",
        lambda src, dst: (calls.append(dst), real_replace(src, dst))[1],
    )
    _workload(str(tmp_path / "count"))
    monkeypatch.undo()
    return len(calls)


def test_workload_covers_all_three_rename_sites(tmp_path, monkeypatch):
    """Guard: the sweep below really visits object, index AND pack-
    compaction renames, or it proves nothing."""
    real_replace = os.replace
    dsts = []
    monkeypatch.setattr(
        os, "replace",
        lambda src, dst: (dsts.append(dst), real_replace(src, dst))[1],
    )
    _workload(str(tmp_path / "guard"))
    assert any(d.endswith(".json") and "objects" in d for d in dsts)
    assert any(d.endswith("index.json") for d in dsts)
    assert any(d.endswith("pack.jsonl") for d in dsts)


def test_crash_between_temp_write_and_rename_at_every_site(
    tmp_path, monkeypatch
):
    total = _count_renames(tmp_path, monkeypatch)
    assert total >= 7  # multiple sites, or the sweep is trivial
    real_replace = os.replace
    for crash_at in range(1, total + 1):
        root = str(tmp_path / f"crash-{crash_at}")
        remaining = [crash_at]

        def crashing_replace(src, dst):
            remaining[0] -= 1
            if remaining[0] == 0:
                # the temp file is fully written; the commit never happens
                raise SimulatedCrash(dst)
            return real_replace(src, dst)

        monkeypatch.setattr(os, "replace", crashing_replace)
        with pytest.raises(SimulatedCrash):
            _workload(root)
        monkeypatch.undo()
        _recovery_invariants(root)


def test_torn_pack_append_tail_is_a_miss_not_poison(tmp_path):
    """A crash mid-append tears pack.jsonl's last line; the store reopens,
    serves the torn key from its canonical object file, and compaction
    writes the pack back whole."""
    root = str(tmp_path / "torn")
    store = CaseResultStore(root)
    for i in range(3):
        store.put(_key(i), _entry(i))
    store.flush()
    tear_tail(os.path.join(root, "pack.jsonl"), drop=11)
    _recovery_invariants(root)


def test_leftover_tmp_files_are_invisible(tmp_path):
    root = str(tmp_path / "tmps")
    store = CaseResultStore(root)
    store.put(_key(0), _entry(0))
    store.flush()
    # a crash's droppings, at every site
    for name in ("objects/zzz.json.tmp", "index.json.tmp",
                 "pack.jsonl.tmp"):
        with open(os.path.join(root, name), "w", encoding="utf-8") as fh:
            fh.write("{ half a record")
    reopened = CaseResultStore(root)
    assert len(reopened) == 1
    assert reopened.lookup(_key(0)) is not None
    assert reopened.stats.corrupted == 0
