"""Longitudinal results timeline + cross-run change-point detection."""

import pytest

from repro.core.regression import detect_change_point
from repro.fleet.timeline import ResultsTimeline, foms_from_journal


def fom(test, value, system="archer2:compute", var="bandwidth"):
    return {"test": test, "system": system, "var": var,
            "value": value, "unit": "MB/s"}


@pytest.fixture
def timeline(tmp_path):
    return ResultsTimeline(str(tmp_path / "fleet.timeline"))


# -- the detector itself -----------------------------------------------------

def test_change_point_finds_the_step():
    values = [100.0, 101.0, 99.0, 100.0, 130.0, 131.0, 129.0, 130.0]
    cp = detect_change_point(values)
    assert cp is not None
    assert cp.index == 4
    assert cp.direction == "improved"
    assert cp.change_fraction == pytest.approx(0.30, abs=0.02)


def test_change_point_direction_respects_fom_polarity():
    values = [100.0] * 4 + [80.0] * 4
    assert detect_change_point(values).direction == "regressed"
    assert detect_change_point(
        values, higher_is_better=False
    ).direction == "improved"


def test_change_point_ignores_noise_and_short_series():
    assert detect_change_point([100, 101, 99, 100, 101, 99, 100]) is None
    assert detect_change_point([100.0, 130.0]) is None  # too short
    assert detect_change_point([]) is None


def test_change_point_start_excludes_accepted_history():
    values = [100.0] * 4 + [130.0] * 4
    assert detect_change_point(values).index == 4
    # the shift at 4 was accepted (baselined): nothing new to flag
    assert detect_change_point(values, start=5) is None


def test_zero_noise_step_is_detected():
    # simulated campaigns repeat exactly; the noise floor must not
    # swallow a real step between two perfectly flat segments
    cp = detect_change_point([100.0] * 5 + [110.0] * 5)
    assert cp is not None and cp.index == 5


# -- the timeline store ------------------------------------------------------

def test_series_accumulate_in_run_order(timeline):
    for i, value in enumerate([100.0, 101.0, 99.0]):
        timeline.record_run(f"c{i}", "spec-a", [fom("StreamBenchmark", value)])
    series = timeline.series()
    key = ("StreamBenchmark", "archer2:compute", "spec-a", "bandwidth")
    assert series[key] == [100.0, 101.0, 99.0]
    assert timeline.run_count("spec-a") == 3


def test_detection_flags_only_the_stepped_cell(timeline):
    """Acceptance: >= 5 sequential runs, a 2x2 (benchmark x system)
    grid, one cell steps -- exactly that cell is flagged."""
    tests = ["BenchA", "BenchB"]
    systems = ["archer2:compute", "isambard:cascadelake"]
    for run in range(6):
        foms = []
        for t in tests:
            for s in systems:
                value = 100.0
                if t == "BenchB" and s == systems[0] and run >= 3:
                    value = 130.0  # the injected step-change
                foms.append(fom(t, value, system=s))
        timeline.record_run(f"c{run}", "spec-a", foms)
    findings = timeline.detect_regressions(min_runs=5)
    assert len(findings) == 1
    (finding,) = findings
    assert finding.key == ("BenchB", systems[0], "spec-a", "bandwidth")
    assert finding.change.index == 3
    assert finding.change.direction == "improved"
    assert "BenchB" in timeline.render(findings)


def test_min_runs_gate(timeline):
    for run in range(4):
        timeline.record_run(
            f"c{run}", "spec-a",
            [fom("BenchA", 100.0 if run < 2 else 200.0)],
        )
    assert timeline.detect_regressions(min_runs=5) == []
    assert timeline.detect_regressions(min_runs=4)


def test_baseline_suppresses_accepted_shift(timeline):
    for run in range(8):
        timeline.record_run(
            f"c{run}", "spec-a",
            [fom("BenchA", 100.0 if run < 4 else 70.0)],
        )
    findings = timeline.detect_regressions(min_runs=5)
    assert findings and findings[0].change.direction == "regressed"
    # operator accepts the new level; the same data stops flagging
    timeline.set_baseline("spec-a", through=5)
    assert timeline.detect_regressions(min_runs=5) == []


def test_specs_do_not_cross_contaminate(timeline):
    for run in range(6):
        timeline.record_run(f"a{run}", "spec-a", [fom("BenchA", 100.0)])
        timeline.record_run(
            f"b{run}", "spec-b",
            [fom("BenchA", 100.0 if run < 3 else 140.0)],
        )
    findings = timeline.detect_regressions(min_runs=5)
    assert {f.key[2] for f in findings} == {"spec-b"}


def test_foms_from_journal_reads_case_records():
    records = [
        {"status": "passed", "test": "BenchA", "platform": "sys:part",
         "perfvars": {"bw": [123.0, "MB/s"], "lat": [4.5, "us"]}},
        {"status": "failed", "test": "BenchB", "platform": "sys:part",
         "perfvars": {"bw": [1.0, "MB/s"]}},  # failed cases contribute nothing
        {"status": "passed", "test": "BenchC", "platform": "sys:part",
         "perfvars": {}},
    ]
    foms = foms_from_journal(records)
    assert foms == [
        {"test": "BenchA", "system": "sys:part", "var": "bw",
         "value": 123.0, "unit": "MB/s"},
        {"test": "BenchA", "system": "sys:part", "var": "lat",
         "value": 4.5, "unit": "us"},
    ]


def test_timeline_survives_torn_tail(timeline):
    timeline.record_run("c0", "spec-a", [fom("BenchA", 100.0)])
    with open(timeline.path, "ab") as fh:
        fh.write(b'{"kind": "run", "spec_id": "spec-a", "fo')
    fresh = ResultsTimeline(timeline.path)
    assert fresh.run_count("spec-a") == 1
    fresh.record_run("c1", "spec-a", [fom("BenchA", 101.0)])
    assert fresh.run_count("spec-a") == 2
