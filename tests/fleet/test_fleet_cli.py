"""``repro-fleet``: the operator surface over queue + supervisor."""

import signal

import pytest

from repro.fleet.cli import main as fleet_main
from repro.fleet.queue import CampaignQueue
from repro.fleet.timeline import ResultsTimeline


@pytest.fixture
def qpath(tmp_path):
    return str(tmp_path / "fleet.q")


def submit(qpath, tmp_path, tag, *extra):
    return fleet_main([
        "submit", "--queue", qpath, "-c", "stream", "--system", "archer2",
        "--perflog-dir", str(tmp_path / f"pl-{tag}"), *extra,
    ])


def test_submit_run_status_round_trip(qpath, tmp_path, capsys):
    assert submit(qpath, tmp_path, "a") == 0
    assert submit(qpath, tmp_path, "b", "--tenant", "acme",
                  "--priority", "3") == 0
    out = capsys.readouterr().out
    assert out.count("submitted: c") == 2

    assert fleet_main(["run", "--queue", qpath, "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "FLEET SUMMARY" in out
    assert "2 completed, 0 degraded" in out
    assert "fleet.campaigns.completed" in out  # --metrics renders counters

    assert fleet_main(["status", "--queue", qpath]) == 0
    out = capsys.readouterr().out
    assert "completed=2" in out
    assert "tenant=acme priority=3" in out


def test_run_exit_codes_follow_campaign_outcomes(qpath, tmp_path, capsys):
    submit(qpath, tmp_path, "doomed",
           "--inject-faults", "build:1.0x99", "--max-retries", "0",
           "--max-failures", "1")
    submit(qpath, tmp_path, "fine")
    assert fleet_main(["run", "--queue", qpath]) == 2  # abort dominates
    out = capsys.readouterr().out
    assert "aborted" in out and "completed" in out


def test_drain_requests_then_later_supervisor_finishes(
    qpath, tmp_path, capsys
):
    submit(qpath, tmp_path, "a")
    assert fleet_main(["drain", "--queue", qpath]) == 0
    assert "drain requested" in capsys.readouterr().out
    # the request targets supervisors running *when it was made*; a
    # supervisor started afterwards just runs the fleet
    assert fleet_main(["run", "--queue", qpath]) == 0
    assert "1 completed" in capsys.readouterr().out


def test_run_installs_and_restores_sigterm_handler(qpath, tmp_path):
    submit(qpath, tmp_path, "a")
    before = signal.getsignal(signal.SIGTERM)
    assert fleet_main(["run", "--queue", qpath]) == 0
    assert signal.getsignal(signal.SIGTERM) is before


def test_tenant_quota_parse_errors(qpath, capsys):
    rc = fleet_main(["run", "--queue", qpath, "--tenant-quota", "oops"])
    assert rc == 1
    assert "expected TENANT=NODES" in capsys.readouterr().err
    rc = fleet_main(["run", "--queue", qpath,
                     "--tenant-quota", "acme=lots"])
    assert rc == 1


def test_bad_fault_spec_is_a_usage_error(qpath, capsys):
    rc = fleet_main(["run", "--queue", qpath,
                     "--inject-faults", "nope:0.5"])
    assert rc == 1
    assert "--inject-faults" in capsys.readouterr().err


def test_regressions_command_gates_on_direction(tmp_path, capsys):
    tl = ResultsTimeline(str(tmp_path / "fleet.timeline"))
    for run in range(6):
        value = 100.0 if run < 3 else 70.0
        tl.record_run(f"c{run}", "spec-a", [{
            "test": "BenchA", "system": "archer2:compute",
            "var": "bandwidth", "value": value, "unit": "MB/s",
        }])
    rc = fleet_main(["regressions", "--timeline",
                     str(tmp_path / "fleet.timeline")])
    assert rc == 1  # a regression gates CI
    assert "BenchA" in capsys.readouterr().out
    # improvements report but do not gate
    tl2 = ResultsTimeline(str(tmp_path / "up.timeline"))
    for run in range(6):
        value = 100.0 if run < 3 else 140.0
        tl2.record_run(f"c{run}", "spec-b", [{
            "test": "BenchB", "system": "archer2:compute",
            "var": "bandwidth", "value": value, "unit": "MB/s",
        }])
    assert fleet_main(["regressions", "--timeline",
                       str(tmp_path / "up.timeline")]) == 0


def test_config_error_surfaces_as_failed_campaign(qpath, tmp_path, capsys):
    fleet_main([
        "submit", "--queue", qpath, "-c", "no-such-suite",
        "--system", "archer2",
        "--perflog-dir", str(tmp_path / "pl-bad"),
    ])
    rc = fleet_main(["run", "--queue", qpath])
    assert rc == 1
    out = capsys.readouterr().out
    assert "unknown benchmark suite" in out
    states = CampaignQueue(qpath).load()
    assert all(s.status == "failed" for s in states.values())
