"""CampaignService: the embeddable API repro-bench and the fleet share."""

import pytest

from repro.fleet.service import (
    CampaignConfigError,
    CampaignService,
    CampaignSpec,
)

PINNED_TS = "2026-01-01T00:00:00"


def spec(tmp_path, tag="svc", **overrides):
    base = dict(
        suites=["stream"],
        system="archer2",
        perflog_dir=str(tmp_path / f"perflogs-{tag}"),
        perflog_timestamp=PINNED_TS,
    )
    base.update(overrides)
    return CampaignSpec(**base)


def test_spec_round_trips_through_json_doc(tmp_path):
    import json

    original = spec(tmp_path, setvar=["num_times=5"], max_retries=3)
    doc = json.loads(json.dumps(original.to_doc()))
    assert CampaignSpec.from_doc(doc) == original


def test_from_doc_ignores_unknown_fields(tmp_path):
    doc = spec(tmp_path).to_doc()
    doc["future_field"] = "whatever"  # a v2 writer's spec still loads
    assert CampaignSpec.from_doc(doc).suites == ["stream"]


def test_content_id_tracks_what_runs_not_how(tmp_path):
    # perflog_dir/policy/workers/journal are run mechanics: same id
    assert spec(tmp_path).content_id() == \
        spec(tmp_path, tag="other").content_id()
    assert spec(tmp_path).content_id() == \
        spec(tmp_path, policy="async", max_workers=8,
             journal="j.jsonl").content_id()
    assert spec(tmp_path).content_id() != \
        spec(tmp_path, setvar=["num_times=5"]).content_id()
    assert spec(tmp_path).content_id() != \
        spec(tmp_path, system="isambard-macs:cascadelake").content_id()


def test_prepare_validates_with_cli_error_messages(tmp_path):
    service = CampaignService()
    checks = [
        (dict(max_workers=0), "-j/--max-workers must be >= 1"),
        (dict(max_retries=-1), "--max-retries must be >= 0"),
        (dict(straggler_factor=1.0), "--straggler-factor must be > 1"),
        (dict(drain_after=0), "--drain-after must be >= 1"),
        (dict(journal_batch=0), "--journal-batch must be >= 1"),
        (dict(setvar=["oops"]), "expected VAR=VALUE, got 'oops'"),
        (dict(inject_faults="nope:0.5"), "--inject-faults"),
        (dict(watchdog="bogus=1"), "--watchdog"),
        (dict(suites=["no-such-suite"]), "unknown benchmark suite"),
        (dict(name=["zzz-matches-nothing"]), "no tests match the selection"),
    ]
    for overrides, fragment in checks:
        with pytest.raises(CampaignConfigError) as err:
            service.prepare(spec(tmp_path, **overrides))
        assert fragment in str(err.value), overrides
    with pytest.raises(CampaignConfigError) as err:
        service.prepare(spec(tmp_path, journal=None), resume=True)
    assert "--resume requires --journal PATH" in str(err.value)
    with pytest.raises(CampaignConfigError):
        service.prepare(CampaignSpec(suites=[]))


def test_prepare_then_run_matches_one_shot(tmp_path):
    service = CampaignService()
    prepared = service.prepare(spec(tmp_path, tag="a"))
    assert prepared.cases and prepared.system == "archer2"
    report_a = prepared.run()
    report_b = CampaignService().run(spec(tmp_path, tag="b"))
    assert report_a.success and report_b.success
    assert [r.case.display_name for r in report_a.results] == \
           [r.case.display_name for r in report_b.results]


def test_sliced_run_with_resume_converges_to_whole_run(tmp_path):
    """The supervisor's multiplexing primitive: slices + journal resume
    reproduce the single-shot campaign byte for byte."""
    import os

    def logs(prefix):
        out = {}
        for root, _, files in os.walk(prefix):
            for fname in files:
                path = os.path.join(root, fname)
                with open(path, "rb") as fh:
                    out[os.path.relpath(path, prefix)] = fh.read()
        return out

    whole = CampaignService().run(spec(tmp_path, tag="whole", suites=["hpcg"],
                                       exclude=["HPCG_Intel"]))
    assert whole.success

    sliced_spec = spec(tmp_path, tag="sliced", suites=["hpcg"],
                       exclude=["HPCG_Intel"],
                       journal=str(tmp_path / "sliced.jsonl"))
    prepared = CampaignService().prepare(sliced_spec)
    n = len(prepared.cases)
    assert n >= 2
    reports = []
    for start in range(0, n, 2):
        reports.append(
            prepared.run(cases=prepared.cases[start:start + 2], resume=True)
        )
    assert all(r.success for r in reports)
    assert sum(len(r.results) for r in reports) == n
    assert logs(sliced_spec.perflog_dir) == \
        logs(spec(tmp_path, tag="whole").perflog_dir)
    assert logs(sliced_spec.perflog_dir)  # non-vacuous: bytes exist


def test_result_store_probe_degrades_into_warning(tmp_path):
    service = CampaignService()
    blocked = tmp_path / "blocked"
    blocked.write_text("a file, not a dir")  # makedirs will fail
    with pytest.raises(CampaignConfigError) as err:
        service.prepare(
            spec(tmp_path, result_store=str(blocked), durability="strict")
        )
    assert "--result-store directory" in str(err.value)
    prepared = service.prepare(
        spec(tmp_path, result_store=str(blocked), durability="degrade")
    )
    assert prepared.run_options["result_store"] is None
    assert any("continuing without the result store" in w
               for w in prepared.warnings)
