"""The durable campaign queue: leases, folding, healing, compaction."""

import pytest

from repro.fleet.queue import CampaignQueue, QueueError
from repro.obs.jsonl import read_jsonl, seal_line
from repro.runner.resilience import SchemaVersionError

SPEC = {"suites": ["stream"], "system": "archer2"}


@pytest.fixture
def queue(tmp_path):
    return CampaignQueue(str(tmp_path / "fleet.q"))


def test_submit_generates_unique_ids_for_identical_specs(queue):
    a = queue.submit(SPEC)
    b = queue.submit(SPEC)
    assert a != b
    states = queue.load()
    assert states[a].status == "pending" and states[b].status == "pending"
    assert states[a].seq < states[b].seq


def test_submit_rejects_duplicate_explicit_id(queue):
    queue.submit(SPEC, campaign_id="c1")
    with pytest.raises(QueueError):
        queue.submit(SPEC, campaign_id="c1")


def test_claim_order_is_priority_then_submission(queue):
    low = queue.submit(SPEC, priority=0)
    high = queue.submit(SPEC, priority=5)
    also_low = queue.submit(SPEC, priority=0)
    order = []
    for _ in range(3):
        # a live supervisor vetoes what it already holds (own-worker
        # reclaim is for restarts), mirrored here with the accept hook
        state = queue.claim("w0", now=0.0, lease_seconds=10.0,
                            accept=lambda s: s.id not in order)
        order.append(state.id)
    assert order == [high, low, also_low]


def test_lease_blocks_other_workers_until_expiry(queue):
    cid = queue.submit(SPEC)
    queue.claim("w0", now=0.0, lease_seconds=10.0)
    assert queue.claim("w1", now=5.0, lease_seconds=10.0) is None
    # the holder stopped heartbeating; the lease lapses
    reclaimed = queue.claim("w1", now=10.0, lease_seconds=10.0)
    assert reclaimed is not None and reclaimed.id == cid
    assert queue.load()[cid].worker == "w1"


def test_own_worker_reclaims_without_waiting(queue):
    cid = queue.submit(SPEC)
    queue.claim("w0", now=0.0, lease_seconds=100.0)
    # a restarted supervisor with the same identity takes it right back
    state = queue.claim("w0", now=1.0, lease_seconds=100.0)
    assert state is not None and state.id == cid


def test_renew_extends_and_release_frees(queue):
    cid = queue.submit(SPEC)
    queue.claim("w0", now=0.0, lease_seconds=10.0)
    queue.renew(cid, "w0", now=8.0, lease_seconds=10.0)
    assert queue.claim("w1", now=12.0, lease_seconds=10.0) is None  # 8+10
    queue.release(cid, "w0", now=13.0, reason="drain")
    state = queue.claim("w1", now=13.0, lease_seconds=10.0)
    assert state is not None and state.id == cid


def test_complete_is_terminal(queue):
    cid = queue.submit(SPEC)
    queue.claim("w0", now=0.0, lease_seconds=10.0)
    queue.complete(cid, "w0", "completed", now=3.0, passed=4)
    assert queue.claim("w1", now=100.0, lease_seconds=10.0) is None
    state = queue.load()[cid]
    assert state.status == "completed" and state.passed == 4
    with pytest.raises(QueueError):
        queue.complete(cid, "w0", "running", now=4.0)


def test_accept_veto_skips_to_next_candidate(queue):
    first = queue.submit(SPEC, tenant="a")
    second = queue.submit(SPEC, tenant="b")
    state = queue.claim(
        "w0", now=0.0, lease_seconds=10.0,
        accept=lambda s: s.tenant != "a",
    )
    assert state.id == second
    assert queue.load()[first].status == "pending"


def test_torn_tail_heals_and_queue_stays_usable(queue):
    queue.submit(SPEC, campaign_id="c1")
    queue.submit(SPEC, campaign_id="c2")
    with open(queue.path, "ab") as fh:
        fh.write(b'{"kind": "submit", "id": "c3", "se')  # power cut
    fresh = CampaignQueue(queue.path)
    states = fresh.load()
    assert set(states) == {"c1", "c2"}  # torn record dropped, not fatal
    fresh.submit(SPEC, campaign_id="c3")  # appender repairs the tail
    assert set(fresh.load()) == {"c1", "c2", "c3"}


def test_compaction_drops_heartbeats_keeps_state(queue, tmp_path):
    cid = queue.submit(SPEC)
    other = queue.submit(SPEC)
    queue.claim("w0", now=0.0, lease_seconds=10.0)
    for t in range(1, 20):
        queue.renew(cid, "w0", now=float(t), lease_seconds=10.0)
    queue.complete(cid, "w0", "completed", now=20.0, passed=1)
    before = queue.load()
    dropped = queue.compact()
    assert dropped >= 18  # the superseded heartbeats went away
    after = CampaignQueue(queue.path).load()
    assert {c: (s.status, s.passed) for c, s in after.items()} == \
           {c: (s.status, s.passed) for c, s in before.items()}
    assert after[other].status == "pending"
    assert queue.compact() == 0  # idempotent


def test_compaction_preserves_unknown_record_shapes(queue):
    queue.submit(SPEC, campaign_id="c1")
    with open(queue.path, "a", encoding="utf-8") as fh:
        fh.write(seal_line({"kind": "operator-note", "x": 1}) + "\n")
    queue.claim("w0", now=0.0, lease_seconds=5.0)
    queue.renew("c1", "w0", now=1.0, lease_seconds=5.0)
    queue.compact()
    kinds = [r.get("kind") for r in read_jsonl(queue.path)]
    assert "operator-note" in kinds


def test_records_carry_schema_version_and_future_v_is_rejected(queue):
    queue.submit(SPEC, campaign_id="c1")
    assert all(r.get("v") == 1 for r in read_jsonl(queue.path))
    with open(queue.path, "a", encoding="utf-8") as fh:
        fh.write(seal_line({"kind": "submit", "id": "c9", "v": 99})
                 + "\n")
    with pytest.raises(SchemaVersionError):
        CampaignQueue(queue.path).load()


def test_legacy_unversioned_records_still_fold(queue):
    with open(queue.path, "a", encoding="utf-8") as fh:
        fh.write(seal_line({
            "kind": "submit", "t": 0.0, "id": "old", "seq": 1,
            "spec": SPEC,
        }) + "\n")
    states = CampaignQueue(queue.path).load()
    assert states["old"].status == "pending"


def test_drain_request_and_marker(queue):
    queue.submit(SPEC)
    assert not queue.drain_requested_since(0.0)
    queue.request_drain(now=5.0)
    assert queue.drain_requested_since(0.0)
    # strictly later only: a supervisor started at or after the request
    # was not the one being asked to stop
    assert not queue.drain_requested_since(5.0)
    assert not queue.drain_requested_since(6.0)
    queue.mark_drain("w0", now=7.0)
    assert queue.max_time() == 7.0


def test_next_lease_expiry_and_stats(queue):
    a = queue.submit(SPEC)
    b = queue.submit(SPEC)
    queue.claim("w0", now=0.0, lease_seconds=10.0)
    queue.claim("w1", now=2.0, lease_seconds=10.0)
    assert queue.next_lease_expiry() == 10.0
    queue.complete(a, "w0", "completed", now=4.0)
    assert queue.stats() == {
        "pending": 0, "leased": 1, "completed": 1, "failed": 0, "aborted": 0,
    }
    assert b in {s.id for s in queue.load().values()
                 if s.status == "leased"}
