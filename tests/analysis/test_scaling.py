"""Tests for strong/weak scaling analysis and the Amdahl fit."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.scaling import (
    ScalingPoint,
    ScalingStudy,
    fit_amdahl,
    strong_scaling_efficiency,
    weak_scaling_efficiency,
)


def amdahl_points(serial_fraction, t1=100.0, counts=(1, 2, 4, 8, 16, 32)):
    return [
        ScalingPoint(n, t1 * (serial_fraction + (1 - serial_fraction) / n))
        for n in counts
    ]


class TestEfficiencies:
    def test_perfect_strong_scaling(self):
        assert strong_scaling_efficiency(100.0, 1, 25.0, 4) == 1.0

    def test_sublinear_strong_scaling(self):
        assert strong_scaling_efficiency(100.0, 1, 50.0, 4) == 0.5

    def test_weak_scaling(self):
        assert weak_scaling_efficiency(10.0, 10.0) == 1.0
        assert weak_scaling_efficiency(10.0, 20.0) == 0.5

    def test_validation(self):
        with pytest.raises(ValueError):
            strong_scaling_efficiency(0.0, 1, 1.0, 2)
        with pytest.raises(ValueError):
            weak_scaling_efficiency(1.0, 0.0)


class TestStudy:
    def test_points_sorted_and_base(self):
        study = ScalingStudy([ScalingPoint(8, 20.0), ScalingPoint(1, 100.0)])
        assert study.base.tasks == 1
        assert [t for t, _ in study.speedups()] == [1, 8]

    def test_speedups_relative_to_base(self):
        study = ScalingStudy(amdahl_points(0.0))
        for tasks, speedup in study.speedups():
            assert speedup == pytest.approx(tasks)

    def test_strong_efficiency_decays_with_serial_fraction(self):
        study = ScalingStudy(amdahl_points(0.2))
        effs = dict(study.strong_efficiencies())
        assert effs[1] == pytest.approx(1.0)
        assert effs[32] < effs[4] < 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ScalingStudy([])

    def test_bad_point_rejected(self):
        with pytest.raises(ValueError):
            ScalingPoint(0, 1.0)
        with pytest.raises(ValueError):
            ScalingPoint(1, 0.0)


class TestAmdahlFit:
    @pytest.mark.parametrize("s", [0.0, 0.05, 0.2, 0.5])
    def test_recovers_known_serial_fraction(self, s):
        assert fit_amdahl(amdahl_points(s)) == pytest.approx(s, abs=0.02)

    def test_needs_two_points(self):
        with pytest.raises(ValueError):
            fit_amdahl([ScalingPoint(1, 1.0)])

    def test_clamped_to_unit_interval(self):
        # super-linear data (cache effects) would fit s < 0: clamp to 0
        pts = [ScalingPoint(1, 100.0), ScalingPoint(2, 40.0),
               ScalingPoint(4, 15.0)]
        assert fit_amdahl(pts) == 0.0

    @given(st.floats(min_value=0.0, max_value=0.9))
    @settings(max_examples=25, deadline=None)
    def test_fit_is_exact_on_noiseless_amdahl(self, s):
        assert fit_amdahl(amdahl_points(s)) == pytest.approx(s, abs=0.02)


class TestHpgmgScalingIntegration:
    def test_hpgmg_strong_scaling_is_comm_limited(self):
        """Sweeping task counts through the HPGMG timing model yields a
        classic flattening strong-scaling curve; the fitted Amdahl serial
        fraction is the latency-bound coarse-grid work."""
        from repro.apps.hpgmg.model import HpgmgTimingModel
        from repro.systems.registry import get_system

        node = get_system("archer2").partition(None).node
        points = []
        for tasks in (2, 4, 8, 16, 32):
            model = HpgmgTimingModel("archer2", node, tasks, 2, 8)
            # fixed global problem: scale boxes per rank down as ranks grow
            model.boxes_per_rank = max(64 // tasks, 1)
            points.append(ScalingPoint(tasks, model.solve_seconds(0)))
        study = ScalingStudy(points)
        effs = dict(study.strong_efficiencies())
        assert effs[32] < effs[2]  # efficiency decays
        assert 0.0 < fit_amdahl(points) < 0.5
