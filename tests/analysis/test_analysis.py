"""Tests for efficiency metrics and the performance-portability metric."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.efficiency import (
    EfficiencyError,
    application_efficiency,
    architectural_efficiency,
    variant_efficiency,
)
from repro.analysis.portability import cascade, performance_portability


class TestEfficiency:
    def test_architectural(self):
        assert architectural_efficiency(215.3, 281.6) == pytest.approx(0.7645,
                                                                       rel=1e-3)

    def test_architectural_validation(self):
        with pytest.raises(EfficiencyError):
            architectural_efficiency(1.0, 0.0)
        with pytest.raises(EfficiencyError):
            architectural_efficiency(-1.0, 10.0)

    def test_variant_eq1_from_paper(self):
        """E = VAR/ORIG with Table 2's Cascade Lake numbers."""
        assert variant_efficiency(39.0, 24.0) == pytest.approx(1.625)
        assert variant_efficiency(51.0, 24.0) == pytest.approx(2.125)
        assert variant_efficiency(124.2, 39.2) == pytest.approx(3.168,
                                                                rel=1e-3)

    def test_variant_validation(self):
        with pytest.raises(EfficiencyError):
            variant_efficiency(1.0, 0.0)

    def test_application_efficiency_vs_best(self):
        eff = application_efficiency({"a": 50.0, "b": 100.0})
        assert eff == {"a": 0.5, "b": 1.0}

    def test_application_efficiency_explicit_best(self):
        eff = application_efficiency({"a": 50.0}, best=200.0)
        assert eff["a"] == 0.25

    def test_application_efficiency_empty(self):
        assert application_efficiency({}) == {}


class TestPerformancePortability:
    def test_harmonic_mean(self):
        pp = performance_portability({"a": 0.5, "b": 1.0})
        assert pp == pytest.approx(2 / (1 / 0.5 + 1 / 1.0))

    def test_unsupported_platform_zeroes_pp(self):
        """Figure 2's '*' boxes: one unsupported platform -> PP = 0."""
        assert performance_portability({"a": 0.9, "b": None}) == 0.0
        assert performance_portability({"a": 0.9, "b": 0.0}) == 0.0

    def test_subset_selection(self):
        effs = {"a": 0.8, "b": None}
        assert performance_portability(effs, platforms=["a"]) == 0.8
        assert performance_portability(effs, platforms=["a", "b"]) == 0.0

    def test_empty_set(self):
        assert performance_portability({}, platforms=[]) == 0.0

    def test_efficiency_above_one_rejected(self):
        with pytest.raises(ValueError):
            performance_portability({"a": 1.5})

    def test_cascade_ordering(self):
        effs = {"slow": 0.2, "fast": 0.9, "broken": None, "mid": 0.5}
        points = cascade(effs)
        names = [n for n, _ in points]
        assert names[:3] == ["fast", "mid", "slow"]
        assert names[-1] == "broken"
        values = [v for _, v in points[:3]]
        # PP is non-increasing as platforms are added best-first
        assert values == sorted(values, reverse=True)
        assert points[-1][1] == 0.0

    @given(
        st.dictionaries(
            st.sampled_from(["p1", "p2", "p3", "p4"]),
            st.floats(min_value=0.01, max_value=1.0),
            min_size=1,
        )
    )
    def test_pp_bounded_by_min_and_max(self, effs):
        pp = performance_portability(effs)
        assert min(effs.values()) - 1e-12 <= pp <= max(effs.values()) + 1e-12

    @given(st.floats(min_value=0.01, max_value=1.0))
    def test_pp_of_uniform_is_that_value(self, e):
        assert performance_portability({"a": e, "b": e}) == pytest.approx(e)
