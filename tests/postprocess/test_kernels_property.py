"""Property tests: vectorized kernels == pure-Python reference.

The reference implementations in :mod:`repro.postprocess.reference` are
the executable specification; hypothesis drives randomized frames (mixed
dtypes, missing columns, duplicate keys, empty groups) through both
paths and requires *result-identical* output -- values, column order,
row order, and dtypes.  Floating-point results must match bit for bit:
the vectorized group reducers consume contiguous slices of the stably
sorted value column, so ``np.mean``/``np.sum`` see exactly the operand
sequence the reference's per-group gather sees.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.postprocess.dataframe import DataFrame, DataFrameError
from repro.postprocess.reference import (
    reference_concat,
    reference_filter,
    reference_groupby,
    reference_pivot,
    reference_unique,
)

# small label pools force duplicate keys; floats avoid NaN (NaN breaks
# record equality, and perflog key columns never carry NaN)
LABELS = st.sampled_from(["archer2", "csd3", "isambard", "a", "b", ""])
TESTS = st.sampled_from(["t1", "t2", "t3", "t4"])
FLOATS = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
INTS = st.integers(min_value=-1000, max_value=1000)


def frames_identical(a: DataFrame, b: DataFrame) -> None:
    assert a.columns == b.columns
    assert len(a) == len(b)
    for name in a.columns:
        assert a[name].dtype == b[name].dtype, name
        av, bv = a[name].tolist(), b[name].tolist()
        assert av == bv, f"{name}: {av} != {bv}"


@st.composite
def key_value_frames(draw, min_rows=0, max_rows=30):
    """A frame with 1-2 key columns and 1-2 value columns."""
    n = draw(st.integers(min_value=min_rows, max_value=max_rows))
    cols = {"system": draw(st.lists(LABELS, min_size=n, max_size=n))}
    if draw(st.booleans()):
        cols["test"] = draw(st.lists(TESTS, min_size=n, max_size=n))
    cols["value"] = draw(st.lists(FLOATS, min_size=n, max_size=n))
    if draw(st.booleans()):
        cols["tasks"] = draw(st.lists(INTS, min_size=n, max_size=n))
    return DataFrame(cols)


class TestGroupbyProperty:
    @settings(max_examples=60, deadline=None)
    @given(frame=key_value_frames(),
           reducer=st.sampled_from([np.sum, np.mean, np.min, np.max, len]))
    def test_groupby_matches_reference(self, frame, reducer):
        keys = [k for k in ("system", "test") if k in frame]
        agg = {"value": reducer}
        if "tasks" in frame:
            agg["tasks"] = np.max
        vec = frame.groupby(keys, agg)
        ref = reference_groupby(frame, keys, agg)
        assert vec.to_records() == ref.to_records()
        assert vec.columns == ref.columns

    @settings(max_examples=30, deadline=None)
    @given(frame=key_value_frames())
    def test_unique_matches_reference(self, frame):
        assert frame.unique("system") == reference_unique(frame, "system")

    def test_python_callable_reducer(self):
        # arbitrary (non-numpy) reducers take the per-group slice path
        frame = DataFrame({"k": ["a", "b", "a", "a"],
                           "v": [1.0, 2.0, 3.0, 5.0]})
        spread = lambda a: float(np.max(a) - np.min(a))  # noqa: E731
        vec = frame.groupby(["k"], {"v": spread})
        ref = reference_groupby(frame, ["k"], {"v": spread})
        assert vec.to_records() == ref.to_records()


class TestFilterProperty:
    @settings(max_examples=40, deadline=None)
    @given(frame=key_value_frames(), threshold=FLOATS)
    def test_filter_matches_reference(self, frame, threshold):
        pred = lambda row: row["value"] > threshold  # noqa: E731
        frames_identical(frame.filter(pred), reference_filter(frame, pred))

    @settings(max_examples=40, deadline=None)
    @given(frame=key_value_frames(),
           wanted=st.lists(LABELS, max_size=3))
    def test_filter_in_matches_reference(self, frame, wanted):
        keep = set(wanted)
        pred = lambda row: row["system"] in keep  # noqa: E731
        frames_identical(frame.filter_in("system", wanted),
                         reference_filter(frame, pred))

    @settings(max_examples=20, deadline=None)
    @given(frame=key_value_frames(min_rows=1))
    def test_with_column_sees_every_row(self, frame):
        out = frame.with_column("double", lambda r: r["value"] * 2)
        expected = [v * 2 for v in frame["value"].tolist()]
        assert out["double"].tolist() == expected
        assert "double" not in frame


class TestPivotProperty:
    @settings(max_examples=60, deadline=None)
    @given(frame=key_value_frames(),
           use_reducer=st.booleans())
    def test_pivot_matches_reference(self, frame, use_reducer):
        if "test" not in frame:
            frame = frame.with_column("test", lambda r: "t1")
        reducer = np.mean if use_reducer else None
        vec_err = ref_err = None
        vec = ref = None
        try:
            vec = frame.pivot("system", "test", "value", reducer=reducer)
        except DataFrameError as exc:
            vec_err = str(exc)
        try:
            ref = reference_pivot(frame, "system", "test", "value",
                                  reducer=reducer)
        except DataFrameError as exc:
            ref_err = str(exc)
        assert (vec_err is None) == (ref_err is None)
        if vec_err is not None:
            assert "duplicate" in vec_err and "duplicate" in ref_err
            return
        v_index, v_series = vec
        r_index, r_series = ref
        assert v_index == r_index
        assert list(v_series) == list(r_series)
        for label in v_series:
            for x, y in zip(v_series[label], r_series[label]):
                if x is None or y is None:
                    assert x is None and y is None
                else:
                    assert float(x) == float(y) or (
                        math.isnan(float(x)) and math.isnan(float(y))
                    )


@st.composite
def ragged_frames(draw):
    """Frames with overlapping-but-different schemas, some empty."""
    pool = ["system", "value", "tasks", "note"]
    names = draw(st.lists(st.sampled_from(pool), min_size=1, max_size=4,
                          unique=True))
    n = draw(st.integers(min_value=0, max_value=10))
    cols = {}
    for name in names:
        if name == "value":
            cols[name] = draw(st.lists(FLOATS, min_size=n, max_size=n))
        elif name == "tasks":
            cols[name] = draw(st.lists(INTS, min_size=n, max_size=n))
        else:
            cols[name] = draw(st.lists(LABELS, min_size=n, max_size=n))
    return DataFrame(cols)


class TestConcatProperty:
    @settings(max_examples=60, deadline=None)
    @given(frames=st.lists(ragged_frames(), max_size=5))
    def test_concat_matches_reference(self, frames):
        frames_identical(DataFrame.concat(frames), reference_concat(frames))

    @settings(max_examples=30, deadline=None)
    @given(frames=st.lists(ragged_frames(), max_size=4))
    def test_concat_length_and_schema_union(self, frames):
        out = DataFrame.concat(frames)
        assert len(out) == sum(len(f) for f in frames)
        union = [n for f in frames for n in f.columns]
        assert set(out.columns) == set(union)


class TestMaskSortProperty:
    @settings(max_examples=30, deadline=None)
    @given(frame=key_value_frames())
    def test_mask_matches_row_loop(self, frame):
        keep = np.array([i % 2 == 0 for i in range(len(frame))], dtype=bool)
        out = frame.mask(keep)
        rows = [frame.row(i) for i in range(len(frame)) if i % 2 == 0]
        assert out.to_records() == rows

    @settings(max_examples=30, deadline=None)
    @given(frame=key_value_frames())
    def test_sort_is_stable_like_python(self, frame):
        out = frame.sort_values("value")
        expected = sorted(range(len(frame)),
                          key=lambda i: frame["value"][i])
        assert out["value"].tolist() == [
            frame["value"][i] for i in expected
        ]
