"""Additional DataFrame coverage: multi-key groupby, multi-agg, edge cases."""

import numpy as np
import pytest

from repro.postprocess.dataframe import DataFrame, DataFrameError


def frame():
    return DataFrame(
        {
            "system": ["a", "a", "b", "b", "b"],
            "test": ["t1", "t2", "t1", "t1", "t2"],
            "value": [1.0, 2.0, 3.0, 5.0, 7.0],
        }
    )


class TestGroupbyMore:
    def test_multi_key_groupby(self):
        agg = frame().groupby(["system", "test"], {"value": np.mean})
        recs = {(r["system"], r["test"]): r["value"] for r in agg.to_records()}
        assert recs[("b", "t1")] == pytest.approx(4.0)
        assert len(recs) == 4

    def test_multiple_aggregations(self):
        agg = frame().groupby(
            ["system"], {"value": np.max, "test": len}
        )
        recs = {r["system"]: (r["value"], r["test"]) for r in agg.to_records()}
        assert recs["b"] == (7.0, 3)

    def test_groupby_preserves_first_appearance_order(self):
        agg = frame().groupby(["system"], {"value": np.sum})
        assert list(agg["system"]) == ["a", "b"]

    def test_groupby_empty_frame(self):
        empty = DataFrame({"k": [], "v": []})
        agg = empty.groupby(["k"], {"v": np.sum})
        assert agg.empty


class TestPivotMore:
    def test_duplicate_cells_raise(self):
        # silent last-write-wins would hide repeated runs: refuse instead
        df = DataFrame(
            {"x": ["p", "p"], "s": ["m", "m"], "v": [1.0, 9.0]}
        )
        with pytest.raises(DataFrameError, match="duplicates"):
            df.pivot("x", "s", "v")

    def test_duplicate_cells_with_explicit_reducer(self):
        df = DataFrame(
            {"x": ["p", "p", "q"], "s": ["m", "m", "m"],
             "v": [1.0, 9.0, 4.0]}
        )
        index, series = df.pivot("x", "s", "v", reducer=np.mean)
        assert index == ["p", "q"]
        assert series["m"] == [5.0, 4.0]

    def test_pivot_empty(self):
        df = DataFrame({"x": [], "s": [], "v": []})
        index, series = df.pivot("x", "s", "v")
        assert index == [] and series == {}


class TestConcatSchema:
    def test_concat_preserves_schema_of_empty_frames(self):
        # an empty-but-typed frame (e.g. a perflog that recorded nothing
        # yet) must not lose its columns in assimilation
        typed = DataFrame({"system": [], "perf_value": []})
        alone = DataFrame.concat([typed])
        assert alone.empty
        assert alone.columns == ["system", "perf_value"]
        several = DataFrame.concat([DataFrame(), typed, DataFrame({"extra": []})])
        assert several.empty
        assert several.columns == ["system", "perf_value", "extra"]

    def test_concat_empty_frame_contributes_columns_to_union(self):
        typed = DataFrame({"system": [], "energy": []})
        live = DataFrame({"system": ["a"], "perf_value": [1.0]})
        both = DataFrame.concat([typed, live])
        assert len(both) == 1
        assert set(both.columns) == {"system", "energy", "perf_value"}
        assert both["energy"][0] is None

    def test_concat_empty_preserves_dtype(self):
        typed = DataFrame({"v": np.array([], dtype=np.float64)})
        out = DataFrame.concat([typed, DataFrame({"v": []})])
        assert out["v"].dtype == np.float64


class TestCsvLossless:
    def test_none_round_trips(self):
        df = DataFrame.concat([
            DataFrame({"system": ["a"], "note": ["hello"]}),
            DataFrame({"system": ["b"]}),
        ])
        back = DataFrame.from_csv(df.to_csv())
        assert back["note"][0] == "hello"
        assert back["note"][1] is None  # not the string "None"

    def test_numeric_looking_strings_stay_strings(self):
        # a system named "1e3" must not come back as the float 1000.0
        df = DataFrame({"system": ["1e3", "42", "inf"],
                        "perf_value": [1.5, 2.5, 3.5]})
        back = DataFrame.from_csv(df.to_csv())
        assert list(back["system"]) == ["1e3", "42", "inf"]
        assert back["perf_value"].dtype == np.float64
        assert list(back["perf_value"]) == [1.5, 2.5, 3.5]

    def test_backslash_and_empty_string_round_trip(self):
        df = DataFrame({"s": ["\\N", "", "\\x", "plain"]})
        back = DataFrame.from_csv(df.to_csv())
        assert list(back["s"]) == ["\\N", "", "\\x", "plain"]

    def test_perflog_schema_round_trip_lossless(self, tmp_path):
        from repro.postprocess.perflog_reader import read_perflog
        from repro.runner.perflog import PERFLOG_FIELDS

        row = ["2026-01-01T00:00:00", "repro-1.0.0", "T", "1e3", "part",
               "gcc", "", "8", "Triad", "322.9", "GB/s", "pass"]
        log = tmp_path / "t.log"
        log.write_text("|".join(PERFLOG_FIELDS) + "\n" + "|".join(row) + "\n")
        frame = read_perflog(str(log))
        back = DataFrame.from_csv(frame.to_csv())
        assert back.columns == frame.columns
        for name in frame.columns:
            assert list(back[name]) == list(frame[name]), name
            assert back[name].dtype == frame[name].dtype, name
        assert back["system"][0] == "1e3"  # still a string
        assert back["spec"][0] == ""       # empty string, not None

    def test_legacy_untyped_csv_still_inferred(self):
        back = DataFrame.from_csv("name,score\nalpha,1.5\nbeta,2\n")
        assert back["score"][0] == 1.5
        assert back["name"][1] == "beta"


class TestMiscEdges:
    def test_concat_of_nothing(self):
        assert DataFrame.concat([]).empty
        assert DataFrame.concat([DataFrame()]).empty

    def test_row_out_of_range(self):
        with pytest.raises(IndexError):
            frame().row(99)

    def test_with_column_does_not_mutate_original(self):
        df = frame()
        out = df.with_column("double", lambda r: r["value"] * 2)
        assert "double" not in df
        assert "double" in out

    def test_mask_wrong_length(self):
        with pytest.raises(DataFrameError):
            frame().mask(np.array([True]))

    def test_from_csv_mixed_types(self):
        back = DataFrame.from_csv("name,score\nalpha,1.5\nbeta,2\n")
        assert back["score"][0] == 1.5
        assert back["name"][1] == "beta"

    def test_from_csv_empty(self):
        assert DataFrame.from_csv("").empty

    def test_to_string_empty(self):
        assert "empty" in DataFrame().to_string()

    def test_filter_in_with_no_matches(self):
        out = frame().filter_in("system", ["zzz"])
        assert out.empty
        # schema is preserved on empty results
        assert out.columns == frame().columns
