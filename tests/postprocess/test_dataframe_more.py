"""Additional DataFrame coverage: multi-key groupby, multi-agg, edge cases."""

import numpy as np
import pytest

from repro.postprocess.dataframe import DataFrame, DataFrameError


def frame():
    return DataFrame(
        {
            "system": ["a", "a", "b", "b", "b"],
            "test": ["t1", "t2", "t1", "t1", "t2"],
            "value": [1.0, 2.0, 3.0, 5.0, 7.0],
        }
    )


class TestGroupbyMore:
    def test_multi_key_groupby(self):
        agg = frame().groupby(["system", "test"], {"value": np.mean})
        recs = {(r["system"], r["test"]): r["value"] for r in agg.to_records()}
        assert recs[("b", "t1")] == pytest.approx(4.0)
        assert len(recs) == 4

    def test_multiple_aggregations(self):
        agg = frame().groupby(
            ["system"], {"value": np.max, "test": len}
        )
        recs = {r["system"]: (r["value"], r["test"]) for r in agg.to_records()}
        assert recs["b"] == (7.0, 3)

    def test_groupby_preserves_first_appearance_order(self):
        agg = frame().groupby(["system"], {"value": np.sum})
        assert list(agg["system"]) == ["a", "b"]

    def test_groupby_empty_frame(self):
        empty = DataFrame({"k": [], "v": []})
        agg = empty.groupby(["k"], {"v": np.sum})
        assert agg.empty


class TestPivotMore:
    def test_duplicate_cells_last_write_wins(self):
        df = DataFrame(
            {"x": ["p", "p"], "s": ["m", "m"], "v": [1.0, 9.0]}
        )
        _, series = df.pivot("x", "s", "v")
        assert series["m"] == [9.0]

    def test_pivot_empty(self):
        df = DataFrame({"x": [], "s": [], "v": []})
        index, series = df.pivot("x", "s", "v")
        assert index == [] and series == {}


class TestMiscEdges:
    def test_concat_of_nothing(self):
        assert DataFrame.concat([]).empty
        assert DataFrame.concat([DataFrame()]).empty

    def test_row_out_of_range(self):
        with pytest.raises(IndexError):
            frame().row(99)

    def test_with_column_does_not_mutate_original(self):
        df = frame()
        out = df.with_column("double", lambda r: r["value"] * 2)
        assert "double" not in df
        assert "double" in out

    def test_mask_wrong_length(self):
        with pytest.raises(DataFrameError):
            frame().mask(np.array([True]))

    def test_from_csv_mixed_types(self):
        back = DataFrame.from_csv("name,score\nalpha,1.5\nbeta,2\n")
        assert back["score"][0] == 1.5
        assert back["name"][1] == "beta"

    def test_from_csv_empty(self):
        assert DataFrame.from_csv("").empty

    def test_to_string_empty(self):
        assert "empty" in DataFrame().to_string()

    def test_filter_in_with_no_matches(self):
        out = frame().filter_in("system", ["zzz"])
        assert out.empty
        # schema is preserved on empty results
        assert out.columns == frame().columns
