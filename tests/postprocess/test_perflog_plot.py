"""Tests for perflog reading, YAML filters, plotting, and the plot CLI."""

import os

import pytest

from repro.postprocess.cli import main as plot_main
from repro.postprocess.dataframe import DataFrame
from repro.postprocess.filters import FilterError, apply_filters, load_config
from repro.postprocess.perflog_reader import (
    PerflogFormatError,
    read_perflog,
    read_perflogs,
)
from repro.postprocess.plotting import (
    bar_chart_ascii,
    bar_chart_svg,
    heatmap_ascii,
)
from repro.runner.cli import load_suite
from repro.runner.executor import Executor


@pytest.fixture(scope="module")
def perflog_dir(tmp_path_factory):
    """Real perflogs from real runs on two simulated systems."""
    prefix = tmp_path_factory.mktemp("perflogs")
    classes = load_suite("babelstream")
    for system in ("archer2", "csd3"):
        ex = Executor(perflog_prefix=str(prefix))
        ex.run(classes, system, tags=["omp"])
    return str(prefix)


class TestPerflogReader:
    def test_read_single(self, perflog_dir):
        path = os.path.join(
            perflog_dir, "archer2", "compute", "BabelStreamBenchmark_omp.log"
        )
        frame = read_perflog(path)
        assert len(frame) == 5  # five kernels
        assert set(frame["perf_var"]) == {"Copy", "Mul", "Add", "Triad", "Dot"}
        assert all(v > 0 for v in frame["perf_value"])

    def test_read_all_concatenates_systems(self, perflog_dir):
        frame = read_perflogs(perflog_dir)
        assert set(frame["system"]) == {"archer2", "csd3"}
        assert len(frame) == 10

    def test_missing_prefix(self):
        with pytest.raises(FileNotFoundError):
            read_perflogs("/nonexistent/prefix")

    def test_malformed_line_rejected(self, tmp_path):
        bad = tmp_path / "bad.log"
        bad.write_text("just|three|fields\n")
        with pytest.raises(PerflogFormatError):
            read_perflog(str(bad))

    def test_non_numeric_value_rejected(self, tmp_path):
        from repro.runner.perflog import PERFLOG_FIELDS

        fields = ["x"] * len(PERFLOG_FIELDS)
        bad = tmp_path / "bad.log"
        bad.write_text("|".join(fields) + "\n")
        with pytest.raises(PerflogFormatError):
            read_perflog(str(bad))


class TestFilters:
    def frame(self):
        return DataFrame(
            {
                "system": ["archer2", "csd3", "csd3"],
                "perf_var": ["Triad", "Triad", "Copy"],
                "perf_value": [322.0, 217.0, 212.0],
            }
        )

    def test_equals_and_in(self):
        config = load_config(
            "filters:\n"
            "  - column: perf_var\n"
            "    equals: Triad\n"
            "  - column: system\n"
            "    in: [csd3]\n"
        )
        out = apply_filters(self.frame(), config)
        assert len(out) == 1 and out["perf_value"][0] == 217.0

    def test_min_max_contains(self):
        config = load_config(
            "filters:\n"
            "  - column: perf_value\n"
            "    min: 215\n"
            "    max: 400\n"
            "  - column: perf_var\n"
            "    contains: ria\n"
        )
        out = apply_filters(self.frame(), config)
        assert len(out) == 2

    def test_unknown_column_rejected(self):
        config = {"filters": [{"column": "ghost", "equals": 1}]}
        with pytest.raises(FilterError):
            apply_filters(self.frame(), config)

    def test_bad_yaml_rejected(self):
        with pytest.raises(FilterError):
            load_config("filters: [\n")
        with pytest.raises(FilterError):
            load_config("- just\n- a list\n")

    def test_filter_without_column_rejected(self):
        with pytest.raises(FilterError):
            apply_filters(self.frame(), {"filters": [{"equals": 1}]})


class TestPlotting:
    INDEX = ["archer2", "csd3"]
    SERIES = {"omp": [322.9, 217.2], "tbb": [180.8, None]}

    def test_ascii_bar_chart(self):
        text = bar_chart_ascii(self.INDEX, self.SERIES, title="Triad",
                               unit="GB/s")
        assert "Triad" in text
        assert "#" in text
        assert "*" in text  # the missing tbb cell

    def test_svg_bar_chart_wellformed(self):
        svg = bar_chart_svg(self.INDEX, self.SERIES, title="Triad")
        assert svg.startswith("<svg")
        assert svg.endswith("</svg>")
        assert svg.count("<rect") >= 3  # 3 bars + legend swatches

    def test_heatmap(self):
        cells = {"omp": {"archer2": 0.79, "csd3": 0.77},
                 "cuda": {"archer2": None, "csd3": None}}
        text = heatmap_ascii(["omp", "cuda"], ["archer2", "csd3"], cells)
        assert "0.79" in text and "*" in text


class TestPlotCli:
    def test_table_output(self, perflog_dir, capsys):
        assert plot_main([perflog_dir]) == 0
        out = capsys.readouterr().out
        assert "perf_var" in out

    def test_csv_output(self, perflog_dir, capsys):
        assert plot_main([perflog_dir, "--csv"]) == 0
        assert "Triad" in capsys.readouterr().out

    def test_config_driven_chart(self, perflog_dir, capsys, tmp_path):
        cfg = tmp_path / "plot.yaml"
        cfg.write_text(
            "filters:\n"
            "  - column: perf_var\n"
            "    equals: Triad\n"
            "x: system\n"
            "series: test\n"
            "value: perf_value\n"
            "title: Triad bandwidth\n"
        )
        svg_path = tmp_path / "out.svg"
        rc = plot_main([perflog_dir, "--config", str(cfg), "--svg",
                        str(svg_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "Triad bandwidth" in out
        assert svg_path.exists()

    def test_filter_to_nothing(self, perflog_dir, capsys, tmp_path):
        cfg = tmp_path / "plot.yaml"
        cfg.write_text("filters:\n  - column: system\n    equals: summit\n")
        assert plot_main([perflog_dir, "--config", str(cfg)]) == 1

    def test_missing_perflogs(self, capsys):
        assert plot_main(["/nope"]) == 1
