"""Incremental ingest store: manifest hits, invalidation, persistence,
writer hooks, CLI flags and provenance surfacing."""

import os

import numpy as np
import pytest

from repro.postprocess.dataframe import DataFrame
from repro.postprocess.perflog_reader import (
    PerflogFormatError,
    read_perflog,
    read_perflogs,
)
from repro.postprocess.store import PerflogStore
from repro.runner.perflog import PERFLOG_FIELDS

HEADER = "|".join(PERFLOG_FIELDS)


def record(test="T", system="sys", value=1.0, var="Triad"):
    return "|".join([
        "2026-01-01T00:00:00", "repro-1.0.0", test, system, "part",
        "gcc", "stream@1.0", "8", var, f"{value:.6g}", "GB/s", "pass",
    ])


def write_log(path, n_rows, start=0, header=True):
    lines = ([HEADER] if header else []) + [
        record(value=float(start + i), var=f"v{(start + i) % 3}")
        for i in range(n_rows)
    ]
    mode = "w" if header else "a"
    with open(path, mode, encoding="utf-8") as fh:
        fh.write("\n".join(lines) + "\n")


def frames_equal(a: DataFrame, b: DataFrame) -> bool:
    if a.columns != b.columns or len(a) != len(b):
        return False
    for name in a.columns:
        if a[name].dtype != b[name].dtype:
            return False
        if list(a[name]) != list(b[name]):
            return False
    return True


class TestStoreBasics:
    def test_cold_then_full_hit(self, tmp_path):
        log = tmp_path / "a.log"
        write_log(log, 10)
        store = PerflogStore()
        first = read_perflog(str(log), store=store)
        again = read_perflog(str(log), store=store)
        assert store.stats.misses == 1
        assert store.stats.full_hits == 1
        assert frames_equal(first, again)
        assert frames_equal(first, read_perflog(str(log)))  # == direct

    def test_append_parses_only_new_bytes(self, tmp_path):
        log = tmp_path / "a.log"
        write_log(log, 50)
        store = PerflogStore()
        read_perflog(str(log), store=store)
        parsed_cold = store.stats.bytes_parsed
        write_log(log, 5, start=50, header=False)
        appended = os.path.getsize(log) - parsed_cold
        frame = read_perflog(str(log), store=store)
        assert store.stats.partial_hits == 1
        assert store.stats.bytes_parsed - parsed_cold == appended
        assert frames_equal(frame, read_perflog(str(log)))

    def test_regrowth_loop_high_hit_rate(self, tmp_path):
        log = tmp_path / "a.log"
        write_log(log, 20)
        store = PerflogStore()
        read_perflog(str(log), store=store)
        for round_ in range(5):
            write_log(log, 4, start=20 + 4 * round_, header=False)
            frame = read_perflog(str(log), store=store)
        assert store.stats.misses == 1
        assert store.stats.partial_hits == 5
        assert store.stats.byte_reuse_rate > 0.5
        assert frames_equal(frame, read_perflog(str(log)))

    def test_returned_arrays_are_copies(self, tmp_path):
        log = tmp_path / "a.log"
        write_log(log, 3)
        store = PerflogStore()
        frame = read_perflog(str(log), store=store)
        frame["perf_value"][0] = -1.0
        clean = read_perflog(str(log), store=store)
        assert clean["perf_value"][0] != -1.0

    def test_coalesced_header_in_appended_range(self, tmp_path):
        # `cat`-style growth re-introduces the header mid-file
        log = tmp_path / "a.log"
        write_log(log, 3)
        store = PerflogStore()
        read_perflog(str(log), store=store)
        write_log(log, 2, start=3, header=True)  # append WITH header line
        # hand-append: write_log with header truncates; redo properly
        store2 = PerflogStore()
        log2 = tmp_path / "b.log"
        write_log(log2, 3)
        read_perflog(str(log2), store=store2)
        with open(log2, "a", encoding="utf-8") as fh:
            fh.write(HEADER + "\n" + record(value=99.0) + "\n")
        frame = read_perflog(str(log2), store=store2)
        assert store2.stats.partial_hits == 1
        assert len(frame) == 4
        assert frames_equal(frame, read_perflog(str(log2)))


class TestStoreInvalidation:
    def test_truncation_invalidates(self, tmp_path):
        log = tmp_path / "a.log"
        write_log(log, 20)
        store = PerflogStore()
        read_perflog(str(log), store=store)
        write_log(log, 5)  # rewritten, shorter
        frame = read_perflog(str(log), store=store)
        assert store.stats.invalidations == 1
        assert store.stats.misses == 2
        assert frames_equal(frame, read_perflog(str(log)))

    def test_in_place_rewrite_detected_by_head_probe(self, tmp_path):
        log = tmp_path / "a.log"
        write_log(log, 10)
        store = PerflogStore()
        read_perflog(str(log), store=store)
        # rewrite history to same+longer content with different head
        lines = [HEADER] + [record(value=float(100 + i), test="REWRITTEN")
                            for i in range(30)]
        log.write_text("\n".join(lines) + "\n")
        frame = read_perflog(str(log), store=store)
        assert store.stats.invalidations == 1
        assert frames_equal(frame, read_perflog(str(log)))

    def test_seam_probe_catches_tail_edit(self, tmp_path):
        log = tmp_path / "a.log"
        write_log(log, 50)
        store = PerflogStore()
        read_perflog(str(log), store=store)
        # edit the last parsed line (head probe alone cannot see this),
        # then grow the file past its previous size
        text = log.read_text().splitlines()
        text[-1] = record(value=999.0, test="EDITED")
        text.append(record(value=50.0))
        text.append(record(value=51.0))
        log.write_text("\n".join(text) + "\n")
        frame = read_perflog(str(log), store=store)
        assert store.stats.invalidations == 1
        assert frames_equal(frame, read_perflog(str(log)))

    def test_partial_trailing_line_held_back(self, tmp_path):
        log = tmp_path / "a.log"
        write_log(log, 5)
        store = PerflogStore()
        read_perflog(str(log), store=store)
        with open(log, "a", encoding="utf-8") as fh:
            fh.write(record(value=6.0))  # no trailing newline yet
        frame = read_perflog(str(log), store=store)
        assert len(frame) == 5  # incomplete record not surfaced
        with open(log, "a", encoding="utf-8") as fh:
            fh.write("\n")
        frame = read_perflog(str(log), store=store)
        assert len(frame) == 6

    def test_malformed_appended_lines_still_raise(self, tmp_path):
        log = tmp_path / "a.log"
        write_log(log, 3)
        store = PerflogStore()
        read_perflog(str(log), store=store)
        with open(log, "a", encoding="utf-8") as fh:
            fh.write("only|three|fields\n")
        with pytest.raises(PerflogFormatError, match=r"a\.log:5"):
            read_perflog(str(log), store=store)


class TestStorePersistence:
    def test_cross_instance_warm_start(self, tmp_path):
        log = tmp_path / "a.log"
        cache = tmp_path / "cache"
        write_log(log, 25)
        store = PerflogStore(cache_dir=str(cache))
        read_perflog(str(log), store=store)
        assert store.stats.misses == 1
        # a brand-new store (fresh process) starts warm from disk
        warm = PerflogStore(cache_dir=str(cache))
        frame = warm.read(str(log))
        assert warm.stats.full_hits == 1
        assert warm.stats.misses == 0
        assert list(frame["perf_value"]) == list(
            read_perflog(str(log))["perf_value"])

    def test_cross_instance_incremental(self, tmp_path):
        log = tmp_path / "a.log"
        cache = tmp_path / "cache"
        write_log(log, 25)
        PerflogStore(cache_dir=str(cache)).read(str(log))
        write_log(log, 5, start=25, header=False)
        warm = PerflogStore(cache_dir=str(cache))
        warm.read(str(log))
        assert warm.stats.partial_hits == 1
        assert warm.stats.byte_reuse_rate > 0.5

    def test_corrupt_cache_falls_back_to_full_parse(self, tmp_path):
        log = tmp_path / "a.log"
        cache = tmp_path / "cache"
        write_log(log, 5)
        PerflogStore(cache_dir=str(cache)).read(str(log))
        for fname in os.listdir(cache):
            if fname.endswith(".npz"):
                (cache / fname).write_bytes(b"garbage")
        fresh = PerflogStore(cache_dir=str(cache))
        frame = fresh.read(str(log))
        assert fresh.stats.misses == 1
        assert len(frame["perf_value"]) == 5


class TestWriterManifestHook:
    def _result(self):
        from repro.runner.cli import load_suite
        from repro.runner.executor import Executor

        ex = Executor()
        classes = load_suite("babelstream")
        cases = [c for c in ex.expand_cases(classes, "archer2")
                 if "omp" in c.test.name][:1]
        report = ex.run_cases(cases)
        return report.results[0]

    def test_flush_keeps_store_warm(self, tmp_path):
        from repro.runner.perflog import PerflogHandler

        store = PerflogStore()
        result = self._result()
        with PerflogHandler(str(tmp_path), batch_size=64,
                            timestamp="2026-01-01T00:00:00",
                            store=store) as handler:
            path = handler.path_for(result)
            handler.emit(result)
        assert store.stats.appends == 1
        frame = read_perflog(path, store=store)
        assert store.stats.full_hits == 1  # served without any parse
        assert store.stats.misses == 0
        assert frames_equal(frame, read_perflog(path))

    def test_second_flush_extends_manifest(self, tmp_path):
        from repro.runner.perflog import PerflogHandler

        store = PerflogStore()
        result = self._result()
        with PerflogHandler(str(tmp_path), timestamp="2026-01-01T00:00:00",
                            store=store) as handler:
            path = handler.path_for(result)
            handler.emit(result)
            handler.emit(result)
        assert store.stats.appends == 2
        frame = read_perflog(path, store=store)
        assert store.stats.misses == 0
        assert frames_equal(frame, read_perflog(path))

    def test_external_append_desyncs_then_recovers(self, tmp_path):
        from repro.runner.perflog import PerflogHandler

        store = PerflogStore()
        result = self._result()
        with PerflogHandler(str(tmp_path), timestamp="2026-01-01T00:00:00",
                            store=store) as handler:
            path = handler.path_for(result)
            handler.emit(result)
            # an out-of-band writer breaks the offset contract
            with open(path, "a", encoding="utf-8") as fh:
                fh.write(record(value=123.0) + "\n")
            handler.emit(result)
        # entry was dropped, next read cold-parses and is correct
        frame = read_perflog(path, store=store)
        assert store.stats.misses == 1
        assert frames_equal(frame, read_perflog(path))


class TestReaderIntegration:
    def test_read_perflogs_with_store_and_workers(self, tmp_path):
        for i in range(6):
            write_log(tmp_path / f"log{i}.log", 8, start=10 * i)
        store = PerflogStore()
        serial = read_perflogs(str(tmp_path))
        parallel = read_perflogs(str(tmp_path), store=store, workers=4)
        assert frames_equal(serial, parallel)
        assert store.stats.misses == 6
        warm = read_perflogs(str(tmp_path), store=store, workers=4)
        assert store.stats.full_hits == 6
        assert frames_equal(serial, warm)

    def test_cli_cache_flags(self, tmp_path, capsys):
        from repro.postprocess.cli import main as plot_main

        logdir = tmp_path / "perflogs"
        logdir.mkdir()
        write_log(logdir / "a.log", 5)
        cache = tmp_path / "cache"
        rc = plot_main([str(logdir), "--cache-dir", str(cache),
                        "--cache-stats", "--csv", "-j", "2"])
        assert rc == 0
        err = capsys.readouterr().err
        assert "ingest cache" in err
        assert "1 misses" in err
        # second invocation (same process boundary as CI re-run): warm
        rc = plot_main([str(logdir), "--cache-dir", str(cache),
                        "--cache-stats", "--csv"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "1 hits (1 full" in captured.err
        assert "0 misses" in captured.err

    def test_provenance_surfaces_ingest_cache(self, tmp_path):
        import json

        from repro.core.provenance import RunProvenance

        log = tmp_path / "a.log"
        write_log(log, 4)
        store = PerflogStore()
        read_perflog(str(log), store=store)
        read_perflog(str(log), store=store)
        prov = RunProvenance(system="archer2")
        prov.attach_ingest_cache(store.stats)
        doc = json.loads(prov.to_json())
        assert doc["ingest_cache"]["hits"] == 1
        assert doc["ingest_cache"]["misses"] == 1
        back = RunProvenance.from_json(prov.to_json())
        assert back.ingest_cache["hit_rate"] == store.stats.hit_rate
