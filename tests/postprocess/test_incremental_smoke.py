"""Tier-1 smoke gate for the incremental-campaign (result store) bench.

The full ``benchmarks/test_incremental_campaign.py`` acceptance run
sweeps the 1%-delta stage over three policies and two fault seeds --
too long for per-commit CI.  This gate re-runs the cold + zero-edit
warm stages at the same 5k-case scale and fails when:

* the warm run stops replaying 100% from the store (a correctness
  regression in the content address or the store itself),
* the warm replay speedup over the run's own cold stage falls below
  the bench's enforced floor (``WARM_SPEEDUP_FLOOR``; the aspirational
  target is recorded separately in ``BENCH_runner.json``), or
* cold or warm throughput regresses more than 2x against the committed
  ``incremental_*`` baselines in ``BENCH_runner.json``.

The campaign generator and runner helper are imported from
``benchmarks/`` so a regression cannot hide in an unexercised path.
One cold-cache outlier must not fail tier-1, so a run that misses any
floor earns a single retry (best rates kept); a real regression fails
both runs.
"""

import gc
import os

import pytest

from benchmarks.test_incremental_campaign import (
    CASES,
    WARM_SPEEDUP_FLOOR,
    inc_site,
    run_incremental,
)
from tests.postprocess.test_throughput_smoke import (
    REGRESSION_ALLOWANCE,
    _baseline,
)


def _floors():
    committed = _baseline("runner")
    cold = committed.get("incremental_cold_cases_per_second")
    warm = committed.get("incremental_warm_cases_per_second")
    return (
        (cold / REGRESSION_ALLOWANCE) if cold else None,
        (warm / REGRESSION_ALLOWANCE) if warm else None,
    )


class TestIncrementalSmoke:
    @pytest.fixture(scope="class")
    def smoke(self, tmp_path_factory):
        cold_floor, warm_floor = _floors()
        site = inc_site()
        best = None
        for attempt in range(2):
            tmp = str(tmp_path_factory.mktemp(f"inc-smoke{attempt}"))
            store = os.path.join(tmp, "store")
            cold_rate, cold_s, cold_rep = run_incremental(
                store, os.path.join(tmp, "cold"), site=site
            )
            warm_rate, warm_s, warm_rep = run_incremental(
                store, os.path.join(tmp, "warm"), site=site
            )
            run = {
                "cold_rate": cold_rate,
                "warm_rate": warm_rate,
                "speedup": cold_s / warm_s,
                "cold_report": cold_rep,
                "warm_report": warm_rep,
            }
            if best is None:
                best = run
            else:  # keep each metric's best: gates are independent
                for key in ("cold_rate", "warm_rate", "speedup"):
                    best[key] = max(best[key], run[key])
            if (
                (cold_floor is None or best["cold_rate"] >= cold_floor)
                and (warm_floor is None or best["warm_rate"] >= warm_floor)
                and best["speedup"] >= WARM_SPEEDUP_FLOOR
            ):
                break
        # drop the two 5k-case campaigns' state before the
        # timing-sensitive gates that run after this one
        gc.collect()
        return best

    def test_campaign_shape(self, smoke):
        cold = smoke["cold_report"]
        assert cold.success
        assert cold.num_cases == CASES
        assert cold.result_cache["puts"] == CASES

    def test_zero_edit_warm_hits_everything(self, smoke):
        stats = smoke["warm_report"].result_cache
        assert smoke["warm_report"].success
        assert stats["hits"] == CASES and stats["misses"] == 0
        assert stats["hit_rate"] == 1.0
        assert len(smoke["warm_report"].replayed) == CASES

    def test_warm_speedup_floor(self, smoke):
        assert smoke["speedup"] >= WARM_SPEEDUP_FLOOR, (
            f"warm replay is only {smoke['speedup']:.1f}x faster than "
            f"its own cold run (floor {WARM_SPEEDUP_FLOOR:.0f}x)"
        )

    def test_cold_rate_vs_committed_baseline(self, smoke):
        committed = _baseline("runner").get(
            "incremental_cold_cases_per_second"
        )
        if not committed:
            pytest.skip("no committed incremental baseline")
        floor = committed / REGRESSION_ALLOWANCE
        assert smoke["cold_rate"] >= floor, (
            f"incremental cold throughput regressed "
            f">{REGRESSION_ALLOWANCE}x: {smoke['cold_rate']:.0f} cases/s "
            f"vs committed {committed:.0f} cases/s"
        )

    def test_warm_rate_vs_committed_baseline(self, smoke):
        committed = _baseline("runner").get(
            "incremental_warm_cases_per_second"
        )
        if not committed:
            pytest.skip("no committed incremental baseline")
        floor = committed / REGRESSION_ALLOWANCE
        assert smoke["warm_rate"] >= floor, (
            f"incremental warm throughput regressed "
            f">{REGRESSION_ALLOWANCE}x: {smoke['warm_rate']:.0f} cases/s "
            f"vs committed {committed:.0f} cases/s"
        )
