"""Tests and property tests for the mini-DataFrame."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.postprocess.dataframe import DataFrame, DataFrameError


def sample():
    return DataFrame(
        {
            "system": ["archer2", "archer2", "csd3", "csd3"],
            "model": ["omp", "tbb", "omp", "tbb"],
            "value": [322.9, 180.8, 217.2, 185.0],
        }
    )


class TestConstruction:
    def test_ragged_rejected(self):
        with pytest.raises(DataFrameError):
            DataFrame({"a": [1, 2], "b": [1]})

    def test_from_records(self):
        df = DataFrame.from_records([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert df.columns == ["a", "b"]
        assert len(df) == 2

    def test_from_records_missing_keys_become_none(self):
        df = DataFrame.from_records([{"a": 1}, {"a": 2, "b": 3}],
                                    columns=["a", "b"])
        assert df["b"][0] is None

    def test_empty(self):
        assert DataFrame().empty
        assert DataFrame.from_records([]).empty

    def test_setitem_length_checked(self):
        df = sample()
        with pytest.raises(DataFrameError):
            df["extra"] = [1]

    def test_unknown_column(self):
        with pytest.raises(DataFrameError):
            sample()["nope"]


class TestOps:
    def test_filter_eq(self):
        df = sample().filter_eq("system", "csd3")
        assert len(df) == 2
        assert set(df["model"]) == {"omp", "tbb"}

    def test_filter_in(self):
        df = sample().filter_in("model", ["omp"])
        assert len(df) == 2

    def test_filter_predicate(self):
        df = sample().filter(lambda row: row["value"] > 200)
        assert len(df) == 2

    def test_sort_values(self):
        df = sample().sort_values("value")
        assert list(df["value"]) == sorted(df["value"])
        desc = sample().sort_values("value", ascending=False)
        assert list(desc["value"])[0] == 322.9

    def test_unique_preserves_order(self):
        assert sample().unique("system") == ["archer2", "csd3"]

    def test_with_column(self):
        df = sample().with_column("eff", lambda r: r["value"] / 409.6)
        assert "eff" in df
        assert df["eff"][0] == pytest.approx(322.9 / 409.6)

    def test_select(self):
        df = sample().select(["system", "value"])
        assert df.columns == ["system", "value"]
        with pytest.raises(DataFrameError):
            sample().select(["ghost"])

    def test_concat_unions_columns(self):
        a = DataFrame({"x": [1], "y": ["a"]})
        b = DataFrame({"x": [2], "z": [9.0]})
        both = DataFrame.concat([a, b])
        assert len(both) == 2
        assert both["y"][1] is None
        assert both["z"][0] is None

    def test_groupby_mean(self):
        agg = sample().groupby(["system"], {"value": np.mean})
        rec = {r["system"]: r["value"] for r in agg.to_records()}
        assert rec["archer2"] == pytest.approx((322.9 + 180.8) / 2)

    def test_pivot_with_missing_cells(self):
        df = DataFrame(
            {
                "system": ["archer2", "csd3"],
                "model": ["omp", "tbb"],
                "value": [1.0, 2.0],
            }
        )
        index, series = df.pivot("system", "model", "value")
        assert index == ["archer2", "csd3"]
        assert series["omp"] == [1.0, None]
        assert series["tbb"] == [None, 2.0]

    def test_csv_roundtrip(self):
        df = sample()
        back = DataFrame.from_csv(df.to_csv())
        assert list(back["value"]) == list(df["value"])
        assert list(back["system"]) == list(df["system"])

    def test_to_string_truncation(self):
        text = sample().to_string(max_rows=2)
        assert "more rows" in text


# -- property tests -------------------------------------------------------

values = st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                  max_size=30)


@given(values)
def test_sort_is_permutation_and_ordered(vals):
    df = DataFrame({"v": vals, "tag": [str(i) for i in range(len(vals))]})
    out = df.sort_values("v")
    assert sorted(out["v"]) == sorted(vals)
    assert all(out["v"][i] <= out["v"][i + 1] for i in range(len(vals) - 1))


@given(values, st.floats(min_value=-1e6, max_value=1e6))
def test_mask_then_concat_partition(vals, pivot_value):
    df = DataFrame({"v": vals})
    lo = df.mask(np.asarray(df["v"], dtype=float) <= pivot_value)
    hi = df.mask(np.asarray(df["v"], dtype=float) > pivot_value)
    assert len(lo) + len(hi) == len(df)
    together = DataFrame.concat([lo, hi])
    assert sorted(together["v"]) == sorted(vals)


@given(st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=30))
def test_groupby_count_conserves_rows(keys):
    df = DataFrame({"k": keys, "v": list(range(len(keys)))})
    agg = df.groupby(["k"], {"v": len})
    assert sum(agg["v"]) == len(keys)
