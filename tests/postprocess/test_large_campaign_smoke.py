"""Tier-1 smoke gate for the fleet-campaign (simulator hot path) bench.

The full ``benchmarks/test_large_campaign.py`` run sweeps 100k cases
over a 4096-node synthetic fleet -- minutes of wall clock CI cannot
spend per commit.  This gate re-runs the same generator at the 5k-case
scale recorded alongside the headline in ``BENCH_runner.json`` and
fails when serial throughput falls below half the committed rate (the
same 2x allowance as the other smoke gates, absorbing machine
variance).  The campaign generator and runner helper are imported from
``benchmarks/`` so a regression cannot hide in an unexercised path.
"""

import gc

import pytest

from benchmarks.test_large_campaign import SmokeProbe, fleet_site, run_fleet
from tests.postprocess.test_throughput_smoke import (
    REGRESSION_ALLOWANCE,
    _baseline,
)


def _floor():
    committed = _baseline("runner").get("large_campaign_smoke_cases_per_second")
    return (committed / REGRESSION_ALLOWANCE) if committed else None


class TestFleetCampaignSmoke:
    @pytest.fixture(scope="class")
    def smoke(self, tmp_path_factory):
        # full artifact stack on, matching how the committed baseline
        # rate was measured by the identity stage of the full bench.
        # One cold-cache outlier must not fail tier-1, so a run below
        # the gate's floor earns a single retry (best rate kept);
        # a real regression fails both runs.
        floor = _floor()
        best = None
        for attempt in range(2):
            tmp = tmp_path_factory.mktemp(f"fleet-smoke{attempt}")
            rate, elapsed, report, _ = run_fleet(
                SmokeProbe, site=fleet_site(), artifact_dir=str(tmp),
            )
            if best is None or rate > best[0]:
                best = (rate, elapsed, report)
            if floor is None or best[0] >= floor:
                break
        # drop the 5k-case campaign state before the timing-sensitive
        # gates that run after this one
        gc.collect()
        return best

    def test_campaign_shape(self, smoke):
        _, _, report = smoke
        assert report.num_cases == 5_000
        assert report.success

    def test_serial_rate_vs_committed_baseline(self, smoke):
        committed = _baseline("runner").get(
            "large_campaign_smoke_cases_per_second"
        )
        if not committed:
            pytest.skip("no committed large-campaign baseline")
        rate, _, _ = smoke
        floor = committed / REGRESSION_ALLOWANCE
        assert rate >= floor, (
            f"fleet-campaign throughput regressed "
            f">{REGRESSION_ALLOWANCE}x: {rate:.0f} cases/s vs committed "
            f"{committed:.0f} cases/s"
        )
