"""Tier-1 smoke gate: reduced-size runs of both throughput benches.

CI cannot afford the full ~1M-row / 44-case regeneration campaigns in
``benchmarks/``, but perf regressions must not land silently.  This
module re-runs both measurements at a reduced size inside the tier-1
time budget and fails when:

* the vectorized ingest speedup over the row-at-a-time reference drops
  below half the claimed 5x (a hardware-independent *relative* gate), or
* measured throughput regresses more than 2x against the committed
  baselines in ``BENCH_postprocess.json`` / ``BENCH_runner.json``
  (an *absolute* gate; the 2x allowance absorbs machine variance), or
* the incremental store stops serving warm re-reads from the manifest.

The measurement code itself is imported from ``benchmarks/`` -- the gate
runs the same campaign generators and timing helpers as the full bench,
only smaller, so a regression cannot hide in a code path the smoke test
does not exercise.
"""

import json
import os

import pytest

from benchmarks.test_postprocess_throughput import (
    SMOKE_TESTS,
    measure_ingest_smoke,
)
from benchmarks.test_runner_throughput import (
    CASE_LATENCY,
    ThroughputProbe,
    _run_policy,
)

REPO_ROOT = os.path.join(os.path.dirname(__file__), "..", "..")

#: a regression is flagged when throughput falls below committed/2
REGRESSION_ALLOWANCE = 2.0
#: the full bench claims >= 5x; the smoke floor is half of that
SMOKE_INGEST_FLOOR = 2.5


def _baseline(name):
    path = os.path.join(REPO_ROOT, f"BENCH_{name}.json")
    if not os.path.exists(path):  # pragma: no cover - fresh checkout
        return {}
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


class TestIngestSmoke:
    @pytest.fixture(scope="class")
    def smoke(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("smoke-campaign")
        return measure_ingest_smoke(str(root))

    def test_campaign_shape(self, smoke):
        assert smoke["n_files"] == 10 * SMOKE_TESTS
        assert smoke["n_rows"] == smoke["n_files"] * 2_000

    def test_vectorized_ingest_relative_floor(self, smoke):
        speedup = smoke["vec_rate"] / smoke["ref_rate"]
        assert speedup >= SMOKE_INGEST_FLOOR, (
            f"vectorized ingest only {speedup:.2f}x the reference reader "
            f"(floor {SMOKE_INGEST_FLOOR}x) -- "
            f"{smoke['vec_rate']:,.0f} vs {smoke['ref_rate']:,.0f} rows/s"
        )

    def test_ingest_throughput_vs_committed_baseline(self, smoke):
        committed = _baseline("postprocess").get(
            "smoke_ingest_vectorized_rows_per_second"
        )
        if not committed:
            pytest.skip("no committed BENCH_postprocess.json baseline")
        floor = committed / REGRESSION_ALLOWANCE
        assert smoke["vec_rate"] >= floor, (
            f"ingest regressed >{REGRESSION_ALLOWANCE}x: "
            f"{smoke['vec_rate']:,.0f} rows/s vs committed "
            f"{committed:,.0f} rows/s"
        )

    def test_store_serves_warm_rereads(self, smoke):
        assert smoke["misses"] == smoke["n_files"], \
            "regrowth caused a full re-parse"
        assert smoke["warm_hit_rate"] >= 0.90
        assert smoke["warm_byte_reuse"] >= 0.90


class TestRunnerSmoke:
    @pytest.fixture(scope="class")
    def campaign(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("smoke-runner")
        serial = _run_policy("serial", 1, str(tmp / "serial"),
                             classes=[ThroughputProbe],
                             platforms=["archer2"])
        parallel = _run_policy("async", 4, str(tmp / "async"),
                               classes=[ThroughputProbe],
                               platforms=["archer2"])
        return serial, parallel

    def test_async_speedup_floor(self, campaign):
        serial, parallel = campaign
        speedup = serial["elapsed"] / parallel["elapsed"]
        assert serial["n_cases"] == 22
        assert speedup >= 2.0, f"async speedup only {speedup:.2f}x"

    def test_output_identical_across_policies(self, campaign):
        serial, parallel = campaign
        assert parallel["summary"] == serial["summary"]
        assert parallel["foms"] == serial["foms"]
        assert parallel["logs"] == serial["logs"]
        assert serial["logs"], "campaign produced no perflogs"

    def test_async_rate_vs_committed_baseline(self, campaign):
        _, parallel = campaign
        committed = _baseline("runner").get("async_cases_per_second")
        if not committed:
            pytest.skip("no committed BENCH_runner.json baseline")
        rate = parallel["n_cases"] / parallel["elapsed"]
        floor = committed / REGRESSION_ALLOWANCE
        assert rate >= floor, (
            f"runner throughput regressed >{REGRESSION_ALLOWANCE}x: "
            f"{rate:.1f} cases/s vs committed {committed:.1f} "
            f"(case latency {CASE_LATENCY * 1e3:.0f} ms)"
        )
