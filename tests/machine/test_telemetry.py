"""Tests for the energy/system-state telemetry capture (paper Section 4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.telemetry import (
    EnergyReport,
    PowerModel,
    capture_telemetry,
)
from repro.systems.registry import get_system


def node_of(system, partition=None):
    return get_system(system).partition(partition).node


class TestPowerModel:
    def test_idle_below_busy(self):
        model = PowerModel(node_of("archer2"))
        assert model.idle_watts < model.watts(1.0, 1.0)

    def test_monotone_in_utilisation(self):
        model = PowerModel(node_of("csd3"))
        assert model.watts(0.2, 0.2) < model.watts(0.8, 0.2)
        assert model.watts(0.2, 0.2) < model.watts(0.2, 0.8)

    def test_utilisation_clamped(self):
        model = PowerModel(node_of("csd3"))
        assert model.watts(5.0, 5.0) == model.watts(1.0, 1.0)
        assert model.watts(-1.0, -1.0) == model.idle_watts

    def test_node_scale_plausible(self):
        """Dual-socket server nodes draw hundreds of watts, not kW/10 W."""
        for system in ("archer2", "cosma8", "csd3", "isambard", "noctua2"):
            model = PowerModel(node_of(system))
            assert 80 < model.idle_watts < 400, system
            assert 200 < model.watts(1.0, 1.0) < 900, system

    def test_gpu_node_adds_gpu_power(self):
        cpu_only = PowerModel(node_of("isambard-macs", "cascadelake"))
        with_gpu = PowerModel(node_of("isambard-macs", "volta"))
        assert with_gpu.watts(1.0, 1.0) > cpu_only.watts(1.0, 1.0) + 200


class TestCapture:
    def test_deterministic(self):
        a = capture_telemetry(node_of("archer2"), 100.0, 0.7,
                              seed_context="x")[1]
        b = capture_telemetry(node_of("archer2"), 100.0, 0.7,
                              seed_context="x")[1]
        assert a.joules == b.joules

    def test_energy_scales_with_duration(self):
        node = node_of("archer2")
        short = capture_telemetry(node, 10.0, 0.7)[1]
        long = capture_telemetry(node, 1000.0, 0.7)[1]
        assert long.joules > 10 * short.joules

    def test_energy_scales_with_nodes(self):
        node = node_of("archer2")
        one = capture_telemetry(node, 100.0, 0.7, num_nodes=1)[1]
        four = capture_telemetry(node, 100.0, 0.7, num_nodes=4)[1]
        assert four.joules == pytest.approx(4 * one.joules)

    def test_network_activity_only_multinode(self):
        node = node_of("archer2")
        single = capture_telemetry(node, 100.0, 0.7, num_nodes=1)[1]
        multi = capture_telemetry(node, 100.0, 0.7, num_nodes=4)[1]
        assert single.mean_network_util == 0.0
        assert multi.mean_network_util > 0.0

    def test_trace_statistics(self):
        trace, report = capture_telemetry(node_of("csd3"), 60.0, 0.6,
                                          seed_context="stats")
        assert trace.duration_s == pytest.approx(60.0)
        assert trace.peak("watts") >= trace.mean("watts")
        assert 0 < report.mean_mem_util <= 1.0

    def test_fom_per_watt(self):
        report = EnergyReport(
            joules=1000.0, mean_watts=500.0, duration_s=2.0, nodes=1,
            mean_mem_util=0.5, mean_network_util=0.0,
            mean_filesystem_util=0.0,
        )
        assert report.fom_per_watt(250.0) == 0.5
        bad = EnergyReport(0, 0, 0, 1, 0, 0, 0)
        with pytest.raises(ValueError):
            bad.fom_per_watt(1.0)

    @given(st.floats(min_value=1.0, max_value=1e4),
           st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=20, deadline=None)
    def test_joules_consistent_with_mean_power(self, duration, util):
        _, report = capture_telemetry(node_of("noctua2"), duration, util,
                                      seed_context="prop")
        assert report.joules == pytest.approx(
            report.mean_watts * report.duration_s, rel=0.15
        )


class TestPipelineIntegration:
    def test_case_result_carries_energy(self):
        from repro.runner.cli import load_suite
        from repro.runner.executor import Executor

        report = Executor().run(load_suite("babelstream"), "archer2",
                                tags=["omp"])
        result = report.passed[0]
        assert result.energy is not None
        assert result.energy.joules > 0
        assert result.energy.nodes == 1

    def test_provenance_includes_energy(self):
        from repro.core.framework import BenchmarkingFramework

        fw = BenchmarkingFramework()
        result = fw.run_campaign("hpgmg", ["archer2"], qos="standard")
        entry = fw.provenance(result)["archer2"].entries[0]
        assert entry["energy"]["joules"] > 0
        # the paper's layout: 8 tasks, 2 per node -> 4 nodes drawing power
        assert entry["energy"]["nodes"] == 4
