"""Tests for the roofline model, programming-model DB, clock, interconnect."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.machine.clock import DeterministicRNG, perturb, stable_seed
from repro.machine.interconnect import INTERCONNECTS, InterconnectModel
from repro.machine.progmodel import (
    PROGRAMMING_MODELS,
    ProgrammingModelDB,
    UnsupportedModelError,
    default_model_db,
)
from repro.machine.roofline import KernelProfile, RooflineModel
from repro.systems.registry import SYSTEMS, get_system


def node_of(system, partition=None):
    return get_system(system).partition(partition).node


class TestClock:
    def test_stable_seed_is_stable(self):
        assert stable_seed("a", 1) == stable_seed("a", 1)
        assert stable_seed("a", 1) != stable_seed("a", 2)

    def test_separator_prevents_collision(self):
        assert stable_seed("ab", "c") != stable_seed("a", "bc")

    def test_rng_reproducible(self):
        a = DeterministicRNG("x").lognormal_factor()
        b = DeterministicRNG("x").lognormal_factor()
        assert a == b

    def test_lognormal_factor_near_one(self):
        f = DeterministicRNG("y").lognormal_factor(sigma=0.01)
        assert 0.9 < f < 1.1

    def test_perturb_deterministic(self):
        assert perturb(100.0, 0.02, "k") == perturb(100.0, 0.02, "k")
        assert perturb(100.0, 0.02, "k") != perturb(100.0, 0.02, "l")


class TestRoofline:
    def test_memory_bound_triad(self):
        node = node_of("archer2")
        model = RooflineModel(node)
        n = 2**25
        triad = KernelProfile(
            "triad", bytes_moved=3 * n * 8, flops=2 * n,
            working_set_bytes=3 * n * 8,
        )
        assert model.is_memory_bound(triad)
        t = model.time_for(triad)
        bw = model.achieved_bandwidth_gbs(triad, t)
        # cannot exceed sustained stream bandwidth
        assert bw <= node.peak_bandwidth_gbs
        assert bw == pytest.approx(
            node.peak_bandwidth_gbs * node.memory.stream_fraction, rel=1e-9
        )

    def test_cache_capture_hazard(self):
        """A working set inside Milan's 512 MB LLC reports cache bandwidth --
        the reason the paper sizes Milan arrays at 2^29."""
        node = node_of("noctua2")
        model = RooflineModel(node)
        small = KernelProfile(
            "triad", bytes_moved=3 * 2**20 * 8, working_set_bytes=3 * 2**20 * 8
        )
        big_n = 2**29
        big = KernelProfile(
            "triad", bytes_moved=3 * big_n * 8, working_set_bytes=3 * big_n * 8
        )
        bw_small = model.achieved_bandwidth_gbs(small, model.time_for(small))
        bw_big = model.achieved_bandwidth_gbs(big, model.time_for(big))
        assert bw_small > bw_big * 2  # inflated FOM from cache
        assert big.working_set_bytes > node.llc_bytes

    def test_array_sizing_facts_from_section_3_1(self):
        """Milan has 512 MB of L3 ('256 MB per socket ... 512 MB with two
        sockets'); a single 2^25-double array (268 MB) sits inside it, while
        it dwarfs Cascade Lake's 27.5 MB -- hence 2^29 on Milan only."""
        single_array = 2**25 * 8
        assert node_of("noctua2").llc_bytes == 2 * 256 * 1024 * 1024
        assert single_array < node_of("noctua2").llc_bytes
        assert single_array > node_of("isambard-macs", "cascadelake").llc_bytes
        big_array = 2**29 * 8
        assert big_array > 4 * node_of("noctua2").llc_bytes

    def test_compute_bound_kernel(self):
        node = node_of("archer2")
        model = RooflineModel(node)
        dgemm = KernelProfile("dgemm", bytes_moved=1e6, flops=1e12)
        assert not model.is_memory_bound(dgemm)
        t = model.time_for(dgemm)
        assert model.achieved_gflops(dgemm, t) == pytest.approx(
            node.peak_gflops, rel=1e-9
        )

    def test_gpu_node_uses_gpu_memory(self):
        node = node_of("isambard-macs", "volta")
        model = RooflineModel(node)
        assert node.peak_bandwidth_gbs == 900.0
        prof = KernelProfile("triad", bytes_moved=1e9, working_set_bytes=1e9)
        bw = model.achieved_bandwidth_gbs(prof, model.time_for(prof))
        assert bw == pytest.approx(900.0 * 0.93, rel=1e-9)

    def test_rfo_charging(self):
        node = node_of("archer2")
        prof = KernelProfile("copy", bytes_moved=2e9, rfo_writes_bytes=1e9,
                             working_set_bytes=1e18)
        fast = RooflineModel(node, charge_rfo=False).time_for(prof)
        slow = RooflineModel(node, charge_rfo=True).time_for(prof)
        assert slow == pytest.approx(fast * 1.5, rel=1e-9)

    def test_zero_traffic_kernel_ai_infinite(self):
        prof = KernelProfile("spin", bytes_moved=0.0, flops=100.0)
        assert math.isinf(prof.arithmetic_intensity)

    @given(
        st.floats(min_value=1e3, max_value=1e12),
        st.floats(min_value=0.0, max_value=1e12),
    )
    @settings(max_examples=50, deadline=None)
    def test_time_positive_and_monotone_in_bytes(self, nbytes, flops):
        node = node_of("csd3")
        model = RooflineModel(node)
        p1 = KernelProfile("k", bytes_moved=nbytes, flops=flops,
                           working_set_bytes=1e18)
        p2 = KernelProfile("k", bytes_moved=nbytes * 2, flops=flops,
                           working_set_bytes=1e18)
        t1, t2 = model.time_for(p1), model.time_for(p2)
        assert t1 > 0 and t2 >= t1


class TestProgModelDB:
    def test_omp_supported_everywhere(self):
        db = default_model_db()
        for sysname in SYSTEMS:
            system = get_system(sysname)
            for pname in system.partitions:
                assert db.supported("omp", node_of(sysname, pname))

    def test_cuda_near_peak_on_volta(self):
        db = default_model_db()
        node = node_of("isambard-macs", "volta")
        eff = db.efficiency("cuda", node)
        # reported efficiency = stream_fraction * factor, "close to peak"
        assert eff.factor * node.gpu.memory.stream_fraction > 0.9

    def test_cuda_unsupported_on_cpus(self):
        db = default_model_db()
        with pytest.raises(UnsupportedModelError):
            db.efficiency("cuda", node_of("archer2"))

    def test_tbb_unsupported_on_thunderx2(self):
        db = default_model_db()
        with pytest.raises(UnsupportedModelError, match="aarch64"):
            db.efficiency("tbb", node_of("isambard"))

    def test_std_ranges_single_threaded_everywhere_on_cpu(self):
        db = default_model_db()
        for sysname in ("csd3", "archer2", "noctua2", "isambard"):
            eff = db.efficiency("std-ranges", node_of(sysname))
            assert eff.status == "degraded"
            assert eff.factor < 0.15

    def test_std_ranges_much_slower_than_std_data(self):
        """The paper's 'disparity between std-data & std-indices and
        std-ranges'."""
        db = default_model_db()
        node = node_of("csd3")
        ranges = db.efficiency("std-ranges", node).factor
        data = db.efficiency("std-data", node).factor
        assert data / ranges > 5

    def test_tbb_milan_degraded_vs_cascadelake(self):
        """The paderborn-milan vs isambard-macs:cascadelake TBB disparity."""
        db = default_model_db()
        milan = db.efficiency("tbb", node_of("noctua2")).factor
        cl = db.efficiency("tbb", node_of("isambard-macs", "cascadelake")).factor
        assert cl > milan * 1.5

    def test_omp_better_on_x86_than_tx2(self):
        db = default_model_db()
        tx2 = db.efficiency("omp", node_of("isambard"))
        cl = db.efficiency("omp", node_of("csd3"))
        assert cl.factor > tx2.factor

    def test_compiler_adjustment(self):
        db = default_model_db()
        node = node_of("csd3")
        gcc = db.efficiency("omp", node, compiler="gcc").factor
        oneapi = db.efficiency("omp", node, compiler="intel-oneapi-compilers").factor
        assert oneapi > gcc

    def test_unknown_model_rejected(self):
        with pytest.raises(ValueError):
            default_model_db().efficiency("fortran77", node_of("csd3"))

    def test_every_model_resolves_or_raises_cleanly(self):
        db = default_model_db()
        for sysname in SYSTEMS:
            system = get_system(sysname)
            for pname in system.partitions:
                node = node_of(sysname, pname)
                for model in PROGRAMMING_MODELS:
                    try:
                        eff = db.efficiency(model, node)
                        assert 0 < eff.factor <= 1.2
                    except UnsupportedModelError as exc:
                        assert exc.reason


class TestInterconnect:
    def test_all_systems_have_interconnects(self):
        assert set(INTERCONNECTS) == set(SYSTEMS)

    def test_transfer_alpha_beta(self):
        net = InterconnectModel("test", latency_us=2.0, bandwidth_gbs=10.0)
        t = net.transfer_seconds(1e9)
        assert t == pytest.approx(2e-6 + 0.1, rel=1e-9)

    def test_allreduce_grows_logarithmically(self):
        net = INTERCONNECTS["archer2"]
        t8 = net.allreduce_seconds(8.0, 8)
        t64 = net.allreduce_seconds(8.0, 64)
        assert t64 == pytest.approx(2 * t8, rel=1e-9)
        assert net.allreduce_seconds(8.0, 1) == 0.0

    def test_macs_testbed_is_the_slow_network(self):
        """Isambard-MACS must drag HPGMG far below CSD3 (Table 4 shape)."""
        macs = INTERCONNECTS["isambard-macs"]
        csd3 = INTERCONNECTS["csd3"]
        assert macs.latency_us > 3 * csd3.latency_us
        assert macs.efficiency < csd3.efficiency

    def test_halo_exchange_more_than_single_message(self):
        net = INTERCONNECTS["cosma8"]
        single = net.transfer_seconds(1e6)
        halo = net.halo_exchange_seconds(1e6, neighbours=6)
        assert halo > single
