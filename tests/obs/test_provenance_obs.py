"""Provenance round-trips for the observability fields (satellite).

``attach_metrics`` + the ``trace_file`` pointer must survive the JSON
round-trip, and provenance files written *before* this PR (no metrics /
trace_file / energy keys) must still load.
"""

import json

from repro.core.provenance import RunProvenance
from repro.obs.metrics import MetricsRegistry


def sample_snapshot():
    reg = MetricsRegistry()
    reg.counter("cases.total").add(3)
    reg.counter("cases.passed").add(2)
    reg.gauge("campaign.aborted").set(0.0)
    reg.histogram("build.seconds").observe(30.0)
    return reg.snapshot()


class TestAttachMetrics:
    def test_accepts_plain_dict(self):
        prov = RunProvenance(system="archer2")
        snap = sample_snapshot()
        prov.attach_metrics(snap, trace_path="trace.jsonl")
        assert prov.metrics == snap
        assert prov.trace_file == "trace.jsonl"

    def test_accepts_registry(self):
        prov = RunProvenance(system="archer2")
        reg = MetricsRegistry()
        reg.counter("cases.total").add(1)
        prov.attach_metrics(reg)
        assert prov.metrics["counters"]["cases.total"] == 1
        assert prov.trace_file is None

    def test_round_trip(self):
        prov = RunProvenance(system="archer2", invocation=["-c", "hpcg"])
        prov.attach_metrics(sample_snapshot(), trace_path="t.jsonl")
        loaded = RunProvenance.from_json(prov.to_json())
        assert loaded.metrics == prov.metrics
        assert loaded.trace_file == "t.jsonl"
        # and the re-serialization is stable
        assert loaded.to_json() == prov.to_json()


class TestBackCompat:
    def test_old_provenance_files_still_load(self):
        """A pre-observability provenance document lacks the new keys."""
        old_doc = {
            "framework_version": "1.0.0",
            "system": "archer2",
            "invocation": [],
            "cases": [{"test": "t", "passed": True}],
            "ingest_cache": None,
            "resilience": None,
            "health": None,
        }
        prov = RunProvenance.from_json(json.dumps(old_doc))
        assert prov.metrics is None
        assert prov.trace_file is None
        assert prov.entries == [{"test": "t", "passed": True}]
        # and it re-serializes without error, now carrying the new keys
        doc = json.loads(prov.to_json())
        assert doc["metrics"] is None and doc["trace_file"] is None

    def test_old_journal_records_replay_without_energy(self):
        """Journal records written before the energy field still replay."""
        from repro.runner.resilience import result_from_record

        class _Case:
            display_name = "x"

        record = {"status": "passed", "attempts": 1}  # no 'energy' key
        result = result_from_record(_Case(), record)
        assert result.passed and result.resumed
        assert result.energy is None


class TestEnergyJournalRoundTrip:
    def test_energy_survives_journal_record_and_replay(self, tmp_path):
        from repro.machine.telemetry import EnergyReport
        from repro.runner import sanity as sn
        from repro.runner.benchmark import RegressionTest
        from repro.runner.executor import Executor
        from repro.runner.resilience import CampaignJournal, result_from_record

        class Echo(RegressionTest):
            def program(self, ctx):
                return "OUT: 42.0\n", 1.0

            def check_sanity(self, stdout):
                sn.assert_found(r"OUT:", stdout)

        ex = Executor()
        (case,) = ex.expand_cases([Echo], "archer2")
        report = ex.run_cases([case])
        (result,) = report.results
        assert result.energy is not None  # telemetry always captured

        journal = CampaignJournal(str(tmp_path / "journal.jsonl"))
        record = journal.record(result)
        assert record["energy"]["joules"] == result.energy.joules

        replayed = result_from_record(case, journal.load()[
            record["fingerprint"]])
        assert isinstance(replayed.energy, EnergyReport)
        assert replayed.energy.joules == result.energy.joules
        assert replayed.energy.mean_watts == result.energy.mean_watts
        # FOM-per-watt derivable from the replayed result
        assert replayed.energy.fom_per_watt(100.0) > 0
