"""Tests for the repro-trace CLI (repro.obs.cli)."""

import json

from repro.obs.cli import (
    main,
    render_metrics,
    render_slowest,
    render_timeline,
)
from repro.obs.trace import Tracer


def make_trace(tmp_path, with_metrics=True):
    path = str(tmp_path / "trace.jsonl")
    tracer = Tracer(path)
    rec = tracer.recorder("Echo_1")
    attempt = rec.start("attempt", 0.0, "attempt", n=1)
    rec.record("build", 0.0, 30.0, "stage")
    run = rec.start("run", 30.0, "stage")
    rec.record("job-run", 31.0, 45.0, "sched")
    rec.finish(run, 45.0)
    rec.finish(attempt, 45.0)
    tracer.flush(rec)
    camp = tracer.recorder("campaign")
    camp.record("Echo_1", 0.0, 45.0, "case", status="passed")
    tracer.flush(camp)
    if with_metrics:
        tracer.write_metrics({
            "counters": {"cases.total": 1, "cases.passed": 1},
            "gauges": {"campaign.aborted": 0.0},
            "histograms": {
                "build.seconds": {
                    "count": 1, "sum": 30.0, "min": 30.0, "max": 30.0,
                    "buckets": {"60": 1}, "p50": 30.0, "p90": 30.0,
                    "p99": 30.0,
                },
            },
        })
    return path


class TestRenderers:
    def test_timeline_has_tracks_and_bars(self, tmp_path):
        from repro.obs.trace import load_trace

        _, spans, _ = load_trace(make_trace(tmp_path))
        text = render_timeline(spans)
        assert "== Echo_1" in text and "== campaign" in text
        assert "#" in text
        # nesting shows as indentation
        assert "  build" in text

    def test_timeline_single_track_filter(self, tmp_path):
        from repro.obs.trace import load_trace

        _, spans, _ = load_trace(make_trace(tmp_path))
        text = render_timeline(spans, only_track="campaign")
        assert "Echo_1" in text and "== campaign" in text
        assert "== Echo_1" not in text

    def test_slowest_sorted_by_duration(self, tmp_path):
        from repro.obs.trace import load_trace

        _, spans, _ = load_trace(make_trace(tmp_path))
        lines = render_slowest(spans, limit=3).splitlines()
        assert "attempt" in lines[1] or "Echo_1" in lines[1]

    def test_metrics_rendering(self):
        text = render_metrics({"counters": {"cases.total": 2}})
        assert "cases.total" in text and "2" in text
        assert "no metrics" in render_metrics(None)


class TestMain:
    def test_default_view(self, tmp_path, capsys):
        assert main([make_trace(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "repro-trace v1" in out
        assert "== Echo_1" in out

    def test_validate_ok(self, tmp_path, capsys):
        assert main([make_trace(tmp_path), "--validate"]) == 0
        assert "nest correctly" in capsys.readouterr().out

    def test_validate_broken_exits_1(self, tmp_path, capsys):
        path = str(tmp_path / "bad.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"kind": "meta", "format": "repro-trace",
                                 "version": 1}) + "\n")
            fh.write(json.dumps({"kind": "span", "id": 1, "parent": 99,
                                 "track": "t", "name": "x", "cat": "",
                                 "t0": 0.0, "t1": 1.0, "attrs": {}}) + "\n")
        assert main([path, "--validate"]) == 1

    def test_metrics_view(self, tmp_path, capsys):
        assert main([make_trace(tmp_path), "--metrics"]) == 0
        out = capsys.readouterr().out
        assert "cases.passed" in out

    def test_chrome_export(self, tmp_path):
        out_json = str(tmp_path / "chrome.json")
        assert main([make_trace(tmp_path), "--chrome", out_json]) == 0
        doc = json.load(open(out_json))
        assert doc["metadata"]["format"] == "repro-trace"
        assert any(e.get("ph") == "X" for e in doc["traceEvents"])

    def test_slowest_view(self, tmp_path, capsys):
        assert main([make_trace(tmp_path), "--slowest", "2"]) == 0
        assert "duration" in capsys.readouterr().out

    def test_unreadable_trace_exits_2(self, tmp_path):
        empty = str(tmp_path / "empty.jsonl")
        open(empty, "w").close()
        assert main([empty]) == 2

    def test_console_script_registered(self):
        import os

        pyproject = os.path.join(os.path.dirname(__file__), "..", "..",
                                 "pyproject.toml")
        text = open(pyproject, encoding="utf-8").read()
        assert 'repro-trace = "repro.obs.cli:main"' in text
