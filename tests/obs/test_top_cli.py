"""Tests for the ``repro-top`` dashboard (repro.obs.top)."""

import json

import pytest

from repro.obs.live import LiveStatsSink
from repro.obs.top import main, render_dashboard, sparkline


def make_status(tmp_path, n_cases=3, emit_every=1):
    path = str(tmp_path / "run.live.jsonl")
    sink = LiveStatsSink(status_path=path, emit_every=emit_every)
    for i in range(n_cases):
        sink.observe_case(
            f"B_{i} @archer2:compute+gnu", float(i), float(i + 1),
            {"status": "passed", "attempts": 1,
             "resumed": False, "speculated": False},
        )
    sink.finalize({"counters": {"cases.total": n_cases}}, now=float(n_cases))
    return path, sink


class TestSparkline:
    def test_scales_to_peak_with_integer_math(self):
        assert sparkline([]) == ""
        assert sparkline([0, 0]) == "··"
        line = sparkline([0, 1, 4, 8])
        assert line[0] == "·"
        assert line[-1] == "█"  # peak always maps to the top glyph
        assert len(line) == 4

    def test_single_bucket_is_peak(self):
        assert sparkline([2]) == "█"


class TestRenderDashboard:
    def test_sections_appear_when_populated(self, tmp_path):
        _, sink = make_status(tmp_path)
        sink.note_fleet("c0001", tenant="acme", nodes=1, done=1, total=2,
                        slices=1, status="running", now=4.0)
        text = render_dashboard(sink.snapshot())
        assert "repro-top -- t=+" in text and "source=live" in text
        assert "FLEET" in text and "c0001" in text and "acme" in text
        assert "SYSTEMS" in text and "archer2" in text
        assert "LATENCY (simulated seconds)" in text
        assert "no alerts" in text

    def test_alerts_render_with_bang(self):
        sink = LiveStatsSink()
        sink.observe_case("A @s:p+e", 0.0, 1.0,
                          {"status": "failed", "attempts": 1})
        text = render_dashboard(sink.snapshot())
        assert "ALERTS" in text and "! 1 case(s) failed" in text

    def test_render_is_deterministic(self, tmp_path):
        _, a = make_status(tmp_path)
        _, b = make_status(tmp_path)
        assert render_dashboard(a.snapshot()) == render_dashboard(
            b.snapshot())


class TestMain:
    def test_once_renders_latest(self, tmp_path, capsys):
        path, sink = make_status(tmp_path)
        assert main([path, "--once"]) == 0
        out = capsys.readouterr().out
        assert out.strip() == render_dashboard(sink.snapshot())

    def test_once_json_is_the_snapshot(self, tmp_path, capsys):
        path, sink = make_status(tmp_path)
        assert main([path, "--once", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc == sink.snapshot()

    def test_watch_with_frames_drains_records(self, tmp_path, capsys):
        path, _ = make_status(tmp_path, n_cases=2, emit_every=1)
        rc = main([path, "--frames", "1", "--interval", "0",
                   "--no-clear"])
        assert rc == 0
        assert "repro-top -- t=+" in capsys.readouterr().out

    def test_usage_errors(self, tmp_path, capsys):
        assert main([]) == 2
        path, _ = make_status(tmp_path)
        assert main([path, "--replay", path]) == 2

    def test_empty_status_file_exits_1(self, tmp_path):
        empty = tmp_path / "empty.live.jsonl"
        empty.write_text("")
        assert main([str(empty), "--once"]) == 1

    def test_missing_replay_trace_exits_2(self, tmp_path):
        assert main(["--replay", str(tmp_path / "nope.jsonl")]) == 2
