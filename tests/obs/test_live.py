"""Tests for the live analytics plane (repro.obs.live)."""

import json

import pytest

from repro.obs.jsonl import seal_line
from repro.obs.live import (
    LIVE_FORMAT,
    LIVE_VERSION,
    LiveStatsSink,
    TailCursor,
    as_live_sink,
    read_live_status,
    system_of,
)


def case_attrs(status="passed", attempts=1, **flags):
    attrs = {"status": status, "attempts": attempts,
             "resumed": False, "speculated": False}
    attrs.update(flags)
    return attrs


class TestSystemOf:
    def test_parses_display_names(self):
        assert system_of("Bench_1 @archer2:compute+gnu") == "archer2"
        assert system_of("Bench @csd3+def") == "csd3"
        assert system_of("Bench @csd3") == "csd3"

    def test_degenerate_names(self):
        assert system_of("no-system-here") == "?"
        assert system_of("trailing @") == "?"


class TestTailCursor:
    def test_incremental_exactly_once(self, tmp_path):
        path = str(tmp_path / "f.jsonl")
        cur = TailCursor(path)
        assert cur.read_new() == ([], False)  # missing file: quiet
        with open(path, "w") as fh:
            fh.write("a\nb\n")
        lines, reset = cur.read_new()
        assert lines == ["a", "b"] and not reset
        assert cur.read_new() == ([], False)  # nothing new
        with open(path, "a") as fh:
            fh.write("c\n")
        assert cur.read_new() == (["c"], False)

    def test_torn_tail_left_for_next_poll(self, tmp_path):
        path = str(tmp_path / "f.jsonl")
        with open(path, "w") as fh:
            fh.write("a\nhalf")
        cur = TailCursor(path)
        assert cur.read_new() == (["a"], False)
        with open(path, "a") as fh:
            fh.write("-line\n")
        assert cur.read_new() == (["half-line"], False)

    def test_rewrite_resets_to_full_reread(self, tmp_path):
        path = str(tmp_path / "f.jsonl")
        with open(path, "w") as fh:
            fh.write("a\nb\n")
        cur = TailCursor(path)
        cur.read_new()
        # heal/rotation rewrites the file with different content
        with open(path, "w") as fh:
            fh.write("x\ny\nz\n")
        lines, reset = cur.read_new()
        assert reset and lines == ["x", "y", "z"]

    def test_truncation_detected_via_size(self, tmp_path):
        path = str(tmp_path / "f.jsonl")
        with open(path, "w") as fh:
            fh.write("aaaa\nbbbb\n")
        cur = TailCursor(path)
        cur.read_new()
        with open(path, "w") as fh:
            fh.write("cc\n")
        lines, reset = cur.read_new()
        assert reset and lines == ["cc"]


class TestLiveStatsSink:
    def test_source_and_window_validated(self):
        with pytest.raises(ValueError):
            LiveStatsSink(source="nope")
        with pytest.raises(ValueError):
            LiveStatsSink(bucket=0.0)

    def test_note_append_attributes_rows_per_system(self):
        sink = LiveStatsSink()
        sink.note_append("pl/a.log", [
            "2024|t|env|archer2|p|x|1|u|pass",
            "2024|t|env|csd3|p|x|1|u|pass",
            "2024|t|env|archer2|p|y|2|u|pass",
        ])
        snap = sink.snapshot()
        assert snap["rows"] == 3 and snap["files"] == 1
        assert snap["systems"]["archer2"]["rows"] == 2
        assert snap["systems"]["csd3"]["rows"] == 1

    def test_observe_case_tallies_and_window_rate(self):
        sink = LiveStatsSink(window=10.0, bucket=1.0)
        for i in range(5):
            sink.observe_case(f"B_{i} @sys:part+e", float(i), float(i + 1),
                              case_attrs())
        snap = sink.snapshot()
        assert snap["cases"]["total"] == snap["cases"]["passed"] == 5
        # 5 cases over 5 elapsed (simulated) seconds
        assert snap["rates"]["cases_per_second"] == pytest.approx(1.0)
        assert snap["systems"]["sys"]["history"][-5:] == [1, 1, 1, 1, 1]

    def test_rate_window_slides_past_old_cases(self):
        sink = LiveStatsSink(window=10.0, bucket=1.0)
        sink.observe_case("A @sys:p+e", 0.0, 1.0, case_attrs())
        # a much later case moves the window past the first one
        sink.observe_case("B @sys:p+e", 99.0, 100.0, case_attrs())
        snap = sink.snapshot()
        assert snap["rates"]["cases_per_second"] == pytest.approx(0.1)

    def test_retry_failure_and_flag_accounting(self):
        sink = LiveStatsSink()
        sink.observe_case("A @s:p+e", 0.0, 1.0,
                          case_attrs(status="failed", attempts=3))
        sink.observe_case("B @s:p+e", 1.0, 2.0,
                          case_attrs(resumed=True, replayed=True))
        snap = sink.snapshot()
        assert snap["cases"]["failed"] == 1
        assert snap["cases"]["retried"] == 1
        assert snap["cases"]["attempts_extra"] == 2
        assert snap["cases"]["resumed"] == snap["cases"]["replayed"] == 1
        assert snap["rates"]["retry_rate"] == pytest.approx(0.5)
        assert "1 case(s) failed" in snap["alerts"]

    def test_untraced_durations_feed_latency_hists(self):
        sink = LiveStatsSink()
        sink.observe_case("A @s:p+e", 0.0, 3.0, case_attrs(),
                          durations={"queue": 1.0, "job": 2.0})
        lat = sink.snapshot()["latency"]
        assert lat["queue"]["count"] == lat["run"]["count"] == 1
        assert lat["case"]["count"] == 1

    def test_note_flush_ignores_damaged_lines(self):
        sink = LiveStatsSink()
        good = seal_line({"kind": "span", "track": "t", "name": "attempt",
                          "cat": "stage", "t0": 0.0, "t1": 2.0})
        bad_cs = '{"kind": "span", "track": "t", "name": "x", "cs": 1}'
        sink.note_flush("trace.jsonl", [good, "not json", bad_cs])
        snap = sink.snapshot()
        assert snap["events"]["spans"] == 1
        assert snap["slowest"] == [[2.0, "t", "attempt"]]

    def test_live_mode_skips_campaign_case_spans(self):
        """The campaign-track summary span duplicates observe_case."""
        sink = LiveStatsSink()
        sink.observe_case("A @s:p+e", 0.0, 1.0, case_attrs())
        dup = seal_line({"kind": "span", "track": "campaign", "name":
                         "A @s:p+e", "cat": "case", "t0": 0.0, "t1": 1.0,
                         "attrs": case_attrs()})
        sink.note_flush("trace.jsonl", [dup])
        assert sink.snapshot()["cases"]["total"] == 1

    def test_replay_mode_ingests_campaign_case_spans(self):
        sink = LiveStatsSink(source="replay")
        rec = seal_line({"kind": "span", "track": "campaign", "name":
                         "A @s:p+e", "cat": "case", "t0": 0.0, "t1": 1.0,
                         "attrs": case_attrs()})
        sink.note_flush("trace.jsonl", [rec])
        assert sink.snapshot()["cases"]["total"] == 1

    def test_fold_metrics_is_additive_like_merge_snapshot(self):
        sink = LiveStatsSink()
        sink.finalize({"counters": {"resultstore.hits": 3,
                                    "resultstore.misses": 1,
                                    "io.degraded.trace": 1,
                                    "skip_rate": 0.5, "ok": True}})
        sink.finalize({"counters": {"resultstore.hits": 1}})
        snap = sink.snapshot()
        assert snap["totals"]["resultstore.hits"] == 4
        assert "skip_rate" not in snap["totals"]  # non-int skipped
        assert snap["rates"]["store_hit_rate"] == pytest.approx(0.8)
        assert snap["rates"]["degraded_streams"] == 1
        assert "degraded stream: trace" in snap["alerts"]

    def test_note_fleet_occupancy_and_alerts(self):
        sink = LiveStatsSink()
        sink.note_fleet("c1", tenant="acme", nodes=2, done=1, total=4,
                        slices=1, status="running", now=5.0)
        sink.note_fleet("c2", tenant="acme", nodes=1, done=0, total=2,
                        slices=0, status="aborted", now=6.0)
        snap = sink.snapshot()
        assert snap["clock"] == 6.0
        assert snap["fleet"]["c1"]["done"] == 1
        assert snap["tenants"]["acme"] == {"campaigns": 2, "nodes": 2}
        assert "campaign c2: aborted" in snap["alerts"]

    def test_slowest_leaderboard_deterministic_ties(self):
        sink = LiveStatsSink(top_n=2)
        spans = [
            {"kind": "span", "track": "b", "name": "run", "cat": "stage",
             "t0": 0.0, "t1": 2.0},
            {"kind": "span", "track": "a", "name": "run", "cat": "stage",
             "t0": 0.0, "t1": 2.0},
            {"kind": "span", "track": "c", "name": "run", "cat": "stage",
             "t0": 0.0, "t1": 5.0},
        ]
        sink.note_flush("t", [seal_line(s) for s in spans])
        assert sink.snapshot()["slowest"] == [
            [5.0, "c", "run"], [2.0, "a", "run"]]

    def test_status_artifact_round_trip(self, tmp_path):
        path = str(tmp_path / "run.live.jsonl")
        sink = LiveStatsSink(status_path=path, emit_every=2)
        sink.observe_case("A @s:p+e", 0.0, 1.0, case_attrs())
        sink.observe_case("B @s:p+e", 1.0, 2.0, case_attrs())  # emits
        sink.finalize({"counters": {"cases.total": 2}}, now=2.0)
        meta, statuses = read_live_status(path)
        assert meta["format"] == LIVE_FORMAT
        assert meta["version"] == LIVE_VERSION
        assert [s["seq"] for s in statuses] == [1, 2]
        assert statuses[-1]["snapshot"] == sink.snapshot()

    def test_emit_failure_degrades_to_memory(self, tmp_path, monkeypatch):
        path = str(tmp_path / "run.live.jsonl")
        sink = LiveStatsSink(status_path=path)
        monkeypatch.setattr(
            "repro.obs.live.JsonlAppender.append_many",
            lambda self, recs: (_ for _ in ()).throw(OSError("disk")),
        )
        sink.emit_status(now=1.0)
        assert sink.status_path is None  # degraded, never raised
        sink.observe_case("A @s:p+e", 0.0, 1.0, case_attrs())
        assert sink.snapshot()["cases"]["total"] == 1

    def test_snapshot_is_json_able_and_sorted(self):
        sink = LiveStatsSink()
        sink.observe_case("B @zeta:p+e", 0.0, 1.0, case_attrs())
        sink.observe_case("A @alpha:p+e", 1.0, 2.0, case_attrs())
        snap = sink.snapshot()
        json.dumps(snap)  # must not raise
        assert list(snap["systems"]) == ["alpha", "zeta"]


class TestAsLiveSink:
    def test_coercions(self, tmp_path):
        assert as_live_sink(None) is None
        sink = LiveStatsSink()
        assert as_live_sink(sink) is sink
        path = str(tmp_path / "x.live.jsonl")
        made = as_live_sink(path)
        assert isinstance(made, LiveStatsSink)
        assert made.status_path == path
