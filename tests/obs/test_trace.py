"""Tests for spans, recorders, the tracer and trace-file analysis."""

import json

import pytest

from repro.obs.jsonl import read_jsonl
from repro.obs.trace import (
    CaseTimeline,
    SpanRecorder,
    TraceError,
    Tracer,
    as_tracer,
    chrome_trace,
    load_trace,
    validate_nesting,
)


class TestSpanRecorder:
    def test_record_and_event(self):
        rec = SpanRecorder("t")
        rec.record("a", 0.0, 2.0, "stage")
        rec.event("b", 1.0, "io")
        assert [s.name for s in rec.spans] == ["a", "b"]
        assert rec.spans[1].duration == 0.0
        assert rec.end_time == 2.0

    def test_nesting_assigns_parents(self):
        rec = SpanRecorder("t")
        outer = rec.start("outer", 0.0)
        inner = rec.record("inner", 1.0, 2.0)
        rec.finish(outer, 3.0)
        after = rec.record("after", 3.0, 4.0)
        assert inner.parent_id == outer.local_id
        assert after.parent_id is None

    def test_finish_closes_abandoned_children(self):
        """An early-return failure path leaves children open; the parent
        close sweeps them to its own end time (containment holds)."""
        rec = SpanRecorder("t")
        outer = rec.start("outer", 0.0)
        child = rec.start("child", 1.0)  # never finished explicitly
        rec.finish(outer, 5.0)
        assert child.t1 == 5.0
        assert rec._stack == []

    def test_negative_duration_rejected(self):
        rec = SpanRecorder("t")
        with pytest.raises(TraceError):
            rec.record("bad", 2.0, 1.0)
        span = rec.start("s", 3.0)
        with pytest.raises(TraceError):
            rec.finish(span, 1.0)

    def test_offset_recorder_shifts_and_shares_nesting(self):
        rec = SpanRecorder("t")
        outer = rec.start("run", 10.0)
        shifted = rec.at_offset(10.0)
        job = shifted.record("job", 0.0, 5.0, "sched")
        rec.finish(outer, 20.0)
        assert (job.t0, job.t1) == (10.0, 15.0)
        assert job.parent_id == outer.local_id
        # offsets compose
        assert shifted.at_offset(5.0).event("e", 0.0).t0 == 15.0


class TestCaseTimeline:
    def test_cursor_advances_through_spans(self):
        rec = SpanRecorder("t")
        tl = CaseTimeline(rec)
        tl.span("build", 30.0, cat="stage")
        tl.advance(5.0)
        tl.instant("sanity")
        assert tl.t == 35.0
        assert rec.spans[0].t1 == 30.0
        assert rec.spans[1].t0 == 35.0

    def test_inert_without_recorder(self):
        tl = CaseTimeline(None)
        assert not tl.active
        tl.span("x", 1.0)
        tl.instant("y")
        tl.finish(tl.start("z"))
        assert tl.t == 1.0  # cursor still advances

    def test_negative_advance_clamped(self):
        tl = CaseTimeline(None)
        tl.advance(-3.0)
        assert tl.t == 0.0


class TestTracer:
    def test_flush_assigns_global_ids_in_order(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(path)
        r1 = tracer.recorder("one")
        s = r1.start("a", 0.0)
        r1.record("b", 0.0, 1.0)
        r1.finish(s, 1.0)
        r2 = tracer.recorder("two")
        r2.record("c", 0.0, 2.0)
        tracer.flush(r1)
        tracer.flush(r2)
        records = read_jsonl(path)
        assert records[0]["kind"] == "meta"
        spans = [r for r in records if r["kind"] == "span"]
        assert [s["id"] for s in spans] == [1, 2, 3]
        assert spans[1]["parent"] == 1  # remapped local ids
        assert spans[2]["parent"] is None

    def test_memory_only_without_path(self):
        tracer = Tracer()
        rec = tracer.recorder("t")
        rec.record("a", 0.0, 1.0)
        records = tracer.flush(rec)
        assert tracer.path is None
        assert [r["kind"] for r in records] == ["meta", "span"]
        assert len(tracer.flushed) == 1

    def test_write_metrics_appends_final_record(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(path)
        rec = tracer.recorder("t")
        rec.record("a", 0.0, 1.0)
        tracer.flush(rec)
        tracer.write_metrics({"counters": {"cases.total": 1}})
        meta, spans, metrics = load_trace(path)
        assert metrics == {"counters": {"cases.total": 1}}
        assert len(spans) == 1

    def test_wall_clock_off_by_default(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(path)
        rec = tracer.recorder("t")
        rec.record("a", 0.0, 1.0)
        tracer.flush(rec)
        (span,) = load_trace(path)[1]
        assert "w0" not in span

    def test_wall_clock_opt_in(self):
        tracer = Tracer(wall=True)
        rec = tracer.recorder("t")
        span = rec.record("a", 0.0, 1.0)
        assert span.w0 is not None

    def test_as_tracer_coercion(self, tmp_path):
        assert as_tracer(None) is None
        t = Tracer()
        assert as_tracer(t) is t
        t2 = as_tracer(str(tmp_path / "x.jsonl"))
        assert t2.path.endswith("x.jsonl")


class TestLoadAndValidate:
    def _write_trace(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        tracer = Tracer(path)
        rec = tracer.recorder("case")
        outer = rec.start("attempt", 0.0, "attempt")
        rec.record("build", 0.0, 30.0, "stage")
        rec.record("run", 30.0, 40.0, "stage")
        rec.finish(outer, 40.0)
        tracer.flush(rec)
        return path

    def test_load_trace_round_trip(self, tmp_path):
        path = self._write_trace(tmp_path)
        meta, spans, metrics = load_trace(path)
        assert meta["format"] == "repro-trace"
        assert [s["name"] for s in spans] == ["attempt", "build", "run"]
        assert metrics is None

    def test_load_trace_rejects_empty(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        open(path, "w").close()
        with pytest.raises(TraceError):
            load_trace(path)

    def test_load_trace_rejects_foreign_format(self, tmp_path):
        path = str(tmp_path / "foreign.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(json.dumps({"kind": "meta", "format": "other"}) + "\n")
        with pytest.raises(TraceError):
            load_trace(path)

    def test_validate_nesting_clean(self, tmp_path):
        _, spans, _ = load_trace(self._write_trace(tmp_path))
        assert validate_nesting(spans) == []

    def test_validate_nesting_flags_escape(self):
        spans = [
            {"id": 1, "parent": None, "track": "t", "name": "p",
             "t0": 0.0, "t1": 10.0},
            {"id": 2, "parent": 1, "track": "t", "name": "c",
             "t0": 5.0, "t1": 15.0},  # escapes the parent
        ]
        problems = validate_nesting(spans)
        assert len(problems) == 1 and "outside parent" in problems[0]

    def test_validate_nesting_flags_unknown_parent(self):
        spans = [{"id": 2, "parent": 9, "track": "t", "name": "c",
                  "t0": 0.0, "t1": 1.0}]
        assert "not seen" in validate_nesting(spans)[0]


class TestChromeExport:
    def test_chrome_trace_structure(self, tmp_path):
        tracer = Tracer()
        rec = tracer.recorder("case-1")
        rec.record("build", 0.0, 30.0, "stage", cache_hit=False)
        rec.event("sanity", 30.0, "stage")
        tracer.flush(rec)
        doc = chrome_trace([s.as_record(i + 1, None)
                            for i, s in enumerate(tracer.flushed)])
        events = doc["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        complete = [e for e in events if e["ph"] == "X"]
        instants = [e for e in events if e["ph"] == "i"]
        assert meta[0]["args"]["name"] == "case-1"
        assert complete[0]["dur"] == pytest.approx(30e6)  # seconds -> us
        assert complete[0]["args"] == {"cache_hit": False}
        assert instants[0]["s"] == "t"
        json.dumps(doc)  # must serialize
