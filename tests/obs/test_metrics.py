"""Tests for the metrics registry (repro.obs.metrics)."""

import json
import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.obs.metrics import (
    DURATION_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_add_accumulates(self):
        c = Counter("x")
        c.add()
        c.add(4)
        assert c.value == 5

    def test_negative_add_rejected(self):
        with pytest.raises(ValueError):
            Counter("x").add(-1)

    def test_thread_safety(self):
        c = Counter("x")
        threads = [
            threading.Thread(target=lambda: [c.add() for _ in range(1000)])
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("g")
        g.set(3)
        g.set(1.5)
        assert g.value == 1.5


class TestHistogram:
    def test_count_sum_min_max(self):
        h = Histogram("h")
        for v in (0.05, 2.0, 700.0):
            h.observe(v)
        d = h.as_dict()
        assert d["count"] == 3
        assert d["min"] == 0.05 and d["max"] == 700.0
        assert d["sum"] == pytest.approx(702.05)

    def test_bucket_assignment(self):
        h = Histogram("h", boundaries=(1.0, 10.0))
        for v in (0.5, 1.0, 5.0, 100.0):
            h.observe(v)
        buckets = h.as_dict()["buckets"]
        assert buckets == {"1": 2, "10": 1, "+inf": 1}

    def test_percentiles_clamped_to_max(self):
        h = Histogram("h", boundaries=(1.0, 10.0, 100.0))
        for _ in range(10):
            h.observe(2.0)
        # bucket upper bound is 10, but the observed max is 2.0
        assert h.percentile(50) == 2.0
        assert h.percentile(99) == 2.0

    def test_empty_percentile_zero(self):
        assert Histogram("h").percentile(90) == 0.0

    def test_bad_boundaries_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", boundaries=(2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", boundaries=())

    def test_bad_percentile_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(101)

    @given(st.lists(st.floats(min_value=0.0, max_value=1e5,
                              allow_nan=False), min_size=1, max_size=50))
    def test_percentile_bounds_property(self, values):
        """Any percentile estimate lies within [0, observed max]."""
        h = Histogram("h")
        for v in values:
            h.observe(v)
        for q in (0, 50, 90, 99, 100):
            assert 0.0 <= h.percentile(q) <= max(values)


class TestRegistry:
    def test_get_or_create(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert len(reg) == 1

    def test_type_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_snapshot_is_sorted_and_json_able(self):
        reg = MetricsRegistry()
        reg.counter("z.count").add(2)
        reg.counter("a.count").add(1)
        reg.gauge("m.g").set(0.5)
        reg.histogram("h.d").observe(3.0)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a.count", "z.count"]
        json.dumps(snap)  # must be plain data

    def test_snapshot_order_independent(self):
        r1, r2 = MetricsRegistry(), MetricsRegistry()
        r1.counter("a").add(1)
        r1.counter("b").add(2)
        r2.counter("b").add(2)
        r2.counter("a").add(1)
        assert r1.snapshot() == r2.snapshot()

    def test_merge_counts_skips_non_ints(self):
        reg = MetricsRegistry()
        reg.merge_counts("cache", {
            "hits": 3, "misses": 1, "hit_rate": 0.75,
            "enabled": True, "negative": -2,
        })
        counters = reg.snapshot()["counters"]
        assert counters == {"cache.hits": 3, "cache.misses": 1}

    def test_merge_counts_is_additive(self):
        reg = MetricsRegistry()
        reg.merge_counts("c", {"hits": 1})
        reg.merge_counts("c", {"hits": 2})
        assert reg.counter("c.hits").value == 3

    def test_default_buckets_strictly_increasing(self):
        assert list(DURATION_BUCKETS) == sorted(set(DURATION_BUCKETS))


class TestStatsPublishers:
    """The legacy stats objects fold into the unified namespace."""

    def test_cache_stats_publish(self):
        from repro.pkgmgr.memo import CacheStats

        stats = CacheStats()
        stats.hits = 3
        stats.misses = 2
        reg = MetricsRegistry()
        stats.publish(reg)
        counters = reg.snapshot()["counters"]
        assert counters["concretize.hits"] == 3
        assert counters["concretize.misses"] == 2
        assert "concretize.hit_rate" not in counters  # derivable, skipped

    def test_store_stats_publish(self):
        from repro.postprocess.store import StoreStats

        stats = StoreStats()
        stats.misses = 4
        reg = MetricsRegistry()
        stats.publish(reg)
        assert reg.snapshot()["counters"]["ingest.misses"] == 4


class TestMergeSnapshot:
    """Fleet-aggregation edge cases: merge_snapshot must stay exact."""

    def test_empty_snapshot_is_a_no_op(self):
        reg = MetricsRegistry()
        reg.counter("cases.total").add(3)
        before = reg.snapshot()
        reg.merge_snapshot({})
        reg.merge_snapshot({"counters": None, "gauges": None,
                           "histograms": None})
        assert reg.snapshot() == before

    def test_counters_add_but_gauges_overwrite(self):
        reg = MetricsRegistry()
        reg.counter("cases.total").add(2)
        reg.gauge("fleet.occupancy").set(3.0)
        reg.merge_snapshot({
            "counters": {"cases.total": 5},
            "gauges": {"fleet.occupancy": 1.0},
        })
        snap = reg.snapshot()
        assert snap["counters"]["cases.total"] == 7  # additive
        assert snap["gauges"]["fleet.occupancy"] == 1.0  # last write wins

    def test_bool_and_non_int_counters_skipped(self):
        reg = MetricsRegistry()
        reg.merge_snapshot({
            "counters": {"ok": True, "rate": 0.5, "real": 2},
        })
        counters = reg.snapshot()["counters"]
        assert counters == {"real": 2}

    def test_histogram_bucket_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.histogram("sched.job_seconds", [1.0, 2.0]).observe(1.5)
        incoming = {
            "histograms": {
                "sched.job_seconds": {
                    "count": 1, "sum": 0.5, "min": 0.5, "max": 0.5,
                    "buckets": {"0.5": 1, "4": 0, "+inf": 0},
                },
            },
        }
        with pytest.raises(ValueError, match="bucket boundaries"):
            reg.merge_snapshot(incoming)

    def test_histogram_merge_is_exact_for_tallies(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for v in (0.05, 2.0):
            a.histogram("h").observe(v)
        for v in (700.0,):
            b.histogram("h").observe(v)
        a.merge_snapshot(b.snapshot())
        merged = a.snapshot()["histograms"]["h"]
        one = MetricsRegistry()
        for v in (0.05, 2.0, 700.0):
            one.histogram("h").observe(v)
        assert merged == one.snapshot()["histograms"]["h"]

    def test_merge_into_fresh_registry_reproduces_snapshot(self):
        src = MetricsRegistry()
        src.counter("cases.total").add(4)
        src.gauge("g").set(2.5)
        src.histogram("h").observe(1.0)
        dst = MetricsRegistry()
        dst.merge_snapshot(src.snapshot())
        assert dst.snapshot() == src.snapshot()
