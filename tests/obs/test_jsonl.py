"""Tests for the shared crash-safe JSONL helper (repro.obs.jsonl)."""

import json
import os

import pytest

from repro.obs.jsonl import (
    JsonlAppender,
    read_jsonl,
    scan_jsonl,
    seal_line,
    verify_line,
    write_jsonl_atomic,
)


class TestAppender:
    def test_append_and_read_round_trip(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        appender = JsonlAppender(path)
        appender.append({"a": 1})
        appender.append({"b": [1, 2], "c": "x"})
        assert read_jsonl(path) == [{"a": 1}, {"b": [1, 2], "c": "x"}]

    def test_creates_parent_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "er" / "log.jsonl")
        JsonlAppender(path).append({"ok": True})
        assert read_jsonl(path) == [{"ok": True}]

    def test_sorted_keys_deterministic_bytes(self, tmp_path):
        p1 = str(tmp_path / "a.jsonl")
        p2 = str(tmp_path / "b.jsonl")
        JsonlAppender(p1).append({"z": 1, "a": 2})
        JsonlAppender(p2).append({"a": 2, "z": 1})
        assert open(p1, "rb").read() == open(p2, "rb").read()

    def test_append_many_batches(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        n = JsonlAppender(path).append_many([{"i": i} for i in range(5)])
        assert n == 5
        assert [r["i"] for r in read_jsonl(path)] == list(range(5))

    def test_append_many_empty_is_noop(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        assert JsonlAppender(path).append_many([]) == 0
        assert not os.path.exists(path)


class TestTornTail:
    def test_read_skips_torn_tail(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        JsonlAppender(path).append_many([{"i": 0}, {"i": 1}])
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"i": 2, "x"')  # the crash signature
        assert [r["i"] for r in read_jsonl(path)] == [0, 1]

    def test_read_raises_on_mid_file_corruption(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"i": 0}\nnot json\n{"i": 2}\n')
        with pytest.raises(json.JSONDecodeError):
            read_jsonl(path)

    def test_append_repairs_torn_tail_first(self, tmp_path):
        """Appending after a crash must not glue two records together."""
        path = str(tmp_path / "log.jsonl")
        JsonlAppender(path).append({"i": 0})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"i": 1, "x"')
        # a *new* appender (fresh process after the crash)
        JsonlAppender(path).append({"i": 2})
        assert [r["i"] for r in read_jsonl(path)] == [0, 2]

    def test_repair_of_file_with_no_newline_at_all(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"torn')
        JsonlAppender(path).append({"i": 0})
        assert [r["i"] for r in read_jsonl(path)] == [0]

    def test_read_missing_file_is_empty(self, tmp_path):
        assert read_jsonl(str(tmp_path / "absent.jsonl")) == []


class TestAtomicRewrite:
    def test_write_jsonl_atomic_replaces(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        JsonlAppender(path).append_many([{"i": i} for i in range(4)])
        write_jsonl_atomic(path, [{"i": 99}])
        assert read_jsonl(path) == [{"i": 99}]
        assert not os.path.exists(path + ".tmp")

    def test_write_jsonl_atomic_creates_dirs(self, tmp_path):
        path = str(tmp_path / "a" / "b.jsonl")
        write_jsonl_atomic(path, [{"x": 1}])
        assert read_jsonl(path) == [{"x": 1}]


class TestSealing:
    def test_seal_verify_round_trip(self):
        record = {"z": [1, 2], "a": "text"}
        line = seal_line(record)
        assert verify_line(line) == record

    def test_sealed_line_is_plain_flat_json(self):
        """Sealing must stay invisible to naive json.loads consumers."""
        doc = json.loads(seal_line({"k": 1}))
        assert doc["k"] == 1 and "cs" in doc

    def test_empty_record_seals(self):
        assert verify_line(seal_line({})) == {}

    def test_corrupted_payload_detected(self):
        line = seal_line({"value": 12345})
        assert verify_line(line.replace("12345", "12346")) is None

    def test_legacy_unsealed_record_accepted(self):
        assert verify_line('{"old": true}') == {"old": True}

    def test_non_object_line_rejected(self):
        assert verify_line("[1, 2]") is None
        assert verify_line("garbage") is None

    def test_appender_seals_by_default(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        JsonlAppender(path).append({"i": 0})
        with open(path, encoding="utf-8") as fh:
            raw = fh.read()
        assert raw.startswith('{"cs":"')
        assert read_jsonl(path) == [{"i": 0}]  # cs stripped on read

    def test_read_drops_checksum_failing_tail(self, tmp_path):
        """The generalized heal: a rotten *suffix*, not just a torn line."""
        path = str(tmp_path / "log.jsonl")
        JsonlAppender(path).append_many([{"i": 0}, {"i": 1}])
        bad = seal_line({"i": 2}).replace('"i": 2', '"i": 3')
        with open(path, "a", encoding="utf-8") as fh:
            fh.write(bad + "\n")
            fh.write('{"torn')
        assert [r["i"] for r in read_jsonl(path)] == [0, 1]

    def test_quarantine_skips_mid_file_damage(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(seal_line({"i": 0}) + "\n")
            fh.write("not json\n")
            fh.write(seal_line({"i": 2}) + "\n")
        with pytest.raises(json.JSONDecodeError):
            read_jsonl(path)
        assert [r["i"] for r in read_jsonl(path, quarantine=True)] == [0, 2]

    def test_scan_triage_counts(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(seal_line({"i": 0}) + "\n")
            fh.write("rot\n")
            fh.write(seal_line({"i": 2}) + "\n")
            fh.write('{"torn')
        records, stats = scan_jsonl(path)
        assert [r["i"] for r in records] == [0, 2]
        assert stats == {"ok": 2, "bad_mid": 1, "bad_tail": 1}


class TestShortWriteRepair:
    """Satellite: a torn batched append keeps its complete earlier lines."""

    def _short_write(self, monkeypatch, keep_bytes):
        real_write = os.write
        fired = []

        def shorting(fd, payload):
            if not fired and len(payload) > keep_bytes:
                fired.append(True)
                return real_write(fd, payload[:keep_bytes])
            return real_write(fd, payload)

        monkeypatch.setattr(os, "write", shorting)
        return fired

    def test_mid_batch_short_write_keeps_complete_lines(
        self, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "log.jsonl")
        appender = JsonlAppender(path)
        appender.append({"i": 0})
        batch = [{"i": 1}, {"i": 2}, {"i": 3}]
        lines = [seal_line(r) + "\n" for r in batch]
        # tear inside the final line of the batch
        keep = len("".join(lines[:2])) + 4
        fired = self._short_write(monkeypatch, keep)
        with pytest.raises(OSError):
            appender.append_many(batch)
        assert fired
        # lines 1 and 2 of the batch survived; only the torn tail dropped
        assert [r["i"] for r in read_jsonl(path)] == [0, 1, 2]
        # and the file needs no further repair: the next append just works
        appender.append({"i": 9})
        assert [r["i"] for r in read_jsonl(path)] == [0, 1, 2, 9]

    def test_short_write_mid_first_line_drops_whole_batch(
        self, tmp_path, monkeypatch
    ):
        path = str(tmp_path / "log.jsonl")
        appender = JsonlAppender(path)
        appender.append({"i": 0})
        self._short_write(monkeypatch, 3)
        with pytest.raises(OSError):
            appender.append_many([{"i": 1}, {"i": 2}])
        assert [r["i"] for r in read_jsonl(path)] == [0]
