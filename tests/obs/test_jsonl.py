"""Tests for the shared crash-safe JSONL helper (repro.obs.jsonl)."""

import json
import os

import pytest

from repro.obs.jsonl import JsonlAppender, read_jsonl, write_jsonl_atomic


class TestAppender:
    def test_append_and_read_round_trip(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        appender = JsonlAppender(path)
        appender.append({"a": 1})
        appender.append({"b": [1, 2], "c": "x"})
        assert read_jsonl(path) == [{"a": 1}, {"b": [1, 2], "c": "x"}]

    def test_creates_parent_directories(self, tmp_path):
        path = str(tmp_path / "deep" / "er" / "log.jsonl")
        JsonlAppender(path).append({"ok": True})
        assert read_jsonl(path) == [{"ok": True}]

    def test_sorted_keys_deterministic_bytes(self, tmp_path):
        p1 = str(tmp_path / "a.jsonl")
        p2 = str(tmp_path / "b.jsonl")
        JsonlAppender(p1).append({"z": 1, "a": 2})
        JsonlAppender(p2).append({"a": 2, "z": 1})
        assert open(p1, "rb").read() == open(p2, "rb").read()

    def test_append_many_batches(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        n = JsonlAppender(path).append_many([{"i": i} for i in range(5)])
        assert n == 5
        assert [r["i"] for r in read_jsonl(path)] == list(range(5))

    def test_append_many_empty_is_noop(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        assert JsonlAppender(path).append_many([]) == 0
        assert not os.path.exists(path)


class TestTornTail:
    def test_read_skips_torn_tail(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        JsonlAppender(path).append_many([{"i": 0}, {"i": 1}])
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"i": 2, "x"')  # the crash signature
        assert [r["i"] for r in read_jsonl(path)] == [0, 1]

    def test_read_raises_on_mid_file_corruption(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"i": 0}\nnot json\n{"i": 2}\n')
        with pytest.raises(json.JSONDecodeError):
            read_jsonl(path)

    def test_append_repairs_torn_tail_first(self, tmp_path):
        """Appending after a crash must not glue two records together."""
        path = str(tmp_path / "log.jsonl")
        JsonlAppender(path).append({"i": 0})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"i": 1, "x"')
        # a *new* appender (fresh process after the crash)
        JsonlAppender(path).append({"i": 2})
        assert [r["i"] for r in read_jsonl(path)] == [0, 2]

    def test_repair_of_file_with_no_newline_at_all(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"torn')
        JsonlAppender(path).append({"i": 0})
        assert [r["i"] for r in read_jsonl(path)] == [0]

    def test_read_missing_file_is_empty(self, tmp_path):
        assert read_jsonl(str(tmp_path / "absent.jsonl")) == []


class TestAtomicRewrite:
    def test_write_jsonl_atomic_replaces(self, tmp_path):
        path = str(tmp_path / "log.jsonl")
        JsonlAppender(path).append_many([{"i": i} for i in range(4)])
        write_jsonl_atomic(path, [{"i": 99}])
        assert read_jsonl(path) == [{"i": 99}]
        assert not os.path.exists(path + ".tmp")

    def test_write_jsonl_atomic_creates_dirs(self, tmp_path):
        path = str(tmp_path / "a" / "b.jsonl")
        write_jsonl_atomic(path, [{"x": 1}])
        assert read_jsonl(path) == [{"x": 1}]
