#!/usr/bin/env python3
"""Reproduce Figure 2: the BabelStream programming-model survey.

Runs every programming model on every platform of the paper's Section
3.1, computes Triad efficiency against the theoretical peaks of Table 1,
prints the heatmap (with '*' for combinations that cannot run), renders
an SVG bar chart, and reports the Pennycook performance-portability
metric per model.

Run:  python examples/babelstream_survey.py
"""

from repro.analysis.efficiency import architectural_efficiency
from repro.analysis.portability import cascade, performance_portability
from repro.machine.progmodel import PROGRAMMING_MODELS
from repro.postprocess.plotting import bar_chart_svg, heatmap_ascii
from repro.runner.cli import load_suite
from repro.runner.executor import Executor

PLATFORMS = [
    "isambard-macs:volta",
    "isambard-macs:cascadelake",
    "isambard",
    "noctua2",
    "archer2",
]
# the Figure 2 caption: CPU runs on MACS use the gcc 12.1.0 module
ENVIRON_FOR = {"isambard-macs:cascadelake": ["gcc@12.1.0"]}


def main() -> None:
    executor = Executor(perflog_prefix="perflogs")
    classes = load_suite("babelstream")

    cells = {model: {} for model in PROGRAMMING_MODELS}
    for platform in PLATFORMS:
        report = executor.run(
            classes, platform, environs=ENVIRON_FOR.get(platform)
        )
        for r in report.results:
            model = r.case.test.model
            if r.passed:
                peak = r.case.partition.node.peak_bandwidth_gbs
                cells[model][platform] = architectural_efficiency(
                    r.perfvars["Triad"][0], peak
                )
            else:
                cells[model][platform] = None
                print(f"  [*] {model} on {platform}: "
                      f"{r.failure_reason.splitlines()[0][:70]}")

    print()
    print(heatmap_ascii(
        list(PROGRAMMING_MODELS), PLATFORMS, cells,
        title="Figure 2: Triad bandwidth / theoretical peak",
    ))

    # Pennycook PP per model across all five platforms
    print("Performance portability (harmonic mean; 0 if any '*'):")
    for model in PROGRAMMING_MODELS:
        pp = performance_portability(cells[model])
        print(f"  {model:<12} PP = {pp:.3f}")
    print("\nCascade for OpenMP (PP over the best k platforms):")
    for name, pp in cascade(cells["omp"]):
        print(f"  +{name:<28} PP = {pp:.3f}")

    # an SVG rendering of the Triad efficiencies, grouped by platform
    series = {m: [cells[m][p] for p in PLATFORMS] for m in PROGRAMMING_MODELS}
    with open("figure2.svg", "w", encoding="utf-8") as fh:
        fh.write(bar_chart_svg(PLATFORMS, series,
                               title="BabelStream Triad efficiency"))
    print("\nwrote figure2.svg")


if __name__ == "__main__":
    main()
