#!/usr/bin/env python3
"""Cross-system performance regression testing as a CI gate (Section 4).

The paper closes arguing that "cross-system performance regression
testing is now a fundamental necessity of scientific software
development" and that the framework "can form the basis of a CI
pipeline".  This example is that pipeline in miniature:

1. nightly runs append to the perflog history (here: four simulated
   nights),
2. the tracker establishes a noise-aware baseline per
   (system, test, FOM) series,
3. a "system upgrade" silently halves one FOM,
4. the CI gate turns red, naming exactly which series regressed.

Run:  python examples/ci_regression_tracking.py
"""

import glob
import tempfile

from repro.core.regression import RegressionTracker
from repro.runner.cli import main as bench_main


def nightly(perflog_dir: str) -> None:
    rc = bench_main([
        "-c", "hpgmg", "-r", "--system", "archer2", "-J--qos=standard",
        "--perflog-dir", perflog_dir,
    ])
    assert rc == 0


def main() -> None:
    with tempfile.TemporaryDirectory() as perflog_dir:
        print("running 4 nightly benchmark campaigns...")
        for night in range(4):
            nightly(perflog_dir)

        tracker = RegressionTracker(threshold=0.05, min_history=3)
        report = tracker.check_perflogs(perflog_dir)
        print("\nAfter 4 stable nights:")
        print(report.render())
        assert report.ok

        # night 5: a library update regresses the l0 rate by 40%
        print("\nsimulating a bad system upgrade before night 5...")
        log = sorted(glob.glob(f"{perflog_dir}/**/*.log", recursive=True))[0]
        lines = open(log).read().strip().splitlines()
        bad = []
        for line in lines[-3:]:  # the last run's l0/l1/l2 records
            parts = line.split("|")
            if parts[8] == "l0":
                parts[9] = str(float(parts[9]) * 0.6)
            bad.append("|".join(parts))
        with open(log, "a") as fh:
            fh.write("\n".join(bad) + "\n")

        report = tracker.check_perflogs(perflog_dir)
        print(report.render())
        print(f"\nCI exit code: {report.exit_code()} "
              f"({len(report.regressions)} regression caught)")
        assert not report.ok


if __name__ == "__main__":
    main()
