#!/usr/bin/env python3
"""Energy-aware benchmarking: the paper's Section 4 future work, running.

"We are planning to add functionality to capture relevant parameters of
the system state during the runtime of the benchmarks, such as network
or filesystem usage levels or energy consumption."  Here that capture is
live: every pipeline run records a telemetry trace and an energy report,
so FOM-per-watt comparisons come for free.

Run:  python examples/energy_survey.py
"""

from repro.core.framework import BenchmarkingFramework

PLATFORMS = ["archer2", "csd3", "noctua2", "isambard"]


def main() -> None:
    framework = BenchmarkingFramework()
    result = framework.run_campaign("babelstream", PLATFORMS, tags=["omp"])

    print(f"{'system':<12}{'Triad GB/s':>12}{'mean W':>10}{'kJ':>9}"
          f"{'GB/s per W':>13}")
    for platform in PLATFORMS:
        case = result.reports[platform].passed[0]
        triad = case.perfvars["Triad"][0]
        energy = case.energy
        print(
            f"{platform:<12}{triad:>12.1f}{energy.mean_watts:>10.0f}"
            f"{energy.joules / 1e3:>9.1f}"
            f"{energy.fom_per_watt(triad):>13.3f}"
        )

    print("\nSystem-state utilisation during the ARCHER2 run:")
    e = result.reports["archer2"].passed[0].energy
    print(f"  memory bandwidth: {e.mean_mem_util:.0%} mean")
    print(f"  network:          {e.mean_network_util:.0%} mean "
          "(single node: idle)")
    print(f"  filesystem:       {e.mean_filesystem_util:.0%} mean "
          "(perflog writes only)")
    print("\nEnergy figures land in the provenance JSON next to the FOMs,")
    print("so efficiency-per-watt analyses are as reproducible as the")
    print("performance ones (Principle 6 applies to telemetry too).")


if __name__ == "__main__":
    main()
