#!/usr/bin/env python3
"""Reproduce Table 4: the HPGMG-FV supercomputing-provision survey.

Runs HPGMG-FV in the paper's fixed layout (8 MPI tasks, 2 per node, 8
CPUs per task, arguments ``7 8``) on four systems, mirroring::

    reframe -c .../hpgmg -r -J'--qos=standard' --system archer2
        -S spack_spec=hpgmg%gcc --setvar=num_cpus_per_task=8
        --setvar=num_tasks_per_node=2 --setvar=num_tasks=8

and shows how the *same* configuration lands an order of magnitude apart
on systems with the same ISA -- the paper's case for cross-system
performance regression testing.

Run:  python examples/hpgmg_cross_system.py
"""

from repro.core.framework import BenchmarkingFramework

PLATFORMS = {
    "archer2": "ARCHER2 (Rome)",
    "cosma8": "COSMA8 (Rome)",
    "csd3": "CSD3 (Cascade Lake)",
    "isambard-macs:cascadelake": "Isambard (Cascade Lake)",
}


def main() -> None:
    framework = BenchmarkingFramework(perflog_prefix="perflogs")
    result = framework.run_campaign(
        "hpgmg", list(PLATFORMS), qos="standard",
        setvars={"num_cpus_per_task": 8, "num_tasks_per_node": 2,
                 "num_tasks": 8},
    )

    print(f"{'System':<26}{'l0':>10}{'l1':>10}{'l2':>10}   (10^6 DOF/s)")
    rows = {}
    for platform, label in PLATFORMS.items():
        report = result.reports[platform]
        case = report.results[0]
        if not case.passed:
            print(f"{label:<26} FAILED: {case.failure_reason[:50]}")
            continue
        foms = [case.perfvars[f"l{i}"][0] for i in range(3)]
        rows[platform] = foms
        print(f"{label:<26}" + "".join(f"{fom:>10.2f}" for fom in foms))

    fast = rows["csd3"][0]
    slow = rows["isambard-macs:cascadelake"][0]
    print(f"\nTwo Cascade Lake systems differ by {fast / slow:.1f}x in the "
          "same configuration --")
    print("platform specifics matter beyond the architecture (Section 3.3).")

    # Principle 5 receipt: the exact job script used on ARCHER2
    print("\nARCHER2 job script (captured for reproduction):")
    print(result.reports["archer2"].results[0].job_script)

    framework.write_provenance(result, "provenance")
    print("provenance JSON written under ./provenance/")


if __name__ == "__main__":
    main()
