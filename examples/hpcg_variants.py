#!/usr/bin/env python3
"""Reproduce Table 2: implementation vs algorithm on HPCG (Section 3.2).

Runs the four HPCG variants (reference CSR, Intel's MKL binary, the
matrix-free stencil, and the LFRic Helmholtz operator) on a Cascade Lake
and a Rome system, then computes the Eq. (1) efficiencies that quantify
"how much more efficient algorithmic optimisation is, than optimising
the implementation".

Run:  python examples/hpcg_variants.py
"""

from repro.analysis.efficiency import variant_efficiency
from repro.core.workflow import BenchmarkingWorkflow
from repro.runner.cli import load_suite

PLATFORMS = ["isambard-macs:cascadelake", "archer2"]
LABELS = {"isambard-macs:cascadelake": "Intel Cascade Lake",
          "archer2": "AMD Rome"}
VARIANTS = ["HPCG_Original", "HPCG_Intel", "HPCG_MatrixFree", "HPCG_LFRic"]


def main() -> None:
    workflow = BenchmarkingWorkflow(load_suite("hpcg"), PLATFORMS,
                                    perflog_prefix="perflogs")
    result = workflow.run()

    table = {}
    print(f"{'HPCG Variant':<18}" + "".join(f"{LABELS[p]:>22}" for p in PLATFORMS))
    for name in VARIANTS:
        row = []
        for platform in PLATFORMS:
            cell = None
            for r in result.reports[platform].results:
                if r.case.test.name == name and r.passed:
                    cell = r.perfvars["gflops"][0]
            row.append(cell)
        table[name] = row
        cells = "".join(
            f"{'N/A' if c is None else format(c, '.1f'):>22}" for c in row
        )
        print(f"{name:<18}{cells}")

    # Eq. (1): E = VAR / ORIG
    print("\nEq. (1) efficiencies:")
    e_i = variant_efficiency(table["HPCG_Intel"][0], table["HPCG_Original"][0])
    print(f"  E_I (Intel implementation, Cascade Lake) = {e_i:.3f}")
    for i, platform in enumerate(PLATFORMS):
        e_a = variant_efficiency(table["HPCG_MatrixFree"][i],
                                 table["HPCG_Original"][i])
        print(f"  E_A (matrix-free algorithm, {LABELS[platform]}) = {e_a:.3f}")
    print("\nAlgorithmic optimisation beats implementation optimisation,")
    print("echoing the 2010 SCALES report (Section 3.2 of the paper).")


if __name__ == "__main__":
    main()
