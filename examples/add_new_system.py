#!/usr/bin/env python3
"""Extending the framework: a new system and a site-local benchmark.

The paper's framework is designed so that "once a system is added to the
configuration ... it can be shared with others and new benchmarks in the
suite added without any alterations".  This example does both:

1. registers a new system (a local workstation) with its own package
   environment -- an unknown system would otherwise get the automatic
   "basic environment, no system packages";
2. adds a *site-local* package recipe in a custom repository that
   shadows the builtin one (Section 2.2's local recipe repositories);
3. defines a brand-new benchmark class and runs it there.

Run:  python examples/add_new_system.py
"""

from repro.pkgmgr.compilers import Compiler, CompilerRegistry
from repro.pkgmgr.environment import Environment
from repro.pkgmgr.package import PackageBase, depends_on, version
from repro.pkgmgr.repository import RepoPath, Repository, builtin_repo
from repro.pkgmgr.concretizer import Concretizer
from repro.runner import sanity as sn
from repro.runner.benchmark import RegressionTest
from repro.runner.config import (
    EnvironConfig,
    PartitionConfig,
    SystemConfig,
    default_site_config,
)
from repro.runner.executor import Executor
from repro.systems.hardware import CacheSpec, MemorySpec, MiB, NodeSpec, ProcessorSpec


# -- 1. describe the new system's hardware and register it -------------------

WORKSTATION_CPU = ProcessorSpec(
    vendor="AMD",
    model="Ryzen 9 7950X",
    microarch="milan",  # closest modelled microarchitecture
    isa_family="x86_64",
    cores_per_socket=16,
    clock_ghz=4.5,
    flops_per_cycle=16,
    caches=(CacheSpec(3, 64 * MiB),),
)

node = NodeSpec(
    processor=WORKSTATION_CPU,
    sockets=1,
    memory=MemorySpec(peak_bandwidth_gbs=83.2, channels=2,
                      technology="DDR5-5200", stream_fraction=0.8),
)

site = default_site_config()
site.add(
    SystemConfig(
        name="workstation",
        description="A developer workstation (local scheduler)",
        partitions={
            "default": PartitionConfig(
                name="default",
                node=node,
                scheduler="local",
                launcher="local",
                num_nodes=1,
                environs=[EnvironConfig(name="default", compiler="gcc",
                                        compiler_version="12.1.0")],
            )
        },
    )
)

# -- 2. a site-local recipe repository ----------------------------------------


class Mylapw(PackageBase):
    """A site-local mini-app not relevant for the upstream repository."""

    homepage = "https://example.org/mylapw"
    version("2.1")
    version("2.0")
    depends_on("cmake@3.20:", type="build")


local_repo = Repository("site")
local_repo.add(Mylapw)
repo_path = RepoPath([local_repo, builtin_repo()])

env = Environment(
    "workstation",
    compilers=CompilerRegistry([Compiler("gcc", "12.1.0")]),
)
concrete = Concretizer(repo=repo_path, env=env).concretize("mylapw")
print("site-local recipe concretizes:", concrete.format())
print("provided by repository:", repo_path.providing_repo("mylapw"))


# -- 3. a brand-new benchmark, run on the new system ---------------------------


class LatencyBenchmark(RegressionTest):
    """Measures simulated memory latency via pointer chasing."""

    executable = "pointer-chase"

    def program(self, ctx):
        # a trivially modelled latency: DRAM ~90 ns, scaled by clock
        latency_ns = 90.0 * (2.5 / ctx.node.processor.clock_ghz)
        return f"mean latency: {latency_ns:.1f} ns\n", 1.0

    def check_sanity(self, stdout):
        sn.assert_found(r"mean latency", stdout)

    def extract_performance(self, stdout):
        value = sn.extractsingle(r"latency: ([\d.]+) ns", stdout, 1, float)
        return {"latency": (value, "ns")}


def main() -> None:
    executor = Executor(site=site, perflog_prefix="perflogs")
    report = executor.run([LatencyBenchmark], "workstation")
    print()
    print(report.summary())
    print(report.performance_report())
    print("The same benchmark runs on every other configured system too:")
    for target in ("archer2", "csd3"):
        rep = executor.run([LatencyBenchmark], target)
        lat = rep.passed[0].perfvars["latency"][0]
        print(f"  {target:<10} {lat:.1f} ns")


if __name__ == "__main__":
    main()
