#!/usr/bin/env python3
"""Quickstart: run one benchmark on one (simulated) system, end to end.

This walks the paper's Figure 1 once: pick a benchmark, build it through
the package manager, run it under the system's scheduler, extract the
Figure of Merit, compute an efficiency, and audit the run against the six
Principles.

Run:  python examples/quickstart.py
"""

from repro.analysis.efficiency import architectural_efficiency
from repro.core.framework import BenchmarkingFramework

def main() -> None:
    framework = BenchmarkingFramework(perflog_prefix="perflogs")

    print("Configured systems:", ", ".join(framework.available_systems()))
    print("Benchmark suites:  ", ", ".join(framework.available_suites()))
    print()

    # Run the OpenMP BabelStream variant on ARCHER2 (simulated).
    result = framework.run_campaign("babelstream", ["archer2"], tags=["omp"])
    report = result.reports["archer2"]
    print(report.summary())

    # Principle 1: turn the FOM into an efficiency against Table 1's peak.
    triad = result.fom("archer2", "BabelStreamBenchmark_omp", "Triad")
    case = report.passed[0]
    peak = case.case.partition.node.peak_bandwidth_gbs
    eff = architectural_efficiency(triad, peak)
    print(f"Triad: {triad:.1f} GB/s of {peak:.1f} GB/s peak "
          f"= {eff:.0%} efficiency")
    print()

    # Principles 2-5: everything needed to reproduce this run was captured.
    print("Concretized spec:", case.concrete_spec.format())
    print("Run command:     ", case.run_command)
    print("Job script:")
    for line in case.job_script.splitlines():
        print("   ", line)
    print()

    # The compliance auditor checks all six Principles mechanically.
    for audit in framework.audit(result):
        print(audit.render())

    print("\nPerflog written under ./perflogs -- post-process it with:")
    print("  repro-plot perflogs/")


if __name__ == "__main__":
    main()
