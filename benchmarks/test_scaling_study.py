"""Extension study: HPGMG strong scaling per system (Section 3.3 taken
further) and the OSU network survey that explains it.

Not a table in the paper -- this is the follow-on experiment its Section
3.3 motivates ("cross-system performance regression testing is now a
fundamental necessity"): sweep the task count, fit Amdahl's serial
fraction, and read the network constants directly with the OSU suite.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.scaling import ScalingPoint, ScalingStudy, fit_amdahl
from repro.apps.hpgmg.model import HpgmgTimingModel
from repro.apps.osu.microbench import bandwidth_sweep, latency_sweep
from repro.postprocess.plotting import line_chart_svg
from repro.systems.registry import get_system

SYSTEMS = {
    "archer2": None,
    "cosma8": None,
    "csd3": "cascadelake",
    "isambard-macs": "cascadelake",
}
TASK_COUNTS = (2, 4, 8, 16, 32)


#: FOM level to sweep: level 2's small grids are where communication
#: latency bites (that is why every Table 4 row decays toward l2), so the
#: strong-scaling limit shows there first
SWEEP_LEVEL = 2


def regenerate_scaling():
    curves = {}
    serial_fractions = {}
    for system, part in SYSTEMS.items():
        node = get_system(system).partition(part).node
        points = []
        for tasks in TASK_COUNTS:
            model = HpgmgTimingModel(system, node, tasks, 2, 8)
            model.boxes_per_rank = max(64 // tasks, 1)  # fixed global size
            points.append(
                ScalingPoint(tasks, model.solve_seconds(SWEEP_LEVEL))
            )
        study = ScalingStudy(points)
        curves[system] = study.speedups()
        serial_fractions[system] = fit_amdahl(points)
    return curves, serial_fractions


def test_hpgmg_strong_scaling(once):
    curves, serial = once(regenerate_scaling)
    lines = [f"{'system':<15} " + "".join(f"{t:>8}" for t in TASK_COUNTS)
             + "   Amdahl s"]
    for system, speedups in curves.items():
        row = "".join(f"{s:>8.2f}" for _, s in speedups)
        lines.append(f"{system:<15} {row}   {serial[system]:.3f}")
    emit("HPGMG strong scaling (speedup over 2 tasks)", "\n".join(lines))

    import os

    os.makedirs("artifacts", exist_ok=True)
    with open("artifacts/scaling.svg", "w", encoding="utf-8") as fh:
        fh.write(line_chart_svg(
            {s: pts for s, pts in curves.items()},
            title="HPGMG-FV strong scaling", x_label="MPI tasks",
            y_label="speedup", log_x=True,
        ))

    for system, speedups in curves.items():
        by_tasks = dict(speedups)
        # more tasks still helps the fixed problem...
        assert by_tasks[32] > by_tasks[2]
        # ...but far from the ideal 16x: the coarse grids are latency-bound
        assert by_tasks[32] < 16.0 * 0.95, system
        assert 0.0 <= serial[system] <= 0.8, system
    # the latency-heavy systems flatten hardest at the coarse level
    assert serial["csd3"] > serial["cosma8"]
    assert serial["isambard-macs"] > serial["cosma8"]


def regenerate_network():
    table = {}
    for system in SYSTEMS:
        lat = latency_sweep(system)
        bw = bandwidth_sweep(system)
        table[system] = (lat.smallest, bw.largest / 1e3)
    return table


def test_osu_network_survey(once):
    table = once(regenerate_network)
    lines = [f"{'system':<15} {'latency (us)':>14} {'peak BW (GB/s)':>16}"]
    for system, (lat, bw) in table.items():
        lines.append(f"{system:<15} {lat:>14.2f} {bw:>16.2f}")
    emit("OSU network survey", "\n".join(lines))
    # the network ordering that shaped Table 4
    assert table["isambard-macs"][0] > 4 * table["csd3"][0]
    assert table["csd3"][1] > table["isambard-macs"][1]
