"""Execution-engine throughput: async wavefronts + concretization memo.

Two claims from the ISSUE this PR implements, measured end to end:

1. **Wall-clock speedup**: a Figure-2-sized campaign (>= 40 cases) runs
   >= 3x faster under ``--policy=async -j 4`` than serially, while the
   FOMs and the perflog bytes stay *identical* (the determinism
   contract of :mod:`repro.runner.parallel`).
2. **Concretization reuse**: the repeated Figure-2 BabelStream campaign
   (the paper's "we ourselves reproduce it" loop) pays exactly one
   concretizer solve per unique spec x system -- impossible
   combinations included, thanks to negative memoization -- reaching a
   >= 80% cache hit rate over five regenerations.

The measured numbers are written to ``BENCH_runner.json`` at the repo
root so future PRs can track the perf trajectory.
"""

import json
import os
import time

from benchmarks.conftest import emit
from repro.runner import sanity as sn
from repro.runner.benchmark import SpackTest
from repro.runner.cli import load_suite
from repro.runner.executor import Executor
from repro.runner.fields import parameter

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "..",
                             "BENCH_runner.json")
PINNED_TS = "2026-01-01T00:00:00"

#: real seconds each probe case spends "in the queue/job" -- stands in
#: for the remote-scheduler latency a real campaign hides behind; the
#: simulated pipeline around it costs ~1-2 ms per case
CASE_LATENCY = 0.03
WORKERS = 4
PLATFORMS = ["csd3", "archer2"]  # x 22 variants = 44 cases


class ThroughputProbe(SpackTest):
    """Figure-2-shaped probe: many independent package-built cases.

    ``program`` sleeps a fixed, worker-independent interval (the
    job-latency stand-in) and reports a FOM derived only from the
    parameter point, so every policy/worker combination must produce
    byte-identical perflogs.
    """

    point = parameter(list(range(22)))

    def __init__(self, **p):
        super().__init__(**p)
        self.spack_spec = "stream"

    def program(self, ctx):
        time.sleep(CASE_LATENCY)
        return f"probe {self.point}: {100.0 + self.point}\n", 1.0

    def check_sanity(self, stdout):
        sn.assert_found(r"probe", stdout)

    def extract_performance(self, stdout):
        v = sn.extractsingle(r": ([\d.]+)", stdout, 1, float)
        return {"value": (v, "MB/s")}


def _run_policy(policy, workers, tmpdir, classes=None, platforms=None,
                **run_kwargs):
    """Run one probe campaign under a policy; also reused (at reduced
    size) by the tier-1 smoke gate in
    ``tests/postprocess/test_throughput_smoke.py``."""
    ex = Executor(perflog_prefix=tmpdir)
    ex.perflog.timestamp = PINNED_TS
    cases = []
    for platform in (platforms or PLATFORMS):
        cases.extend(ex.expand_cases(classes or [ThroughputProbe],
                                     platform))
    start = time.perf_counter()
    report = ex.run_cases(cases, policy=policy, workers=workers,
                          **run_kwargs)
    elapsed = time.perf_counter() - start
    logs = {}
    for root, _, files in os.walk(tmpdir):
        for fname in files:
            path = os.path.join(root, fname)
            with open(path, "rb") as fh:
                logs[os.path.relpath(path, tmpdir)] = fh.read()
    foms = [(r.case.display_name, sorted(r.perfvars.items()))
            for r in report.results]
    return {
        "elapsed": elapsed,
        "n_cases": len(cases),
        "summary": report.summary(),
        "foms": foms,
        "logs": logs,
        "cache": ex.concretizer_cache.stats.as_dict(),
        "trace_path": report.trace_path,
    }


def _update_baseline(**entries):
    doc = {}
    if os.path.exists(BASELINE_PATH):
        with open(BASELINE_PATH, encoding="utf-8") as fh:
            doc = json.load(fh)
    doc.update(entries)
    with open(BASELINE_PATH, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def regenerate_throughput(tmpdir):
    serial = _run_policy("serial", 1, os.path.join(tmpdir, "serial"))
    parallel = _run_policy("async", WORKERS, os.path.join(tmpdir, "async"))
    return serial, parallel


def test_async_speedup_with_identical_output(once, tmp_path):
    serial, parallel = once(regenerate_throughput, str(tmp_path))
    speedup = serial["elapsed"] / parallel["elapsed"]
    serial_rate = serial["n_cases"] / serial["elapsed"]
    async_rate = parallel["n_cases"] / parallel["elapsed"]
    emit(
        "Runner throughput: serial vs async (4 workers)",
        f"campaign: {serial['n_cases']} cases x {CASE_LATENCY * 1e3:.0f} ms "
        f"job latency\n"
        f"serial : {serial['elapsed']:.3f} s ({serial_rate:.1f} cases/s)\n"
        f"async  : {parallel['elapsed']:.3f} s ({async_rate:.1f} cases/s)\n"
        f"speedup: {speedup:.2f}x (workers={WORKERS})",
    )

    # a Figure-2-sized campaign, >= 3x faster on 4 workers
    assert serial["n_cases"] >= 40
    assert speedup >= 3.0, f"async speedup only {speedup:.2f}x"
    # ... with byte-identical observable output
    assert parallel["summary"] == serial["summary"]
    assert parallel["foms"] == serial["foms"]
    assert parallel["logs"] == serial["logs"]
    assert serial["logs"], "campaign produced no perflogs"
    # the probe campaign itself exercises the memo: one solve per
    # (spec, system), every other case a hit
    assert serial["cache"]["misses"] == len(PLATFORMS)

    _update_baseline(
        campaign_cases=serial["n_cases"],
        case_latency_seconds=CASE_LATENCY,
        workers=WORKERS,
        serial_seconds=round(serial["elapsed"], 4),
        async_seconds=round(parallel["elapsed"], 4),
        serial_cases_per_second=round(serial_rate, 2),
        async_cases_per_second=round(async_rate, 2),
        speedup=round(speedup, 2),
    )


#: repetitions per arm of the tracing-overhead measurement; the min
#: filters scheduler jitter out of a sub-second wall-clock comparison
OVERHEAD_REPS = 3
OVERHEAD_BUDGET = 0.05  # the ISSUE's <= 5% acceptance bound


def regenerate_trace_overhead(tmpdir):
    """Same 44-case campaign, with and without full observability."""

    def best_of(tag, trace=False):
        runs = []
        for rep in range(OVERHEAD_REPS):
            # perflogs in a sub dir; the trace alongside, never inside,
            # so the perflog-byte comparison stays apples to apples
            sub = os.path.join(tmpdir, f"{tag}-{rep}")
            kwargs = {}
            if trace:
                kwargs = {"trace": sub + "-trace.jsonl", "metrics": True}
            runs.append(_run_policy("serial", 1, sub, **kwargs))
        return min(runs, key=lambda r: r["elapsed"])

    untraced = best_of("plain")
    traced = best_of("traced", trace=True)
    return untraced, traced


def test_tracing_overhead_within_budget(once, tmp_path):
    """Satellite (f): full tracing + metrics on the 44-case campaign
    costs <= 5% wall clock and changes no observable output."""
    from repro.obs.trace import load_trace, validate_nesting

    untraced, traced = once(regenerate_trace_overhead, str(tmp_path))
    overhead = traced["elapsed"] / untraced["elapsed"] - 1.0
    emit(
        "Tracing overhead: instrumented vs plain campaign (serial)",
        f"campaign : {untraced['n_cases']} cases x "
        f"{CASE_LATENCY * 1e3:.0f} ms job latency\n"
        f"plain    : {untraced['elapsed']:.3f} s\n"
        f"traced   : {traced['elapsed']:.3f} s (spans + metrics + "
        f"crash-safe JSONL)\n"
        f"overhead : {overhead:+.2%} (budget {OVERHEAD_BUDGET:.0%})",
    )
    assert overhead <= OVERHEAD_BUDGET, (
        f"tracing overhead {overhead:+.2%} exceeds "
        f"{OVERHEAD_BUDGET:.0%} budget")
    # observability must be a pure observer: identical perflog bytes
    assert traced["foms"] == untraced["foms"]
    assert traced["logs"] == untraced["logs"]
    # ... while the trace artifact itself is complete and well-formed
    trace_path = traced["trace_path"]
    assert trace_path is not None
    _, spans, metrics = load_trace(trace_path)
    assert validate_nesting(spans) == []
    assert metrics["counters"]["cases.total"] == traced["n_cases"]
    assert len(spans) > 5 * traced["n_cases"]  # staged, not skeletal

    _update_baseline(
        trace_overhead_fraction=round(overhead, 4),
        trace_overhead_budget=OVERHEAD_BUDGET,
        traced_seconds=round(traced["elapsed"], 4),
        untraced_seconds=round(untraced["elapsed"], 4),
        trace_spans=len(spans),
    )


FIG2_PLATFORMS = [
    "isambard-macs:volta",
    "isambard-macs:cascadelake",
    "isambard",
    "noctua2",
    "archer2",
]
FIG2_ENVIRON_FOR = {"isambard-macs:cascadelake": ["gcc@12.1.0"]}
FIG2_REPETITIONS = 5


def regenerate_figure2_loop():
    """The Figure-2 campaign, regenerated five times on one executor."""
    ex = Executor()
    classes = load_suite("babelstream")
    reports = []
    for _ in range(FIG2_REPETITIONS):
        for platform in FIG2_PLATFORMS:
            reports.append(ex.run(
                classes, platform,
                environs=FIG2_ENVIRON_FOR.get(platform),
            ))
    return ex, reports


def test_figure2_campaign_cache_hit_rate(once):
    ex, reports = once(regenerate_figure2_loop)
    stats = ex.concretizer_cache.stats
    n_unique = len(ex.concretizer_cache)
    emit(
        "Figure-2 campaign concretization reuse (5 repetitions)",
        f"lookups: {stats.lookups}  misses: {stats.misses}  "
        f"hits: {stats.hits}\n"
        f"unique spec x system problems: {n_unique}\n"
        f"hit rate: {stats.hit_rate:.1%}",
    )
    # exactly one miss per unique spec x system (negative results too)
    assert stats.misses == n_unique
    assert stats.hit_rate >= 0.80
    # every repetition reproduces the same pass/fail pattern
    per_pass = len(reports) // FIG2_REPETITIONS
    first = [r.summary() for r in reports[:per_pass]]
    for rep in range(1, FIG2_REPETITIONS):
        window = reports[rep * per_pass:(rep + 1) * per_pass]
        assert [r.summary() for r in window] == first

    _update_baseline(
        figure2_repetitions=FIG2_REPETITIONS,
        figure2_unique_solves=n_unique,
        figure2_cache=stats.as_dict(),
    )
