"""Table 5: details of the processors of every system in the study."""

import pytest

from benchmarks.conftest import emit
from repro.systems.registry import get_system

# (system[:partition], processor-model-substring, clock GHz, cores/socket)
ROWS = [
    ("isambard", "ThunderX2", 2.5, 32),
    ("isambard-macs:cascadelake", "Xeon Gold 6230", 2.1, 20),
    ("isambard-macs:volta", "Tesla V100", None, None),
    ("cosma8", "EPYC 7H12", 2.6, 64),
    ("archer2", "EPYC 7742", 2.25, 64),
    ("csd3", "Xeon Platinum 8276", 2.2, 28),
    ("noctua2", "EPYC 7763", 2.45, 64),
]


def regenerate():
    lines = ["System                      Processor                          Core count"]
    rows = []
    for platform, *_ in ROWS:
        system, part = platform.partition(":")[::2]
        node = get_system(system).partition(part or None).node
        if node.gpu is not None and part == "volta":
            model = node.gpu.model
            cores = "-"
            clock = None
        else:
            proc = node.processor
            model = f"{proc.vendor} {proc.model} @ {proc.clock_ghz} GHz"
            cores = f"{proc.cores_per_socket} cores/socket, dual-socket"
            clock = proc.clock_ghz
        rows.append((model, clock, node))
        lines.append(f"{platform:<27} {model:<34} {cores}")
    return rows, "\n".join(lines)


def test_table5(once):
    rows, text = once(regenerate)
    emit("Table 5: processors used in this study", text)
    for (platform, substr, clock, cores), (model, clock_got, node) in zip(
        ROWS, rows
    ):
        assert substr in model, platform
        if clock is not None:
            assert clock_got == pytest.approx(clock)
            assert node.processor.cores_per_socket == cores
