"""Table 1: processors used for the BabelStream benchmarks.

| Vendor  | Processor    | Cores/CUs | Peak Memory Bandwidth (GB/s) |
|---------|--------------|-----------|------------------------------|
| Intel   | Cascade Lake | 2x20      | 2 x 140.784 = 282            |
| Marvell | ThunderX2    | 2x32      | 288                          |
| AMD     | Milan        | 2x64      | 2 x 204.8                    |
| NVIDIA  | V100         | 80        | 900                          |
"""

import pytest

from benchmarks.conftest import emit
from repro.systems.registry import get_system

ROWS = [
    # (platform, vendor, cores_label, peak GB/s)
    ("isambard-macs:cascadelake", "Intel", "2x20", 2 * 140.784),
    ("isambard", "Marvell", "2x32", 288.0),
    ("noctua2", "AMD", "2x64", 2 * 204.8),
    ("isambard-macs:volta", "NVIDIA", "80", 900.0),
]


def regenerate():
    lines = ["Vendor   Processor                        Cores/CUs  Peak BW (GB/s)"]
    rows = []
    for platform, vendor, cores, peak in ROWS:
        system, part = platform.partition(":")[::2]
        node = get_system(system).partition(part or None).node
        if node.gpu is not None:
            label = node.gpu.model
            cores_got = str(node.gpu.compute_units)
        else:
            label = node.processor.model
            cores_got = f"{node.sockets}x{node.processor.cores_per_socket}"
        rows.append((vendor, label, cores_got, node.peak_bandwidth_gbs))
        lines.append(
            f"{vendor:<8} {label:<32} {cores_got:<10} {node.peak_bandwidth_gbs:.3f}"
        )
    return rows, "\n".join(lines)


def test_table1(once):
    rows, text = once(regenerate)
    emit("Table 1: BabelStream processors", text)
    for (platform, vendor, cores, peak), (v_got, _, c_got, p_got) in zip(
        ROWS, rows
    ):
        assert v_got == vendor
        assert c_got == cores
        assert p_got == pytest.approx(peak)
