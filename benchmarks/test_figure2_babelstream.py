"""Figure 2: BabelStream Triad efficiency across programming models and
platforms, with impossible combinations as explicit '*' boxes.

Shape criteria (DESIGN.md):
* CUDA and OpenCL within a few % of peak on the V100;
* OpenMP runs on every platform, with Intel/AMD CPUs utilised better
  than ThunderX2;
* std-ranges far below std-data/std-indices (single-threaded);
* TBB degraded on Milan relative to Cascade Lake (the paderborn
  disparity) and absent ('*') on ThunderX2;
* CUDA absent on all CPUs.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.efficiency import architectural_efficiency
from repro.machine.progmodel import PROGRAMMING_MODELS
from repro.postprocess.plotting import heatmap_ascii
from repro.runner.cli import load_suite
from repro.runner.executor import Executor

PLATFORMS = [
    "isambard-macs:volta",
    "isambard-macs:cascadelake",
    "isambard",
    "noctua2",
    "archer2",
]

#: The Figure 2 caption: "GCC v9.2.0 for GPU tests and GCC v12.1.0
#: compiler" -- the CPU runs on Isambard-MACS use the newer module (the
#: system default gcc 9.2.0 cannot even build std-ranges).
ENVIRON_FOR = {"isambard-macs:cascadelake": ["gcc@12.1.0"]}


def regenerate():
    executor = Executor()
    classes = load_suite("babelstream")
    cells = {model: {} for model in PROGRAMMING_MODELS}
    for platform in PLATFORMS:
        report = executor.run(
            classes, platform, environs=ENVIRON_FOR.get(platform)
        )
        for r in report.results:
            model = r.case.test.model
            if r.passed:
                peak = r.case.partition.node.peak_bandwidth_gbs
                cells[model][platform] = architectural_efficiency(
                    r.perfvars["Triad"][0], peak
                )
            else:
                cells[model][platform] = None
    return cells


def test_figure2(once):
    cells = once(regenerate)
    emit(
        "Figure 2: Triad bandwidth / theoretical peak",
        heatmap_ascii(list(PROGRAMMING_MODELS), PLATFORMS, cells),
    )
    volta = "isambard-macs:volta"
    cl = "isambard-macs:cascadelake"

    # GPU-native models near peak on the V100
    assert cells["cuda"][volta] > 0.88
    assert cells["ocl"][volta] > 0.88
    # OpenMP everywhere; x86 beats ThunderX2
    for platform in PLATFORMS:
        assert cells["omp"][platform] is not None, platform
    assert cells["omp"][cl] > cells["omp"]["isambard"]
    assert cells["omp"]["noctua2"] > cells["omp"]["isambard"]
    # std-ranges single-threaded: an order of magnitude below std-data
    assert cells["std-data"][cl] / cells["std-ranges"][cl] > 5
    # TBB: fine on Cascade Lake, degraded on Milan, absent on TX2
    assert cells["tbb"][cl] > 1.5 * cells["tbb"]["noctua2"]
    assert cells["tbb"]["isambard"] is None
    # CUDA absent on every CPU platform
    for platform in PLATFORMS[1:]:
        assert cells["cuda"][platform] is None, platform
    # every cell is either a valid efficiency or an explicit '*'
    for model, row in cells.items():
        for platform, value in row.items():
            assert value is None or 0 < value <= 1.0, (model, platform)
