"""Table 4: HPGMG-FV Figures of Merit (10^6 DOF/s) on four systems.

| System                  | l0     | l1    | l2    |
|-------------------------|--------|-------|-------|
| ARCHER2 (Rome)          | 95.36  | 83.43 | 62.18 |
| COSMA8 (Rome)           | 81.67  | 72.96 | 75.09 |
| CSD3 (Cascade Lake)     | 126.10 | 94.39 | 49.40 |
| Isambard (Cascade Lake) | 30.59  | 25.55 | 17.55 |

Shape criteria: CSD3 fastest at l0 and Isambard-MACS slowest (~4x apart
on the same ISA -- the paper's "specifics of the platform" point);
COSMA8's row nearly flat with l2 >~ l1; every other row decays toward l2.
"""

import pytest

from benchmarks.conftest import emit
from repro.core.workflow import BenchmarkingWorkflow
from repro.runner.cli import load_suite

PLATFORMS = {
    "archer2": "ARCHER2 (Rome)",
    "cosma8": "COSMA8 (Rome)",
    "csd3": "CSD3 (Cascade Lake)",
    "isambard-macs:cascadelake": "Isambard (Cascade Lake)",
}
PAPER = {
    "archer2": (95.36, 83.43, 62.18),
    "cosma8": (81.67, 72.96, 75.09),
    "csd3": (126.10, 94.39, 49.40),
    "isambard-macs:cascadelake": (30.59, 25.55, 17.55),
}


def regenerate():
    workflow = BenchmarkingWorkflow(
        load_suite("hpgmg"), list(PLATFORMS), qos="standard"
    )
    result = workflow.run()
    table = {}
    for platform in PLATFORMS:
        report = result.reports[platform]
        r = report.results[0]
        assert r.passed, (platform, r.failure_reason)
        table[platform] = tuple(
            r.perfvars[f"l{i}"][0] for i in range(3)
        )
    return table


def test_table4(once):
    table = once(regenerate)
    lines = ["System                    l0        l1        l2"]
    for platform, label in PLATFORMS.items():
        l0, l1, l2 = table[platform]
        lines.append(f"{label:<25} {l0:8.2f}  {l1:8.2f}  {l2:8.2f}")
    emit("Table 4: HPGMG-FV FOMs (10^6 DOF/s)", "\n".join(lines))

    for platform, paper in PAPER.items():
        got = table[platform]
        for level in range(3):
            assert got[level] == pytest.approx(
                paper[level], rel=0.08
            ), (platform, level)

    # cross-system shape
    l0 = {p: v[0] for p, v in table.items()}
    assert l0["csd3"] == max(l0.values())
    assert l0["isambard-macs:cascadelake"] == min(l0.values())
    assert l0["csd3"] / l0["isambard-macs:cascadelake"] > 3.5
    # per-level shape: COSMA8 nearly flat, others decay
    assert table["cosma8"][2] > table["cosma8"][1] * 0.9
    for platform in ("archer2", "csd3", "isambard-macs:cascadelake"):
        assert table[platform][0] > table[platform][1] > table[platform][2]
