"""Table 2: HPCG variants (GFlop/s) on Cascade Lake and AMD Rome, plus
the Eq. (1) efficiency ratios discussed in Section 3.2.

Paper values:

| Variant          | Intel Cascade Lake | AMD Rome |
|------------------|--------------------|----------|
| Original (CSR)   | 24.0               | 39.2     |
| Intel-avx2 (CSR) | 39.0               | N/A      |
| Matrix-free      | 51.0               | 124.2    |
| LFRic            | 18.5               | 56.0     |

E_I = 1.625, E_A(CL) = 2.125, E_A(Rome) = 3.168.
"""

import pytest

from benchmarks.conftest import emit
from repro.analysis.efficiency import variant_efficiency
from repro.core.workflow import BenchmarkingWorkflow
from repro.runner.cli import load_suite

PLATFORMS = ["isambard-macs:cascadelake", "archer2"]
PAPER = {
    # test name: (Cascade Lake, Rome); None = N/A
    "HPCG_Original": (24.0, 39.2),
    "HPCG_Intel": (39.0, None),
    "HPCG_MatrixFree": (51.0, 124.2),
    "HPCG_LFRic": (18.5, 56.0),
}


def regenerate():
    workflow = BenchmarkingWorkflow(load_suite("hpcg"), PLATFORMS)
    result = workflow.run()
    table = {}
    for name in PAPER:
        row = []
        for platform in PLATFORMS:
            cell = None
            for r in result.reports[platform].results:
                if r.case.test.name == name and r.passed:
                    cell = r.perfvars["gflops"][0]
            row.append(cell)
        table[name] = tuple(row)
    return table


def test_table2(once):
    table = once(regenerate)
    lines = ["Variant           Cascade Lake      AMD Rome"]
    for name, (cl, rome) in table.items():
        lines.append(
            f"{name:<17} {cl if cl is None else f'{cl:12.1f}'}"
            f"      {rome if rome is None else f'{rome:.1f}'}"
        )
    emit("Table 2: HPCG variants (GFlop/s)", "\n".join(lines))

    for name, (paper_cl, paper_rome) in PAPER.items():
        got_cl, got_rome = table[name]
        assert got_cl == pytest.approx(paper_cl, rel=0.05), name
        if paper_rome is None:
            assert got_rome is None, f"{name} must be N/A on Rome (MKL)"
        else:
            assert got_rome == pytest.approx(paper_rome, rel=0.05), name

    # Eq. (1): implementation vs algorithm gains
    e_i = variant_efficiency(table["HPCG_Intel"][0], table["HPCG_Original"][0])
    e_a_cl = variant_efficiency(
        table["HPCG_MatrixFree"][0], table["HPCG_Original"][0]
    )
    e_a_rome = variant_efficiency(
        table["HPCG_MatrixFree"][1], table["HPCG_Original"][1]
    )
    emit(
        "Eq. (1) efficiencies",
        f"E_I = {e_i:.3f} (paper 1.625)\n"
        f"E_A (Cascade Lake) = {e_a_cl:.3f} (paper 2.125)\n"
        f"E_A (Rome) = {e_a_rome:.3f} (paper 3.168)",
    )
    assert e_i == pytest.approx(1.625, rel=0.05)
    assert e_a_cl == pytest.approx(2.125, rel=0.05)
    assert e_a_rome == pytest.approx(3.168, rel=0.05)
    # the paper's conclusion: the algorithmic gain exceeds the
    # implementation gain, more so on Rome
    assert e_a_cl > e_i
    assert e_a_rome > e_a_cl
