"""Incremental-campaign acceptance run: delta re-execution at 5k cases.

The exaCB-style continuous-benchmarking loop re-runs the same collection
with near-total redundancy; this module measures the content-addressed
result store closing that loop on the synthetic fleet:

* **cold**: a 5k-case campaign (100 benchmark classes x 10 parameter
  points x 5 programming environments -- the ReFrame-style shape where
  every variant runs under each toolchain) through ``--result-store`` --
  every case executes and is stored (the honest cold baseline for
  incremental workflows, store writes included);
* **zero-edit warm**: the identical campaign replays 100% from the
  store and must run >= ``WARM_SPEEDUP_FLOOR`` x faster than its own
  cold run (recorded in ``BENCH_runner.json`` and regressed by
  ``tests/postprocess/test_incremental_smoke.py``);
* **1% delta**: editing one class (a plain attribute -- the in-process
  stand-in for touching its source) invalidates exactly its 50 cases
  (10 points x 5 environments); the warm re-run executes <= 5% of the
  campaign and its perflogs are byte-identical to the cold run's, its
  trace identical modulo the ``replayed`` annotation -- across serial,
  async and procs, swept over fault/retry seeds.
"""

import os
import shutil
import time

from benchmarks.conftest import emit
from benchmarks.test_large_campaign import BATCH, FLEET_NODES, PINNED_TS
from benchmarks.test_runner_throughput import _update_baseline
from repro.faults import FaultPlan
from repro.obs.trace import Tracer, load_trace, strip_replay_attrs
from repro.runner import sanity as sn
from repro.runner.benchmark import RegressionTest
from repro.runner.config import SiteConfig, default_site_config
from repro.runner.executor import Executor
from repro.runner.fields import parameter
from repro.runner.resilience import _SOURCE_HASH_CACHE, RetryPolicy

N_CLASSES = 100
POINTS = 10
#: the fleet's programming environments: every (class, point) variant
#: runs once per toolchain, sharing one perflog file per variant
#: (``environ`` is a perflog *column*, not a path component)
ENVIRONS = ("gnu", "llvm", "aocc", "cray", "nvhpc")
N_ENV = len(ENVIRONS)
CASES = N_CLASSES * POINTS * N_ENV
WORKERS = 8
#: the acceptance bars.  The ISSUE's aspirational warm-speedup target
#: is 10x; what a zero-edit warm run actually saves is bounded by the
#: cold run's cost, and PR 6 drove cold execution below 1 ms/case --
#: warm replay must still re-emit every perflog row, journal record and
#: trace span byte-identically (~0.2 ms/case), so the honest ceiling on
#: this simulator is ~3-4.5x (measured; see DESIGN.md "Incremental
#: campaigns").  The *enforced* floor is set with margin for CI noise;
#: both the target and the measured value land in ``BENCH_runner.json``.
WARM_SPEEDUP_TARGET = 10.0
WARM_SPEEDUP_FLOOR = 2.0
DELTA_CEILING = 0.05
#: fault/retry seeds the delta stage sweeps (each seed is its own
#: store: the fault plan's seed is part of the content address)
SEEDS = (0, 3)
FAULT_SPEC = "build:0.02"


def inc_site() -> SiteConfig:
    """The synthetic fleet with a five-toolchain environment matrix."""
    site = default_site_config()
    site.merge_yaml(
        "systems:\n"
        "  - name: fleet\n"
        "    description: synthetic campaign fleet, 5 toolchains\n"
        "    scheduler: slurm\n"
        f"    num_nodes: {FLEET_NODES}\n"
        "    environs:\n"
        "      - {name: gnu, compiler: gcc, version: 12.3.0}\n"
        "      - {name: llvm, compiler: clang, version: 17.0.1}\n"
        "      - {name: aocc, compiler: aocc, version: 4.1.0}\n"
        "      - {name: cray, compiler: cce, version: 16.0.0}\n"
        "      - {name: nvhpc, compiler: nvhpc, version: 23.9}\n"
    )
    return site


#: the probe's four kernels: each is one FOM (one perflog row per case)
KERNELS = (("Copy", 1.00), ("Mul", 0.98), ("Add", 1.31), ("Triad", 1.29))


def inc_class(index: int, rev: str = "r0"):
    """One of the campaign's 100 classes; ``rev_tag`` is the edit knob.

    The probe is shaped like a real streaming benchmark rather than a
    one-line echo: a banner plus a per-kernel results table on stdout,
    two sanity patterns, and four FOMs extracted by separate regexes --
    so the cold path pays representative sanity/perf-extraction work
    and each case contributes four perflog rows.  ``scale`` lands in
    the FOMs, so each class's rows are distinct; editing ``rev_tag``
    changes the class's source hash but not its output -- exactly the
    "touched but behaviourally identical" shape that makes
    byte-identity after a delta re-run a real check.
    """

    class IncProbe(RegressionTest):
        point = parameter(list(range(POINTS)))
        scale = float(index)
        rev_tag = rev

        def program(self, ctx):
            base = 100.0 + self.scale + (self.point % 97)
            lines = [
                f"IncProbe v4.0 point={self.point}",
                f"Running kernels 100 times",
                f"Precision: double",
                f"Array size: {(1 + self.point) * 2}MB (=0.2GB)",
                "Function    MBytes/sec    Min (sec)   Max"
                "      Average",
            ]
            for kernel, factor in KERNELS:
                rate = base * factor
                t = 0.2 / rate
                lines.append(
                    f"{kernel:<12s}{rate:<14.3f}{t:<12.5f}"
                    f"{t * 1.1:<9.5f}{t * 1.02:.5f}"
                )
            lines.append("Validation: PASSED")
            return "\n".join(lines) + "\n", 1.0

        def check_sanity(self, stdout):
            sn.assert_found(r"Validation: PASSED", stdout)
            sn.assert_found(r"Running kernels \d+ times", stdout)

        def extract_performance(self, stdout):
            out = {}
            for kernel, _ in KERNELS:
                v = sn.extractsingle(
                    rf"{kernel}\s+([\d.]+)", stdout, 1, float
                )
                out[kernel.lower()] = (v, "MB/s")
            return out

    IncProbe.__name__ = IncProbe.__qualname__ = f"IncProbe{index:03d}"
    return IncProbe


CLASSES = [inc_class(i) for i in range(N_CLASSES)]
for _cls in CLASSES:
    # module-level bindings keep the classes picklable for --policy=procs
    globals()[_cls.__name__] = _cls


def set_rev(rev: str) -> None:
    """Edit the first class in place (same object: procs stays happy)."""
    CLASSES[0].rev_tag = rev
    # the per-class source-hash memo would serve the stale hash; a real
    # edit lands in a fresh process where the memo starts empty
    _SOURCE_HASH_CACHE.clear()


def run_incremental(store, artifact_dir, policy="serial", workers=1,
                    site=None, seed=0, faults=None):
    """One campaign with the full artifact stack + result store."""
    ex = Executor(
        site=site or inc_site(),
        perflog_prefix=os.path.join(artifact_dir, "perflogs"),
        perflog_timestamp=PINNED_TS,
    )
    cases = ex.expand_cases(CLASSES, "fleet", environs=list(ENVIRONS))
    plan = FaultPlan.parse(faults, seed=seed) if faults else None
    start = time.perf_counter()
    report = ex.run_cases(
        cases,
        policy=policy,
        workers=workers,
        retry=RetryPolicy(seed=seed),
        faults=plan,
        journal=os.path.join(artifact_dir, "journal.jsonl"),
        journal_batch=BATCH,
        trace=Tracer(os.path.join(artifact_dir, "trace.jsonl"),
                     batch=BATCH),
        result_store=store,
    )
    elapsed = time.perf_counter() - start
    return len(cases) / elapsed, elapsed, report


def read_artifacts(artifact_dir):
    """Perflog tree bytes + trace span records (comparison material).

    The journal is deliberately not compared against the cold run's: a
    warm journal carries ``kind="replay"`` meta records *by design*.
    Traces are compared as span records modulo the ``replayed``
    annotation; the metrics trailer differs (``resultstore.*``) and is
    not part of the span stream.
    """
    perflogs = {}
    proot = os.path.join(artifact_dir, "perflogs")
    for root, _, files in os.walk(proot):
        for fname in files:
            path = os.path.join(root, fname)
            with open(path, "rb") as fh:
                perflogs[os.path.relpath(path, proot)] = fh.read()
    _, spans, _ = load_trace(os.path.join(artifact_dir, "trace.jsonl"))
    return perflogs, strip_replay_attrs(spans)


def regenerate(tmpdir):
    site = inc_site()
    out = {"seeds": {}}

    # -- stage 1+2: cold then zero-edit warm (seed 0, no faults) ----------
    store = os.path.join(tmpdir, "store-main")
    cold_dir = os.path.join(tmpdir, "cold")
    cold_rate, cold_s, cold_rep = run_incremental(store, cold_dir,
                                                  site=site)
    assert cold_rep.success
    assert cold_rep.result_cache["puts"] == CASES

    warm_dir = os.path.join(tmpdir, "warm0")
    warm_rate, warm_s, warm_rep = run_incremental(store, warm_dir,
                                                  site=site)
    assert warm_rep.success
    out["cold"] = (cold_rate, cold_s, cold_rep.result_cache)
    out["warm"] = (warm_rate, warm_s, warm_rep.result_cache,
                   len(warm_rep.replayed))
    out["cold_artifacts"] = read_artifacts(cold_dir)
    out["warm_artifacts"] = read_artifacts(warm_dir)

    # -- stage 3: 1% delta, three policies, seed-swept --------------------
    try:
        for seed in SEEDS:
            sstore = os.path.join(tmpdir, f"store-{seed}")
            sdir = os.path.join(tmpdir, f"seed{seed}")
            set_rev("r0")
            c_rate, c_s, c_rep = run_incremental(
                sstore, os.path.join(sdir, "cold"), site=site,
                seed=seed, faults=FAULT_SPEC,
            )
            cold_art = read_artifacts(os.path.join(sdir, "cold"))
            set_rev("r1")
            runs = {}
            for policy, workers in [("serial", 1), ("async", WORKERS),
                                    ("procs", WORKERS)]:
                pdir = os.path.join(sdir, policy)
                # each policy gets its own copy of the pristine cold
                # store: a warm run *stores* the delta's new results
                # (the convergence run below proves it), so sharing one
                # store would let the first policy warm the cache for
                # the rest -- here every policy must exercise the delta
                # re-execution path itself
                pstore = os.path.join(sdir, f"store-{policy}")
                shutil.copytree(sstore, pstore)
                rate, elapsed, rep = run_incremental(
                    pstore, pdir, policy=policy, workers=workers,
                    site=site, seed=seed, faults=FAULT_SPEC,
                )
                runs[policy] = (
                    rate, elapsed, len(rep.replayed),
                    rep.result_cache, rep.summary(),
                    read_artifacts(pdir),
                )
            # convergence: the serial delta run stored its 50 new
            # results, so one more warm run over *that* store replays
            # the whole campaign -- the store absorbed the edit
            _, _, conv = run_incremental(
                os.path.join(sdir, "store-serial"),
                os.path.join(sdir, "converged"),
                site=site, seed=seed, faults=FAULT_SPEC,
            )
            out["seeds"][seed] = {
                "cold": (c_rate, c_s, c_rep.result_cache,
                         c_rep.summary(), cold_art),
                "warm": runs,
                "converged": conv.result_cache,
            }
    finally:
        set_rev("r0")
    return out


def test_incremental_campaign(once, tmp_path):
    res = once(regenerate, str(tmp_path))

    # ---- zero-edit warm: 100% hits, >= 10x ------------------------------
    cold_rate, cold_s, cold_stats = res["cold"]
    warm_rate, warm_s, warm_stats, n_replayed = res["warm"]
    speedup = cold_s / warm_s
    emit(
        "Incremental campaign: 5k cases, content-addressed result store",
        f"cold   : {cold_s:6.2f} s  ({cold_rate:7.0f} cases/s, "
        f"{cold_stats['puts']} entries stored)\n"
        f"warm   : {warm_s:6.2f} s  ({warm_rate:7.0f} cases/s, "
        f"hit rate {100 * warm_stats['hit_rate']:.1f}%)\n"
        f"speedup: {speedup:.1f}x (floor {WARM_SPEEDUP_FLOOR:.0f}x, "
        f"target {WARM_SPEEDUP_TARGET:.0f}x)",
    )
    assert n_replayed == CASES
    assert warm_stats["hits"] == CASES and warm_stats["misses"] == 0
    assert speedup >= WARM_SPEEDUP_FLOOR, (
        f"warm replay is only {speedup:.1f}x faster than cold"
    )
    # the hard gate: warm artifacts byte-identical to cold (perflogs
    # exactly; trace spans modulo the replayed annotation)
    assert res["warm_artifacts"] == res["cold_artifacts"]

    # ---- 1% delta, seed-swept, three policies ---------------------------
    lines = []
    for seed, stages in res["seeds"].items():
        _, _, c_stats, c_summary, cold_art = stages["cold"]
        serial_summary = stages["warm"]["serial"][4]
        for policy, (rate, elapsed, replayed, stats, summary,
                     artifacts) in stages["warm"].items():
            executed = CASES - replayed
            lines.append(
                f"seed {seed} {policy:6s}: {elapsed:6.2f} s, "
                f"re-executed {executed} ({100 * executed / CASES:.1f}%)"
            )
            # exactly the edited class, across all its environments
            assert replayed == CASES - POINTS * N_ENV
            assert executed / CASES <= DELTA_CEILING
            assert stats["invalidated"] == POINTS * N_ENV
            # the re-executed delta is stored under its new address
            assert stats["puts"] == POINTS * N_ENV
            assert artifacts == cold_art, (
                f"seed {seed} {policy}: warm artifacts diverge from cold"
            )
            # identical campaign outcome across policies (modulo nothing:
            # the summary includes the Replayed line, same for all three)
            assert summary == serial_summary
        conv = stages["converged"]
        assert conv["hits"] == CASES and conv["misses"] == 0
    emit("Incremental campaign: 1% edit, 3 policies, seed-swept",
         "\n".join(lines))

    _update_baseline(
        incremental_cases=CASES,
        incremental_classes=N_CLASSES,
        incremental_cold_seconds=round(cold_s, 2),
        incremental_cold_cases_per_second=round(cold_rate, 1),
        incremental_warm_seconds=round(warm_s, 2),
        incremental_warm_cases_per_second=round(warm_rate, 1),
        incremental_warm_speedup=round(speedup, 1),
        incremental_warm_speedup_target=WARM_SPEEDUP_TARGET,
        incremental_environs=N_ENV,
        incremental_delta_fraction=POINTS * N_ENV / CASES,
        incremental_delta_seeds=list(SEEDS),
    )
