"""Post-processing throughput: vectorized ingest + incremental store.

Three claims from the ISSUE this PR implements, measured end to end on a
synthetic ~1M-row multi-platform campaign (100 perflogs: 5 systems x 2
partitions x 10 tests):

1. **Vectorized ingest**: the block-wise columnar parser assimilates the
   campaign >= 5x faster (rows/sec) than the retained row-at-a-time
   reference reader (:mod:`repro.postprocess.reference`), with
   bit-identical frames.
2. **Incremental re-ingest**: regrowing every log five times and
   re-reading through a :class:`~repro.postprocess.store.PerflogStore`
   parses only the appended bytes -- >= 90% manifest hit rate and >= 90%
   byte reuse over the five regrowths, with the incremental frame
   identical to a fresh full parse.
3. **Groupby latency**: the factorize + argsort kernel aggregates the
   million-row frame faster than the dict-per-row-tuple reference while
   producing bit-identical records.

The measured numbers are written to ``BENCH_postprocess.json`` at the
repo root; ``tests/postprocess/test_throughput_smoke.py`` re-runs a
reduced-size version of the same measurements inside the tier-1 budget
and fails if ingest throughput regresses >2x against these baselines.
"""

import json
import os
import time

import numpy as np

from benchmarks.conftest import emit
from repro.postprocess.dataframe import DataFrame
from repro.postprocess.perflog_reader import read_perflogs
from repro.postprocess.reference import (
    reference_concat,
    reference_groupby,
    reference_read_perflog,
)
from repro.postprocess.store import PerflogStore
from repro.runner.perflog import PERFLOG_FIELDS

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "..",
                             "BENCH_postprocess.json")

#: 5 systems x 2 partitions x 10 tests = 100 perflogs
CAMPAIGN_SYSTEMS = [
    ("archer2", "compute"),
    ("csd3", "icelake"),
    ("isambard", "a64fx"),
    ("noctua2", "gpu"),
    ("cirrus", "standard"),
]
CAMPAIGN_TESTS = 10
ROWS_PER_FILE = 10_000          # -> 1M rows total
WORKERS = 4
REGROWTHS = 5
GROWTH_ROWS = 200               # appended per file per regrowth

_HEADER = "|".join(PERFLOG_FIELDS)


def synth_rows(system, partition, test, n, seed, start=0):
    """Deterministic perflog records for one (system, partition, test)."""
    rng = np.random.default_rng(seed + start)
    values = rng.uniform(10.0, 400.0, size=n)
    tasks = rng.choice([1, 8, 64, 128], size=n)
    return [
        f"2026-01-01T{(start + i) % 24:02d}:{(start + i) % 60:02d}:00"
        f"|repro-1.0.0|{test}|{system}|{partition}|gcc@12.1.0"
        f"|stream@5.10|{tasks[i]}|Triad|{values[i]:.4f}|GB/s|pass"
        for i in range(n)
    ]


def make_campaign(root, rows_per_file, n_tests=CAMPAIGN_TESTS):
    """Write the synthetic multi-platform campaign; returns file specs."""
    os.makedirs(root, exist_ok=True)
    specs = []
    seed = 0
    for system, base_part in CAMPAIGN_SYSTEMS:
        for partition in (base_part, base_part + "-highmem"):
            for t in range(n_tests):
                test = f"BabelStream_{t}"
                path = os.path.join(
                    root, f"{system}_{partition}_{test}.log"
                )
                rows = synth_rows(system, partition, test,
                                  rows_per_file, seed)
                with open(path, "w", encoding="utf-8") as fh:
                    fh.write(_HEADER + "\n")
                    fh.write("\n".join(rows) + "\n")
                specs.append((path, system, partition, test, seed))
                seed += 1
    return specs


def grow_campaign(specs, n_rows, generation):
    """Append ``n_rows`` records to every campaign log (no header)."""
    for path, system, partition, test, seed in specs:
        rows = synth_rows(system, partition, test, n_rows, seed,
                          start=1_000_000 + generation * n_rows)
        with open(path, "a", encoding="utf-8") as fh:
            fh.write("\n".join(rows) + "\n")


def prewarm(specs):
    """Touch every byte once so timings compare parsers, not page cache."""
    for path, *_ in specs:
        with open(path, "rb") as fh:
            fh.read()


def timed(fn, repeats=2):
    """``(best_seconds, result)`` over ``repeats`` runs.

    Min-of-N is the standard throughput methodology here: the first run
    of a million-row parse pays one-off costs (heap growth, first-touch
    page faults on ~10^8 bytes of fresh object memory) that say nothing
    about parser throughput and would swamp the comparison.
    """
    best, result = float("inf"), None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def assert_frames_identical(a: DataFrame, b: DataFrame) -> None:
    assert a.columns == b.columns
    for name in a.columns:
        assert a[name].dtype == b[name].dtype, name
        assert len(a[name]) == len(b[name]), name
        assert (a[name] == b[name]).all(), name


def _update_baseline(**entries):
    doc = {}
    if os.path.exists(BASELINE_PATH):
        with open(BASELINE_PATH, encoding="utf-8") as fh:
            doc = json.load(fh)
    doc.update(entries)
    with open(BASELINE_PATH, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


# --------------------------------------------------------------------------
# 1. vectorized ingest vs the row-at-a-time reference reader
# --------------------------------------------------------------------------

def regenerate_ingest(root):
    specs = make_campaign(root, ROWS_PER_FILE)
    prewarm(specs)
    paths = [path for path, *_ in specs]
    # untimed warm-up: grow the heap once so neither parser is charged
    # for first-touch page faults on ~10^8 bytes of object memory
    read_perflogs(root)

    # both parsers assimilate the *same* full campaign: the reference
    # reader's dict-per-row materialization is exactly what collapses at
    # this scale, so sampling a subset would understate its true cost
    ref_elapsed, ref_frame = timed(lambda: reference_concat(
        [reference_read_perflog(p) for p in sorted(paths)]
    ))
    vec_elapsed, frame = timed(lambda: read_perflogs(root))

    # bit-identity of the full assimilated campaign
    assert_frames_identical(frame, ref_frame)
    del ref_frame

    mt_elapsed, frame_mt = timed(
        lambda: read_perflogs(root, workers=WORKERS)
    )
    assert_frames_identical(frame, frame_mt)
    return {
        "n_files": len(specs),
        "n_rows": len(frame),
        "ref_elapsed": ref_elapsed,
        "vec_elapsed": vec_elapsed,
        "mt_elapsed": mt_elapsed,
    }


def test_vectorized_ingest_speedup(once, tmp_path):
    r = once(regenerate_ingest, str(tmp_path / "campaign"))
    ref_rate = r["n_rows"] / r["ref_elapsed"]
    vec_rate = r["n_rows"] / r["vec_elapsed"]
    mt_rate = r["n_rows"] / r["mt_elapsed"]
    speedup = vec_rate / ref_rate
    emit(
        "Perflog ingest: vectorized block parser vs row-at-a-time reader",
        f"campaign: {r['n_rows']:,} rows across {r['n_files']} perflogs\n"
        f"reference : {ref_rate:,.0f} rows/s\n"
        f"vectorized: {vec_rate:,.0f} rows/s (serial)\n"
        f"vectorized: {mt_rate:,.0f} rows/s (workers={WORKERS})\n"
        f"speedup   : {speedup:.1f}x",
    )
    assert r["n_rows"] >= 900_000, "campaign is not ~1M rows"
    assert speedup >= 5.0, f"ingest speedup only {speedup:.2f}x"
    _update_baseline(
        campaign_rows=r["n_rows"],
        campaign_files=r["n_files"],
        ingest_reference_rows_per_second=round(ref_rate),
        ingest_vectorized_rows_per_second=round(vec_rate),
        ingest_vectorized_mt_rows_per_second=round(mt_rate),
        ingest_speedup=round(speedup, 2),
        ingest_workers=WORKERS,
    )


# --------------------------------------------------------------------------
# 2. cold vs warm incremental re-ingest through the manifest store
# --------------------------------------------------------------------------

def regenerate_store_regrowth(root):
    specs = make_campaign(root, ROWS_PER_FILE)
    prewarm(specs)
    store = PerflogStore()

    start = time.perf_counter()
    cold = read_perflogs(root, store=store)
    cold_elapsed = time.perf_counter() - start
    cold_rows = len(cold)
    snap = store.stats.as_dict()

    warm_elapsed = 0.0
    frame = cold
    for generation in range(REGROWTHS):
        grow_campaign(specs, GROWTH_ROWS, generation)
        start = time.perf_counter()
        frame = read_perflogs(root, store=store)
        warm_elapsed += time.perf_counter() - start

    # the incremental result must equal a fresh full parse
    assert_frames_identical(frame, read_perflogs(root))
    return {
        "n_files": len(specs),
        "cold_rows": cold_rows,
        "final_rows": len(frame),
        "cold_elapsed": cold_elapsed,
        "warm_elapsed": warm_elapsed,
        "snap": snap,
        "stats": store.stats,
    }


def test_warm_incremental_reingest(once, tmp_path):
    r = once(regenerate_store_regrowth, str(tmp_path / "campaign"))
    stats, snap = r["stats"], r["snap"]
    warm_lookups = stats.lookups - (snap["hits"] + snap["misses"])
    warm_hits = stats.hits - snap["hits"]
    warm_hit_rate = warm_hits / warm_lookups
    warm_parsed = stats.bytes_parsed - snap["bytes_parsed"]
    warm_reused = stats.bytes_reused - snap["bytes_reused"]
    warm_byte_reuse = warm_reused / (warm_parsed + warm_reused)
    appended_rows = r["final_rows"] - r["cold_rows"]
    cold_rate = r["cold_rows"] / r["cold_elapsed"]
    # each warm pass re-assembles the full campaign frame:
    warm_rate = (r["final_rows"] * REGROWTHS) / r["warm_elapsed"]
    emit(
        "Incremental re-ingest: 5 regrowths through the manifest store",
        f"campaign: {r['cold_rows']:,} rows cold, +{appended_rows:,} "
        f"appended over {REGROWTHS} regrowths x {r['n_files']} files\n"
        f"cold : {r['cold_elapsed']:.3f} s ({cold_rate:,.0f} rows/s)\n"
        f"warm : {r['warm_elapsed']:.3f} s over {REGROWTHS} full re-reads "
        f"({warm_rate:,.0f} rows/s effective)\n"
        f"manifest: {warm_hits}/{warm_lookups} warm hits "
        f"({warm_hit_rate:.1%}), warm byte reuse {warm_byte_reuse:.1%}",
    )
    # one full parse per (file, offset): the cold pass pays every miss
    assert snap["misses"] == r["n_files"]
    assert stats.misses == snap["misses"], "regrowth caused a re-parse"
    assert stats.invalidations == 0
    assert warm_hit_rate >= 0.90
    assert warm_byte_reuse >= 0.90, "warm re-reads re-parsed old bytes"
    _update_baseline(
        store_regrowths=REGROWTHS,
        store_growth_rows=GROWTH_ROWS * r["n_files"],
        store_cold_rows_per_second=round(cold_rate),
        store_warm_rows_per_second=round(warm_rate),
        store_warm_hit_rate=round(warm_hit_rate, 4),
        store_warm_byte_reuse_rate=round(warm_byte_reuse, 4),
        store_warm_speedup=round(warm_rate / cold_rate, 2),
    )


# --------------------------------------------------------------------------
# smoke scale: the same measurements, sized for the tier-1 time budget
# --------------------------------------------------------------------------

SMOKE_ROWS_PER_FILE = 2_000
SMOKE_TESTS = 2                 # -> 20 files, 40k rows


def measure_ingest_smoke(root):
    """Reduced-size ingest + store measurement shared with the tier-1
    smoke gate (``tests/postprocess/test_throughput_smoke.py``)."""
    specs = make_campaign(root, SMOKE_ROWS_PER_FILE, n_tests=SMOKE_TESTS)
    prewarm(specs)
    paths = sorted(path for path, *_ in specs)
    read_perflogs(root)  # untimed heap warm-up

    ref_elapsed, ref_frame = timed(lambda: reference_concat(
        [reference_read_perflog(p) for p in paths]
    ))
    vec_elapsed, frame = timed(lambda: read_perflogs(root))
    assert_frames_identical(frame, ref_frame)

    store = PerflogStore()
    read_perflogs(root, store=store)
    snap = store.stats.as_dict()
    for generation in range(REGROWTHS):
        grow_campaign(specs, 50, generation)
        grown = read_perflogs(root, store=store)
    assert_frames_identical(grown, read_perflogs(root))
    stats = store.stats
    warm_lookups = stats.lookups - (snap["hits"] + snap["misses"])
    warm_parsed = stats.bytes_parsed - snap["bytes_parsed"]
    warm_reused = stats.bytes_reused - snap["bytes_reused"]
    return {
        "n_rows": len(frame),
        "n_files": len(specs),
        "ref_rate": len(frame) / ref_elapsed,
        "vec_rate": len(frame) / vec_elapsed,
        "warm_hit_rate": (stats.hits - snap["hits"]) / warm_lookups,
        "warm_byte_reuse": warm_reused / (warm_parsed + warm_reused),
        "misses": stats.misses,
    }


def test_smoke_scale_baseline(once, tmp_path):
    """Record the reduced-size numbers the tier-1 smoke gate compares
    against (same measurement, same machine class as the full bench)."""
    r = once(measure_ingest_smoke, str(tmp_path / "campaign"))
    speedup = r["vec_rate"] / r["ref_rate"]
    emit(
        "Smoke-scale ingest baseline (tier-1 gate reference points)",
        f"campaign: {r['n_rows']:,} rows across {r['n_files']} perflogs\n"
        f"reference : {r['ref_rate']:,.0f} rows/s\n"
        f"vectorized: {r['vec_rate']:,.0f} rows/s ({speedup:.1f}x)\n"
        f"warm hits : {r['warm_hit_rate']:.1%}, "
        f"byte reuse {r['warm_byte_reuse']:.1%}",
    )
    assert speedup >= 2.5
    assert r["warm_hit_rate"] >= 0.90
    _update_baseline(
        smoke_rows=r["n_rows"],
        smoke_files=r["n_files"],
        smoke_ingest_reference_rows_per_second=round(r["ref_rate"]),
        smoke_ingest_vectorized_rows_per_second=round(r["vec_rate"]),
        smoke_ingest_speedup=round(speedup, 2),
    )


# --------------------------------------------------------------------------
# 3. groupby kernel latency vs the dict-per-row-tuple reference
# --------------------------------------------------------------------------

GROUP_KEYS = ["system", "partition", "test"]
GROUP_AGG = {"perf_value": np.mean, "num_tasks": np.max}


def regenerate_groupby(root):
    make_campaign(root, ROWS_PER_FILE)
    frame = read_perflogs(root)
    frame.groupby(GROUP_KEYS, GROUP_AGG)  # untimed heap warm-up

    vec_elapsed, vec = timed(lambda: frame.groupby(GROUP_KEYS, GROUP_AGG))
    ref_elapsed, ref = timed(
        lambda: reference_groupby(frame, GROUP_KEYS, GROUP_AGG)
    )

    assert vec.to_records() == ref.to_records()
    return {
        "n_rows": len(frame),
        "n_groups": len(vec),
        "vec_elapsed": vec_elapsed,
        "ref_elapsed": ref_elapsed,
    }


def test_groupby_kernel_latency(once, tmp_path):
    r = once(regenerate_groupby, str(tmp_path / "campaign"))
    speedup = r["ref_elapsed"] / r["vec_elapsed"]
    emit(
        "Groupby kernel: factorize + argsort vs dict-per-row-tuple",
        f"{r['n_rows']:,} rows -> {r['n_groups']} groups "
        f"(keys={GROUP_KEYS})\n"
        f"reference : {r['ref_elapsed'] * 1e3:.0f} ms\n"
        f"vectorized: {r['vec_elapsed'] * 1e3:.0f} ms\n"
        f"speedup   : {speedup:.1f}x (bit-identical records)",
    )
    assert speedup >= 1.5, f"groupby speedup only {speedup:.2f}x"
    _update_baseline(
        groupby_rows=r["n_rows"],
        groupby_groups=r["n_groups"],
        groupby_reference_ms=round(r["ref_elapsed"] * 1e3, 1),
        groupby_vectorized_ms=round(r["vec_elapsed"] * 1e3, 1),
        groupby_speedup=round(speedup, 2),
    )
