"""The scaling tentpole's acceptance run: a fleet-sized synthetic campaign.

ROADMAP item 3 asks for 100k-case / thousand-node campaigns; this module
generates one -- a 4096-node synthetic system and a parameter sweep of
non-Spack probe cases -- and measures the simulator hot path end to end:

* **headline**: the 100k-case / 4096-node campaign must run >= 20x the
  cases/sec a naive extrapolation of the pre-refactor 44-case serial
  baseline (``serial_cases_per_second`` in ``BENCH_runner.json``,
  ~31/s -- it was job-latency-bound, but the ISSUE's bar is the raw
  rate) would predict;
* **identity**: at 5k cases with the full artifact stack enabled
  (sharded perflogs, group-committed journal, batched trace), the
  serial, async and procs policies must produce *byte-identical*
  artifacts;
* the measured numbers land in ``BENCH_runner.json``; the tier-1 gate
  ``tests/postprocess/test_large_campaign_smoke.py`` re-runs the 5k
  variant against them with a <= 2x regression ceiling.

Scale notes (no silent caps): the procs policy is measured at 10k cases
rather than 100k -- on a single-CPU runner its per-case IPC overhead
makes the full sweep pointlessly slow, and its *correctness* at scale is
what the identity stage locks in.  Wall-clock speedup from procs needs
actual cores; the per-policy rates are recorded, not gated.
"""

import json
import os
import time

from benchmarks.conftest import emit
from benchmarks.test_runner_throughput import BASELINE_PATH, _update_baseline
from repro.obs.trace import Tracer
from repro.runner import sanity as sn
from repro.runner.benchmark import RegressionTest
from repro.runner.config import SiteConfig, default_site_config
from repro.runner.executor import Executor
from repro.runner.fields import parameter

PINNED_TS = "2026-01-01T00:00:00"
FLEET_NODES = 4096
HEADLINE_CASES = 100_000
PROCS_CASES = 10_000
IDENTITY_CASES = 5_000
WORKERS = 8
#: group-commit sizes for the artifact stack (journal + trace fsyncs)
BATCH = 256
#: the ISSUE's acceptance bar: >= 20x the naive extrapolation of the
#: pre-refactor serial baseline rate
SPEEDUP_FLOOR = 20.0
FALLBACK_BASELINE_RATE = 30.99  # committed serial_cases_per_second


def fleet_site() -> SiteConfig:
    """The shipped systems plus one synthetic 4096-node SLURM fleet."""
    site = default_site_config()
    site.merge_yaml(
        "systems:\n"
        "  - name: fleet\n"
        "    description: synthetic 4096-node campaign fleet\n"
        "    scheduler: slurm\n"
        f"    num_nodes: {FLEET_NODES}\n"
    )
    return site


def probe_class(n_cases: int, name: str):
    """A RegressionTest subclass sweeping ``n_cases`` parameter points.

    Module-level registration (below) keeps the classes picklable for
    the procs policy's worker processes.  The probe is deliberately
    minimal and non-Spack: the point is to measure the simulator --
    event queue, allocator, pipeline, writers -- not package builds.
    """

    class Probe(RegressionTest):
        point = parameter(list(range(n_cases)))

        def program(self, ctx):
            return f"p {self.point}: {100.0 + self.point % 977}\n", 1.0

        def check_sanity(self, stdout):
            sn.assert_found(r"p", stdout)

        def extract_performance(self, stdout):
            v = sn.extractsingle(r": ([\d.]+)", stdout, 1, float)
            return {"value": (v, "MB/s")}

    Probe.__name__ = Probe.__qualname__ = name
    return Probe


HeadlineProbe = probe_class(HEADLINE_CASES, "HeadlineProbe")
ProcsProbe = probe_class(PROCS_CASES, "ProcsProbe")
IdentityProbe = probe_class(IDENTITY_CASES, "IdentityProbe")
SmokeProbe = probe_class(5_000, "SmokeProbe")  # the tier-1 gate's sweep


def run_fleet(probe, policy="serial", workers=1, artifact_dir=None,
              site=None, **run_kwargs):
    """One fleet campaign; returns (rate, elapsed, report, artifacts)."""
    ex = Executor(
        site=site or fleet_site(),
        perflog_prefix=(
            os.path.join(artifact_dir, "perflogs") if artifact_dir else None
        ),
        perflog_timestamp=PINNED_TS,
    )
    cases = ex.expand_cases([probe], "fleet")
    kwargs = dict(run_kwargs)
    if artifact_dir is not None:
        kwargs.update(
            journal=os.path.join(artifact_dir, "journal.jsonl"),
            journal_batch=BATCH,
            trace=Tracer(os.path.join(artifact_dir, "trace.jsonl"),
                         batch=BATCH),
        )
    start = time.perf_counter()
    report = ex.run_cases(cases, policy=policy, workers=workers, **kwargs)
    elapsed = time.perf_counter() - start
    assert report.success, report.summary()[-500:]
    artifacts = {}
    if artifact_dir is not None:
        for root, _, files in os.walk(artifact_dir):
            for fname in files:
                path = os.path.join(root, fname)
                with open(path, "rb") as fh:
                    artifacts[os.path.relpath(path, artifact_dir)] = \
                        fh.read()
    return len(cases) / elapsed, elapsed, report, artifacts


def naive_baseline_rate() -> float:
    """The pre-refactor serial rate the ISSUE extrapolates from."""
    if os.path.exists(BASELINE_PATH):
        with open(BASELINE_PATH, encoding="utf-8") as fh:
            doc = json.load(fh)
        return float(doc.get("serial_cases_per_second",
                             FALLBACK_BASELINE_RATE))
    return FALLBACK_BASELINE_RATE


def regenerate_headline():
    site = fleet_site()
    serial_rate, serial_s, _, _ = run_fleet(HeadlineProbe, site=site)
    async_rate, async_s, _, _ = run_fleet(HeadlineProbe, policy="async",
                                          workers=WORKERS, site=site)
    procs_rate, procs_s, _, _ = run_fleet(ProcsProbe, policy="procs",
                                          workers=WORKERS, site=site)
    return {
        "serial": (serial_rate, serial_s),
        "async": (async_rate, async_s),
        "procs": (procs_rate, procs_s),
    }


def test_100k_case_campaign_rate(once):
    rates = once(regenerate_headline)
    baseline = naive_baseline_rate()
    speedup = rates["serial"][0] / baseline
    emit(
        "Fleet campaign: 100k cases / 4096 nodes (simulator hot path)",
        f"serial : {rates['serial'][1]:8.2f} s  "
        f"({rates['serial'][0]:7.0f} cases/s, {HEADLINE_CASES} cases)\n"
        f"async  : {rates['async'][1]:8.2f} s  "
        f"({rates['async'][0]:7.0f} cases/s, {HEADLINE_CASES} cases, "
        f"{WORKERS} threads)\n"
        f"procs  : {rates['procs'][1]:8.2f} s  "
        f"({rates['procs'][0]:7.0f} cases/s, {PROCS_CASES} cases, "
        f"{WORKERS} processes)\n"
        f"naive extrapolation baseline: {baseline:.2f} cases/s\n"
        f"speedup vs naive: {speedup:.1f}x (floor {SPEEDUP_FLOOR:.0f}x)",
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"fleet serial rate {rates['serial'][0]:.0f}/s is only "
        f"{speedup:.1f}x the naive baseline {baseline:.2f}/s"
    )
    _update_baseline(
        large_campaign_cases=HEADLINE_CASES,
        large_campaign_nodes=FLEET_NODES,
        large_campaign_serial_seconds=round(rates["serial"][1], 2),
        large_campaign_serial_cases_per_second=round(
            rates["serial"][0], 1),
        large_campaign_async_cases_per_second=round(rates["async"][0], 1),
        large_campaign_procs_cases=PROCS_CASES,
        large_campaign_procs_cases_per_second=round(rates["procs"][0], 1),
        large_campaign_speedup_vs_naive=round(speedup, 1),
    )


def regenerate_identity(tmpdir):
    site = fleet_site()
    out = {}
    for policy, workers in [("serial", 1), ("async", WORKERS),
                            ("procs", WORKERS)]:
        sub = os.path.join(tmpdir, policy)
        os.makedirs(sub, exist_ok=True)
        rate, elapsed, report, artifacts = run_fleet(
            IdentityProbe, policy=policy, workers=workers,
            artifact_dir=sub, site=site,
        )
        out[policy] = (rate, elapsed, report.summary(), artifacts)
    return out

def test_5k_artifact_identity_across_policies(once, tmp_path):
    """Perflogs, journal and trace byte-identical for serial/async/procs
    on the fleet campaign with the batched writers engaged."""
    runs = once(regenerate_identity, str(tmp_path))
    serial_rate, serial_s, serial_summary, serial_art = runs["serial"]
    emit(
        "Fleet campaign artifacts: 5k cases, full stack, 3 policies",
        "\n".join(
            f"{policy:6s}: {elapsed:6.2f} s ({rate:6.0f} cases/s, "
            f"{len(art)} artifact files)"
            for policy, (rate, elapsed, _, art) in runs.items()
        ),
    )
    assert len(serial_art) == IDENTITY_CASES + 2  # perflogs+journal+trace
    for policy in ("async", "procs"):
        rate, elapsed, summary, artifacts = runs[policy]
        assert summary == serial_summary
        assert artifacts == serial_art, (
            f"{policy} artifacts diverge from serial"
        )
    _update_baseline(
        large_campaign_smoke_cases=IDENTITY_CASES,
        large_campaign_smoke_serial_seconds=round(serial_s, 2),
        large_campaign_smoke_cases_per_second=round(serial_rate, 1),
    )


#: repetitions per arm of the live-plane overhead measurement; min-of-N
#: filters scheduler jitter, matching the tracing-overhead bench
LIVE_OVERHEAD_REPS = 3
LIVE_OVERHEAD_BUDGET = 0.05  # the ISSUE's <= 5% acceptance bound


def regenerate_live_overhead(tmpdir):
    """The 5k-case full-stack campaign, with and without the live plane.

    The live-status artifact lands *beside* the artifact dir, never
    inside it, so the byte comparison between arms covers exactly the
    campaign's own outputs (perflogs + journal + trace).
    """
    site = fleet_site()

    def best_of(tag, live=False):
        runs = []
        for rep in range(LIVE_OVERHEAD_REPS):
            sub = os.path.join(tmpdir, f"{tag}-{rep}")
            os.makedirs(sub, exist_ok=True)
            kwargs = {"live": sub + "-live.jsonl"} if live else {}
            rate, elapsed, _, artifacts = run_fleet(
                SmokeProbe, artifact_dir=sub, site=site, **kwargs)
            runs.append({"rate": rate, "elapsed": elapsed,
                         "artifacts": artifacts,
                         "live_path": kwargs.get("live")})
        return min(runs, key=lambda r: r["elapsed"])

    return best_of("plain"), best_of("live", live=True)


def test_live_plane_overhead_within_budget(once, tmp_path):
    """The streaming stats plane costs <= 5% wall clock on the 5k-case
    full-stack campaign and changes none of the campaign's artifacts."""
    from repro.obs.live import read_live_status

    plain, live = once(regenerate_live_overhead, str(tmp_path))
    overhead = live["elapsed"] / plain["elapsed"] - 1.0
    emit(
        "Live-plane overhead: streaming aggregates vs plain (5k cases)",
        f"plain : {plain['elapsed']:.3f} s "
        f"({plain['rate']:6.0f} cases/s)\n"
        f"live  : {live['elapsed']:.3f} s "
        f"({live['rate']:6.0f} cases/s, windowed aggregates + sealed "
        f"status stream)\n"
        f"overhead : {overhead:+.2%} (budget {LIVE_OVERHEAD_BUDGET:.0%})",
    )
    assert overhead <= LIVE_OVERHEAD_BUDGET, (
        f"live-plane overhead {overhead:+.2%} exceeds "
        f"{LIVE_OVERHEAD_BUDGET:.0%} budget")
    # a pure observer: perflogs, journal and trace stay byte-identical
    assert live["artifacts"] == plain["artifacts"]
    # ... while the status stream itself is complete and consistent
    meta, statuses = read_live_status(live["live_path"])
    assert meta["format"] == "repro-live"
    assert statuses[-1]["snapshot"]["cases"]["total"] == 5_000
    _update_baseline(
        live_overhead_fraction=round(overhead, 4),
        live_overhead_budget=LIVE_OVERHEAD_BUDGET,
        live_status_records=len(statuses),
    )
