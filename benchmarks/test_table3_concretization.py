"""Table 3: concretized build dependencies of ``hpgmg%gcc`` per system.

| System        | gcc    | Python  | MPI library       |
|---------------|--------|---------|-------------------|
| ARCHER2       | 11.2.0 | 3.10.12 | cray-mpich 8.1.23 |
| COSMA8        | 11.1.0 | 2.7.15  | mvapich 2.3.6     |
| CSD3          | 11.2.0 | 3.8.2   | openmpi 4.0.4     |
| Isambard-macs | 9.2.0  | 3.7.5   | openmpi 4.0.3     |

This is a pure concretizer artifact: the exact versions must match.
"""

import pytest

from benchmarks.conftest import emit
from repro.pkgmgr.concretizer import concretize
from repro.systems.registry import system_environment

PAPER = {
    "archer2": ("11.2.0", "3.10.12", "cray-mpich", "8.1.23"),
    "cosma8": ("11.1.0", "2.7.15", "mvapich2", "2.3.6"),
    "csd3": ("11.2.0", "3.8.2", "openmpi", "4.0.4"),
    "isambard-macs": ("9.2.0", "3.7.5", "openmpi", "4.0.3"),
}

MPI_NAMES = ("cray-mpich", "mvapich2", "openmpi", "intel-oneapi-mpi", "mpich")


def regenerate():
    table = {}
    for system in PAPER:
        env = system_environment(system)
        spec = concretize("hpgmg%gcc", env=env)
        mpi = next(n for n in MPI_NAMES if n in spec)
        table[system] = (
            str(spec.compiler.version),
            str(spec["python"].version),
            mpi,
            str(spec[mpi].version),
            spec.dag_hash(),
        )
    return table


def test_table3(once):
    table = once(regenerate)
    lines = ["System          gcc      Python    MPI library"]
    for system, (gcc, py, mpi, mpi_ver, h) in table.items():
        lines.append(
            f"{system:<15} {gcc:<8} {py:<9} {mpi} {mpi_ver}   /{h}"
        )
    emit("Table 3: concretized hpgmg%gcc dependencies", "\n".join(lines))
    for system, paper_row in PAPER.items():
        assert table[system][:4] == paper_row, system


def test_table3_is_archaeologically_reproducible(once):
    """Concretizing twice yields identical DAG hashes (Section 2.2's
    'archaeological reproducibility')."""
    first = once(regenerate)
    second = regenerate()
    for system in PAPER:
        assert first[system][4] == second[system][4]
