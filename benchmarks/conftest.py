"""Shared helpers for the table/figure regeneration benchmarks.

Every module here regenerates one table or figure of the paper: it runs
the same campaign through the framework, prints the regenerated artifact,
and asserts the *shape* criteria recorded in DESIGN.md/EXPERIMENTS.md.
``pytest benchmarks/ --benchmark-only`` times the full regeneration of
each artifact (the cost of reproducing the paper's evaluation from
scratch, which on the real systems took months of FTE).
"""

import pytest


def emit(title: str, text: str) -> None:
    """Print a regenerated artifact under a banner (visible with -s and
    in the tee'd bench output)."""
    banner = f"=== {title} " + "=" * max(0, 66 - len(title))
    print(f"\n{banner}\n{text}")


@pytest.fixture
def once(benchmark):
    """Run the campaign exactly once under the benchmark timer.

    The simulated campaigns are deterministic, so multiple timing rounds
    would only re-measure the same work; one round keeps the whole
    regeneration suite fast.
    """

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return run
