"""Ablations for the design choices the paper argues for.

* **FTE claim** (Section 3.1): the framework reduced a multi-month manual
  campaign "to around a day of work".  We count the human decisions the
  framework replays automatically for the Figure 2 survey.
* **Rebuild-every-run** (Principle 3): what the guarantee costs in
  (simulated) build time versus trusting a cached binary.
* **Array-sizing rule** (Section 3.1): the FOM error a naive array size
  causes on the 512 MB-L3 Milan -- the hazard Principle 1's efficiency
  framing catches.
* **Efficiency vs raw FOM** (Principle 1): raw Triad GB/s ranks the V100
  "best"; efficiency shows CPUs and the GPU utilised comparably.
"""

import pytest

from benchmarks.conftest import emit
from repro.apps.babelstream.simulator import BabelStreamRun
from repro.machine.progmodel import PROGRAMMING_MODELS
from repro.pkgmgr.concretizer import concretize
from repro.pkgmgr.installer import Installer
from repro.runner.cli import load_suite
from repro.runner.executor import Executor
from repro.systems.registry import get_system, system_environment


class TestFteArgument:
    PLATFORMS = [
        "isambard-macs:volta", "isambard-macs:cascadelake",
        "isambard", "noctua2",
    ]

    def test_manual_steps_replaced_by_framework(self, once):
        """Each Figure 2 cell manually needs: resolve toolchain, build,
        write job script, submit, parse output, compute efficiency
        (6 decisions).  The framework needs one invocation per platform."""

        def survey():
            ex = Executor()
            cases = 0
            for platform in self.PLATFORMS:
                report = ex.run(load_suite("babelstream"), platform)
                cases += len(report.results)
            return cases

        cells = once(survey)
        manual_steps = cells * 6
        framework_steps = len(self.PLATFORMS)
        emit(
            "Ablation: FTE argument",
            f"{cells} (model x platform) cells -> {manual_steps} manual "
            f"decisions replayed by {framework_steps} framework invocations "
            f"({manual_steps / framework_steps:.0f}x fewer)",
        )
        assert cells >= 4 * len(PROGRAMMING_MODELS) - 4
        assert manual_steps / framework_steps > 30


class TestRebuildEveryRun:
    def test_principle3_cost_is_bounded(self, once):
        """Rebuilding the benchmark root on every run costs its build time
        again; dependencies stay cached, so the guarantee is cheap."""
        from repro.pkgmgr.environment import Environment

        # a bare environment (no system externals) so the dependency
        # cache -- not external reuse -- is what the ablation measures
        env = Environment.basic("ablation")
        spec = concretize("babelstream +omp %gcc", env=env)
        installer = Installer()

        def run_twice_with_rebuild():
            installer.install(spec, rebuild=True)
            return installer.install(spec, rebuild=True)

        records = once(run_twice_with_rebuild)
        rebuilt = [r for r in records if r.fresh]
        cached = [r for r in records if not r.fresh and not r.external]
        emit(
            "Ablation: Principle 3 cost",
            f"second run rebuilt {len(rebuilt)} package(s) "
            f"({sum(r.build_seconds for r in rebuilt):.0f} simulated s), "
            f"reused {len(cached)} cached dependencies",
        )
        assert [r.spec.name for r in rebuilt] == ["babelstream"]
        assert cached  # cmake at least


class TestArraySizingRule:
    def test_naive_size_inflates_milan_fom(self, once):
        node = get_system("noctua2").default_partition.node

        def both():
            honest, _ = BabelStreamRun(node, "omp", array_size=2**29).execute()
            naive, _ = BabelStreamRun(node, "omp", array_size=2**22).execute()
            pick = lambda rs: [r for r in rs if r.name == "Triad"][0]
            return pick(honest).gbytes_per_sec, pick(naive).gbytes_per_sec

        honest, naive = once(both)
        inflation = naive / honest
        emit(
            "Ablation: array sizing rule on Milan (512 MB L3)",
            f"2^29 (paper): {honest:.0f} GB/s; 2^22 (naive): {naive:.0f} GB/s"
            f" -> {inflation:.1f}x inflated FOM, {naive / 409.6:.1f}x 'peak'",
        )
        assert inflation > 2
        assert naive > node.peak_bandwidth_gbs  # impossible => red flag


class TestEfficiencyVsRawFom:
    def test_raw_fom_misleads_across_architectures(self, once):
        """Principle 1: raw GB/s says the V100 is 3x better than any CPU;
        efficiency says both are well-utilised -- different questions."""

        def measure():
            out = {}
            for platform, model in [
                ("isambard-macs:volta", "cuda"),
                ("noctua2", "omp"),
            ]:
                system, part = platform.partition(":")[::2]
                node = get_system(system).partition(part or None).node
                results, _ = BabelStreamRun(node, model).execute()
                triad = [r for r in results if r.name == "Triad"][0]
                out[platform] = (
                    triad.gbytes_per_sec,
                    triad.gbytes_per_sec / node.peak_bandwidth_gbs,
                )
            return out

        out = once(measure)
        (gpu_raw, gpu_eff) = out["isambard-macs:volta"]
        (cpu_raw, cpu_eff) = out["noctua2"]
        emit(
            "Ablation: raw FOM vs efficiency",
            f"V100: {gpu_raw:.0f} GB/s ({gpu_eff:.0%} of peak); "
            f"Milan: {cpu_raw:.0f} GB/s ({cpu_eff:.0%} of peak)",
        )
        assert gpu_raw / cpu_raw > 2  # raw numbers: GPU 'wins' big
        assert abs(gpu_eff - cpu_eff) < 0.25  # efficiency: comparable use
