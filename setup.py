"""Legacy shim: this environment lacks the `wheel` package, so PEP 660
editable installs fail; `setup.py develop` works offline.

``pyproject.toml`` ``[project.scripts]`` is the authoritative entry-point
table; the mirror below keeps the legacy ``setup.py develop`` path
shipping the same console scripts.  Update both when adding one.
"""
from setuptools import setup

setup(
    entry_points={
        "console_scripts": [
            "repro-bench = repro.runner.cli:main",
            "repro-plot = repro.postprocess.cli:main",
            "repro-pkg = repro.pkgmgr.cli:main",
            "repro-trace = repro.obs.cli:main",
            "repro-fsck = repro.runner.fsck:main",
            "repro-fleet = repro.fleet.cli:main",
            "repro-top = repro.obs.top:main",
        ],
    },
)
