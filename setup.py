"""Legacy shim: this environment lacks the `wheel` package, so PEP 660
editable installs fail; `setup.py develop` works offline."""
from setuptools import setup

setup()
