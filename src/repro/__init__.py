"""repro: automated and reproducible benchmarking, reproduced.

A from-scratch implementation of the methodology and framework of
Koskela et al., *Principles for Automated and Reproducible Benchmarking*
(SC-W 2023, DOI 10.1145/3624062.3624133), runnable entirely on one
machine: the HPC platforms, schedulers and compiled benchmarks the paper
uses are replaced by faithful simulations (see DESIGN.md).

Layers, bottom-up:

* :mod:`repro.systems`   -- the hardware ground truth of the paper's platforms
* :mod:`repro.machine`   -- roofline execution model (how fast code runs *there*)
* :mod:`repro.scheduler` -- SLURM/PBS discrete-event simulation
* :mod:`repro.pkgmgr`    -- Spack-like package manager (specs, concretizer)
* :mod:`repro.runner`    -- ReFrame-like regression/benchmark runner
* :mod:`repro.apps`      -- BabelStream, HPCG (4 variants), HPGMG-FV
* :mod:`repro.postprocess` -- perflog assimilation, mini-DataFrame, plots
* :mod:`repro.analysis`  -- efficiency & performance-portability metrics
* :mod:`repro.core`      -- the six Principles, the Figure-1 workflow, the
  :class:`~repro.core.framework.BenchmarkingFramework` facade
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
