"""Deterministic fault injection: the chaos layer of the resilience stack.

The paper's Principles 4-6 promise *unattended*, repeatable campaigns, so
the framework must be testable against exactly the failures that real
facilities produce: transient build breakage, scheduler submit errors,
job timeouts and node failures, misbehaving test hooks, and perflog
write errors.  This module provides a **seedable, deterministic** fault
harness -- the same seed always yields the same fault schedule, regardless
of execution policy or worker count -- so that resilience tests (and
``repro-bench --inject-faults SPEC --fault-seed N``) are themselves
reproducible experiments.

Fault-spec grammar (``--inject-faults``)::

    SPEC    := CLAUSE (',' CLAUSE)*
    CLAUSE  := KIND ':' RATE ['x' COUNT]     probabilistic over cases
             | KIND ':' RATE '@' GLOB        probabilistic, target-filtered
             | KIND '@' GLOB ['#' COUNT]     explicit case coordinates
    KIND    := build | submit | timeout | hook | perflog
             | hang | slow | sicknode
             | enospc | eio | torn | bitrot | fsync-lie
             | lease-expire | supervisor-crash
    RATE    := float in [0, 1]   fraction of (kind, case) coordinates hit
    COUNT   := positive int | '*'   attempts that fault (default 1;
                                    '*' = every attempt, i.e. *permanent*)

Examples::

    build:0.3                 30% of cases fail their first build attempt
    submit:0.2x2              20% of cases fail the first two submits
    hook@HPCG_*               every HPCG variant's first hook call raises
    perflog@*#*               every perflog write fails, forever
    hang:0.2                  20% of cases hang their first job (watchdog food)
    slow@HPCG_*               every HPCG variant's first job straggles
    sicknode@nid0002#*        node nid0002 is permanently degraded
    enospc:0.01               1% of storage operations hit a full disk
    torn:0.05@journal         5% of journal appends tear mid-batch
    lease-expire:0.3          30% of fleet campaigns lose their lease once
    supervisor-crash:0.2      20% of campaigns take the supervisor down

The two *fleet* kinds (``lease-expire``/``supervisor-crash``) target the
:mod:`repro.fleet` supervisor rather than a pipeline stage: the target
is a *campaign id*, and the supervisor consults the plan once per
executed campaign slice.  A firing ``lease-expire`` makes the supervisor
lose its lease on that campaign mid-run (the queue reclaims it after the
TTL and the next claimant resumes from the campaign journal); a firing
``supervisor-crash`` kills the whole supervisor process loop after the
slice, leaving leases dangling for a restarted supervisor to reclaim.

The five *I/O* kinds (``enospc``/``eio``/``torn``/``bitrot``/
``fsync-lie``) target durable-artifact operations instead of cases: the
target is an artifact label (``journal``, ``perflog``, ``trace``,
``store``, ``pack``, ``index``, ``ingest``) and selection is drawn *per
operation* via :meth:`FaultPlan.check_io`, not once per target -- a
storage device does not remember which files it has already eaten.  They
are routed through :class:`repro.iofaults.FaultyIO` rather than raised at
pipeline stages.

The *slow-fault* kinds (DESIGN.md section 6.4) differ from the fail-fast
ones in how they manifest: ``hang`` makes the job stop progressing (the
payload's simulated duration becomes effectively unbounded -- without a
watchdog it devolves into the job's walltime TIMEOUT; with one it is
cancelled as HUNG at the deadline), ``slow`` multiplies the job's
duration by :data:`SLOW_FACTOR` (straggler food for speculative
execution), and ``sicknode`` targets a *node name* rather than a case:
every job allocated onto a selected node is degraded by
:data:`SICK_FACTOR` until node-health tracking drains it.

Selection is a pure function of ``(seed, kind, case)`` -- a SHA-256 hash
mapped to [0, 1) and compared against the rate -- so whether a coordinate
faults never depends on thread interleaving or on how many other cases
ran first.  The *attempt* at which a site is visited is tracked by a
:class:`FaultClock`, a thread-safe attempt ledger doubling as the virtual
clock that retry backoff sleeps against (no real time passes).
"""

from __future__ import annotations

import fnmatch
import hashlib
import threading
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "FAULT_KINDS",
    "FLEET_FAULT_KINDS",
    "IO_FAULT_KINDS",
    "SLOW_FACTOR",
    "SICK_FACTOR",
    "HANG_FACTOR",
    "Fault",
    "FaultClock",
    "FaultPlan",
    "FaultSpecError",
    "InjectedFault",
    "JobEffects",
    "parse_fault_spec",
    "unit_hash",
]

#: the injectable failure categories, one per resilience-relevant layer.
#: ``hang``/``slow``/``sicknode`` are the *slow-fault* kinds: they do not
#: raise at an injection site but degrade a job's simulated execution
#: (see :meth:`SchedulerFaultInjector.job_effects`)
#: the storage-fault kinds: consulted per *operation* (not per target)
#: through :meth:`FaultPlan.check_io` and acted out by
#: :class:`repro.iofaults.FaultyIO` on the raw os.write/fsync/rename
#: paths of every durable artifact
IO_FAULT_KINDS = ("enospc", "eio", "torn", "bitrot", "fsync-lie")

#: the fleet-supervisor kinds: consulted by
#: :class:`repro.fleet.supervisor.FleetSupervisor` with a *campaign id*
#: target -- ``lease-expire`` forfeits one campaign's lease mid-run,
#: ``supervisor-crash`` kills the supervisor loop itself
FLEET_FAULT_KINDS = ("lease-expire", "supervisor-crash")

FAULT_KINDS = (
    "build", "submit", "timeout", "hook", "perflog",
    "hang", "slow", "sicknode",
) + IO_FAULT_KINDS + FLEET_FAULT_KINDS

#: duration multiplier for a job hit by a ``slow`` fault (a straggler:
#: well past any sane --straggler-factor, well short of a hang)
SLOW_FACTOR = 8.0

#: duration multiplier for a job placed on a ``sicknode`` (degraded, not
#: dead: the node completes work, slowly, poisoning whatever lands on it)
SICK_FACTOR = 6.0

#: duration multiplier for a ``hang`` fault: makes the job overshoot any
#: watchdog deadline *and* its own walltime, so an undetected hang still
#: terminates (as TIMEOUT) instead of wedging the simulation
HANG_FACTOR = 1e6


class FaultSpecError(ValueError):
    """A malformed ``--inject-faults`` specification."""


def unit_hash(seed: int, *parts: str) -> float:
    """A deterministic uniform draw in [0, 1) from (seed, parts).

    Shared by fault selection and retry-backoff jitter: both must be
    order- and thread-independent, which a stateful RNG cannot give.
    """
    payload = "\x1f".join([str(seed), *parts]).encode("utf-8")
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


@dataclass(frozen=True)
class Fault:
    """One injected failure at a (kind, target, attempt) coordinate."""

    kind: str
    target: str
    attempt: int
    transient: bool = True

    def describe(self) -> str:
        perm = "" if self.transient else ":permanent"
        return f"injected:{self.kind}@{self.target}#{self.attempt}{perm}"


class InjectedFault(Exception):
    """The exception a firing fault raises at its injection site.

    ``transient`` faults clear after their configured attempt count --
    the retry layer classifies them as worth retrying; permanent ones
    (``COUNT='*'``) never clear and are classified like any other hard
    failure.
    """

    def __init__(self, fault: Fault):
        super().__init__(fault.describe())
        self.fault = fault

    @property
    def transient(self) -> bool:
        return self.fault.transient


class FaultClock:
    """Thread-safe attempt ledger + virtual backoff clock.

    Two jobs, both deterministic:

    * :meth:`next_attempt` counts how many times each ``(kind, target)``
      injection site has been visited -- what lets a transient fault fire
      on the first N visits and then clear;
    * :meth:`sleep` advances a *virtual* clock by the retry layer's
      backoff delays, so exponential backoff is fully recorded (and
      testable) without a campaign ever sleeping wall-clock time.
    """

    def __init__(self, start: float = 0.0):
        self._lock = threading.Lock()
        self._start = float(start)
        self._now = float(start)
        self._attempts: Dict[Tuple[str, ...], int] = {}

    @property
    def now(self) -> float:
        with self._lock:
            return self._now

    @property
    def slept_seconds(self) -> float:
        with self._lock:
            return self._now - self._start

    def sleep(self, seconds: float) -> float:
        """Advance virtual time; returns the new ``now``."""
        if seconds < 0:
            raise ValueError("cannot sleep a negative duration")
        with self._lock:
            self._now += seconds
            return self._now

    def next_attempt(self, key: Tuple[str, ...]) -> int:
        """Increment and return the 1-based visit count for *key*."""
        with self._lock:
            count = self._attempts.get(key, 0) + 1
            self._attempts[key] = count
            return count

    def attempts(self, key: Tuple[str, ...]) -> int:
        with self._lock:
            return self._attempts.get(key, 0)

    def attempts_for_target(self, target: str) -> Dict[Tuple[str, ...], int]:
        """Every site counter whose target is *target* (a copy).

        The process-pool policy ships these back with a finished case so
        the campaign-wide clock stays authoritative: injection-site keys
        are ``(kind, target)`` and pipeline/scheduler targets are unique
        per case, so per-case deltas merge without interference.
        """
        with self._lock:
            return {
                key: count
                for key, count in self._attempts.items()
                if len(key) > 1 and key[1] == target
            }

    def merge_attempts(self, attempts: Dict[Tuple[str, ...], int]) -> None:
        """Max-merge site counters observed elsewhere (worker processes)."""
        with self._lock:
            for key, count in attempts.items():
                if count > self._attempts.get(key, 0):
                    self._attempts[key] = count

    def reset(self) -> None:
        with self._lock:
            self._now = self._start
            self._attempts.clear()


@dataclass(frozen=True)
class FaultClause:
    """One parsed clause of a fault spec."""

    kind: str
    #: probabilistic selection rate (None = glob-only explicit selection)
    rate: Optional[float] = None
    #: fnmatch pattern over the target id; with a rate it *filters* which
    #: targets are eligible for the probabilistic draw
    glob: Optional[str] = None
    #: attempts on which the fault fires (None = every attempt, permanent)
    count: Optional[int] = 1

    def selects(self, seed: int, target: str) -> bool:
        if self.glob is not None and not fnmatch.fnmatch(target, self.glob):
            return False
        if self.rate is None:
            return self.glob is not None
        return unit_hash(seed, self.kind, target) < self.rate

    def fires_on(self, attempt: int) -> bool:
        return self.count is None or attempt <= self.count

    @property
    def transient(self) -> bool:
        return self.count is not None

    def format(self) -> str:
        if self.rate is None:
            count = "*" if self.count is None else str(self.count)
            return f"{self.kind}@{self.glob}#{count}"
        suffix = "" if self.count == 1 else (
            "x*" if self.count is None else f"x{self.count}"
        )
        tail = "" if self.glob is None else f"@{self.glob}"
        return f"{self.kind}:{self.rate:g}{suffix}{tail}"


def _parse_count(text: str, clause: str) -> Optional[int]:
    if text == "*":
        return None
    try:
        count = int(text)
    except ValueError:
        raise FaultSpecError(
            f"bad attempt count {text!r} in clause {clause!r}"
        ) from None
    if count < 1:
        raise FaultSpecError(f"attempt count must be >= 1 in {clause!r}")
    return count


def parse_fault_spec(spec: str) -> List[FaultClause]:
    """Parse a ``--inject-faults`` string into clauses (grammar above)."""
    clauses: List[FaultClause] = []
    for raw in spec.split(","):
        text = raw.strip()
        if not text:
            continue
        if ":" in text and ("@" not in text or text.index(":") < text.index("@")):
            kind, _, rest = text.partition(":")
            rest, _, glob = rest.partition("@")
            rate_text, _, count_text = rest.partition("x")
            try:
                rate = float(rate_text)
            except ValueError:
                raise FaultSpecError(
                    f"bad rate {rate_text!r} in clause {text!r}"
                ) from None
            if not 0.0 <= rate <= 1.0:
                raise FaultSpecError(f"rate must be in [0, 1] in {text!r}")
            count = _parse_count(count_text, text) if count_text else 1
            clause = FaultClause(kind=kind.strip(), rate=rate,
                                 glob=glob or None, count=count)
        elif "@" in text:
            kind, _, rest = text.partition("@")
            glob, _, count_text = rest.partition("#")
            if not glob:
                raise FaultSpecError(f"empty case pattern in {text!r}")
            count = _parse_count(count_text, text) if count_text else 1
            clause = FaultClause(kind=kind.strip(), glob=glob, count=count)
        else:
            raise FaultSpecError(
                f"clause {text!r} is neither KIND:RATE nor KIND@GLOB"
            )
        if clause.kind not in FAULT_KINDS:
            raise FaultSpecError(
                f"unknown fault kind {clause.kind!r}; known: "
                f"{', '.join(FAULT_KINDS)}"
            )
        clauses.append(clause)
    if not clauses:
        raise FaultSpecError(f"empty fault spec {spec!r}")
    return clauses


class FaultPlan:
    """A seeded schedule of injectable faults for one campaign.

    The plan is consulted at each injection site with
    :meth:`check`/:meth:`fire`; every consultation advances the site's
    attempt counter on the shared :class:`FaultClock`, and every fault
    that actually fires is appended to :attr:`log` (campaign provenance:
    the full fault history ends up in the run summary and the journal).
    """

    def __init__(
        self,
        clauses: Sequence[FaultClause] = (),
        seed: int = 0,
        clock: Optional[FaultClock] = None,
    ):
        self.clauses = list(clauses)
        self.seed = int(seed)
        self.clock = clock or FaultClock()
        self.log: List[Fault] = []
        self._lock = threading.Lock()

    # -- construction --------------------------------------------------------
    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        return cls(parse_fault_spec(spec), seed=seed)

    @classmethod
    def at(
        cls,
        kind: str,
        glob: str = "*",
        attempts: Optional[int] = 1,
        seed: int = 0,
    ) -> "FaultPlan":
        """An explicit single-clause plan (the test-suite convenience)."""
        if kind not in FAULT_KINDS:
            raise FaultSpecError(f"unknown fault kind {kind!r}")
        return cls([FaultClause(kind=kind, glob=glob, count=attempts)],
                   seed=seed)

    # -- consultation --------------------------------------------------------
    def check(self, kind: str, target: str) -> Optional[Fault]:
        """Visit the (kind, target) site; return the firing fault, if any."""
        attempt = self.clock.next_attempt((kind, target))
        for clause in self.clauses:
            if clause.kind != kind:
                continue
            if clause.selects(self.seed, target) and clause.fires_on(attempt):
                fault = Fault(
                    kind=kind,
                    target=target,
                    attempt=attempt,
                    transient=clause.transient,
                )
                with self._lock:
                    self.log.append(fault)
                return fault
        return None

    def fire(self, kind: str, target: str) -> None:
        """Like :meth:`check`, but raise :class:`InjectedFault` on a hit."""
        fault = self.check(kind, target)
        if fault is not None:
            raise InjectedFault(fault)

    @property
    def has_io_faults(self) -> bool:
        """Whether any clause targets the storage plane (arms FaultyIO)."""
        return any(c.kind in IO_FAULT_KINDS for c in self.clauses)

    def check_io(self, label: str) -> Optional[Fault]:
        """Visit one storage *operation* against artifact *label*.

        Unlike :meth:`check` -- where a probabilistic clause selects a
        target once and then replays on every attempt -- storage faults
        are drawn fresh per operation: the draw is keyed by the
        operation ordinal on the ``("io", label)`` clock, so an append
        that failed and is retried faces independent (but still fully
        deterministic) odds.  Glob-only clauses fire on the first
        ``count`` operations touching a matching label.
        """
        op = self.clock.next_attempt(("io", label))
        for clause in self.clauses:
            if clause.kind not in IO_FAULT_KINDS:
                continue
            if clause.glob is not None and not fnmatch.fnmatch(label, clause.glob):
                continue
            if clause.rate is not None:
                if unit_hash(self.seed, clause.kind, label, str(op)) >= clause.rate:
                    continue
            elif not clause.fires_on(op):
                continue
            fault = Fault(kind=clause.kind, target=label, attempt=op,
                          transient=clause.rate is not None or clause.transient)
            with self._lock:
                self.log.append(fault)
            return fault
        return None

    # -- cross-process accounting --------------------------------------------
    def delta_for_target(self, target: str) -> Dict[str, Any]:
        """The per-case state a worker process ships back with a result.

        Contains the site counters and fired faults whose target is
        *target*; :meth:`absorb` folds them into the campaign-wide plan
        so a later in-process attempt for the same target (a speculative
        duplicate) sees exactly the state a serial campaign would.
        """
        with self._lock:
            faults = [f for f in self.log if f.target == target]
        return {
            "attempts": self.clock.attempts_for_target(target),
            "faults": faults,
        }

    def absorb(self, delta: Dict[str, Any]) -> None:
        """Merge a worker's per-case delta (idempotent).

        Counters max-merge; fired faults are deduplicated by their
        ``(kind, target, attempt)`` identity, so absorbing the same
        delta twice -- or a delta from a worker that already held part
        of the history -- never double-counts.
        """
        self.clock.merge_attempts(delta.get("attempts") or {})
        new_faults = delta.get("faults") or []
        if not new_faults:
            return
        with self._lock:
            seen = {(f.kind, f.target, f.attempt) for f in self.log}
            for fault in new_faults:
                key = (fault.kind, fault.target, fault.attempt)
                if key not in seen:
                    seen.add(key)
                    self.log.append(fault)

    # -- accounting ----------------------------------------------------------
    @property
    def fired(self) -> int:
        with self._lock:
            return len(self.log)

    def faults_for(self, target: str) -> List[Fault]:
        with self._lock:
            return [f for f in self.log if f.target == target]

    def format(self) -> str:
        return ",".join(c.format() for c in self.clauses)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan({self.format()!r}, seed={self.seed})"


@dataclass
class JobEffects:
    """Slow-fault degradations applied to one starting job.

    Computed once per job start by :meth:`SchedulerFaultInjector.job_effects`
    and consumed by :meth:`repro.scheduler.base.BatchScheduler._start`:
    the job's simulated duration is multiplied by :attr:`slowdown`
    (compounding ``slow`` and ``sicknode`` hits), and :attr:`hung` marks
    a job that stopped progressing entirely.  :attr:`sick_nodes` names
    the degraded allocation members so node-health tracking can
    attribute the slowdown to the machine, not the program.
    """

    hung: bool = False
    slowdown: float = 1.0
    sick_nodes: List[str] = None  # type: ignore[assignment]
    faults: List[Fault] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.sick_nodes is None:
            self.sick_nodes = []
        if self.faults is None:
            self.faults = []

    @property
    def degraded(self) -> bool:
        return self.hung or self.slowdown > 1.0


class SchedulerFaultInjector:
    """Adapter binding a :class:`FaultPlan` to one case for the scheduler.

    The batch-scheduler layer is deliberately ignorant of fault plans; it
    accepts any object with this duck-typed interface:

    * :meth:`on_submit` -- called during ``submit()``; raising aborts the
      submission (the pipeline sees a scheduler error);
    * :meth:`on_start` -- called when a job starts; returning a
      :class:`Fault` makes the job die as a node failure with partial
      stdout;
    * :meth:`job_effects` -- called when a job starts with its node
      allocation; returns the :class:`JobEffects` degradations (hang /
      slowdown) the slow-fault kinds impose on this job.
    """

    def __init__(self, plan: FaultPlan, target: str):
        self.plan = plan
        self.target = target

    def on_submit(self, job: object) -> None:
        self.plan.fire("submit", self.target)

    def on_start(self, job: object) -> Optional[Fault]:
        return self.plan.check("timeout", self.target)

    def job_effects(self, job: object, nodes: Sequence[str]) -> JobEffects:
        """Slow-fault consultation for one starting job.

        ``hang`` and ``slow`` are keyed by the case target (application-
        or placement-level pathology); ``sicknode`` is keyed by *node
        name*, so the same degraded node poisons every case allocated
        onto it -- which is exactly the signal node-health scoring needs.
        """
        effects = JobEffects()
        hang = self.plan.check("hang", self.target)
        if hang is not None:
            effects.hung = True
            effects.slowdown = max(effects.slowdown, HANG_FACTOR)
            effects.faults.append(hang)
        slow = self.plan.check("slow", self.target)
        if slow is not None:
            effects.slowdown *= SLOW_FACTOR
            effects.faults.append(slow)
        for node in nodes:
            sick = self.plan.check("sicknode", node)
            if sick is not None:
                effects.slowdown *= SICK_FACTOR
                effects.sick_nodes.append(node)
                effects.faults.append(sick)
        return effects
