"""The Pennycook performance-portability metric and cascade plots.

PP(a, p, H) [Pennycook, Sewall, Lee 2019] is the harmonic mean of an
application's efficiency over a set of platforms H, and **zero if any
platform in H is unsupported** -- the property that makes Figure 2's
``*`` boxes bite: a programming model that cannot run somewhere is not
performance portable across a set containing that somewhere.

The *cascade* [Sewall et al.] sorts platform efficiencies descending and
tracks PP over growing subsets -- the standard visualisation for "how far
does this model's portability stretch".
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["performance_portability", "cascade"]


def performance_portability(
    efficiencies: Mapping[str, Optional[float]],
    platforms: Optional[Sequence[str]] = None,
) -> float:
    """Harmonic mean of efficiencies over ``platforms`` (default: all keys).

    ``None`` (or missing, or zero) efficiency on any requested platform
    makes the metric 0, per the definition.
    """
    keys = list(platforms) if platforms is not None else list(efficiencies)
    if not keys:
        return 0.0
    values = []
    for key in keys:
        e = efficiencies.get(key)
        if e is None or e <= 0:
            return 0.0
        if e > 1.0 + 1e-9:
            raise ValueError(
                f"efficiency {e} > 1 on {key}: check the peak used"
            )
        values.append(e)
    return len(values) / sum(1.0 / e for e in values)


def cascade(
    efficiencies: Mapping[str, Optional[float]]
) -> List[Tuple[str, float]]:
    """(platform, PP over the best k platforms) with k = 1..n, sorted
    by descending efficiency; unsupported platforms appear last with 0."""
    supported = sorted(
        ((k, v) for k, v in efficiencies.items() if v is not None and v > 0),
        key=lambda kv: kv[1],
        reverse=True,
    )
    unsupported = [k for k, v in efficiencies.items() if v is None or v <= 0]
    out: List[Tuple[str, float]] = []
    running: Dict[str, float] = {}
    for name, eff in supported:
        running[name] = eff
        out.append((name, performance_portability(running)))
    for name in unsupported:
        out.append((name, 0.0))
    return out
