"""Efficiency metrics (Principle 1 and Eq. (1) of the paper).

Three notions of efficiency appear in the paper:

* **architectural** -- FOM over the platform's theoretical peak (Figure 2
  divides measured Triad GB/s by Table 1's peak memory bandwidth);
* **variant** -- Eq. (1): ``E = VAR / ORIG``, the gain of an
  implementation or algorithm variant over the original on the same
  platform (the paper computes E_I = 1.625 for Intel's implementation and
  E_A = 2.125 / 3.168 for the matrix-free algorithm);
* **application** -- FOM over the best FOM observed for that application
  on that platform (used by the Pennycook metric when no analytic peak
  exists).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional

__all__ = [
    "architectural_efficiency",
    "variant_efficiency",
    "application_efficiency",
    "EfficiencyError",
]


class EfficiencyError(ValueError):
    """Nonsensical efficiency inputs (zero/negative peaks etc.)."""


def architectural_efficiency(fom: float, theoretical_peak: float) -> float:
    """FOM / peak, in [0, ~1]; > 1 flags a broken measurement.

    (A value slightly above the sustainable fraction is possible with
    cache effects -- which is exactly the hazard the array-sizing rule
    exists to eliminate, so callers should treat > 1 as a red flag, not
    clamp it.)
    """
    if theoretical_peak <= 0:
        raise EfficiencyError(f"peak must be positive, got {theoretical_peak}")
    if fom < 0:
        raise EfficiencyError(f"FOM must be non-negative, got {fom}")
    return fom / theoretical_peak


def variant_efficiency(variant_fom: float, original_fom: float) -> float:
    """Eq. (1): E = VAR / ORIG on the same platform."""
    if original_fom <= 0:
        raise EfficiencyError(
            f"original FOM must be positive, got {original_fom}"
        )
    return variant_fom / original_fom


def application_efficiency(
    foms: Mapping[str, float], best: Optional[float] = None
) -> Dict[str, float]:
    """Each platform's FOM over the best observed (or supplied) FOM."""
    if not foms:
        return {}
    reference = best if best is not None else max(foms.values())
    if reference <= 0:
        raise EfficiencyError("reference FOM must be positive")
    return {platform: fom / reference for platform, fom in foms.items()}
