"""Analysis: efficiency metrics and performance portability.

Principle 1 demands FOMs that measure *efficiency*; this subpackage turns
raw FOMs into the paper's three efficiency flavours (architectural % of
peak, the Eq. (1) variant ratio, application efficiency vs best observed)
and implements the Pennycook performance-portability metric the paper's
methodology feeds.
"""

from repro.analysis.efficiency import (
    architectural_efficiency,
    application_efficiency,
    variant_efficiency,
)
from repro.analysis.scaling import (
    ScalingPoint,
    ScalingStudy,
    fit_amdahl,
    strong_scaling_efficiency,
    weak_scaling_efficiency,
)
from repro.analysis.portability import (
    cascade,
    performance_portability,
)

__all__ = [
    "architectural_efficiency",
    "application_efficiency",
    "variant_efficiency",
    "cascade",
    "performance_portability",
    "ScalingPoint",
    "ScalingStudy",
    "fit_amdahl",
    "strong_scaling_efficiency",
    "weak_scaling_efficiency",
]
