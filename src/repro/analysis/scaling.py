"""Strong/weak scaling analysis for multi-node benchmark sweeps.

The paper's framework has "ongoing work to provide simplified
configurations that can be used to produce scaling and time-series
regression plots"; this module provides the analysis those plots need:
speedup, parallel efficiency, Amdahl/Gustafson fits and the line-chart
data shape consumed by :func:`repro.postprocess.plotting.line_chart_svg`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "ScalingPoint",
    "ScalingStudy",
    "strong_scaling_efficiency",
    "weak_scaling_efficiency",
    "fit_amdahl",
]


@dataclass(frozen=True)
class ScalingPoint:
    """One sweep point: task count and the measured time or rate."""

    tasks: int
    seconds: float

    def __post_init__(self):
        if self.tasks < 1:
            raise ValueError("tasks must be >= 1")
        if self.seconds <= 0:
            raise ValueError("seconds must be positive")


@dataclass
class ScalingStudy:
    """An ordered sweep over task counts (strong or weak)."""

    points: List[ScalingPoint]

    def __post_init__(self):
        if not self.points:
            raise ValueError("a scaling study needs at least one point")
        self.points = sorted(self.points, key=lambda p: p.tasks)

    @property
    def base(self) -> ScalingPoint:
        return self.points[0]

    def speedups(self) -> List[Tuple[int, float]]:
        """(tasks, T(base)/T(tasks)) relative to the smallest run."""
        return [
            (p.tasks, self.base.seconds / p.seconds) for p in self.points
        ]

    def strong_efficiencies(self) -> List[Tuple[int, float]]:
        base = self.base
        return [
            (p.tasks,
             strong_scaling_efficiency(base.seconds, base.tasks, p.seconds,
                                       p.tasks))
            for p in self.points
        ]

    def weak_efficiencies(self) -> List[Tuple[int, float]]:
        base = self.base
        return [
            (p.tasks, weak_scaling_efficiency(base.seconds, p.seconds))
            for p in self.points
        ]


def strong_scaling_efficiency(
    t_base: float, n_base: int, t_n: float, n: int
) -> float:
    """Fixed problem: E = (T_base * N_base) / (T_N * N)."""
    if min(t_base, t_n) <= 0 or min(n_base, n) < 1:
        raise ValueError("times must be positive and task counts >= 1")
    return (t_base * n_base) / (t_n * n)


def weak_scaling_efficiency(t_base: float, t_n: float) -> float:
    """Problem grows with N: E = T_base / T_N (1.0 is perfect)."""
    if min(t_base, t_n) <= 0:
        raise ValueError("times must be positive")
    return t_base / t_n


def fit_amdahl(points: Sequence[ScalingPoint]) -> float:
    """Least-squares estimate of the serial fraction s in Amdahl's law.

    T(n) = T1 * (s + (1-s)/n); fitted over the sweep, clamped to [0, 1].
    A large fitted s explains a flattening strong-scaling curve -- for
    HPGMG that is the latency-bound coarse grids.
    """
    points = sorted(points, key=lambda p: p.tasks)
    if len(points) < 2:
        raise ValueError("need at least two points to fit")
    t1 = points[0].seconds * points[0].tasks  # normalise to 1-task time
    n = np.array([p.tasks for p in points], dtype=float)
    t = np.array([p.seconds for p in points], dtype=float)
    # T/T1 = s + (1-s)/n  ->  linear in x = (1 - 1/n): T/T1 = 1/n + s*x
    x = 1.0 - 1.0 / n
    y = t / t1 - 1.0 / n
    denom = float(np.dot(x, x))
    if denom == 0:
        return 0.0
    s = float(np.dot(x, y) / denom)
    return min(max(s, 0.0), 1.0)
