"""The five STREAM kernels, for real, with BabelStream's verification.

BabelStream [Deakin et al. 2018] measures Copy, Mul, Add, Triad and Dot
over three arrays ``a, b, c`` initialised to (0.1, 0.2, 0.0), running each
kernel ``num_times`` times and verifying the final array contents against
an exact recurrence.  This module is that algorithm in numpy -- the
vectorized idiom the HPC-Python guides prescribe (no Python-level loops
over elements, in-place updates, no hidden copies).

The kernels genuinely execute, so the verification is meaningful; the
*timing* of a simulated platform comes from :mod:`repro.machine` via
:mod:`repro.apps.babelstream.simulator`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

__all__ = ["StreamArrays", "StreamKernels", "VerificationError", "KERNELS"]

START_A, START_B, START_C = 0.1, 0.2, 0.0
SCALAR = 0.4

#: kernel name -> (reads, writes) in units of arrays touched
KERNELS: Dict[str, Tuple[int, int]] = {
    "Copy": (1, 1),
    "Mul": (1, 1),
    "Add": (2, 1),
    "Triad": (2, 1),
    "Dot": (2, 0),
}


class VerificationError(RuntimeError):
    """Final array contents differ from the analytic recurrence."""


@dataclass
class StreamArrays:
    a: np.ndarray
    b: np.ndarray
    c: np.ndarray

    @classmethod
    def initialise(cls, n: int, dtype=np.float64) -> "StreamArrays":
        return cls(
            a=np.full(n, START_A, dtype=dtype),
            b=np.full(n, START_B, dtype=dtype),
            c=np.full(n, START_C, dtype=dtype),
        )

    @property
    def n(self) -> int:
        return self.a.shape[0]

    @property
    def dtype_bytes(self) -> int:
        return self.a.dtype.itemsize


class StreamKernels:
    """Executes the BabelStream loop and verifies the results."""

    def __init__(self, arrays: StreamArrays, scalar: float = SCALAR):
        self.arrays = arrays
        self.scalar = scalar
        self.last_dot = 0.0

    # -- the kernels (in-place, no temporaries beyond numpy's fused ops) -----
    def copy(self) -> None:
        np.copyto(self.arrays.c, self.arrays.a)

    def mul(self) -> None:
        np.multiply(self.arrays.c, self.scalar, out=self.arrays.b)

    def add(self) -> None:
        np.add(self.arrays.a, self.arrays.b, out=self.arrays.c)

    def triad(self) -> None:
        np.multiply(self.arrays.c, self.scalar, out=self.arrays.a)
        self.arrays.a += self.arrays.b

    def dot(self) -> float:
        self.last_dot = float(np.dot(self.arrays.a, self.arrays.b))
        return self.last_dot

    def run_all(self, num_times: int) -> None:
        """The BabelStream main loop: all five kernels, num_times rounds."""
        for _ in range(num_times):
            self.copy()
            self.mul()
            self.add()
            self.triad()
            self.dot()

    # -- verification -----------------------------------------------------------
    @staticmethod
    def expected_values(num_times: int, scalar: float = SCALAR) -> Tuple[float, float, float]:
        """Exact per-element values after ``num_times`` rounds."""
        a, b, c = START_A, START_B, START_C
        for _ in range(num_times):
            c = a
            b = scalar * c
            c = a + b
            a = scalar * c + b
        return a, b, c

    def verify(self, num_times: int, tol_factor: float = 8.0) -> None:
        """Raise :class:`VerificationError` on drift beyond epsilon noise."""
        exp_a, exp_b, exp_c = self.expected_values(num_times, self.scalar)
        eps = np.finfo(self.arrays.a.dtype).eps
        n = self.arrays.n
        checks = [
            ("a", self.arrays.a, exp_a),
            ("b", self.arrays.b, exp_b),
            ("c", self.arrays.c, exp_c),
        ]
        for name, arr, expected in checks:
            err = float(np.mean(np.abs(arr - expected)))
            bound = tol_factor * eps * max(abs(expected), 1.0) * num_times
            if err > bound:
                raise VerificationError(
                    f"array {name} mean error {err:.3e} exceeds {bound:.3e}"
                )
        exp_dot = exp_a * exp_b * n
        if exp_dot != 0:
            rel = abs(self.last_dot - exp_dot) / abs(exp_dot)
            if rel > tol_factor * eps * n:
                raise VerificationError(
                    f"dot product {self.last_dot:.6e} differs from "
                    f"{exp_dot:.6e} (rel {rel:.3e})"
                )

    # -- traffic accounting -------------------------------------------------------
    def bytes_for(self, kernel: str, n: int | None = None) -> int:
        """Ideal DRAM traffic for one kernel execution (STREAM convention)."""
        if kernel not in KERNELS:
            raise KeyError(f"unknown kernel {kernel!r}")
        n = n if n is not None else self.arrays.n
        reads, writes = KERNELS[kernel]
        return (reads + writes) * n * self.arrays.dtype_bytes

    def flops_for(self, kernel: str, n: int | None = None) -> int:
        n = n if n is not None else self.arrays.n
        return {"Copy": 0, "Mul": 1, "Add": 1, "Triad": 2, "Dot": 2}[kernel] * n
