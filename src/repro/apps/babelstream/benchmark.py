"""The BabelStream runner benchmark (Section 3.1 / Figure 2).

One parameterized test fans out over all ten programming models; the
framework's conflict knowledge (TBB on aarch64, CUDA on CPUs, ...) turns
impossible combinations into clean build-stage failures -- the white
``*`` boxes of Figure 2 -- instead of silent gaps.

FOM: ``Triad`` bandwidth in GB/s (Principle 1 pairs it with the platform's
theoretical peak to yield efficiency; see
:mod:`repro.analysis.efficiency`).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.apps.babelstream.simulator import BabelStreamRun, default_array_size
from repro.machine.progmodel import PROGRAMMING_MODELS
from repro.runner import sanity as sn
from repro.runner.benchmark import (
    ProgramContext,
    SpackTest,
    rfm_test,
    run_before,
)
from repro.runner.fields import parameter, variable

__all__ = ["BabelStreamBenchmark", "StreamBenchmark"]


@rfm_test
class BabelStreamBenchmark(SpackTest):
    """Single-node memory bandwidth in every programming model."""

    descr = variable(str, value="BabelStream memory bandwidth survey")
    valid_prog_environs = variable(list, value=["*"])
    model = parameter(PROGRAMMING_MODELS)
    #: 0 means "apply the paper's array sizing rule for the platform"
    array_size = variable(int, value=0)
    num_times = variable(int, value=100)
    executable = variable(str, value="babelstream")
    num_tasks = variable(int, value=1)
    tags = {"babelstream", "memory-bandwidth", "figure2"}

    def __init__(self, **params):
        super().__init__(**params)
        # Principle 2/4: the model is a build variant, so the binary the
        # framework runs was demonstrably built for this model
        self.spack_spec = f"babelstream +{self.model}"
        self.tags = set(type(self).tags) | {self.model}

    def effective_array_size(self, node) -> int:
        if self.array_size:
            return self.array_size
        return default_array_size(node)

    @run_before("run")
    def set_executable_opts(self):
        """Record the exact run command (Principle 5) before submission."""
        size = self.effective_array_size(self.current_partition.node)
        self.executable_opts = ["-s", str(size), "-n", str(self.num_times)]

    def program(self, ctx: ProgramContext) -> Tuple[str, float]:
        run = BabelStreamRun(
            node=ctx.node,
            model=self.model,
            compiler=ctx.compiler,
            array_size=self.effective_array_size(ctx.node),
            num_times=self.num_times,
            seed_context=ctx.platform,
        )
        return run.render_output()

    def check_sanity(self, stdout: str) -> None:
        sn.assert_found(r"^BabelStream", stdout, "missing BabelStream banner")
        for kernel in ("Copy", "Mul", "Add", "Triad", "Dot"):
            sn.assert_found(
                rf"^{kernel}\s+[\d.]+", stdout, f"missing {kernel} result row"
            )

    def extract_performance(self, stdout: str) -> Dict[str, Tuple[float, str]]:
        out: Dict[str, Tuple[float, str]] = {}
        for kernel in ("Copy", "Mul", "Add", "Triad", "Dot"):
            mbytes = sn.extractsingle(
                rf"^{kernel}\s+([\d.]+)", stdout, group=1, conv=float
            )
            out[kernel] = (mbytes / 1e3, "GB/s")
        return out


@rfm_test
class StreamBenchmark(SpackTest):
    """Classic McCalpin STREAM: the OpenMP-only baseline BabelStream
    generalises.  Kept as a minimal second suite -- its Triad should agree
    with BabelStream's OpenMP variant on every platform, which the test
    suite asserts as a cross-benchmark consistency check."""

    descr = variable(str, value="McCalpin STREAM (OpenMP)")
    valid_prog_environs = variable(list, value=["*"])
    array_size = variable(int, value=0)
    num_times = variable(int, value=10)
    executable = variable(str, value="stream_c.exe")
    num_tasks = variable(int, value=1)
    tags = {"stream", "memory-bandwidth"}

    def __init__(self, **params):
        super().__init__(**params)
        self.spack_spec = "stream +openmp"

    def program(self, ctx: ProgramContext) -> Tuple[str, float]:
        run = BabelStreamRun(
            node=ctx.node,
            model="omp",
            compiler=ctx.compiler,
            array_size=self.array_size or default_array_size(ctx.node),
            num_times=self.num_times,
            seed_context=f"stream/{ctx.platform}",
        )
        results, seconds = run.execute()
        lines = [
            "-------------------------------------------------------------",
            "STREAM version $Revision: 5.10 $",
            f"Array size = {run.array_size} (elements)",
            "Function    Best Rate MB/s  Avg time     Min time     Max time",
        ]
        for r in results:
            if r.name == "Dot":
                continue  # classic STREAM has no dot kernel
            name = "Scale" if r.name == "Mul" else r.name
            lines.append(
                f"{name}:{r.mbytes_per_sec:16.1f}"
                f"{r.avg_seconds:13.6f}{r.min_seconds:13.6f}"
                f"{r.max_seconds:13.6f}"
            )
        lines.append("Solution Validates: avg error less than 1.0e-13")
        return "\n".join(lines) + "\n", seconds

    def check_sanity(self, stdout: str) -> None:
        sn.assert_found(r"Solution Validates", stdout)
        for kernel in ("Copy", "Scale", "Add", "Triad"):
            sn.assert_found(rf"^{kernel}:", stdout)

    def extract_performance(self, stdout: str) -> Dict[str, Tuple[float, str]]:
        out = {}
        for kernel in ("Copy", "Scale", "Add", "Triad"):
            rate = sn.extractsingle(rf"^{kernel}:\s+([\d.]+)", stdout, 1, float)
            out[kernel] = (rate / 1e3, "GB/s")
        return out
