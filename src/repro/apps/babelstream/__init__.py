"""BabelStream: sustained memory bandwidth in many programming models."""

from repro.apps.babelstream.kernels import (
    StreamArrays,
    StreamKernels,
    VerificationError,
)
from repro.apps.babelstream.simulator import (
    BabelStreamRun,
    KernelResult,
    default_array_size,
)

__all__ = [
    "StreamArrays",
    "StreamKernels",
    "VerificationError",
    "BabelStreamRun",
    "KernelResult",
    "default_array_size",
]
