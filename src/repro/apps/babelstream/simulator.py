"""Run BabelStream on a simulated platform and emit its real output format.

The kernels execute for real on a scaled-down array (so each of the
hundreds of Figure 2 cells verifies in milliseconds), while DRAM traffic
is accounted at the *declared* array size and timed by the roofline model
with the programming-model efficiency for the platform.  Output matches
upstream BabelStream closely enough that the runner's regexes are the
ones a real deployment would use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.apps.babelstream.kernels import KERNELS, StreamArrays, StreamKernels
from repro.machine.clock import DeterministicRNG
from repro.machine.progmodel import (
    ModelEfficiency,
    ProgrammingModelDB,
    default_model_db,
)
from repro.machine.roofline import KernelProfile, RooflineModel
from repro.systems.hardware import NodeSpec

__all__ = ["KernelResult", "BabelStreamRun", "default_array_size",
           "MODEL_LABELS"]

#: model key -> the Implementation string BabelStream prints
MODEL_LABELS = {
    "omp": "OpenMP",
    "kokkos": "Kokkos",
    "cuda": "CUDA",
    "ocl": "OpenCL",
    "std-data": "STD (data-oriented)",
    "std-indices": "STD (index-oriented)",
    "std-ranges": "STD (ranges)",
    "tbb": "TBB",
    "sycl": "SYCL",
    "acc": "OpenACC",
}

#: mild per-kernel bandwidth personality: pure reads stream best, the
#: read-modify-write kernels pay write-allocate overheads
_KERNEL_FACTOR = {"Copy": 0.985, "Mul": 0.985, "Add": 1.0, "Triad": 1.0,
                  "Dot": 1.03}


def default_array_size(node: NodeSpec) -> int:
    """The paper's sizing rule, automated.

    Start from ``2^25`` elements and grow until a single array exceeds
    four times the total last-level cache, so data is guaranteed "to go
    beyond the L3 cache size and be read from the main memory".  On the
    512 MB-L3 Milan this lands exactly on the paper's ``2^29``; on the
    27.5 MB Cascade Lake it stays at ``2^25``.
    """
    exponent = 25
    while (1 << exponent) * 8 <= 4 * node.llc_bytes:
        exponent += 1
    return 1 << exponent


@dataclass
class KernelResult:
    name: str
    mbytes_per_sec: float
    min_seconds: float
    max_seconds: float
    avg_seconds: float

    @property
    def gbytes_per_sec(self) -> float:
        return self.mbytes_per_sec / 1e3


@dataclass
class BabelStreamRun:
    """One BabelStream execution on one platform."""

    node: NodeSpec
    model: str
    compiler: str = "gcc"
    array_size: Optional[int] = None
    num_times: int = 100
    verify_size: int = 4096
    model_db: ProgrammingModelDB = field(default_factory=default_model_db)
    seed_context: str = ""

    def __post_init__(self) -> None:
        if self.array_size is None:
            self.array_size = default_array_size(self.node)

    # -- execution ---------------------------------------------------------
    def execute(self) -> "tuple[List[KernelResult], float]":
        """Returns per-kernel results and total simulated seconds.

        Raises :class:`~repro.machine.progmodel.UnsupportedModelError` when
        the model cannot run on this platform (a Figure 2 ``*`` box) and
        :class:`~repro.apps.babelstream.kernels.VerificationError` if the
        real math went wrong.
        """
        eff: ModelEfficiency = self.model_db.efficiency(
            self.model, self.node, self.compiler
        )

        # real math at reduced size: correctness is size-independent
        arrays = StreamArrays.initialise(self.verify_size)
        kernels = StreamKernels(arrays)
        kernels.run_all(self.num_times)
        kernels.verify(self.num_times)

        roofline = RooflineModel(self.node)
        n = self.array_size
        results: List[KernelResult] = []
        total = 0.0
        for kname in KERNELS:
            traffic = kernels.bytes_for(kname, n)
            profile = KernelProfile(
                name=kname,
                bytes_moved=traffic,
                flops=kernels.flops_for(kname, n),
                working_set_bytes=3 * n * 8,
            )
            base = roofline.time_for(
                profile,
                bandwidth_efficiency=eff.factor * _KERNEL_FACTOR[kname],
            )
            times = []
            for rep in range(self.num_times):
                rng = DeterministicRNG(
                    "babelstream", self.seed_context, self.model,
                    self.compiler, kname, n, rep,
                )
                times.append(base * rng.lognormal_factor(0.015))
            tmin, tmax = min(times), max(times)
            tavg = sum(times) / len(times)
            total += sum(times)
            results.append(
                KernelResult(
                    name=kname,
                    mbytes_per_sec=traffic / tmin / 1e6,
                    min_seconds=tmin,
                    max_seconds=tmax,
                    avg_seconds=tavg,
                )
            )
        return results, total

    # -- reporting ------------------------------------------------------------
    def render_output(self) -> "tuple[str, float]":
        """(stdout in BabelStream's format, simulated seconds)."""
        results, total = self.execute()
        n = self.array_size
        array_mb = n * 8 / 1e6
        lines = [
            "BabelStream",
            "Version: 4.0",
            f"Implementation: {MODEL_LABELS.get(self.model, self.model)}",
            f"Running kernels {self.num_times} times",
            "Precision: double",
            f"Array size: {array_mb:.1f} MB (={array_mb / 1e3:.1f} GB)",
            f"Total size: {3 * array_mb:.1f} MB (={3 * array_mb / 1e3:.1f} GB)",
            "Function    MBytes/sec  Min (sec)   Max         Average",
        ]
        for r in results:
            lines.append(
                f"{r.name:<12}{r.mbytes_per_sec:<12.3f}{r.min_seconds:<12.5f}"
                f"{r.max_seconds:<12.5f}{r.avg_seconds:<12.5f}"
            )
        return "\n".join(lines) + "\n", total
