"""A real finite-volume geometric multigrid solver (the HPGMG-FV algorithm).

HPGMG-FV [Adams et al. 2014] solves a variable-coefficient Poisson
equation with a Full Multigrid (FMG) cycle on a hierarchy of
cell-centred grids.  This is that algorithm in vectorized numpy:
7-point FV Laplacian, weighted-Jacobi smoothing, 8-cell-average
restriction, trilinear-ish prolongation, V-cycles, and the FMG driver
that visits coarse grids first.  The solver genuinely converges (the
test suite checks discretization-limited residuals and the textbook MG
property that convergence rate is h-independent); simulated cluster
timing lives in :mod:`repro.apps.hpgmg.model`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

__all__ = ["PoissonFV", "MultigridLevel", "FmgSolver", "MultigridError"]


class MultigridError(RuntimeError):
    """Raised on invalid grids (non-power-of-two, too small)."""


class PoissonFV:
    """7-point cell-centred FV Laplacian on the unit cube, Dirichlet=0.

    ``apply`` computes ``(A u)_i = (6 u_i - sum of neighbours) / h^2``
    (the standard second-order FV/FD discretization; ghost cells are
    zero).
    """

    def __init__(self, n: int):
        if n < 2 or (n & (n - 1)) != 0:
            raise MultigridError(f"grid dimension {n} must be a power of two >= 2")
        self.n = n
        self.h = 1.0 / n

    def apply(self, u: np.ndarray) -> np.ndarray:
        out = 6.0 * u
        out[:-1, :, :] -= u[1:, :, :]
        out[1:, :, :] -= u[:-1, :, :]
        out[:, :-1, :] -= u[:, 1:, :]
        out[:, 1:, :] -= u[:, :-1, :]
        out[:, :, :-1] -= u[:, :, 1:]
        out[:, :, 1:] -= u[:, :, :-1]
        return out / (self.h * self.h)

    @property
    def diagonal(self) -> float:
        return 6.0 / (self.h * self.h)

    def residual(self, u: np.ndarray, f: np.ndarray) -> np.ndarray:
        return f - self.apply(u)


def restrict(fine: np.ndarray) -> np.ndarray:
    """8-cell average: the FV-consistent restriction."""
    return 0.125 * (
        fine[0::2, 0::2, 0::2] + fine[1::2, 0::2, 0::2]
        + fine[0::2, 1::2, 0::2] + fine[1::2, 1::2, 0::2]
        + fine[0::2, 0::2, 1::2] + fine[1::2, 0::2, 1::2]
        + fine[0::2, 1::2, 1::2] + fine[1::2, 1::2, 1::2]
    )


def _interp_axis(arr: np.ndarray, axis: int) -> np.ndarray:
    """Cell-centred linear interpolation doubling one axis.

    A fine cell centre sits a quarter-cell from its parent coarse centre,
    so the weights are (3/4, 1/4) toward the nearer/farther coarse
    neighbour, with replication at the boundary.
    """
    lo = np.swapaxes(arr, 0, axis)
    minus = np.concatenate([lo[:1], lo[:-1]], axis=0)
    plus = np.concatenate([lo[1:], lo[-1:]], axis=0)
    out = np.empty((lo.shape[0] * 2,) + lo.shape[1:], dtype=arr.dtype)
    out[0::2] = 0.75 * lo + 0.25 * minus
    out[1::2] = 0.75 * lo + 0.25 * plus
    return np.swapaxes(out, 0, axis)


def prolong(coarse: np.ndarray) -> np.ndarray:
    """Trilinear cell-centred prolongation to the 2x finer grid.

    Second-order transfers are required for a convergent V-cycle with
    inexact coarse solves (piecewise-constant injection only sums to
    transfer order 2 with the 8-cell-average restriction, which is not
    enough for a second-order PDE).
    """
    out = coarse
    for axis in range(3):
        out = _interp_axis(out, axis)
    return out


@dataclass
class MultigridLevel:
    operator: PoissonFV
    #: operator applications performed on this level (work accounting)
    applies: int = 0

    @property
    def dof(self) -> int:
        return self.operator.n ** 3


class FmgSolver:
    """The multigrid hierarchy and its V-cycle / FMG drivers."""

    def __init__(
        self,
        n: int,
        pre_smooth: int = 2,
        post_smooth: int = 2,
        omega: float = 6.0 / 7.0,
        coarsest: int = 2,
        gamma: int = 2,
    ):
        self.levels: List[MultigridLevel] = []
        dim = n
        while dim >= coarsest:
            self.levels.append(MultigridLevel(PoissonFV(dim)))
            if dim == coarsest:
                break
            dim //= 2
        if len(self.levels) < 2:
            raise MultigridError(f"grid {n} too small for multigrid")
        self.pre_smooth = pre_smooth
        self.post_smooth = post_smooth
        self.omega = omega
        # gamma=2 (W-cycles): cell-centred transfers are non-variational,
        # so V-cycles lose a constant factor per level and diverge beyond
        # ~4 levels; W-cycles restore an h-independent rate (~0.3 here,
        # checked by the test suite).  HPGMG itself smooths far harder
        # (Chebyshev/GSRB) for the same reason.
        self.gamma = gamma

    @property
    def finest(self) -> MultigridLevel:
        return self.levels[0]

    def smooth(self, level: int, u: np.ndarray, f: np.ndarray,
               sweeps: int) -> np.ndarray:
        op = self.levels[level].operator
        inv_diag = self.omega / op.diagonal
        for _ in range(sweeps):
            u = u + inv_diag * (f - op.apply(u))
            self.levels[level].applies += 1
        return u

    def v_cycle(self, level: int, u: np.ndarray, f: np.ndarray) -> np.ndarray:
        """One gamma-cycle (gamma=1: V, gamma=2: W) from ``level`` down."""
        op = self.levels[level].operator
        if level == len(self.levels) - 1:
            # coarsest: smooth hard (few unknowns, exactness irrelevant)
            return self.smooth(level, u, f, 32)
        u = self.smooth(level, u, f, self.pre_smooth)
        residual = op.residual(u, f)
        self.levels[level].applies += 1
        coarse_f = restrict(residual)
        coarse_u = np.zeros_like(coarse_f)
        for _ in range(self.gamma):
            coarse_u = self.v_cycle(level + 1, coarse_u, coarse_f)
        u = u + prolong(coarse_u)
        u = self.smooth(level, u, f, self.post_smooth)
        return u

    def fmg(self, f: np.ndarray, v_cycles: int = 1) -> np.ndarray:
        """Full multigrid: solve coarse first, prolong, V-cycle at each level."""
        # restrict f all the way down
        rhs = [f]
        for _ in range(len(self.levels) - 1):
            rhs.append(restrict(rhs[-1]))
        # coarsest solve
        u = np.zeros_like(rhs[-1])
        u = self.smooth(len(self.levels) - 1, u, rhs[-1], 32)
        # work back up
        for level in range(len(self.levels) - 2, -1, -1):
            u = prolong(u)
            for _ in range(v_cycles):
                u = self.v_cycle(level, u, rhs[level])
        return u

    def solve(
        self,
        f: Optional[np.ndarray] = None,
        v_cycles: int = 1,
        extra_v_cycles: int = 0,
    ) -> "FmgResult":
        op = self.finest.operator
        n = op.n
        if f is None:
            # a smooth manufactured solution: u* = product of sines
            x = (np.arange(n) + 0.5) / n
            xx, yy, zz = np.meshgrid(x, x, x, indexing="ij")
            u_exact = np.sin(np.pi * xx) * np.sin(np.pi * yy) * np.sin(np.pi * zz)
            f = op.apply(u_exact)
        else:
            u_exact = None
        u = self.fmg(f, v_cycles=v_cycles)
        for _ in range(extra_v_cycles):
            u = self.v_cycle(0, u, f)
        res = float(np.linalg.norm(op.residual(u, f)) / np.linalg.norm(f))
        err = (
            float(np.max(np.abs(u - u_exact))) if u_exact is not None else None
        )
        total_applies = sum(
            lvl.applies * lvl.dof for lvl in self.levels
        )
        return FmgResult(
            u=u,
            relative_residual=res,
            max_error=err,
            dof=self.finest.dof,
            weighted_applies=total_applies,
        )


@dataclass
class FmgResult:
    u: np.ndarray
    relative_residual: float
    max_error: Optional[float]
    dof: int
    weighted_applies: float = 0.0
