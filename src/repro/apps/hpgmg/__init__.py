"""HPGMG-FV: finite-volume full multigrid (Section 3.3, Table 4)."""

from repro.apps.hpgmg.multigrid import FmgSolver, MultigridLevel, PoissonFV
from repro.apps.hpgmg.model import HpgmgTimingModel, HPGMG_CALIBRATION

__all__ = [
    "FmgSolver",
    "MultigridLevel",
    "PoissonFV",
    "HpgmgTimingModel",
    "HPGMG_CALIBRATION",
]
