"""HPGMG-FV runner benchmark (Section 3.3, Table 4).

The paper's invocation::

    reframe -c excalibur-tests/benchmarks/apps/hpgmg -r -J'--qos=standard'
        --system archer2 -S spack_spec=hpgmg%gcc
        --setvar=num_cpus_per_task=8 --setvar=num_tasks_per_node=2
        --setvar=num_tasks=8

maps one-to-one onto ``repro-bench -c hpgmg ...`` with the same flags.
The test really runs the FMG solver (scaled-down grid) to validate the
algorithm, then reports the three per-level FOMs from the cluster timing
model in HPGMG's own output format.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.apps.hpgmg.model import HpgmgTimingModel
from repro.apps.hpgmg.multigrid import FmgSolver
from repro.machine.clock import DeterministicRNG
from repro.runner import sanity as sn
from repro.runner.benchmark import ProgramContext, SpackTest, rfm_test
from repro.runner.fields import variable

__all__ = ["HpgmgBenchmark"]


@rfm_test
class HpgmgBenchmark(SpackTest):
    """Finite-volume full multigrid; FOM is DOF/s at levels l0, l1, l2."""

    descr = variable(str, value="HPGMG-FV full multigrid proxy")
    valid_prog_environs = variable(list, value=["*"])
    executable = variable(str, value="hpgmg-fv")
    #: the paper's command line arguments '7 8'
    log2_box_dim = variable(int, value=7)
    boxes_per_rank = variable(int, value=8)
    #: the paper's fixed cross-system layout
    num_tasks = variable(int, value=8)
    num_tasks_per_node = variable(int, value=2)
    num_cpus_per_task = variable(int, value=8)
    #: verification grid for the real solve (full 2^7 boxes would be slow)
    verify_dim = variable(int, value=32)
    tags = {"hpgmg", "table4", "multigrid"}

    def __init__(self, **params):
        super().__init__(**params)
        self.spack_spec = "hpgmg"
        self.executable_opts = [str(self.log2_box_dim), str(self.boxes_per_rank)]

    def program(self, ctx: ProgramContext) -> Tuple[str, float]:
        # real algorithm check: FMG converges to discretization accuracy
        solver = FmgSolver(self.verify_dim)
        solve = solver.solve(v_cycles=1, extra_v_cycles=1)
        valid = solve.relative_residual < 0.1 and (
            solve.max_error is None or solve.max_error < 0.05
        )

        model = HpgmgTimingModel(
            system=ctx.system,
            node=ctx.node,
            num_tasks=ctx.num_tasks,
            num_tasks_per_node=ctx.num_tasks_per_node or 1,
            num_cpus_per_task=ctx.num_cpus_per_task,
            log2_box_dim=self.log2_box_dim,
            boxes_per_rank=self.boxes_per_rank,
        )
        lines = [
            "HPGMG-FV benchmark",
            "Requested MPI_THREAD_FUNNELED",
            f"{ctx.num_tasks} MPI Tasks of {ctx.num_cpus_per_task} threads",
            f"truncating the v-cycle at 2^3 subdomains",
            f"FMG solve error: {solve.max_error:.3e}"
            if solve.max_error is not None
            else "FMG solve",
            "FMG convergence: " + ("VERIFIED" if valid else "FAILED"),
        ]
        total_seconds = 0.0
        for level, dof_s in model.fom_levels(3):
            rng = DeterministicRNG("hpgmg", ctx.platform, level,
                                   ctx.num_tasks)
            rate = dof_s * rng.lognormal_factor(0.012)
            seconds = model.solve_seconds(level)
            total_seconds += seconds * 10  # the benchmark times ~10 solves
            lines.append(
                f"  h={2 ** -(self.log2_box_dim - level):9.6f}  "
                f"DOF {model.dof_global(level):>12d}  "
                f"time {seconds:8.6f} seconds  "
                f"DOF/s={rate:.3e}"
            )
        return "\n".join(lines) + "\n", max(total_seconds, 30.0)

    def check_sanity(self, stdout: str) -> None:
        sn.assert_found(r"HPGMG-FV benchmark", stdout)
        sn.assert_found(r"FMG convergence: VERIFIED", stdout,
                        "the multigrid solve did not converge")
        sn.assert_eq(sn.count(r"DOF/s=", stdout), 3,
                     "expected three per-level FOMs")

    def extract_performance(self, stdout: str) -> Dict[str, Tuple[float, str]]:
        rates = sn.extractall(r"DOF/s=([\d.e+]+)", stdout, group=1, conv=float)
        return {
            f"l{i}": (rate / 1e6, "MDOF/s") for i, rate in enumerate(rates)
        }
