"""Cluster timing model for multi-node HPGMG-FV runs (Table 4).

Table 4 runs HPGMG-FV in a fixed layout -- 8 MPI tasks, 2 per node,
8 CPUs per task, box-size arguments ``7 8`` -- and reports the compute
rate (10^6 DOF/s) at the three finest FMG levels l0, l1, l2.  The paper's
takeaway is that identical configurations differ wildly across systems
("specifics of the platform can impact the performance ... significantly
beyond changes in the underlying architecture"): the two Cascade Lake
systems land at 126.1 (CSD3) and 30.6 (Isambard-MACS) MDOF/s.

The model decomposes each level's solve into

* **compute**: FMG's memory traffic per DOF over the bandwidth the
  task's 8 cores can actually draw (with last-level-cache capture when a
  coarse level's working set fits -- that is what lifts COSMA8's l2 rate
  above its l1, the one non-monotone row in Table 4),
* **communication**: per MG-level halo exchanges and allreduces over the
  system's interconnect (latency-dominated on coarse grids, which is why
  every system's rate decays toward l2).

Per-system calibration constants (``task_bw_gbs``, ``comm_mult``,
``cache_boost``) stand in for everything the paper observed but did not
decompose: MPI library maturity, affinity defaults, progress-thread
behaviour.  They are fitted to Table 4 and documented as such.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.machine.interconnect import INTERCONNECTS, InterconnectModel
from repro.systems.hardware import NodeSpec

__all__ = ["HpgmgTimingModel", "HpgmgCalibration", "HPGMG_CALIBRATION"]

#: Effective DRAM bytes the benchmark moves per fine-grid DOF, folding:
#: ~10 stencil sweeps per level visit at ~24 B/DOF, the W-cycle visiting
#: level k 2^k times (the geometric series then sums to ~2x the finest),
#: the benchmark's repeated timed solves, and the untuned -O2 build's
#: extra traffic.  Calibrated so the Table 4 task bandwidths come out at
#: physically sensible values (9-45 GB/s for an 8-core task).
FMG_BYTES_PER_DOF = 2280.0

#: messages per MG level per visit: pre/post smooth halos, residual halo,
#: transfer halos, and two allreduces for norms
HALOS_PER_LEVEL = 8
ALLREDUCES_PER_LEVEL = 2


@dataclass(frozen=True)
class HpgmgCalibration:
    """Fitted per-system constants (see module docstring)."""

    #: GB/s one 8-core task draws from DRAM in this system's default
    #: affinity/MPI configuration
    task_bw_gbs: float
    #: multiplier on modelled communication time (library maturity etc.)
    comm_mult: float
    #: bandwidth multiplier when a level's per-task working set fits
    #: in the task's share of last-level cache
    cache_boost: float = 3.0


#: Fitted to Table 4 by least squares over (l0, l1, l2) in log space
#: (see benchmarks/test_table4_hpgmg.py for the check).  The stories the
#: numbers tell match the paper's reading: CSD3's well-provisioned nodes
#: draw the most bandwidth per task but its scheduler placement spreads
#: ranks (higher effective message cost toward coarse levels); COSMA8's
#: mvapich overlaps small messages extremely well (its l2 barely drops);
#: the MACS testbed is slow *everywhere* -- a quarter of CSD3's task
#: bandwidth on the same ISA, the paper's headline observation.
HPGMG_CALIBRATION: Dict[str, HpgmgCalibration] = {
    "archer2": HpgmgCalibration(task_bw_gbs=28.9, comm_mult=1.25, cache_boost=1.0),
    "cosma8": HpgmgCalibration(task_bw_gbs=22.4, comm_mult=0.15, cache_boost=1.0),
    "csd3": HpgmgCalibration(task_bw_gbs=43.1, comm_mult=3.48, cache_boost=1.0),
    "isambard-macs": HpgmgCalibration(task_bw_gbs=9.5, comm_mult=1.19, cache_boost=1.24),
    # not part of Table 4; plausible values for completeness
    "isambard": HpgmgCalibration(task_bw_gbs=12.0, comm_mult=1.5, cache_boost=1.0),
    "noctua2": HpgmgCalibration(task_bw_gbs=33.0, comm_mult=0.9, cache_boost=1.0),
}


class HpgmgTimingModel:
    """Predicts per-level solve times for one (system, layout) combination."""

    def __init__(
        self,
        system: str,
        node: NodeSpec,
        num_tasks: int,
        num_tasks_per_node: int,
        num_cpus_per_task: int,
        log2_box_dim: int = 7,
        boxes_per_rank: int = 8,
    ):
        if system not in HPGMG_CALIBRATION:
            raise KeyError(
                f"no HPGMG calibration for system {system!r}; "
                f"have {sorted(HPGMG_CALIBRATION)}"
            )
        self.system = system
        self.node = node
        self.cal = HPGMG_CALIBRATION[system]
        self.net: InterconnectModel = INTERCONNECTS[system]
        self.num_tasks = num_tasks
        self.num_tasks_per_node = num_tasks_per_node
        self.num_cpus_per_task = num_cpus_per_task
        self.log2_box_dim = log2_box_dim
        self.boxes_per_rank = boxes_per_rank

    # -- problem sizes -----------------------------------------------------
    def dof_global(self, level: int) -> int:
        box = (1 << self.log2_box_dim) ** 3
        total = box * self.boxes_per_rank * self.num_tasks
        return total // (8 ** level)

    def _levels_below(self, level: int) -> int:
        """MG levels in the hierarchy under FOM level ``level``."""
        dim = (1 << self.log2_box_dim) >> level
        return max(int(math.log2(dim)) - 1, 1)

    # -- time decomposition --------------------------------------------------
    def compute_seconds(self, level: int) -> float:
        dof_task = self.dof_global(level) / self.num_tasks
        bytes_task = dof_task * FMG_BYTES_PER_DOF
        bw = self.cal.task_bw_gbs
        # cache capture: a coarse level's vectors (u, f, residual) fitting
        # the task's LLC share run at boosted bandwidth
        llc_task = self.node.llc_bytes / max(self.num_tasks_per_node, 1)
        if 3 * dof_task * 8 <= llc_task:
            bw *= self.cal.cache_boost
        return bytes_task / (bw * 1e9)

    def comm_seconds(self, level: int) -> float:
        total = 0.0
        dim = (1 << self.log2_box_dim) >> level
        ranks = self.num_tasks
        k_dim = dim
        for k in range(self._levels_below(level)):
            # the W-cycle (gamma=2) visits level k 2^k times per solve,
            # and the benchmark times ~10 solves: coarse levels are pure
            # message latency, many times over
            visits = min(2 ** k, 64) * 10
            face_bytes = (k_dim ** 2) * 8 * self.boxes_per_rank
            total += visits * (
                HALOS_PER_LEVEL * self.net.halo_exchange_seconds(face_bytes)
                + ALLREDUCES_PER_LEVEL * self.net.allreduce_seconds(8, ranks)
            )
            k_dim = max(k_dim // 2, 2)
        return total * self.cal.comm_mult / self.net.efficiency

    def solve_seconds(self, level: int) -> float:
        return self.compute_seconds(level) + self.comm_seconds(level)

    def dof_per_second(self, level: int) -> float:
        return self.dof_global(level) / self.solve_seconds(level)

    def fom_levels(self, levels: int = 3) -> List[Tuple[int, float]]:
        """The HPGMG FOM: (level, DOF/s) for the finest ``levels``."""
        return [(l, self.dof_per_second(l)) for l in range(levels)]
