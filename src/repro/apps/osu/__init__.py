"""OSU-style MPI microbenchmarks over the simulated interconnects.

Not one of the paper's three case studies, but the natural fourth suite
for its framework (the excalibur-tests repository this paper describes
ships OSU benchmarks alongside BabelStream/HPCG/HPGMG): point-to-point
latency and bandwidth sweeps that characterise exactly the per-system
network differences the HPGMG survey exposed.
"""

from repro.apps.osu.microbench import (
    OsuSweep,
    latency_sweep,
    bandwidth_sweep,
)

__all__ = ["OsuSweep", "latency_sweep", "bandwidth_sweep"]
