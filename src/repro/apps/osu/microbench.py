"""The osu_latency / osu_bw message-size sweeps.

Each sweep exercises the system's
:class:`~repro.machine.interconnect.InterconnectModel` over the standard
OSU message sizes (powers of two from 1 B to 4 MB), with deterministic
per-size jitter.  Small messages read back the network's latency, large
ones its bandwidth -- the two constants that decided the Table 4 spread.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.machine.clock import DeterministicRNG
from repro.machine.interconnect import INTERCONNECTS, InterconnectModel

__all__ = ["OsuSweep", "latency_sweep", "bandwidth_sweep", "OSU_SIZES"]

#: the standard OSU sweep: 2^0 .. 2^22 bytes
OSU_SIZES: Tuple[int, ...] = tuple(1 << p for p in range(0, 23, 2))


@dataclass(frozen=True)
class OsuSweep:
    """One finished sweep: (message bytes, value) pairs plus units."""

    benchmark: str  # "osu_latency" | "osu_bw"
    system: str
    points: Tuple[Tuple[int, float], ...]
    unit: str

    def value_at(self, size: int) -> float:
        for s, v in self.points:
            if s == size:
                return v
        raise KeyError(f"size {size} not in sweep")

    @property
    def smallest(self) -> float:
        return self.points[0][1]

    @property
    def largest(self) -> float:
        return self.points[-1][1]

    def render(self) -> str:
        header = "# Size          Latency (us)" if self.benchmark == "osu_latency" \
            else "# Size      Bandwidth (MB/s)"
        lines = [f"# OSU MPI {self.benchmark[4:].upper()} Test v7.0", header]
        for size, value in self.points:
            lines.append(f"{size:<12d}{value:>18.2f}")
        return "\n".join(lines) + "\n"


def _net_for(system: str) -> InterconnectModel:
    if system not in INTERCONNECTS:
        raise KeyError(
            f"no interconnect model for {system!r}; "
            f"have {sorted(INTERCONNECTS)}"
        )
    return INTERCONNECTS[system]


def latency_sweep(system: str, iterations: int = 1000) -> OsuSweep:
    """Half round-trip time per message size, in microseconds."""
    net = _net_for(system)
    points = []
    for size in OSU_SIZES:
        base = net.transfer_seconds(size) / net.efficiency
        rng = DeterministicRNG("osu_latency", system, size, iterations)
        points.append((size, base * rng.lognormal_factor(0.02) * 1e6))
    return OsuSweep("osu_latency", system, tuple(points), "us")


def bandwidth_sweep(system: str, window: int = 64) -> OsuSweep:
    """Streaming bandwidth per message size, in MB/s.

    A window of in-flight messages amortises latency, as in osu_bw; small
    messages stay latency-limited, large ones approach the link rate.
    """
    net = _net_for(system)
    points = []
    for size in OSU_SIZES:
        # window messages pay one latency plus serialized byte time
        seconds = (
            net.latency_us * 1e-6
            + window * size / (net.bandwidth_gbs * 1e9 * net.efficiency)
        )
        rate = window * size / seconds / 1e6
        rng = DeterministicRNG("osu_bw", system, size, window)
        points.append((size, rate * rng.lognormal_factor(0.02)))
    return OsuSweep("osu_bw", system, tuple(points), "MB/s")
