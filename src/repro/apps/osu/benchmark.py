"""Runner benchmarks for the OSU microbenchmarks.

FOMs follow the excalibur-tests convention: the minimum latency (small
message) and the peak bandwidth (large message) of each sweep.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.apps.osu.microbench import bandwidth_sweep, latency_sweep
from repro.runner import sanity as sn
from repro.runner.benchmark import ProgramContext, SpackTest, rfm_test
from repro.runner.fields import variable

__all__ = ["OsuLatency", "OsuBandwidth"]


class _OsuBase(SpackTest):
    valid_prog_environs = variable(list, value=["*"])
    num_tasks = variable(int, value=2)
    num_tasks_per_node = variable(int, value=1)  # inter-node by design
    tags = {"osu", "network"}

    def __init__(self, **params):
        super().__init__(**params)
        self.spack_spec = "osu-micro-benchmarks"

    def check_sanity(self, stdout: str) -> None:
        sn.assert_found(r"# OSU MPI", stdout)
        sn.assert_bounded(sn.count(r"^\d+", stdout), lo=5)


@rfm_test
class OsuLatency(_OsuBase):
    """Point-to-point half round-trip latency between two nodes."""

    executable = variable(str, value="osu_latency")

    def program(self, ctx: ProgramContext) -> Tuple[str, float]:
        sweep = latency_sweep(ctx.system)
        return sweep.render(), 30.0

    def extract_performance(self, stdout: str) -> Dict[str, Tuple[float, str]]:
        values = sn.extractall(r"^\d+\s+([\d.]+)", stdout, 1, float)
        return {"min_latency": (min(values), "us")}


@rfm_test
class OsuBandwidth(_OsuBase):
    """Streaming point-to-point bandwidth between two nodes."""

    executable = variable(str, value="osu_bw")

    def program(self, ctx: ProgramContext) -> Tuple[str, float]:
        sweep = bandwidth_sweep(ctx.system)
        return sweep.render(), 30.0

    def extract_performance(self, stdout: str) -> Dict[str, Tuple[float, str]]:
        values = sn.extractall(r"^\d+\s+([\d.]+)", stdout, 1, float)
        return {"max_bandwidth": (max(values), "MB/s")}
