"""Per-variant memory-traffic models: the HPCG Table 2 calibration.

HPCG is memory-bandwidth bound on every platform in the study, so each
variant's achievable GFlop/s is

    GF/s = sustained_bandwidth / effective_bytes_per_flop

where *effective bytes per flop* folds together the variant's true DRAM
traffic (CSR streams 12 B of matrix data per 2 flops; matrix-free streams
none) and its achievable fraction of stream bandwidth (reference SymGS is
dependency-limited; the vendor binary is not).  One constant per
(variant, microarchitecture) cell, calibrated so the simulated platforms
land on the paper's Table 2; the *relationships* between cells are the
physics:

* matrix-free < intel-avx2 < original everywhere (less traffic wins),
* Rome's 16x larger L3 pays off far more for matrix-free and LFRic
  (their vector working sets cache; CSR's matrix stream never does),
  giving the paper's E_A = 3.168 on Rome vs 2.125 on Cascade Lake,
* the LFRic operator does more loads per flop than the plain stencil
  (coefficient fields), so it trails on cache-poor Cascade Lake but
  overtakes original CSR on Rome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.systems.hardware import NodeSpec

__all__ = ["VariantModel", "HPCG_VARIANTS", "UnsupportedVariantError"]


class UnsupportedVariantError(RuntimeError):
    """E.g. the MKL binary on an AMD or aarch64 host (Table 2's N/A)."""


@dataclass(frozen=True)
class VariantModel:
    """One HPCG implementation/algorithm variant."""

    name: str
    #: operator kind from repro.apps.hpcg.problem used for the real solve
    operator: str
    #: microarch -> effective bytes per flop (calibrated, see module doc)
    effective_bpf: Dict[str, float]
    description: str = ""

    def bytes_per_flop(self, node: NodeSpec) -> float:
        key = node.processor.microarch
        if key not in self.effective_bpf:
            raise UnsupportedVariantError(
                f"HPCG variant {self.name!r} has no support on {key}"
            )
        return self.effective_bpf[key]

    def gflops_on(self, node: NodeSpec) -> float:
        """Modelled GFlop/s on a full node."""
        bw = node.peak_bandwidth_gbs * node.memory.stream_fraction
        return bw / self.bytes_per_flop(node)


HPCG_VARIANTS: Dict[str, VariantModel] = {
    "original": VariantModel(
        name="original",
        operator="csr",
        description="Reference CSR implementation (SymGS-limited)",
        effective_bpf={
            "cascadelake": 9.386,
            "rome": 8.568,
            "milan": 8.2,
            "thunderx2": 10.5,
        },
    ),
    "intel-avx2": VariantModel(
        name="intel-avx2",
        operator="csr",
        description="Intel oneAPI MKL optimized binary (best of three)",
        # only exists for Intel x86: Table 2 reports N/A on AMD Rome
        effective_bpf={"cascadelake": 5.776},
    ),
    "matrix-free": VariantModel(
        name="matrix-free",
        operator="matrix-free",
        description="27-point stencil applied without an assembled matrix",
        effective_bpf={
            "cascadelake": 4.417,
            "rome": 2.704,
            "milan": 2.6,
            "thunderx2": 5.2,
        },
    ),
    "lfric": VariantModel(
        name="lfric",
        operator="lfric",
        description="Symmetrised LFRic Helmholtz operator (Met Office)",
        effective_bpf={
            "cascadelake": 12.178,
            "rome": 5.998,
            "milan": 5.8,
            "thunderx2": 14.0,
        },
    ),
}
