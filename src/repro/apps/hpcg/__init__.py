"""HPCG: the High Performance Conjugate Gradient benchmark, four ways.

Section 3.2 of the paper compares, on the same framework:

* the **original** CSR reference implementation,
* Intel's **vendor-optimized** binary from oneAPI MKL (``intel-avx2``),
* a **matrix-free** implementation of the same 27-point stencil,
* the **LFRic** variant: a symmetrised Helmholtz operator from the Met
  Office weather model.

Here the solver (:mod:`repro.apps.hpcg.cg`) and all four operators
(:mod:`repro.apps.hpcg.problem`) are real numpy/scipy code whose
convergence the test suite checks; per-variant memory-traffic models
(:mod:`repro.apps.hpcg.variants`) supply the simulated GFlop/s on each
platform.
"""

from repro.apps.hpcg.problem import (
    CsrOperator,
    LfricHelmholtzOperator,
    MatrixFreeOperator,
    Problem,
)
from repro.apps.hpcg.cg import CgResult, conjugate_gradient
from repro.apps.hpcg.variants import HPCG_VARIANTS, VariantModel

__all__ = [
    "Problem",
    "CsrOperator",
    "MatrixFreeOperator",
    "LfricHelmholtzOperator",
    "CgResult",
    "conjugate_gradient",
    "HPCG_VARIANTS",
    "VariantModel",
]
