"""HPCG runner benchmarks: the four Table 2 variants as separate tests.

Named so the paper's exact selection flags work: the appendix runs
``reframe -c benchmarks/apps/hpcg -r -n HPCG_ -x HPCG_Intel``; here the
same ``-n``/``-x`` strings select the same subsets.

Each test really solves the model problem with its operator (a scaled-down
grid so CI stays fast), validates convergence, and reports the modelled
full-node GFlop/s of its (variant, platform) cell.  The FOM line mirrors
reference HPCG's ``Final Summary`` output.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.apps.hpcg.cg import conjugate_gradient
from repro.apps.hpcg.problem import Problem, make_operator
from repro.apps.hpcg.variants import (
    HPCG_VARIANTS,
    UnsupportedVariantError,
)
from repro.machine.clock import DeterministicRNG
from repro.runner import sanity as sn
from repro.runner.benchmark import (
    ProgramContext,
    SpackTest,
    rfm_test,
    run_before,
)
from repro.runner.fields import variable

__all__ = ["HPCG_Original", "HPCG_Intel", "HPCG_MatrixFree", "HPCG_LFRic"]


class _HpcgBase(SpackTest):
    """Shared machinery for all HPCG variants."""

    valid_prog_environs = variable(list, value=["*"])
    #: which entry of HPCG_VARIANTS this test runs
    variant_name = "original"
    #: local grid edge for the real (verification) solve
    local_grid = variable(int, value=20)
    cg_iterations = variable(int, value=30)
    executable = variable(str, value="xhpcg")
    num_tasks = variable(int, value=0)  # 0: one rank per core, like the paper
    time_limit = variable(float, int, value=7200.0)
    tags = {"hpcg", "table2"}

    @run_before("run")
    def use_all_cores(self):
        """"40 MPI ranks" on dual-socket 20-core Cascade Lake, "128 MPI
        ranks" on Rome: MPI-only, one rank per core, single node."""
        if self.num_tasks == 0:
            self.num_tasks = self.current_partition.node.total_cores
            self.num_tasks_per_node = self.num_tasks

    def program(self, ctx: ProgramContext) -> Tuple[str, float]:
        variant = HPCG_VARIANTS[self.variant_name]
        # -- the real solve (correctness) ---------------------------------
        problem = Problem(self.local_grid, self.local_grid, self.local_grid)
        operator = make_operator(variant.operator, problem)
        result = conjugate_gradient(
            operator, problem.rhs(), max_iterations=self.cg_iterations
        )
        valid = result.final_relative_residual < 1e-2
        # -- the modelled full-node rate (Table 2) --------------------------
        try:
            gflops = variant.gflops_on(ctx.node)
        except UnsupportedVariantError as exc:
            raise RuntimeError(str(exc)) from exc
        frac = min(1.0, ctx.num_tasks / ctx.node.total_cores)
        gflops *= frac ** 0.7  # partial-node runs reach partial bandwidth
        rng = DeterministicRNG("hpcg", ctx.platform, self.variant_name,
                               ctx.num_tasks)
        gflops *= rng.lognormal_factor(0.01)
        seconds = result.flops * (ctx.num_tasks / max(problem.n, 1)) / 1e6

        lines = [
            "HPCG Benchmark",
            "Version: 3.1",
            f"Variant: {variant.name} ({variant.description})",
            f"Distribution: MPI, {ctx.num_tasks} ranks on "
            f"{ctx.num_nodes} node(s)",
            f"Local domain: {self.local_grid}^3, "
            f"global unknowns: {problem.n * ctx.num_tasks}",
            f"CG iterations: {result.iterations}",
            f"Scaled residual: {result.final_relative_residual:.6e}",
            "Final Summary::HPCG result is "
            + ("VALID" if valid else "INVALID")
            + f" with a GFLOP/s rating of={gflops:.4f}",
        ]
        return "\n".join(lines) + "\n", max(seconds, 60.0)

    def check_sanity(self, stdout: str) -> None:
        sn.assert_found(r"HPCG result is VALID", stdout,
                        "HPCG did not validate")

    def extract_performance(self, stdout: str) -> Dict[str, Tuple[float, str]]:
        gflops = sn.extractsingle(
            r"rating of=([\d.]+)", stdout, group=1, conv=float
        )
        return {"gflops": (gflops, "Gflop/s")}


@rfm_test
class HPCG_Original(_HpcgBase):
    """Reference CSR implementation of HPCG 3.1."""

    variant_name = "original"

    def __init__(self, **params):
        super().__init__(**params)
        self.spack_spec = "hpcg implementation=original"


@rfm_test
class HPCG_Intel(_HpcgBase):
    """Best of the three vendor-optimized binaries from Intel oneAPI MKL."""

    variant_name = "intel-avx2"

    def __init__(self, **params):
        super().__init__(**params)
        self.spack_spec = "hpcg implementation=intel-avx2"


@rfm_test
class HPCG_MatrixFree(_HpcgBase):
    """Matrix-free 27-point stencil (same algorithm, no assembled matrix)."""

    variant_name = "matrix-free"

    def __init__(self, **params):
        super().__init__(**params)
        self.spack_spec = "hpcg implementation=matrix-free"


@rfm_test
class HPCG_LFRic(_HpcgBase):
    """Symmetrised Helmholtz operator from the Met Office LFRic model."""

    variant_name = "lfric"

    def __init__(self, **params):
        super().__init__(**params)
        self.spack_spec = "hpcg-lfric"
