"""The HPCG model problem and its operator implementations.

HPCG solves Poisson's equation on a 3-D structured grid with a 27-point
finite-difference stencil (diagonal 26, off-diagonals -1) [Dongarra,
Heroux, Luszczek 2015].  The paper's Section 3.2 adds two algorithmic
variants: a matrix-free application of the same stencil, and the LFRic
Helmholtz operator (a shifted Laplacian, here symmetrised positive
definite as the paper describes).

Three interchangeable operator classes expose ``apply`` plus exact flop
and ideal-byte counts per application -- the numbers the machine model
needs and the efficiency analysis reasons about:

* :class:`CsrOperator` -- scipy CSR SpMV: loads 8 B value + 4 B column
  index per nonzero, plus vector traffic;
* :class:`MatrixFreeOperator` -- stencil applied with shifted numpy
  views: no matrix storage at all, the memory-traffic win the paper
  measures as a 2.1-3.2x speedup;
* :class:`LfricHelmholtzOperator` -- matrix-free Helmholtz
  ``(alpha I - beta Lap)`` with spatially-varying alpha, as a proxy for
  the Met Office operator (its exact coefficients are "relevant for the
  application developer but not for the purposes of this paper").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
import scipy.sparse as sp

__all__ = [
    "Problem",
    "CsrOperator",
    "MatrixFreeOperator",
    "LfricHelmholtzOperator",
    "OPERATOR_KINDS",
]

OPERATOR_KINDS = ("csr", "matrix-free", "lfric")


@dataclass(frozen=True)
class Problem:
    """An nx x ny x nz grid with homogeneous Dirichlet halo."""

    nx: int
    ny: int
    nz: int

    @property
    def shape(self) -> Tuple[int, int, int]:
        return (self.nx, self.ny, self.nz)

    @property
    def n(self) -> int:
        return self.nx * self.ny * self.nz

    def rhs(self, seed: int = 7) -> np.ndarray:
        """A reproducible right-hand side (HPCG uses all-ones; a seeded
        random RHS exercises convergence more honestly in tests)."""
        rng = np.random.default_rng(seed)
        return rng.standard_normal(self.n)

    def ones_rhs(self) -> np.ndarray:
        return np.ones(self.n)


def _stencil_offsets() -> list:
    return [
        (dx, dy, dz)
        for dx in (-1, 0, 1)
        for dy in (-1, 0, 1)
        for dz in (-1, 0, 1)
        if (dx, dy, dz) != (0, 0, 0)
    ]


class _OperatorBase:
    """Shared bookkeeping: every apply() is counted."""

    def __init__(self, problem: Problem):
        self.problem = problem
        self.apply_count = 0

    @property
    def n(self) -> int:
        return self.problem.n

    def apply(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def flops_per_apply(self) -> float:
        raise NotImplementedError

    def ideal_bytes_per_apply(self) -> float:
        raise NotImplementedError

    def diagonal(self) -> np.ndarray:
        """Operator diagonal, for Jacobi preconditioning."""
        raise NotImplementedError


class MatrixFreeOperator(_OperatorBase):
    """The 27-point stencil applied without assembling a matrix.

    y[i] = 26*x[i] - sum of the 26 neighbours, zero outside the domain --
    identical to the HPCG matrix, computed with shifted array views
    (vectorized; no per-element Python).
    """

    DIAG = 26.0

    def __init__(self, problem: Problem):
        super().__init__(problem)
        self._offsets = _stencil_offsets()

    def apply(self, x: np.ndarray) -> np.ndarray:
        self.apply_count += 1
        p = self.problem
        grid = x.reshape(p.shape)
        out = self.DIAG * grid.copy()
        for dx, dy, dz in self._offsets:
            src = grid[
                max(dx, 0) or None : (dx if dx < 0 else None),
                max(dy, 0) or None : (dy if dy < 0 else None),
                max(dz, 0) or None : (dz if dz < 0 else None),
            ]
            dst = out[
                max(-dx, 0) or None : (-dx if dx > 0 else None),
                max(-dy, 0) or None : (-dy if dy > 0 else None),
                max(-dz, 0) or None : (-dz if dz > 0 else None),
            ]
            dst -= src
        return out.reshape(-1)

    def flops_per_apply(self) -> float:
        # 26 subtracts + 1 multiply per point (interior approximation)
        return 27.0 * self.n

    def ideal_bytes_per_apply(self) -> float:
        # stream x once, write y once; neighbours come from cache
        return 2 * 8.0 * self.n

    def diagonal(self) -> np.ndarray:
        return np.full(self.n, self.DIAG)


class CsrOperator(_OperatorBase):
    """The HPCG reference: the same stencil assembled in CSR."""

    def __init__(self, problem: Problem):
        super().__init__(problem)
        self.matrix = self._assemble(problem)

    @staticmethod
    def _assemble(problem: Problem) -> sp.csr_matrix:
        # assemble via the matrix-free operator's action on identity-ish
        # structure: build with diags of the 27-point stencil
        shape = problem.shape
        eye = [sp.identity(n, format="csr") for n in shape]

        def shift(n: int, k: int) -> sp.csr_matrix:
            return sp.diags([1.0], [k], shape=(n, n), format="csr")

        terms = []
        for dx in (-1, 0, 1):
            for dy in (-1, 0, 1):
                for dz in (-1, 0, 1):
                    coef = 26.0 if (dx, dy, dz) == (0, 0, 0) else -1.0
                    terms.append(
                        coef
                        * sp.kron(
                            sp.kron(shift(shape[0], dx), shift(shape[1], dy)),
                            shift(shape[2], dz),
                        )
                    )
        matrix = terms[0]
        for t in terms[1:]:
            matrix = matrix + t
        return matrix.tocsr()

    def apply(self, x: np.ndarray) -> np.ndarray:
        self.apply_count += 1
        return self.matrix @ x

    @property
    def nnz(self) -> int:
        return self.matrix.nnz

    def flops_per_apply(self) -> float:
        return 2.0 * self.nnz

    def ideal_bytes_per_apply(self) -> float:
        # per nonzero: 8 B value + 4 B column index; plus x and y vectors
        return 12.0 * self.nnz + 2 * 8.0 * self.n

    def diagonal(self) -> np.ndarray:
        return self.matrix.diagonal()


class LfricHelmholtzOperator(_OperatorBase):
    """Symmetrised Helmholtz operator from the LFRic dynamical core.

    ``H x = alpha(z) * x - beta * Lap27 x`` with alpha varying by vertical
    level (atmospheric columns are strongly anisotropic) and beta > 0;
    alpha > 26*beta keeps it SPD.  Applied matrix-free but with the extra
    coefficient loads and anisotropic access that make it *slower* than
    the plain stencil per DOF -- the paper measures it below original CSR
    on Cascade Lake yet well above it on Rome's larger caches.
    """

    def __init__(self, problem: Problem, beta: float = 0.5):
        super().__init__(problem)
        self.beta = beta
        # one alpha per vertical level (z): 30 + 4*sin profile, > 26*beta
        z = np.arange(problem.nz)
        self.alpha_z = 30.0 + 4.0 * np.sin(2 * np.pi * z / max(problem.nz, 1))
        self._lap = MatrixFreeOperator(problem)

    def apply(self, x: np.ndarray) -> np.ndarray:
        self.apply_count += 1
        p = self.problem
        grid = x.reshape(p.shape)
        out = grid * self.alpha_z[None, None, :]
        out = out.reshape(-1) + self.beta * self._lap.apply(x)
        self._lap.apply_count -= 1  # inner apply is part of this one
        return out

    def flops_per_apply(self) -> float:
        # stencil + coefficient multiply-add per point
        return self._lap.flops_per_apply() + 3.0 * self.n

    def ideal_bytes_per_apply(self) -> float:
        # x, y, plus the per-level coefficient field traffic
        return self._lap.ideal_bytes_per_apply() + 8.0 * self.n

    def diagonal(self) -> np.ndarray:
        p = self.problem
        diag = np.broadcast_to(
            self.alpha_z[None, None, :], p.shape
        ).reshape(-1)
        return diag + self.beta * 26.0


def make_operator(kind: str, problem: Problem) -> _OperatorBase:
    """Factory over :data:`OPERATOR_KINDS` (CSR serves 'original' and
    'intel-avx2', which differ in implementation, not algorithm)."""
    if kind == "csr":
        return CsrOperator(problem)
    if kind == "matrix-free":
        return MatrixFreeOperator(problem)
    if kind == "lfric":
        return LfricHelmholtzOperator(problem)
    raise ValueError(f"unknown operator kind {kind!r}; know {OPERATOR_KINDS}")
