"""Preconditioned conjugate gradient with exact operation accounting.

The HPCG benchmark runs symmetric-Gauss-Seidel-preconditioned CG and
scores GFlop/s over a fixed iteration count.  Both preconditioners are
implemented: Jacobi (works for any operator exposing a diagonal) and the
reference SymGS (for CSR operators; its forward/backward triangular
sweeps are inherently sequential, which is *why* the vendor and
matrix-free variants of Section 3.2 differ so much).  Every flop and
ideal byte is counted, so the simulated FOM is grounded in the real work
performed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

__all__ = ["CgResult", "conjugate_gradient", "SymGsPreconditioner"]


class SymGsPreconditioner:
    """Symmetric Gauss-Seidel: the preconditioner of reference HPCG.

    ``M^-1 r``: forward sweep ``(D+L) w = r``, then backward sweep
    ``(D+U) z = D w``.  SPD for SPD A, so CG stays valid.  Requires an
    assembled (CSR) matrix -- one of the concrete reasons the benchmark
    over-represents indirect memory access patterns (Section 3.2).
    """

    def __init__(self, operator):
        matrix = getattr(operator, "matrix", None)
        if matrix is None:
            raise TypeError(
                "SymGS needs an assembled matrix; use Jacobi for "
                "matrix-free operators"
            )
        import scipy.sparse as sp

        self.lower = sp.tril(matrix, k=0, format="csr")  # D + L
        self.upper = sp.triu(matrix, k=0, format="csr")  # D + U
        self.diag = matrix.diagonal()
        self.nnz = matrix.nnz
        self.n = matrix.shape[0]

    def apply(self, r: np.ndarray) -> np.ndarray:
        from scipy.sparse.linalg import spsolve_triangular

        w = spsolve_triangular(self.lower, r, lower=True)
        return spsolve_triangular(self.upper, self.diag * w, lower=False)

    def flops_per_apply(self) -> float:
        # two triangular sweeps over all nonzeros plus the diagonal scale
        return 2.0 * self.nnz + self.n

    def ideal_bytes_per_apply(self) -> float:
        return 2 * (12.0 * self.nnz) + 4 * 8.0 * self.n


@dataclass
class CgResult:
    x: np.ndarray
    iterations: int
    residual_norms: List[float] = field(default_factory=list)
    converged: bool = False
    flops: float = 0.0
    ideal_bytes: float = 0.0

    @property
    def final_relative_residual(self) -> float:
        return self.residual_norms[-1] / self.residual_norms[0]


def conjugate_gradient(
    operator,
    b: np.ndarray,
    max_iterations: int = 50,
    tolerance: float = 1e-9,
    preconditioned: bool = True,
    preconditioner: str = "jacobi",
    x0: Optional[np.ndarray] = None,
) -> CgResult:
    """Solve ``A x = b`` for an SPD operator with optional preconditioning.

    ``preconditioner`` is ``'jacobi'`` (any operator) or ``'symgs'``
    (CSR operators only, the reference-HPCG scheme).  The operator must
    expose ``apply``, ``flops_per_apply``, ``ideal_bytes_per_apply`` and
    ``diagonal`` (see :mod:`repro.apps.hpcg.problem`).
    """
    n = b.shape[0]
    x = np.zeros_like(b) if x0 is None else x0.copy()
    flops = 0.0
    ideal_bytes = 0.0

    r = b - operator.apply(x) if x0 is not None else b.copy()
    if x0 is not None:
        flops += operator.flops_per_apply() + n
        ideal_bytes += operator.ideal_bytes_per_apply() + 3 * 8 * n

    inv_diag = None
    symgs = None
    if preconditioned:
        if preconditioner == "jacobi":
            inv_diag = 1.0 / operator.diagonal()
        elif preconditioner == "symgs":
            symgs = SymGsPreconditioner(operator)
        else:
            raise ValueError(
                f"unknown preconditioner {preconditioner!r}; "
                "know 'jacobi' and 'symgs'"
            )

    def precondition(res: np.ndarray) -> np.ndarray:
        nonlocal flops, ideal_bytes
        if symgs is not None:
            flops += symgs.flops_per_apply()
            ideal_bytes += symgs.ideal_bytes_per_apply()
            return symgs.apply(res)
        if inv_diag is None:
            return res
        flops += n
        ideal_bytes += 3 * 8 * n
        return inv_diag * res

    z = precondition(r)
    p = z.copy()
    rz = float(r @ z)
    flops += 2 * n
    ideal_bytes += 2 * 8 * n

    norms = [float(np.linalg.norm(r))]
    result = CgResult(x=x, iterations=0, residual_norms=norms)
    # convergence is judged against ||b|| (not ||r0||) so a warm start
    # that is already accurate converges immediately instead of chasing
    # relative reduction of an already-tiny residual
    b_norm = float(np.linalg.norm(b)) or 1.0
    if norms[0] <= tolerance * b_norm:
        result.converged = True
        result.flops = flops
        result.ideal_bytes = ideal_bytes
        return result

    for it in range(1, max_iterations + 1):
        ap = operator.apply(p)
        flops += operator.flops_per_apply()
        ideal_bytes += operator.ideal_bytes_per_apply()

        pap = float(p @ ap)
        alpha = rz / pap
        x += alpha * p
        r -= alpha * ap
        # dot (2n) + two axpys (2n each)
        flops += 6 * n
        ideal_bytes += 10 * 8 * n

        norms.append(float(np.linalg.norm(r)))
        flops += 2 * n
        ideal_bytes += 8 * n

        if norms[-1] <= tolerance * b_norm:
            result.converged = True
            result.iterations = it
            break

        z = precondition(r)
        rz_new = float(r @ z)
        beta = rz_new / rz
        p = z + beta * p
        rz = rz_new
        flops += 4 * n
        ideal_bytes += 6 * 8 * n
        result.iterations = it

    result.flops = flops
    result.ideal_bytes = ideal_bytes
    return result
