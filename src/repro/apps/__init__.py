"""Benchmark applications: the paper's three case studies, from scratch.

* :mod:`repro.apps.babelstream` -- memory-bandwidth kernels in ten
  programming-model variants (Section 3.1, Figure 2),
* :mod:`repro.apps.hpcg` -- conjugate-gradient benchmark in four
  implementation/algorithm variants (Section 3.2, Table 2),
* :mod:`repro.apps.hpgmg` -- finite-volume full multigrid (Section 3.3,
  Table 4).

Each app has a *kernel layer* (real numpy math, verified by tests), a
*simulator* producing faithful program output with machine-model timing,
and a *benchmark* module defining the runner test classes.
"""
