"""``repro-top``: a live fleet dashboard over the streaming stats plane.

Three ways in, one renderer:

* ``repro-top STATUS.live.jsonl`` -- follow a running campaign/fleet:
  tail the sealed live-status artifact (exactly-once incremental reads
  via :class:`~repro.obs.live.TailCursor`) and redraw on every new
  status record;
* ``repro-top STATUS.live.jsonl --once [--json]`` -- render the latest
  snapshot and exit (scripting, CI smoke);
* ``repro-top --replay TRACE`` -- reconstruct the dashboard
  deterministically from a *finished* trace file.  Traces are
  byte-identical across execution policies, so this render is too --
  which is how the test suite pins the dashboard.

Everything is keyed to the simulated clock; the only wall-clock use is
the watch loop's sleep between polls.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Optional

from .cli import _fmt_seconds
from .live import TailCursor, read_live_status, replay_trace

__all__ = ["build_parser", "main", "render_dashboard"]

#: sparkline glyphs; index 0 is "no completions in this bucket"
_BLOCKS = "·▁▂▃▄▅▆▇█"


def sparkline(history: List[int]) -> str:
    """Bucket counts -> a fixed-glyph sparkline (integer math only)."""
    if not history:
        return ""
    peak = max(history)
    if peak <= 0:
        return _BLOCKS[0] * len(history)
    out = []
    for n in history:
        if n <= 0:
            out.append(_BLOCKS[0])
        else:
            # n == peak maps to the top glyph, n == 1 to the bottom one
            out.append(_BLOCKS[1 + (n * 7) // peak])
    return "".join(out)


def _progress_bar(done: int, total: int, width: int = 14) -> str:
    if total <= 0:
        return "[" + "-" * width + "]  ??%"
    fill = min(width, done * width // total)
    pct = done * 100 // total
    return "[" + "#" * fill + "-" * (width - fill) + f"] {pct:3d}%"


def _rate_str(rate: Optional[float]) -> str:
    return f"{rate:.2f}" if rate is not None else "-"


def render_dashboard(snapshot: Dict[str, Any], width: int = 72) -> str:
    """The full ASCII dashboard for one status snapshot."""
    out: List[str] = []
    clock = snapshot.get("clock") or 0.0
    cases = snapshot.get("cases") or {}
    rates = snapshot.get("rates") or {}
    out.append(
        f"repro-top -- t=+{_fmt_seconds(clock)} (simulated clock)  "
        f"source={snapshot.get('source', '?')}"
    )
    out.append(
        f"cases: {cases.get('total', 0)} total  "
        f"{cases.get('passed', 0)} pass  {cases.get('failed', 0)} fail  "
        f"{cases.get('skipped', 0)} skip   "
        f"{_rate_str(rates.get('cases_per_second'))} cases/s"
    )
    out.append(
        f"retries: {cases.get('retried', 0)} case(s) "
        f"(+{cases.get('attempts_extra', 0)} attempts)  "
        f"resumed {cases.get('resumed', 0)}  "
        f"replayed {cases.get('replayed', 0)}  "
        f"speculated {cases.get('speculated', 0)}  "
        f"rows {snapshot.get('rows', 0)}"
    )

    fleet = snapshot.get("fleet") or {}
    if fleet:
        out.append("")
        out.append("FLEET")
        out.append(f"  {'campaign':<18} {'tenant':<10} {'nodes':>5}  "
                   f"{'progress':<21} {'slices':>6}  status")
        for cid in sorted(fleet):
            info = fleet[cid]
            out.append(
                f"  {cid:<18.18} {info.get('tenant', '-'):<10.10} "
                f"{info.get('nodes', 0):>5}  "
                f"{_progress_bar(info.get('done', 0), info.get('total', 0))}"
                f"  {info.get('slices', 0):>6}  {info.get('status', '?')}"
            )
        tenants = snapshot.get("tenants") or {}
        if tenants:
            parts = [
                f"{name}: {t['campaigns']} campaign(s), {t['nodes']} node(s)"
                for name, t in sorted(tenants.items())
            ]
            out.append("  tenants  " + "   ".join(parts))

    systems = snapshot.get("systems") or {}
    if systems:
        out.append("")
        out.append("SYSTEMS")
        out.append(f"  {'system':<24} {'cases':>6} {'pass':>6} {'fail':>5} "
                   f"{'rows':>6} {'cases/s':>8}  activity")
        for name in sorted(systems):
            rec = systems[name]
            out.append(
                f"  {name:<24.24} {rec.get('cases', 0):>6} "
                f"{rec.get('passed', 0):>6} {rec.get('failed', 0):>5} "
                f"{rec.get('rows', 0):>6} "
                f"{_rate_str(rec.get('rate')):>8}  "
                f"{sparkline(rec.get('history') or [])}"
            )

    latency = snapshot.get("latency") or {}
    if any((latency.get(k) or {}).get("count") for k in latency):
        out.append("")
        out.append("LATENCY (simulated seconds)")
        for key, label in (("queue", "queue-wait"), ("run", "job-run"),
                           ("case", "case")):
            h = latency.get(key) or {}
            if not h.get("count"):
                continue
            out.append(
                f"  {label:<11} n={h['count']:<7} "
                f"p50={_fmt_seconds(h.get('p50') or 0.0):<9} "
                f"p90={_fmt_seconds(h.get('p90') or 0.0):<9} "
                f"p99={_fmt_seconds(h.get('p99') or 0.0):<9} "
                f"max={_fmt_seconds(h.get('max') or 0.0)}"
            )

    slowest = snapshot.get("slowest") or []
    if slowest:
        out.append("")
        out.append("SLOWEST SPANS")
        for dur, track, name in slowest:
            out.append(f"  {_fmt_seconds(dur):>9}  {track:<28.28} {name}")

    out.append("")
    alerts = snapshot.get("alerts") or []
    if alerts:
        out.append("ALERTS")
        for alert in alerts:
            out.append(f"  ! {alert}")
    else:
        out.append("no alerts")
    return "\n".join(line.rstrip() for line in out)


def _emit(snapshot: Dict[str, Any], as_json: bool, width: int,
          clear: bool = False) -> None:
    if clear:
        sys.stdout.write("\x1b[2J\x1b[H")
    if as_json:
        print(json.dumps(snapshot, indent=2, sort_keys=True))
    else:
        print(render_dashboard(snapshot, width=width))
    sys.stdout.flush()


def _watch(path: str, args: argparse.Namespace) -> int:
    """Follow the live-status artifact until interrupted (or --frames)."""
    from .jsonl import verify_line

    cursor = TailCursor(path)
    latest: Optional[Dict[str, Any]] = None
    frames = 0
    clear = not args.no_clear
    while True:
        lines, reset = cursor.read_new()
        if reset:
            latest = None
        fresh = False
        for line in lines:
            rec = verify_line(line)
            if rec is not None and rec.get("kind") == "status":
                latest = rec.get("snapshot")
                fresh = True
        if fresh and latest is not None:
            _emit(latest, args.json, args.width, clear=clear)
            frames += 1
            if args.frames is not None and frames >= args.frames:
                return 0
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-top",
        description="Live dashboard over a running repro campaign/fleet.",
    )
    parser.add_argument(
        "status", nargs="?", default=None,
        help="live-status artifact (from --live-status PATH)",
    )
    parser.add_argument(
        "--replay", default=None, metavar="TRACE",
        help="reconstruct the dashboard from a finished trace file",
    )
    parser.add_argument(
        "--once", action="store_true",
        help="render the latest snapshot and exit (no watch loop)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the snapshot as JSON instead of the dashboard",
    )
    parser.add_argument(
        "--width", type=int, default=72,
        help="dashboard width hint in characters (default 72)",
    )
    parser.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="watch-mode poll interval (wall seconds, default 2.0)",
    )
    parser.add_argument(
        "--frames", type=int, default=None, metavar="N",
        help="watch mode: exit after N redraws (tests, demos)",
    )
    parser.add_argument(
        "--no-clear", action="store_true",
        help="watch mode: append frames instead of clearing the screen",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if (args.status is None) == (args.replay is None):
        print("repro-top: need a STATUS file or --replay TRACE (not both)",
              file=sys.stderr)
        return 2

    if args.replay is not None:
        try:
            sink = replay_trace(args.replay)
        except OSError as exc:
            print(f"repro-top: {exc}", file=sys.stderr)
            return 2
        _emit(sink.snapshot(), args.json, args.width)
        return 0

    if args.once:
        try:
            _, statuses = read_live_status(args.status)
        except OSError as exc:
            print(f"repro-top: {exc}", file=sys.stderr)
            return 2
        if not statuses:
            print(f"repro-top: no status records in {args.status}",
                  file=sys.stderr)
            return 1
        _emit(statuses[-1]["snapshot"], args.json, args.width)
        return 0

    return _watch(args.status, args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
