"""Structured spans: where a campaign's (simulated) time actually went.

Principles 4-5 demand that *all* run metadata be captured alongside the
FOM; the provenance layer records outcomes, this module records the
*shape of the work*: pipeline stages, queue waits, retries, backoff
sleeps, watchdog events, speculative duplicates.  Continuous-benchmarking
systems (exaCB) treat this telemetry as what makes unattended campaigns
debuggable at scale.

Model
-----

* A :class:`Span` is a named interval ``[t0, t1]`` on a **track** (one
  track per case, plus the ``campaign`` track), with a parent span, a
  category and free-form attributes.  Instant events are zero-duration
  spans.
* Timestamps are **simulated seconds** -- the same deterministic
  quantities the discrete-event scheduler produces -- so a trace for a
  given seed is *byte-identical* across serial, async and speculative
  execution (the trace is itself a reproducibility artifact).  Each case
  track starts at its own ``t=0``; the campaign track lays cases
  end-to-end in the deterministic serial consumption order.  Optional
  *wall-clock* timestamps (``Tracer(wall=True)``) ride along as ``w0`` /
  ``w1`` for profiling the framework itself -- they are excluded by
  default precisely because wall time is not reproducible.
* A :class:`SpanRecorder` collects one case's spans in memory (a
  nesting stack assigns parents); the :class:`Tracer` flushes whole
  recorders to the crash-safe JSONL trace file in the deterministic
  result order, assigning global span ids at flush time.  Under
  speculative execution only the *accepted* attempt's recorder is ever
  flushed -- the loser's spans vanish with it, exactly like its perflog
  rows.

Trace-file records (one JSON object per line, via
:mod:`repro.obs.jsonl` -- same torn-tail tolerance as the campaign
journal)::

    {"kind": "meta",    "format": "repro-trace", "version": 1, ...}
    {"kind": "span",    "id": 7, "parent": 5, "track": "...", "name": "...",
     "cat": "stage", "t0": 1.0, "t1": 31.0, "attrs": {...}}
    {"kind": "metrics", "metrics": {...}}        # final snapshot

``repro-trace`` renders timelines and Chrome ``chrome://tracing`` JSON
from these records (:mod:`repro.obs.cli`).
"""

from __future__ import annotations

import json
import threading
import time as _time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.obs.jsonl import JsonlAppender, read_jsonl, seal_line

__all__ = [
    "CaseTimeline",
    "Span",
    "SpanRecorder",
    "ReplayedSpans",
    "TraceError",
    "Tracer",
    "as_tracer",
    "chrome_trace",
    "load_trace",
    "recorder_from_spans",
    "serialize_spans",
    "strip_replay_attrs",
    "validate_nesting",
]

#: trace-file format marker (bumped on incompatible record changes)
TRACE_FORMAT = "repro-trace"
TRACE_VERSION = 1

#: span categories used by the built-in instrumentation (the taxonomy
#: table in DESIGN.md section 7); free-form strings are also accepted
CATEGORIES = (
    "case",        # one whole case on the campaign track
    "attempt",     # one pipeline pass
    "stage",       # setup/build/run/sanity/performance
    "pkg",         # concretize/install
    "sched",       # submit/queue-wait/job-run/cancel
    "retry",       # backoff sleeps
    "watchdog",    # heartbeats and kills
    "spec",        # speculation decisions
    "io",          # perflog flushes, journal writes
    "wave",        # dependency wavefront boundaries
)


class TraceError(ValueError):
    """A malformed or inconsistent trace file."""


@dataclass
class Span:
    """One named interval on a track (instant events have ``t0 == t1``)."""

    name: str
    t0: float
    t1: float
    cat: str = ""
    track: str = ""
    attrs: Dict[str, Any] = field(default_factory=dict)
    #: recorder-local id / parent id (remapped to global ids at flush)
    local_id: int = 0
    parent_id: Optional[int] = None
    #: optional wall-clock timestamps (Tracer(wall=True) only)
    w0: Optional[float] = None
    w1: Optional[float] = None

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def as_record(self, span_id: int, parent: Optional[int]) -> Dict[str, Any]:
        record: Dict[str, Any] = {
            "kind": "span",
            "id": span_id,
            "parent": parent,
            "track": self.track,
            "name": self.name,
            "cat": self.cat,
            "t0": self.t0,
            "t1": self.t1,
            "attrs": self.attrs,
        }
        if self.w0 is not None:
            record["w0"] = self.w0
            record["w1"] = self.w1
        return record


class SpanRecorder:
    """Collects one track's spans; a nesting stack assigns parents.

    A recorder is used by exactly one thread at a time (each case runs
    its pipeline on one worker), so it needs no locking; the *tracer*
    serializes flushes.  ``at_offset`` returns a view shifted by a
    constant -- how scheduler-clock times (which restart at 0 per case)
    are mapped onto the case timeline.
    """

    def __init__(self, track: str, wall: bool = False):
        self.track = track
        self.wall = wall
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_local = 1

    # -- recording -----------------------------------------------------------
    def _new(self, name: str, t0: float, t1: float, cat: str,
             attrs: Dict[str, Any]) -> Span:
        span = Span(
            name=name, t0=float(t0), t1=float(t1), cat=cat,
            track=self.track, attrs=attrs,
            local_id=self._next_local,
            parent_id=self._stack[-1].local_id if self._stack else None,
        )
        if self.wall:
            span.w0 = span.w1 = _time.time()
        self._next_local += 1
        self.spans.append(span)
        return span

    def record(self, name: str, t0: float, t1: float, cat: str = "",
               **attrs: Any) -> Span:
        """A complete interval under the current nesting parent."""
        if t1 < t0:
            raise TraceError(f"span {name!r} ends before it starts")
        return self._new(name, t0, t1, cat, attrs)

    def event(self, name: str, t: float, cat: str = "", **attrs: Any) -> Span:
        """An instant (zero-duration span)."""
        return self._new(name, t, t, cat, attrs)

    def start(self, name: str, t0: float, cat: str = "",
              **attrs: Any) -> Span:
        """Open a span and push it as the nesting parent."""
        span = self._new(name, t0, t0, cat, attrs)
        self._stack.append(span)
        return span

    def finish(self, span: Span, t1: float) -> Span:
        """Close *span* (popping it and anything left open inside it)."""
        if t1 < span.t0:
            raise TraceError(f"span {span.name!r} ends before it starts")
        span.t1 = float(t1)
        if self.wall:
            span.w1 = _time.time()
        while self._stack:
            top = self._stack.pop()
            if top is span:
                break
            # a child left open by an early return (failure paths bail
            # out of the pipeline mid-stage): close it where its parent
            # closes, so nesting containment survives every exit path
            if top.t1 < span.t1:
                top.t1 = span.t1
                if self.wall:
                    top.w1 = span.w1
        return span

    def at_offset(self, offset: float) -> "_OffsetRecorder":
        """A view whose timestamps are shifted by *offset* seconds."""
        return _OffsetRecorder(self, float(offset))

    # -- accounting ----------------------------------------------------------
    @property
    def end_time(self) -> float:
        """The track's extent (max ``t1`` over recorded spans)."""
        return max((s.t1 for s in self.spans), default=0.0)


class _OffsetRecorder:
    """A :class:`SpanRecorder` proxy adding a constant time offset.

    Shares the underlying recorder's span list *and* nesting stack, so
    offset spans (scheduler events) nest correctly under pipeline-stage
    spans recorded on the base timeline.
    """

    def __init__(self, base: SpanRecorder, offset: float):
        self._base = base
        self.offset = offset

    def record(self, name: str, t0: float, t1: float, cat: str = "",
               **attrs: Any) -> Span:
        return self._base.record(name, t0 + self.offset, t1 + self.offset,
                                 cat, **attrs)

    def event(self, name: str, t: float, cat: str = "", **attrs: Any) -> Span:
        return self._base.event(name, t + self.offset, cat, **attrs)

    def start(self, name: str, t0: float, cat: str = "",
              **attrs: Any) -> Span:
        return self._base.start(name, t0 + self.offset, cat, **attrs)

    def finish(self, span: Span, t1: float) -> Span:
        return self._base.finish(span, t1 + self.offset)

    def at_offset(self, offset: float) -> "_OffsetRecorder":
        return _OffsetRecorder(self._base, self.offset + offset)


class CaseTimeline:
    """A per-case virtual-time cursor for pipeline instrumentation.

    The pipeline's stages have no shared clock -- build and job
    durations are produced by independent deterministic simulations --
    so the timeline lays them end-to-end: ``advance(d)`` moves the
    cursor, ``span(name, d)`` records ``[t, t+d]`` and advances.  The
    final cursor value is the case's total simulated cost.
    """

    def __init__(self, recorder: Optional[SpanRecorder], start: float = 0.0):
        self.rec = recorder
        self.t = float(start)

    @property
    def active(self) -> bool:
        return self.rec is not None

    def advance(self, seconds: float) -> float:
        self.t += max(float(seconds), 0.0)
        return self.t

    def instant(self, name: str, cat: str = "stage", **attrs: Any) -> None:
        if self.rec is not None:
            self.rec.event(name, self.t, cat, **attrs)

    def span(self, name: str, seconds: float, cat: str = "stage",
             **attrs: Any) -> None:
        """Record ``[t, t + seconds]`` and advance the cursor."""
        seconds = max(float(seconds), 0.0)
        if self.rec is not None:
            self.rec.record(name, self.t, self.t + seconds, cat, **attrs)
        self.t += seconds

    def start(self, name: str, cat: str = "stage", **attrs: Any) -> Optional[Span]:
        if self.rec is None:
            return None
        return self.rec.start(name, self.t, cat, **attrs)

    def finish(self, span: Optional[Span]) -> None:
        if self.rec is not None and span is not None:
            self.rec.finish(span, self.t)


class ReplayedSpans:
    """A stored trace bundle, flush-ready without ``Span`` rebuilding.

    The result store keeps each case's *final encoded trace lines* --
    the exact ``sort_keys=True`` JSON the cold run wrote -- plus the
    global id of the first span and the span count.  On replay,
    :meth:`Tracer.flush` checks whether its id cursor matches
    ``first_id``; when it does (the common case: the prefix of the
    campaign before this case is unchanged) the lines are appended
    *verbatim*, with zero per-span decode/encode work.  When an edit
    upstream shifted the id sequence, every id is a dense flush-order
    counter, so the records are remapped by a constant offset.

    The trade-off (inherited from the earlier document-based replay
    path): replayed spans are not re-materialized into
    ``Tracer.flushed``.
    """

    __slots__ = ("track", "bundle")

    def __init__(self, track: str, bundle: Dict[str, Any]):
        self.track = track
        self.bundle = bundle

    @property
    def count(self) -> int:
        return int(self.bundle.get("count", 0))

    @property
    def end_time(self) -> float:
        """The track's extent (max ``t1``), matching ``SpanRecorder``."""
        return float(self.bundle.get("end_time", 0.0))


class Tracer:
    """Campaign-wide span collection + crash-safe JSONL export.

    ``path`` (or an explicit :class:`~repro.obs.jsonl.JsonlAppender`)
    enables on-disk streaming: each flushed recorder's spans go down as
    one append batch, so a campaign killed mid-run leaves a readable
    trace of everything consumed so far (at most the final record torn
    -- which :func:`load_trace` skips, like the journal).  Without a
    path the tracer collects in memory only (tests, API users).

    Global span ids are assigned *at flush time*, in flush order --
    flushes happen in the executor's deterministic result-consumption
    order, which is what makes the file byte-identical across execution
    policies.
    """

    def __init__(
        self,
        path: Optional[Union[str, JsonlAppender]] = None,
        wall: bool = False,
        sync: bool = True,
        batch: int = 1,
    ):
        if isinstance(path, JsonlAppender):
            self._appender: Optional[JsonlAppender] = path
            self.path: Optional[str] = path.path
        elif path is not None:
            self._appender = JsonlAppender(str(path), sync=sync)
            self.path = str(path)
        else:
            self._appender = None
            self.path = None
        if batch < 1:
            raise ValueError("batch must be >= 1")
        self.wall = wall
        #: group-commit factor: records from this many flush() calls are
        #: coalesced into one append (one write + fsync).  ``1`` keeps
        #: the per-case crash-safety granularity; large campaigns trade
        #: a bounded tail-loss window for ~batch x fewer fsyncs.  The
        #: on-disk byte sequence is identical either way -- batching
        #: changes only where the write syscalls fall.
        self.batch = batch
        self._lock = threading.Lock()
        self._next_id = 1
        self._wrote_meta = False
        #: flush subscribers -- duck-typed objects with
        #: ``note_flush(path, lines)``, the mirror of the perflog
        #: writer's ``note_append`` hook.  Each flushed batch of sealed
        #: lines is fanned out in flush order (the deterministic result
        #: order), so a sink sees exactly the byte stream the trace file
        #: receives without subclassing the tracer.  A sink that raises
        #: is dropped -- observers must never fail the campaign.
        self._sinks: List[Any] = []
        #: group-commit buffer of *encoded* lines (encoding happens at
        #: flush time so replayed bundles can blit verbatim bytes in)
        self._pending_lines: List[str] = []
        self._pending_flushes = 0
        #: flushed spans, in flush (= global id) order
        self.flushed: List[Span] = []
        #: spans written to disk so far
        self.spans_written = 0
        #: the last *live* flush's storable bundle: first global id,
        #: span count and the exact encoded lines.  The executor stows
        #: this in the result store so a warm run can replay the bytes.
        self.last_flush_bundle: Optional[Dict[str, Any]] = None

    # -- recorders -----------------------------------------------------------
    def recorder(self, track: str) -> SpanRecorder:
        """A fresh recorder for one track (no shared state touched)."""
        return SpanRecorder(track, wall=self.wall)

    # -- flush subscribers ---------------------------------------------------
    def add_sink(self, sink: Any) -> None:
        """Subscribe *sink* to span flushes.

        ``sink.note_flush(path, items)`` is called with the trace path
        (``None`` for in-memory tracers) and every flushed batch, in
        flush order.  The mirror of ``PerflogWriter.note_append``.  Each
        item is the decoded record dict when the tracer has it in hand
        (the live-flush hot path skips a re-parse + checksum round
        trip) and the raw sealed line otherwise (result-store blits);
        sinks must accept both.  Idempotent per sink object.
        """
        if sink not in self._sinks:
            self._sinks.append(sink)

    def _notify_sinks(
        self, items: List[Union[str, Dict[str, Any]]]
    ) -> None:
        if not self._sinks or not items:
            return
        for sink in list(self._sinks):
            try:
                sink.note_flush(self.path, items)
            except Exception:
                # observers never fail the campaign: a broken sink is
                # dropped and the trace keeps flowing to disk.
                self._sinks.remove(sink)

    # -- storage-fault plumbing ----------------------------------------------
    def attach_io(self, io: Any, label: str = "trace") -> None:
        """Route trace appends through a :class:`FaultyIO` shim."""
        if self._appender is not None:
            self._appender.attach_io(io, label)

    def disable_disk(self) -> None:
        """Demote to in-memory collection (``--durability degrade``).

        Span accounting continues -- ids, ``flushed``, replay bundles --
        so the campaign's results are unaffected; only the on-disk trace
        stops growing.  Called when a trace append keeps failing and the
        durability policy says the campaign matters more than the file.
        """
        with self._lock:
            self._appender = None
            self._pending_lines = []
            self._pending_flushes = 0

    # -- flushing ------------------------------------------------------------
    def _meta_record(self) -> Dict[str, Any]:
        return {
            "kind": "meta",
            "format": TRACE_FORMAT,
            "version": TRACE_VERSION,
            "clock": "simulated-seconds",
            "wall": self.wall,
        }

    def flush(
        self, recorder: "Union[SpanRecorder, ReplayedSpans]"
    ) -> List[Dict[str, Any]]:
        """Assign global ids to *recorder*'s spans and append them.

        Returns the records written (tests introspect them).  Safe to
        call from the executor's single consumption thread; the lock
        guards id assignment for API users who flush concurrently.

        Accepts either a live :class:`SpanRecorder` or a
        :class:`ReplayedSpans` bundle from the result store; the latter
        appends the stored encoded lines directly -- verbatim when the
        global-id cursor matches the bundle's ``first_id``, offset by a
        constant otherwise (ids are a dense flush-order counter, and
        parents are always within-case).  The blit path returns ``[]``
        rather than re-parsing what it wrote; only live flushes feed
        ``Tracer.flushed`` and the returned record list.
        """
        with self._lock:
            lines: List[str] = []
            meta_rec: Optional[Dict[str, Any]] = None
            if not self._wrote_meta:
                meta_rec = self._meta_record()
                lines.append(seal_line(meta_rec))
                self._wrote_meta = True
            if isinstance(recorder, ReplayedSpans):
                n_spans = recorder.count
                first_id = int(recorder.bundle.get("first_id", self._next_id))
                stored = recorder.bundle.get("lines") or []
                if self._next_id == first_id:
                    lines.extend(stored)  # verbatim: the common warm path
                else:
                    delta = self._next_id - first_id
                    for line in stored:
                        rec = json.loads(line)
                        rec.pop("cs", None)  # resealed after the id shift
                        rec["id"] += delta
                        if rec.get("parent") is not None:
                            rec["parent"] += delta
                        lines.append(seal_line(rec))
                self._next_id += n_spans
                records: List[Dict[str, Any]] = []
            else:
                n_spans = len(recorder.spans)
                first_id = self._next_id
                mapping: Dict[int, int] = {}
                records = [meta_rec] if meta_rec is not None else []
                span_lines: List[str] = []
                for span in recorder.spans:
                    span_id = self._next_id
                    self._next_id += 1
                    mapping[span.local_id] = span_id
                    parent = (
                        mapping.get(span.parent_id)
                        if span.parent_id is not None else None
                    )
                    record = span.as_record(span_id, parent)
                    records.append(record)
                    span_lines.append(seal_line(record))
                    self.flushed.append(span)
                lines.extend(span_lines)
                self.last_flush_bundle = {
                    "first_id": first_id,
                    "count": n_spans,
                    "lines": span_lines,
                }
            if self._appender is not None and lines:
                if self.batch > 1:
                    self._pending_lines.extend(lines)
                    self._pending_flushes += 1
                    if self._pending_flushes >= self.batch:
                        self._drain_locked()
                else:
                    self._appender.append_lines(lines)
                self.spans_written += n_spans
            # sinks hear every flush -- even in-memory or degraded-disk
            # tracers keep the live plane fed.  Live flushes hand over
            # the decoded records; blits only have the stored lines.
            self._notify_sinks(records if records else lines)
            return records

    def _drain_locked(self) -> None:
        if self._pending_lines:
            self._appender.append_lines(self._pending_lines)
            self._pending_lines = []
        self._pending_flushes = 0

    def drain(self) -> None:
        """Write any group-committed records still buffered (batch > 1)."""
        with self._lock:
            if self._appender is not None:
                self._drain_locked()

    def write_metrics(self, snapshot: Dict[str, Any]) -> None:
        """Append the end-of-campaign metrics snapshot record."""
        with self._lock:
            records: List[Dict[str, Any]] = []
            if not self._wrote_meta:
                records.append(self._meta_record())
                self._wrote_meta = True
            records.append({"kind": "metrics", "metrics": snapshot})
            if self._appender is not None:
                if self._pending_lines:
                    self._drain_locked()
                self._appender.append_many(records)
            self._notify_sinks(list(records))


def serialize_spans(recorder: SpanRecorder) -> List[Dict[str, Any]]:
    """Portable span documents for one recorder (the result store's format).

    Local/parent ids are preserved -- they are recorder-relative, so a
    recorder rebuilt from these documents flushes to exactly the same
    trace records as the original (global ids are assigned at flush
    time either way).  Wall-clock timestamps are dropped on purpose:
    they are the one non-reproducible field, and a replayed span must
    not resurrect a stale wall time as if it were fresh.
    """
    docs: List[Dict[str, Any]] = []
    for span in recorder.spans:
        docs.append({
            "name": span.name,
            "t0": span.t0,
            "t1": span.t1,
            "cat": span.cat,
            "attrs": dict(span.attrs),
            "local_id": span.local_id,
            "parent_id": span.parent_id,
        })
    return docs


def recorder_from_spans(
    track: str, docs: List[Dict[str, Any]]
) -> SpanRecorder:
    """Rebuild a flush-ready :class:`SpanRecorder` from stored documents.

    The inverse of :func:`serialize_spans`: a result-store replay hands
    the rebuilt recorder to the tracer exactly like a freshly executed
    case, so flush order, span counts and hence global span ids match
    the cold run's byte for byte.
    """
    recorder = SpanRecorder(track)
    next_local = 1
    for doc in docs:
        span = Span(
            name=str(doc["name"]),
            t0=float(doc["t0"]),
            t1=float(doc["t1"]),
            cat=str(doc.get("cat", "")),
            track=track,
            attrs=dict(doc.get("attrs") or {}),
            local_id=int(doc["local_id"]),
            parent_id=(
                int(doc["parent_id"])
                if doc.get("parent_id") is not None else None
            ),
        )
        recorder.spans.append(span)
        next_local = max(next_local, span.local_id + 1)
    recorder._next_local = next_local
    return recorder


def strip_replay_attrs(
    records: List[Dict[str, Any]],
) -> List[Dict[str, Any]]:
    """Copies of span records minus the ``replayed`` cache annotation.

    The byte-identity gate compares a warm run's trace to a cold run's
    *modulo cache annotations* (same contract as provenance's
    ``cached_from``): the executor marks replayed cases with a
    ``replayed=true`` attribute on their campaign-track span, and this
    strips exactly that, leaving every other byte to the comparison.
    """
    out: List[Dict[str, Any]] = []
    for record in records:
        attrs = record.get("attrs")
        if isinstance(attrs, dict) and "replayed" in attrs:
            record = dict(record)
            attrs = dict(attrs)
            attrs.pop("replayed")
            record["attrs"] = attrs
        out.append(record)
    return out


def as_tracer(value: Any, wall: bool = False) -> Optional[Tracer]:
    """Coerce CLI/API input (path | Tracer | None) to a Tracer."""
    if value is None or isinstance(value, Tracer):
        return value
    return Tracer(value, wall=wall)


# --------------------------------------------------------------------------
# reading & analysis
# --------------------------------------------------------------------------

def load_trace(
    path: str,
) -> Tuple[Dict[str, Any], List[Dict[str, Any]], Optional[Dict[str, Any]]]:
    """Parse a trace file -> (meta, span records, metrics snapshot).

    Torn trailing records (a crashed campaign) are skipped by the shared
    JSONL reader; an empty or meta-less file raises :class:`TraceError`.
    """
    records = read_jsonl(path)
    if not records:
        raise TraceError(f"{path}: empty trace file")
    meta: Optional[Dict[str, Any]] = None
    spans: List[Dict[str, Any]] = []
    metrics: Optional[Dict[str, Any]] = None
    for record in records:
        kind = record.get("kind")
        if kind == "meta" and meta is None:
            meta = record
        elif kind == "span":
            spans.append(record)
        elif kind == "metrics":
            metrics = record.get("metrics")
    if meta is None:
        raise TraceError(f"{path}: no meta record (not a repro trace?)")
    if meta.get("format") != TRACE_FORMAT:
        raise TraceError(
            f"{path}: unknown trace format {meta.get('format')!r}"
        )
    return meta, spans, metrics


def validate_nesting(spans: List[Dict[str, Any]],
                     epsilon: float = 1e-9) -> List[str]:
    """Structural checks on span records; returns a list of violations.

    * every ``parent`` id references an earlier span on the same track;
    * every child interval lies within its parent's (to *epsilon*);
    * no span ends before it starts.

    An empty list means the trace nests correctly -- what the tier-1
    smoke test asserts for chaos campaigns.
    """
    by_id: Dict[int, Dict[str, Any]] = {}
    problems: List[str] = []
    for span in spans:
        sid = span["id"]
        if span["t1"] < span["t0"] - epsilon:
            problems.append(
                f"span {sid} ({span['name']}): ends before it starts"
            )
        parent_id = span.get("parent")
        if parent_id is not None:
            parent = by_id.get(parent_id)
            if parent is None:
                problems.append(
                    f"span {sid} ({span['name']}): parent {parent_id} "
                    f"not seen before it"
                )
            else:
                if parent["track"] != span["track"]:
                    problems.append(
                        f"span {sid} ({span['name']}): parent on a "
                        f"different track"
                    )
                if (span["t0"] < parent["t0"] - epsilon
                        or span["t1"] > parent["t1"] + epsilon):
                    problems.append(
                        f"span {sid} ({span['name']}): "
                        f"[{span['t0']:g}, {span['t1']:g}] outside parent "
                        f"{parent_id} [{parent['t0']:g}, {parent['t1']:g}]"
                    )
        by_id[sid] = span
    return problems


def chrome_trace(spans: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Convert span records to Chrome trace-event JSON (``chrome://tracing``).

    Tracks map to thread ids (with ``thread_name`` metadata events);
    simulated seconds map to microseconds.  Complete events (``ph: X``)
    carry the span attributes in ``args``.
    """
    tracks: List[str] = []
    tids: Dict[str, int] = {}
    events: List[Dict[str, Any]] = []
    for span in spans:
        track = span["track"] or "campaign"
        if track not in tids:
            tids[track] = len(tids)
            tracks.append(track)
    for i, track in enumerate(tracks):
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": i,
            "args": {"name": track},
        })
    for span in spans:
        track = span["track"] or "campaign"
        duration_us = (span["t1"] - span["t0"]) * 1e6
        event = {
            "name": span["name"],
            "cat": span.get("cat") or "span",
            "ph": "X" if duration_us > 0 else "i",
            "ts": span["t0"] * 1e6,
            "pid": 1,
            "tid": tids[track],
            "args": dict(span.get("attrs") or {}),
        }
        if duration_us > 0:
            event["dur"] = duration_us
        else:
            event["s"] = "t"  # instant scope: thread
        events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {"format": TRACE_FORMAT, "clock": "simulated-seconds"},
    }
