"""Observability: structured spans, metrics, and the trace file.

The paper's Principles 4-5 require capturing *all* run metadata next to
the FOM.  :mod:`repro.core.provenance` records outcomes; this package
records where the campaign's (simulated) time and retries went --
pipeline stages, queue waits, backoff sleeps, watchdog events,
speculative duplicates -- plus a unified metrics namespace replacing the
summary counters that used to be scattered over four objects.

Four modules, zero dependencies:

* :mod:`repro.obs.jsonl` -- the crash-safe JSONL primitives shared with
  the campaign journal (single-write appends, fsync, torn-tail repair);
* :mod:`repro.obs.trace` -- ``Tracer``/``Span``/``SpanRecorder``/
  ``CaseTimeline``, plus ``load_trace``/``validate_nesting``/
  ``chrome_trace`` for the analysis side;
* :mod:`repro.obs.metrics` -- ``MetricsRegistry`` with counters, gauges
  and fixed-bucket histograms whose snapshots are deterministic;
* :mod:`repro.obs.live` -- the live analytics plane: ``LiveStatsSink``
  subscribes to the perflog/trace writer hooks and maintains windowed
  aggregates (throughput, latency percentiles, fleet occupancy) while
  campaigns run, streaming sealed ``live-status`` snapshots a second
  process can tail.

``repro-trace`` (:mod:`repro.obs.cli`) renders timelines, slowest-span
tables and metrics summaries from the trace file and exports Chrome
``chrome://tracing`` JSON; ``repro-top`` (:mod:`repro.obs.top`) is the
refresh-loop dashboard over the live plane.
"""

from repro.obs.jsonl import JsonlAppender, read_jsonl, write_jsonl_atomic
from repro.obs.live import (
    LiveStatsSink,
    TailCursor,
    as_live_sink,
    read_live_status,
    replay_trace,
)
from repro.obs.metrics import (
    Counter,
    DURATION_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    CaseTimeline,
    Span,
    SpanRecorder,
    TraceError,
    Tracer,
    as_tracer,
    chrome_trace,
    load_trace,
    validate_nesting,
)

__all__ = [
    "CaseTimeline",
    "Counter",
    "DURATION_BUCKETS",
    "Gauge",
    "Histogram",
    "JsonlAppender",
    "LiveStatsSink",
    "MetricsRegistry",
    "Span",
    "SpanRecorder",
    "TailCursor",
    "TraceError",
    "Tracer",
    "as_live_sink",
    "as_tracer",
    "chrome_trace",
    "load_trace",
    "read_jsonl",
    "read_live_status",
    "replay_trace",
    "validate_nesting",
    "write_jsonl_atomic",
]
