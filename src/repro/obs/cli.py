"""``repro-trace``: render and export campaign trace files.

Reads the crash-safe JSONL trace that ``repro-bench --trace PATH``
streams during a campaign and turns it into something a human (or
Chrome) can look at:

* the default view -- a per-track ASCII timeline: one lane per span
  nesting depth, bars scaled to the track's extent in simulated
  seconds;
* ``--slowest N`` -- the N longest spans across the whole trace,
  a flat table (where did the time actually go?);
* ``--metrics`` -- the end-of-campaign metrics snapshot embedded in the
  trace's final record (counters, gauges, histogram percentiles);
* ``--chrome OUT.json`` -- Chrome trace-event JSON for
  ``chrome://tracing`` / Perfetto;
* ``--validate`` -- structural nesting checks (exit 1 on violations).

Everything renders from the file alone; no campaign state is needed,
so traces can be inspected long after (or on a different machine than)
the run that produced them.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional

from repro.obs.trace import (
    TraceError,
    chrome_trace,
    load_trace,
    validate_nesting,
)

__all__ = ["build_parser", "main"]


# --------------------------------------------------------------------------
# formatting helpers
# --------------------------------------------------------------------------

def _fmt_seconds(value: float) -> str:
    """Compact human duration (simulated seconds)."""
    if value >= 3600:
        return f"{value / 3600:.2f}h"
    if value >= 60:
        return f"{value / 60:.2f}m"
    if value >= 1:
        return f"{value:.2f}s"
    return f"{value * 1000:.1f}ms"


def _depths(spans: List[Dict[str, Any]]) -> Dict[int, int]:
    """Nesting depth per span id (roots at 0)."""
    depth: Dict[int, int] = {}
    for span in spans:
        parent = span.get("parent")
        depth[span["id"]] = depth.get(parent, -1) + 1 if parent else 0
    return depth


def _group_tracks(spans: List[Dict[str, Any]]) -> "Dict[str, List[Dict[str, Any]]]":
    tracks: Dict[str, List[Dict[str, Any]]] = {}
    for span in spans:
        tracks.setdefault(span.get("track") or "campaign", []).append(span)
    return tracks


# --------------------------------------------------------------------------
# views
# --------------------------------------------------------------------------

def render_timeline(spans: List[Dict[str, Any]], width: int = 72,
                    only_track: Optional[str] = None) -> str:
    """Per-track ASCII timeline, one row per span, indented by depth."""
    out: List[str] = []
    depth = _depths(spans)
    for track, track_spans in _group_tracks(spans).items():
        if only_track is not None and track != only_track:
            continue
        t_lo = min(s["t0"] for s in track_spans)
        t_hi = max(s["t1"] for s in track_spans)
        extent = max(t_hi - t_lo, 1e-12)
        out.append(f"== {track}  [{_fmt_seconds(t_hi - t_lo)}] ==")
        for span in track_spans:
            lo = int((span["t0"] - t_lo) / extent * width)
            hi = int((span["t1"] - t_lo) / extent * width)
            lo = min(lo, width - 1)
            hi = min(max(hi, lo), width)
            # replayed cases (served from the result store) render with
            # a lighter fill, so a warm campaign's timeline shows at a
            # glance which cases actually executed
            fill = (
                "▒" if (span.get("attrs") or {}).get("replayed")
                else "#"
            )
            if hi > lo:
                bar = " " * lo + fill * (hi - lo) + " " * (width - hi)
            else:  # instant event
                bar = " " * lo + "|" + " " * (width - lo - 1)
            indent = "  " * depth.get(span["id"], 0)
            label = f"{indent}{span['name']}"
            dur = span["t1"] - span["t0"]
            out.append(
                f"  [{bar}] {label:<30.30} {_fmt_seconds(dur):>9}"
            )
        out.append("")
    return "\n".join(out).rstrip("\n")


def render_slowest(spans: List[Dict[str, Any]], limit: int = 10) -> str:
    """The *limit* longest spans, as a flat table."""
    timed = [s for s in spans if s["t1"] > s["t0"]]
    timed.sort(key=lambda s: (-(s["t1"] - s["t0"]), s["id"]))
    out = [f"{'duration':>10}  {'cat':<9} {'track':<28.28} name"]
    for span in timed[:limit]:
        out.append(
            f"{_fmt_seconds(span['t1'] - span['t0']):>10}  "
            f"{(span.get('cat') or '-'):<9} "
            f"{(span.get('track') or 'campaign'):<28.28} "
            f"{span['name']}"
        )
    return "\n".join(out)


def render_metrics(metrics: Optional[Dict[str, Any]]) -> str:
    """The embedded metrics snapshot, flattened for the terminal."""
    if not metrics:
        return "(no metrics record in trace -- run with --metrics?)"
    out: List[str] = []
    counters = metrics.get("counters") or {}
    if counters:
        out.append("counters:")
        for name in sorted(counters):
            out.append(f"  {name:<36} {counters[name]}")
    gauges = metrics.get("gauges") or {}
    if gauges:
        out.append("gauges:")
        for name in sorted(gauges):
            out.append(f"  {name:<36} {gauges[name]:g}")
    histograms = metrics.get("histograms") or {}
    if histograms:
        out.append("histograms:")
        for name in sorted(histograms):
            h = histograms[name]
            out.append(
                f"  {name:<36} n={h['count']} sum={_fmt_seconds(h['sum'])} "
                f"p50={_fmt_seconds(h['p50'])} p90={_fmt_seconds(h['p90'])} "
                f"p99={_fmt_seconds(h['p99'])}"
            )
    return "\n".join(out) if out else "(metrics snapshot is empty)"


def render_summary(meta: Dict[str, Any], spans: List[Dict[str, Any]],
                   metrics: Optional[Dict[str, Any]]) -> str:
    tracks = _group_tracks(spans)
    total = sum(s["t1"] - s["t0"] for s in spans if not s.get("parent"))
    return (
        f"trace: {meta.get('format')} v{meta.get('version')} "
        f"(clock: {meta.get('clock')})\n"
        f"spans: {len(spans)} on {len(tracks)} tracks, "
        f"root-span time {_fmt_seconds(total)}"
        + ("" if metrics is None else ", metrics snapshot present")
    )


# --------------------------------------------------------------------------
# entry point
# --------------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-trace",
        description="Render and export repro-bench trace files.",
    )
    parser.add_argument("trace", help="trace JSONL file (from --trace PATH)")
    parser.add_argument(
        "--timeline", action="store_true",
        help="per-track ASCII timeline (default view)",
    )
    parser.add_argument(
        "--track", default=None, metavar="NAME",
        help="restrict the timeline to one track (e.g. a case fingerprint)",
    )
    parser.add_argument(
        "--width", type=int, default=72,
        help="timeline bar width in characters (default 72)",
    )
    parser.add_argument(
        "--slowest", type=int, default=None, metavar="N",
        help="show the N longest spans as a table",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="show the end-of-campaign metrics snapshot",
    )
    parser.add_argument(
        "--chrome", default=None, metavar="OUT.json",
        help="export Chrome trace-event JSON (chrome://tracing, Perfetto)",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help="check span nesting; exit 1 and list violations if broken",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        meta, spans, metrics = load_trace(args.trace)
    except (TraceError, json.JSONDecodeError) as exc:
        print(f"repro-trace: {exc}", file=sys.stderr)
        return 2

    if args.validate:
        problems = validate_nesting(spans)
        if problems:
            for problem in problems:
                print(f"repro-trace: {problem}", file=sys.stderr)
            return 1
        print(f"ok: {len(spans)} spans nest correctly")

    did_something = args.validate
    if args.chrome:
        with open(args.chrome, "w", encoding="utf-8") as fh:
            json.dump(chrome_trace(spans), fh, indent=1, sort_keys=True)
        print(f"wrote Chrome trace: {args.chrome} ({len(spans)} spans)")
        did_something = True
    if args.slowest is not None:
        print(render_slowest(spans, args.slowest))
        did_something = True
    if args.metrics:
        print(render_metrics(metrics))
        did_something = True
    if args.timeline or not did_something:
        print(render_summary(meta, spans, metrics))
        print()
        print(render_timeline(spans, width=args.width,
                              only_track=args.track))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
