"""Live analytics plane: streaming ingest + windowed aggregates.

Post-processing in this repo was post-hoc: perflogs and traces become
queryable only after a campaign ends.  This module closes the loop --
``LiveStatsSink`` subscribes to the writer hooks that already exist
(``PerflogWriter.note_append``, ``Tracer.note_flush``) and maintains
windowed aggregates *while campaigns run*:

- per-system throughput (cases/s over a sliding window of fixed-width
  buckets on the **simulated clock** -- dashboards are therefore
  byte-reproducible across serial/async/procs policies),
- queue-wait / job-run / whole-case percentiles from the same
  fixed-bucket histograms the metrics registry uses,
- retry / fault / degraded rates and result-store hit rates folded in
  from metrics snapshots,
- per-campaign fleet progress and per-tenant occupancy fed by the
  fleet supervisor.

The sink is exposed three ways:

1. **in-process**: the executor and fleet supervisor feed it directly;
   ``snapshot()`` is a cheap copy-under-lock read any thread may call.
2. **on disk**: a crash-safe sealed-JSONL ``live-status`` artifact
   (same :mod:`repro.obs.jsonl` contract as the journal and trace)
   that a *second process* can tail -- ``repro-fleet status`` and
   ``repro-top`` read it without touching the running campaign.
3. **replay**: ``replay_trace`` rebuilds the identical sink state from
   a finished trace file, which is how tests prove live == post-hoc.

``TailCursor`` gives followers exactly-once incremental reads of the
status file: it re-implements the seam-digest idea of the ingest
store's manifest (head probe + seam probe + offset) without importing
:mod:`repro.postprocess` -- the obs package stays zero-dependency.
"""

from __future__ import annotations

import hashlib
import os
import threading
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from .jsonl import JsonlAppender, read_jsonl, verify_line
from .metrics import Histogram

__all__ = [
    "LIVE_FORMAT",
    "LIVE_VERSION",
    "LiveStatsSink",
    "TailCursor",
    "as_live_sink",
    "read_live_status",
    "replay_trace",
]

LIVE_FORMAT = "repro-live"
LIVE_VERSION = 1

#: sliding-window width (simulated seconds) for throughput rates
DEFAULT_WINDOW = 60.0
#: fixed bucket width the window is built from; rates and sparklines
#: are bucket-aligned so they are independent of *when* you look
DEFAULT_BUCKET = 5.0
#: sparkline history length, in buckets
DEFAULT_HISTORY = 16
#: emit a status record every N completed cases (when a path is set)
DEFAULT_EMIT_EVERY = 64
#: slowest-span leaderboard size
DEFAULT_TOP_N = 5

_CASE_KEYS = (
    "total", "passed", "failed", "skipped", "retried", "attempts_extra",
    "resumed", "replayed", "speculated", "quarantined",
)


def system_of(display_name: str) -> str:
    """The system a case display name attributes to.

    Display names are ``"{test} @{system}:{partition}+{environ}"``;
    the parse is shared by live ingestion (executor callback) and
    replay ingestion (trace records) so both attribute identically.
    """
    _, sep, rest = display_name.rpartition("@")
    if not sep:
        return "?"
    for stop in (":", "+"):
        idx = rest.find(stop)
        if idx >= 0:
            rest = rest[:idx]
    return rest or "?"


def _round(value: Optional[float]) -> Optional[float]:
    return None if value is None else round(float(value), 9)


def _hist_summary(hist: Histogram) -> Dict[str, Any]:
    doc = hist.as_dict()
    return {
        "count": doc["count"],
        "p50": _round(doc["p50"]),
        "p90": _round(doc["p90"]),
        "p99": _round(doc["p99"]),
        "max": _round(doc["max"]),
    }


class TailCursor:
    """Exactly-once incremental reader for an append-only line file.

    The manifest trick from ``postprocess.store`` applied to tailing:
    remember ``(offset, head digest, seam digest)`` and on each poll
    verify that the file still *begins* the same (head probe) and that
    the bytes just before our offset are the ones we already consumed
    (seam probe).  If both hold, everything past ``offset`` is new and
    is returned exactly once; if either fails the file was rewritten
    (heal, truncate, rotation) and the cursor resets to a full re-read,
    reporting ``reset=True`` so the caller can rebuild derived state.

    Only *complete* lines are surfaced -- a torn tail mid-append is
    left for the next poll, mirroring the sealed-JSONL crash contract.
    """

    HEAD_PROBE_BYTES = 4096
    SEAM_PROBE_BYTES = 64

    def __init__(self, path: str):
        self.path = path
        self.offset = 0
        self._head: Optional[str] = None
        self._seam: Optional[str] = None

    @staticmethod
    def _digest(data: bytes) -> str:
        return hashlib.sha256(data).hexdigest()

    def _verify(self, fh) -> bool:
        if self.offset == 0:
            return True
        size = os.fstat(fh.fileno()).st_size
        if size < self.offset:
            return False
        head_len = min(self.offset, self.HEAD_PROBE_BYTES)
        fh.seek(0)
        if self._digest(fh.read(head_len)) != self._head:
            return False
        seam_len = min(self.offset, self.SEAM_PROBE_BYTES)
        fh.seek(self.offset - seam_len)
        return self._digest(fh.read(seam_len)) == self._seam

    def read_new(self) -> Tuple[List[str], bool]:
        """``(new complete lines, reset?)`` since the last poll."""
        try:
            fh = open(self.path, "rb")
        except OSError:
            return [], False
        with fh:
            reset = not self._verify(fh)
            if reset:
                self.offset = 0
            fh.seek(self.offset)
            chunk = fh.read()
            nl = chunk.rfind(b"\n")
            if nl < 0:
                return [], reset
            new_offset = self.offset + nl + 1
            head_len = min(new_offset, self.HEAD_PROBE_BYTES)
            fh.seek(0)
            self._head = self._digest(fh.read(head_len))
            seam_len = min(new_offset, self.SEAM_PROBE_BYTES)
            fh.seek(new_offset - seam_len)
            self._seam = self._digest(fh.read(seam_len))
            lines = chunk[:nl].decode("utf-8", "replace").split("\n")
            self.offset = new_offset
            return lines, reset


class LiveStatsSink:
    """Streaming aggregator over the writer hooks.

    One instance serves one campaign *or* a whole fleet (the supervisor
    shares a single sink across campaigns and labels progress through
    :meth:`note_fleet`).  Two sources, one state machine:

    - ``source="live"``: the executor calls :meth:`observe_case` per
      completed case (the same name/extent/attrs it records on the
      campaign trace track) and the writer hooks stream perflog rows
      (:meth:`note_append`) and span batches (:meth:`note_flush`).
      Campaign-track case spans arriving through ``note_flush`` are
      *skipped* -- they are the end-of-run summary of what
      ``observe_case`` already counted.
    - ``source="replay"``: everything -- case summaries included -- is
      ingested from trace records via :meth:`note_flush`, so a finished
      trace deterministically reconstructs the live state.

    All timestamps are simulated seconds; nothing here reads a wall
    clock, which is what makes snapshots (and the dashboards rendered
    from them) byte-identical across execution policies.
    """

    def __init__(
        self,
        status_path: Optional[str] = None,
        source: str = "live",
        window: float = DEFAULT_WINDOW,
        bucket: float = DEFAULT_BUCKET,
        history: int = DEFAULT_HISTORY,
        emit_every: int = DEFAULT_EMIT_EVERY,
        top_n: int = DEFAULT_TOP_N,
        sync: bool = False,
    ):
        if source not in ("live", "replay"):
            raise ValueError(f"source must be 'live' or 'replay': {source!r}")
        if bucket <= 0 or window <= 0:
            raise ValueError("window and bucket must be positive")
        self.source = source
        self.status_path = str(status_path) if status_path else None
        self.window = float(window)
        self.bucket = float(bucket)
        self.history = max(1, int(history))
        self.emit_every = max(1, int(emit_every))
        self.top_n = max(1, int(top_n))
        self._sync = sync
        self._appender: Optional[JsonlAppender] = None
        self._wrote_meta = False
        self._lock = threading.Lock()

        self.clock = 0.0
        self.cases: Dict[str, int] = {k: 0 for k in _CASE_KEYS}
        self.rows = 0
        self.files: set = set()
        self.events: Dict[str, int] = {
            "spans": 0, "waves": 0, "backoffs": 0, "perflog_flushes": 0,
        }
        #: per-system tallies + completion-time bucket ring
        self.systems: Dict[str, Dict[str, Any]] = {}
        self._global_buckets: Dict[int, int] = {}
        self.hist_queue = Histogram("live.queue_seconds")
        self.hist_job = Histogram("live.job_seconds")
        self.hist_case = Histogram("live.case_seconds")
        #: ``(duration, track, name)`` leaderboard, deterministic order
        self.slowest: List[Tuple[float, str, str]] = []
        #: counters folded from metrics snapshots (fleet slices add up)
        self.totals: Dict[str, int] = {}
        #: per-campaign fleet progress, fed by the supervisor
        self.fleet: Dict[str, Dict[str, Any]] = {}
        self._emitted = 0
        self._since_emit = 0

    # -- writer hooks --------------------------------------------------------
    def note_append(self, path: str, lines: Sequence[str],
                    wrote_header: bool = False) -> None:
        """Perflog hook: count durable rows, attribute them per system."""
        with self._lock:
            self.files.add(path)
            self.rows += len(lines)
            for line in lines:
                parts = line.split("|")
                if len(parts) > 3:
                    rec = self._system(parts[3])
                    rec["rows"] += 1

    def note_flush(
        self, path: Optional[str],
        lines: Sequence[Union[str, Dict[str, Any]]],
    ) -> None:
        """Trace hook: ingest a flushed batch of trace records.

        Items are decoded record dicts (the tracer's in-process hot
        path skips a re-parse + checksum round trip) or sealed JSONL
        lines (replay, result-store blits); lines are verified and
        damaged ones skipped.
        """
        with self._lock:
            for line in lines:
                rec = line if isinstance(line, dict) else verify_line(line)
                if rec is None:
                    continue
                kind = rec.get("kind")
                if kind == "span":
                    self._ingest_span(rec)
                elif kind == "metrics" and self.source == "replay":
                    self._fold_metrics(rec.get("metrics") or {})

    # -- live-mode feeds (executor / supervisor) -----------------------------
    def observe_case(
        self,
        name: str,
        t0: float,
        t1: float,
        attrs: Dict[str, Any],
        durations: Optional[Dict[str, float]] = None,
    ) -> None:
        """One completed case, straight from the executor.

        ``(name, t0, t1, attrs)`` are exactly what the executor records
        on the campaign trace track, so live state matches a later
        replay of the trace byte for byte.  *durations* carries
        queue/job seconds for **untraced** runs only -- when a tracer
        is armed the same figures arrive as ``sched`` spans through
        :meth:`note_flush` and feeding both would double-count.
        """
        with self._lock:
            self._ingest_case(name, t0, t1, attrs)
            if durations:
                for key, hist in (("queue", self.hist_queue),
                                  ("job", self.hist_job)):
                    value = durations.get(key)
                    if value is not None:
                        hist.observe(value)
            self._since_emit += 1
            if (self.status_path is not None
                    and self._since_emit >= self.emit_every):
                self._emit_locked(self.clock)

    def note_fleet(
        self,
        campaign_id: str,
        tenant: str = "default",
        nodes: int = 0,
        done: int = 0,
        total: int = 0,
        slices: int = 0,
        status: str = "running",
        now: Optional[float] = None,
    ) -> None:
        """Per-campaign fleet progress, fed by the supervisor per slice."""
        with self._lock:
            if now is not None:
                self.clock = max(self.clock, float(now))
            self.fleet[campaign_id] = {
                "tenant": tenant,
                "nodes": int(nodes),
                "done": int(done),
                "total": int(total),
                "slices": int(slices),
                "status": status,
            }

    def finalize(self, metrics: Optional[Dict[str, Any]] = None,
                 now: Optional[float] = None) -> None:
        """Fold an end-of-run metrics snapshot and emit a final status.

        Called once per campaign run (or per fleet slice -- counters
        fold additively, matching ``MetricsRegistry.merge_snapshot``).
        """
        with self._lock:
            if metrics:
                self._fold_metrics(metrics)
            if now is not None:
                self.clock = max(self.clock, float(now))
            if self.status_path is not None:
                self._emit_locked(self.clock)

    def emit_status(self, now: Optional[float] = None) -> None:
        """Append a status record to the live-status artifact now."""
        with self._lock:
            if now is not None:
                self.clock = max(self.clock, float(now))
            if self.status_path is not None:
                self._emit_locked(self.clock)

    # -- ingestion internals (lock held) -------------------------------------
    def _system(self, name: str) -> Dict[str, Any]:
        rec = self.systems.get(name)
        if rec is None:
            rec = {"cases": 0, "passed": 0, "failed": 0, "rows": 0,
                   "buckets": {}}
            self.systems[name] = rec
        return rec

    def _ingest_span(self, rec: Dict[str, Any]) -> None:
        track = rec.get("track")
        name = rec.get("name") or ""
        cat = rec.get("cat")
        t0 = float(rec.get("t0") or 0.0)
        t1 = float(rec.get("t1") or t0)
        attrs = rec.get("attrs") or {}
        self.events["spans"] += 1
        if cat == "case" and track == "campaign":
            # the campaign track's per-case summary spans: authoritative
            # in replay, already counted via observe_case when live
            if self.source == "replay":
                self._ingest_case(name, t0, t1, attrs)
            return
        dur = t1 - t0
        if cat == "sched":
            if name == "queue-wait":
                self.hist_queue.observe(dur)
            elif name == "job-run":
                self.hist_job.observe(dur)
        elif cat == "retry":
            self.events["backoffs"] += 1
        elif cat == "wave":
            self.events["waves"] += 1
        elif cat == "io" and name == "perflog-flush":
            self.events["perflog_flushes"] += 1
        elif cat == "case":
            # per-case track lifecycle events (zero-length markers)
            if name == "quarantined":
                self.cases["quarantined"] += 1
        if dur > 0:
            self._note_slowest(dur, str(track), name)

    def _ingest_case(self, name: str, t0: float, t1: float,
                     attrs: Dict[str, Any]) -> None:
        self.clock = max(self.clock, t1)
        c = self.cases
        c["total"] += 1
        status = attrs.get("status")
        if status == "passed":
            c["passed"] += 1
        elif status == "skipped":
            c["skipped"] += 1
        else:
            c["failed"] += 1
        attempts = int(attrs.get("attempts") or 1)
        if attempts > 1:
            c["retried"] += 1
            c["attempts_extra"] += attempts - 1
        for flag in ("resumed", "replayed", "speculated"):
            if attrs.get(flag):
                c[flag] += 1
        self.hist_case.observe(t1 - t0)
        rec = self._system(system_of(name))
        rec["cases"] += 1
        if status == "passed":
            rec["passed"] += 1
        elif status != "skipped":
            rec["failed"] += 1
        idx = int(t1 // self.bucket)
        rec["buckets"][idx] = rec["buckets"].get(idx, 0) + 1
        self._global_buckets[idx] = self._global_buckets.get(idx, 0) + 1
        self._prune(rec["buckets"])
        self._prune(self._global_buckets)

    def _prune(self, buckets: Dict[int, int]) -> None:
        keep = max(self.history, int(self.window / self.bucket) + 1)
        if len(buckets) <= keep + 8:
            return
        floor = int(self.clock // self.bucket) - keep
        for idx in [i for i in buckets if i < floor]:
            del buckets[idx]

    def _note_slowest(self, dur: float, track: str, name: str) -> None:
        dur = round(dur, 9)
        # hot path: a full leaderboard rejects strictly-slower entries
        # without sorting (ties still enter, for deterministic order)
        if len(self.slowest) >= self.top_n and dur < self.slowest[-1][0]:
            return
        self.slowest.append((dur, track, name))
        # ties break on (track, name): deterministic across policies
        self.slowest.sort(key=lambda s: (-s[0], s[1], s[2]))
        del self.slowest[self.top_n:]

    def _fold_metrics(self, snapshot: Dict[str, Any]) -> None:
        for key, value in (snapshot.get("counters") or {}).items():
            if isinstance(value, bool) or not isinstance(value, int):
                continue
            self.totals[key] = self.totals.get(key, 0) + value

    # -- windowed reads ------------------------------------------------------
    def _rate(self, buckets: Dict[int, int]) -> float:
        """Cases/s over the sliding window ending at the current clock."""
        if not buckets:
            return 0.0
        end = int(self.clock // self.bucket)
        span = int(self.window / self.bucket)
        n = sum(buckets.get(i, 0) for i in range(end - span + 1, end + 1))
        # early campaigns: don't divide by time that hasn't elapsed yet
        elapsed = min(self.window, max(self.clock, self.bucket))
        return n / elapsed

    def _history(self, buckets: Dict[int, int]) -> List[int]:
        end = int(self.clock // self.bucket)
        start = max(0, end - self.history + 1)
        return [buckets.get(i, 0) for i in range(start, end + 1)]

    # -- snapshot ------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A plain, deterministic, JSON-able view of the live state."""
        with self._lock:
            return self._snapshot_locked()

    def _snapshot_locked(self) -> Dict[str, Any]:
        total = self.cases["total"]
        systems: Dict[str, Any] = {}
        for name in sorted(self.systems):
            rec = self.systems[name]
            systems[name] = {
                "cases": rec["cases"],
                "passed": rec["passed"],
                "failed": rec["failed"],
                "rows": rec["rows"],
                "rate": _round(self._rate(rec["buckets"])),
                "history": self._history(rec["buckets"]),
            }
        hits = self.totals.get("resultstore.hits", 0)
        misses = self.totals.get("resultstore.misses", 0)
        degraded = sum(v for k, v in self.totals.items()
                       if k.startswith("io.degraded."))
        rates = {
            "cases_per_second": _round(self._rate(self._global_buckets)),
            "retry_rate": _round(self.cases["retried"] / total
                                 if total else 0.0),
            "fault_rate": _round(self.totals.get("faults.injected", 0)
                                 / total if total else 0.0),
            "store_hit_rate": _round(hits / (hits + misses)
                                     if hits + misses else 0.0),
            "degraded_streams": degraded,
        }
        alerts: List[str] = []
        if self.cases["failed"]:
            alerts.append(f"{self.cases['failed']} case(s) failed")
        if self.cases["quarantined"]:
            alerts.append(
                f"{self.cases['quarantined']} case(s) quarantined")
        for key in sorted(self.totals):
            if key.startswith("io.degraded.") and self.totals[key]:
                alerts.append(
                    f"degraded stream: {key[len('io.degraded.'):]}")
        for cid in sorted(self.fleet):
            st = self.fleet[cid]["status"]
            if st not in ("running", "completed", "queued"):
                alerts.append(f"campaign {cid}: {st}")
        tenants: Dict[str, Dict[str, int]] = {}
        for cid in sorted(self.fleet):
            info = self.fleet[cid]
            slot = tenants.setdefault(
                info["tenant"], {"campaigns": 0, "nodes": 0})
            slot["campaigns"] += 1
            if info["status"] == "running":
                slot["nodes"] += info["nodes"]
        return {
            "clock": _round(self.clock),
            "source": self.source,
            "cases": {k: self.cases[k] for k in _CASE_KEYS},
            "rows": self.rows,
            "files": len(self.files),
            "events": {k: self.events[k] for k in sorted(self.events)},
            "systems": systems,
            "latency": {
                "queue": _hist_summary(self.hist_queue),
                "run": _hist_summary(self.hist_job),
                "case": _hist_summary(self.hist_case),
            },
            "rates": rates,
            "slowest": [list(s) for s in self.slowest],
            "fleet": {cid: dict(self.fleet[cid])
                      for cid in sorted(self.fleet)},
            "tenants": tenants,
            "alerts": alerts,
            "totals": {k: self.totals[k] for k in sorted(self.totals)},
        }

    # -- live-status artifact ------------------------------------------------
    def _emit_locked(self, now: float) -> None:
        if self._appender is None:
            self._appender = JsonlAppender(self.status_path, sync=self._sync)
        records: List[Dict[str, Any]] = []
        if not self._wrote_meta:
            records.append({
                "kind": "meta",
                "format": LIVE_FORMAT,
                "version": LIVE_VERSION,
                "clock": "simulated-seconds",
                "window": self.window,
                "bucket": self.bucket,
            })
            self._wrote_meta = True
        self._since_emit = 0
        self._emitted += 1
        records.append({"kind": "status", "seq": self._emitted,
                        "t": _round(now),
                        "snapshot": self._snapshot_locked()})
        try:
            self._appender.append_many(records)
        except Exception:
            # the live plane must never fail the campaign: degrade to
            # in-memory aggregation only
            self.status_path = None
            self._appender = None


def as_live_sink(
    value: Optional[Union[str, LiveStatsSink]],
) -> Optional[LiveStatsSink]:
    """Coerce a CLI/run-option value into a sink (``None`` passes through)."""
    if value is None or isinstance(value, LiveStatsSink):
        return value
    return LiveStatsSink(status_path=str(value))


def read_live_status(
    path: str,
) -> Tuple[Optional[Dict[str, Any]], List[Dict[str, Any]]]:
    """``(meta, status records)`` from a live-status artifact.

    Torn tails are healed by the sealed-JSONL reader; a follower that
    wants only the latest view takes ``statuses[-1]["snapshot"]``.
    """
    records = read_jsonl(path)
    meta = next((r for r in records if r.get("kind") == "meta"), None)
    statuses = [r for r in records if r.get("kind") == "status"]
    return meta, statuses


def replay_trace(trace_path: str, **kwargs: Any) -> LiveStatsSink:
    """Rebuild the live sink state from a finished trace file.

    Every intact line is fed through the same ``note_flush`` path a
    live tracer uses; because the trace is byte-identical across
    execution policies, so is the resulting sink state.
    """
    sink = LiveStatsSink(source="replay", **kwargs)
    with open(trace_path, "r", encoding="utf-8") as fh:
        lines = [ln.rstrip("\n") for ln in fh if ln.strip()]
    sink.note_flush(trace_path, lines)
    return sink
