"""A process-local metrics registry: counters, gauges, histograms.

Before this PR the campaign's operational counters were scattered --
``RunReport`` summary properties (Retried/Resumed/Quarantined/Hung/
Speculated/Drained), ``CacheStats`` on the concretization memo,
``StoreStats`` on the perflog ingest cache, heartbeat tallies on the
watchdog.  The :class:`MetricsRegistry` unifies them under one namespace
so that one snapshot -- attached to :class:`~repro.core.provenance
.RunProvenance` via ``attach_metrics`` and appended to the trace file --
answers "what did this campaign *do*" without grepping four objects.

Zero dependencies, deterministic snapshots (sorted keys, counters are
order-independent sums), thread-safe (async campaigns increment from
worker threads).  Histograms use **fixed bucket boundaries**, so two
campaigns that did the same simulated work produce byte-identical
histogram snapshots regardless of execution policy; percentiles are
bucket-upper-bound estimates (the standard fixed-bucket trade-off).

Naming convention (the metrics catalogue in DESIGN.md section 7):
dotted paths, ``<layer>.<thing>[.<outcome>]`` --
``cases.passed``, ``retry.attempts_extra``, ``concretize.hits``,
``sched.queue_seconds`` (histogram), ``watchdog.heartbeats``.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "DURATION_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

#: default histogram boundaries for simulated-seconds durations: fine
#: below a minute (stage costs), coarse up to an hour (whole campaigns)
DURATION_BUCKETS: Tuple[float, ...] = (
    0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 30.0, 60.0,
    120.0, 300.0, 600.0, 1800.0, 3600.0,
)

#: percentiles every histogram snapshot reports
_PERCENTILES = (50, 90, 99)


class Counter:
    """A monotonically-increasing count."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def add(self, amount: int = 1) -> int:
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot add {amount}")
        with self._lock:
            self._value += amount
            return self._value

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A last-write-wins instantaneous value."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value: float = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed-bucket distribution with percentile estimates.

    ``boundaries`` are inclusive upper bounds; one implicit ``+inf``
    bucket catches the overflow.  ``observe`` is O(log buckets); the
    snapshot reports count/sum/min/max, the per-bucket tallies and
    bucket-resolution p50/p90/p99 (the percentile estimate is the upper
    bound of the bucket containing that rank -- clamped to the observed
    max so a half-empty top bucket cannot inflate it).
    """

    __slots__ = ("name", "boundaries", "_counts", "_count", "_sum",
                 "_min", "_max", "_lock")

    def __init__(self, name: str,
                 boundaries: Sequence[float] = DURATION_BUCKETS):
        bounds = tuple(float(b) for b in boundaries)
        if not bounds or any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name}: boundaries must be strictly increasing"
            )
        self.name = name
        self.boundaries = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1: the +inf bucket
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        value = float(value)
        idx = bisect_left(self.boundaries, value)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def percentile(self, q: float) -> float:
        """Bucket-resolution estimate of the *q*-th percentile (0-100)."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        with self._lock:
            return self._percentile_unlocked(q)

    def _percentile_unlocked(self, q: float) -> float:
        if self._count == 0:
            return 0.0
        rank = q / 100.0 * self._count
        seen = 0
        for i, n in enumerate(self._counts):
            seen += n
            if seen >= rank and n:
                upper = (
                    self.boundaries[i]
                    if i < len(self.boundaries)
                    else (self._max if self._max is not None else 0.0)
                )
                if self._max is not None:
                    upper = min(upper, self._max)
                return upper
        return self._max if self._max is not None else 0.0

    def as_dict(self) -> Dict[str, Any]:
        with self._lock:
            buckets: Dict[str, int] = {}
            for i, n in enumerate(self._counts):
                label = (
                    f"{self.boundaries[i]:g}"
                    if i < len(self.boundaries) else "+inf"
                )
                buckets[label] = n
            out: Dict[str, Any] = {
                "count": self._count,
                "sum": round(self._sum, 9),
                "min": self._min,
                "max": self._max,
                "buckets": buckets,
            }
            for q in _PERCENTILES:
                out[f"p{q}"] = self._percentile_unlocked(q)
            return out


class MetricsRegistry:
    """A namespace of metrics, created on first touch.

    ``counter(name)`` / ``gauge(name)`` / ``histogram(name)`` get-or-
    create; asking for an existing name with a different instrument
    type is an error (one name, one meaning).  ``snapshot()`` renders
    the whole registry as a plain, deterministic, JSON-able dict --
    what lands in provenance and in the trace file's final record.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls, *args: Any):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, not {cls.__name__}"
                    )
                return existing
            metric = cls(name, *args)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str,
                  boundaries: Sequence[float] = DURATION_BUCKETS) -> Histogram:
        return self._get(name, Histogram, boundaries)

    # -- bulk ingestion ------------------------------------------------------
    def merge_counts(self, prefix: str, counts: Dict[str, Any]) -> None:
        """Fold a plain ``{key: int}`` dict in as ``prefix.key`` counters.

        The adapter the legacy stats objects publish through
        (``CacheStats.publish`` / ``StoreStats.publish``): rates and
        other non-integer values are skipped -- they are derivable from
        the counts and would not merge additively.
        """
        for key, value in counts.items():
            if isinstance(value, bool) or not isinstance(value, int):
                continue
            if value < 0:
                continue
            self.counter(f"{prefix}.{key}").add(value)

    def merge_snapshot(self, snapshot: Dict[str, Any]) -> None:
        """Fold a :meth:`snapshot` dict from another registry into this one.

        The fleet-aggregation primitive: each campaign's run produces
        its own registry snapshot, and the supervisor folds them into
        one fleet registry.  Counters add; gauges take the incoming
        value (last write wins, matching single-registry semantics);
        histograms merge bucket tallies, counts, sums and min/max --
        exact for everything except the percentile estimates, which
        stay bucket-resolution by construction.
        """
        for name, value in (snapshot.get("counters") or {}).items():
            if isinstance(value, bool) or not isinstance(value, int):
                continue
            self.counter(name).add(value)
        for name, value in (snapshot.get("gauges") or {}).items():
            self.gauge(name).set(float(value))
        for name, data in (snapshot.get("histograms") or {}).items():
            buckets = data.get("buckets") or {}
            labels = [b for b in buckets if b != "+inf"]
            boundaries = (
                sorted(float(b) for b in labels)
                if labels else DURATION_BUCKETS
            )
            hist = self.histogram(name, boundaries)
            incoming_bounds = tuple(float(b) for b in boundaries)
            if hist.boundaries != incoming_bounds:
                raise ValueError(
                    f"histogram {name!r}: cannot merge snapshot with "
                    f"different bucket boundaries"
                )
            with hist._lock:
                for i, bound in enumerate(hist.boundaries):
                    hist._counts[i] += int(buckets.get(f"{bound:g}", 0))
                hist._counts[-1] += int(buckets.get("+inf", 0))
                hist._count += int(data.get("count", 0))
                hist._sum += float(data.get("sum", 0.0))
                for key, pick in (("min", min), ("max", max)):
                    incoming = data.get(key)
                    if incoming is None:
                        continue
                    current = getattr(hist, f"_{key}")
                    setattr(
                        hist, f"_{key}",
                        float(incoming) if current is None
                        else pick(current, float(incoming)),
                    )

    # -- snapshots -----------------------------------------------------------
    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            items = sorted(self._metrics.items())
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, Any]] = {}
        for name, metric in items:
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            elif isinstance(metric, Histogram):
                histograms[name] = metric.as_dict()
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    as_dict = snapshot

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MetricsRegistry({len(self)} metrics)"
