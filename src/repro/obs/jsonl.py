"""Crash-safe JSONL append/read, shared by the journal and the trace file.

PR 3 gave the campaign journal its durability contract: every record is
appended with a *single* ``write`` call (readers never observe an
interleaved partial record), flushed and fsynced before the writer moves
on, and a torn trailing line -- the signature a crash leaves -- is
detected and skipped on read instead of poisoning the whole file.

This PR adds a second crash-safe JSONL artifact (the span trace), so the
fsync/torn-tail machinery moves here, into one shared module, instead of
being duplicated:

* :class:`JsonlAppender` -- the write side.  One JSON object per line,
  one line per ``append``; parent directories are created on demand;
  ``sync=True`` (the default) fsyncs after every append so a journal or
  trace entry on disk survives power loss;
* :func:`read_jsonl` -- the read side.  Returns every *intact* record,
  oldest first.  A torn trailing line (no terminating newline, invalid
  JSON) is silently dropped -- it can only be the record that was being
  appended when the process died.  Corruption anywhere *else* is an
  error worth surfacing, because single-write appends cannot produce it;
* :func:`write_jsonl_atomic` -- whole-file replacement (write temp +
  fsync + rename) for compaction-style rewrites: a crash mid-rewrite
  leaves either the old file or the new one, never a torn mix.

Both the :class:`~repro.runner.resilience.CampaignJournal` and the
:class:`~repro.obs.trace.TraceWriter` are thin layers over these
primitives, which is what makes ``--resume`` treat the two files
identically.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, Iterable, List

__all__ = ["JsonlAppender", "read_jsonl", "write_jsonl_atomic"]


class JsonlAppender:
    """Append-only JSONL writer with the crash-safety contract.

    Each :meth:`append` serializes one record (``sort_keys=True``: the
    byte layout is deterministic), writes it in a single call, flushes,
    and -- unless ``sync=False`` -- fsyncs.  A lock serializes appends
    from worker threads.
    """

    def __init__(self, path: str, sync: bool = True):
        self.path = path
        self.sync = sync
        self._lock = threading.Lock()
        self._checked_tail = False

    def _prepare(self) -> None:
        """Pre-append housekeeping (call with the lock held).

        Creates parent directories, and -- once per appender -- repairs
        a torn tail left by a crash: appending *after* an unterminated
        line would glue two records into one undecodable middle line,
        which readers rightly treat as corruption.  Truncating back to
        the last complete record keeps resumed journals and traces
        parseable; the dropped fragment was never readable anyway.
        """
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        if self._checked_tail:
            return
        self._checked_tail = True
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb+") as fh:
            data = fh.read()
            if not data or data.endswith(b"\n"):
                return
            keep = data.rfind(b"\n") + 1  # 0 when no newline at all
            fh.truncate(keep)

    def append(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            self._prepare()
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(line)  # one write: no interleaved partial lines
                fh.flush()
                if self.sync:
                    os.fsync(fh.fileno())

    def append_many(self, records: Iterable[Dict[str, Any]]) -> int:
        """Append a batch in one open/write/fsync cycle; returns count.

        The batch goes down as one ``write`` of newline-terminated
        lines, so a crash tears at most the *final* record of the batch
        -- exactly the invariant :func:`read_jsonl` recovers from.
        """
        lines = [json.dumps(r, sort_keys=True) + "\n" for r in records]
        if not lines:
            return 0
        with self._lock:
            self._prepare()
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write("".join(lines))
                fh.flush()
                if self.sync:
                    os.fsync(fh.fileno())
        return len(lines)

    def append_lines(self, lines: List[str]) -> int:
        """Append pre-encoded JSON lines (without trailing newlines).

        The replay fast path: lines captured verbatim from a previous
        ``append_many`` (same ``sort_keys=True`` encoding) go back down
        without a decode/encode round-trip.  Same single-write batch
        contract as :meth:`append_many`.
        """
        if not lines:
            return 0
        with self._lock:
            self._prepare()
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write("\n".join(lines) + "\n")
                fh.flush()
                if self.sync:
                    os.fsync(fh.fileno())
        return len(lines)


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Every intact record in *path*, oldest first (torn tail skipped).

    Raises ``json.JSONDecodeError`` for corruption that *cannot* be a
    torn tail: records are single-write, newline-terminated appends, so
    an undecodable line anywhere but the unterminated end of the file
    means something other than a crash damaged it.
    """
    if not os.path.exists(path):
        return []
    out: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as fh:
        raw = fh.read()
    lines = raw.split("\n")
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            out.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1 and not raw.endswith("\n"):
                break  # the torn tail a crash leaves
            raise
    return out


def write_jsonl_atomic(
    path: str, records: Iterable[Dict[str, Any]], sync: bool = True
) -> None:
    """Replace *path* wholesale with *records* (temp + fsync + rename)."""
    tmp = path + ".tmp"
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    with open(tmp, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
        fh.flush()
        if sync:
            os.fsync(fh.fileno())
    os.replace(tmp, path)
