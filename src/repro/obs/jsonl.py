"""Crash-safe, self-verifying JSONL append/read (journal + trace + metrics).

PR 3 gave the campaign journal its durability contract: every record is
appended with a *single* ``write`` call (readers never observe an
interleaved partial record), flushed and fsynced before the writer moves
on, and a torn trailing line -- the signature a crash leaves -- is
detected and skipped on read instead of poisoning the whole file.

This PR hardens the same primitives against a *misbehaving disk* rather
than just a dying process:

* **Self-verifying records.**  :func:`seal_line` prefixes each record
  with a ``cs`` field -- a CRC32 over the canonical (``sort_keys``)
  payload -- so silent corruption (bit rot, a torn batch that happens to
  re-align on a newline) is *detected* at read time instead of being
  parsed into plausible garbage.  :func:`verify_line` strips the field
  on the way back out, so sealing is invisible to every consumer of
  :func:`read_jsonl`; records written before sealing existed (no ``cs``)
  remain readable.
* **Generalized tail heal.**  :func:`read_jsonl` now drops the maximal
  *invalid suffix* -- any run of undecodable or checksum-failing lines
  at the end of the file -- not just a single unterminated fragment.
  That is exactly the state a lying fsync leaves after a power cut.
  Damage *before* intact records still raises (it cannot be a crash
  artifact), unless ``quarantine=True`` skips and counts it for
  ``repro-fsck``-style repair flows.
* **Batched torn-write repair.**  The appender writes through raw
  ``os.write`` and, on a short or failed write, truncates back to the
  last complete line *within the same batch* -- earlier records of a
  multi-line ``append_many`` survive; only the torn final line drops.
* **Fault routing.**  :meth:`JsonlAppender.attach_io` points the
  appender at a :class:`repro.iofaults.FaultyIO` shim, labelling its
  operations for the ``--inject-faults`` I/O grammar.

Both the :class:`~repro.runner.resilience.CampaignJournal` and the
:class:`~repro.obs.trace.Tracer` are thin layers over these primitives,
which is what makes ``--resume`` and ``repro-fsck`` treat the artifacts
identically.
"""

from __future__ import annotations

import errno
import json
import os
import threading
import zlib
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = [
    "JsonlAppender",
    "read_jsonl",
    "scan_jsonl",
    "seal_line",
    "verify_line",
    "write_jsonl_atomic",
]


def _crc(payload: str) -> str:
    return f"{zlib.crc32(payload.encode('utf-8')) & 0xFFFFFFFF:08x}"


def seal_line(record: Dict[str, Any]) -> str:
    """Serialize *record* with a ``cs`` checksum field (no newline).

    The checksum is a CRC32 over the canonical ``sort_keys`` encoding of
    the record *without* the ``cs`` field, spliced in front so the line
    stays a single flat JSON object.  The input dict is not mutated.
    """
    payload = json.dumps(record, sort_keys=True)
    cs = _crc(payload)
    if payload == "{}":
        return '{"cs":"%s"}' % cs
    return '{"cs":"%s",%s' % (cs, payload[1:])


def verify_line(line: str) -> Optional[Dict[str, Any]]:
    """Decode + verify one JSONL line; ``None`` when damaged.

    A record carrying ``cs`` must round-trip to the checksummed payload;
    a record without one (written before sealing existed) is accepted
    as-is.  The returned dict never contains the ``cs`` field.
    """
    try:
        record = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(record, dict):
        return None
    if "cs" not in record:
        return record
    cs = record.pop("cs")
    if _crc(json.dumps(record, sort_keys=True)) != cs:
        return None
    return record


class JsonlAppender:
    """Append-only JSONL writer with the crash-safety contract.

    Each :meth:`append` seals one record (``sort_keys=True`` payload +
    ``cs`` checksum: the byte layout is deterministic and self-verifying),
    writes it in a single ``os.write``, and -- unless ``sync=False`` --
    fsyncs.  A lock serializes appends from worker threads.
    """

    def __init__(self, path: str, sync: bool = True, seal: bool = True):
        self.path = path
        self.sync = sync
        self.seal = seal
        self._lock = threading.Lock()
        self._checked_tail = False
        self._io = None
        self._io_label = "jsonl"

    def attach_io(self, io: Any, label: str) -> None:
        """Route writes through a :class:`~repro.iofaults.FaultyIO` shim."""
        self._io = io
        self._io_label = label

    def _encode(self, record: Dict[str, Any]) -> str:
        if self.seal:
            return seal_line(record)
        return json.dumps(record, sort_keys=True)

    def _prepare(self) -> None:
        """Pre-append housekeeping (call with the lock held).

        Creates parent directories, and -- once per appender, or again
        after a torn write -- repairs an unterminated tail: appending
        *after* an unterminated line would glue two records into one
        undecodable middle line, which readers rightly treat as
        corruption.  Truncating back to the last complete record keeps
        resumed journals and traces parseable; the dropped fragment was
        never readable anyway.
        """
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        if self._checked_tail:
            return
        self._checked_tail = True
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb+") as fh:
            data = fh.read()
            if not data or data.endswith(b"\n"):
                return
            keep = data.rfind(b"\n") + 1  # 0 when no newline at all
            fh.truncate(keep)

    def _write_payload(self, payload: bytes) -> None:
        """One-shot append of *payload* (call with the lock held).

        Routed through the attached :class:`FaultyIO` when armed.  On
        the plain-os path, a short or failed ``os.write`` mid-batch is
        repaired *immediately*: the file is truncated back to the last
        newline among the bytes that actually landed, so complete
        earlier lines of the batch survive and only the torn final line
        drops -- then the error propagates so the caller knows the tail
        of the batch is not durable.
        """
        if self._io is not None:
            self._io.append(self.path, payload, self._io_label,
                            sync=self.sync)
            return
        fd = os.open(self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            pre_size = os.fstat(fd).st_size
            error: Optional[BaseException] = None
            try:
                written = os.write(fd, payload)
            except OSError as exc:
                error = exc
                written = max(0, os.fstat(fd).st_size - pre_size)
            if error is None and written >= len(payload):
                if self.sync:
                    os.fsync(fd)
                return
            # torn batch: keep the complete lines that landed, drop the rest
            keep = payload[:written].rfind(b"\n") + 1
            os.ftruncate(fd, pre_size + keep)
            if self.sync:
                os.fsync(fd)
            self._checked_tail = True  # tail is clean again
            if error is not None:
                raise error
            raise OSError(
                errno.EIO,
                f"short write: {written}/{len(payload)} bytes",
                self.path,
            )
        finally:
            os.close(fd)

    def append(self, record: Dict[str, Any]) -> None:
        line = self._encode(record) + "\n"
        with self._lock:
            self._prepare()
            self._write_payload(line.encode("utf-8"))

    def append_many(self, records: Iterable[Dict[str, Any]]) -> int:
        """Append a batch in one open/write/fsync cycle; returns count.

        The batch goes down as one ``write`` of newline-terminated
        lines, so a crash tears at most the *final* record of the batch
        -- exactly the invariant :func:`read_jsonl` recovers from.
        """
        lines = [self._encode(r) + "\n" for r in records]
        if not lines:
            return 0
        with self._lock:
            self._prepare()
            self._write_payload("".join(lines).encode("utf-8"))
        return len(lines)

    def append_lines(self, lines: List[str]) -> int:
        """Append pre-encoded JSON lines (without trailing newlines).

        The replay fast path: lines captured verbatim from a previous
        ``append_many`` (same sealed encoding) go back down without a
        decode/encode round-trip.  Same single-write batch contract as
        :meth:`append_many`.
        """
        if not lines:
            return 0
        with self._lock:
            self._prepare()
            self._write_payload(("\n".join(lines) + "\n").encode("utf-8"))
        return len(lines)


def scan_jsonl(path: str) -> Tuple[List[Dict[str, Any]], Dict[str, int]]:
    """Verify every line of *path*; returns ``(records, stats)``.

    ``records`` holds each intact record (``cs`` stripped) in order,
    with damaged lines elided.  ``stats`` counts the triage:
    ``{"ok": intact, "bad_tail": invalid-suffix lines, "bad_mid":
    invalid lines before the last intact record}``.  This is the shared
    scanner under both :func:`read_jsonl` and ``repro-fsck``.
    """
    stats = {"ok": 0, "bad_tail": 0, "bad_mid": 0}
    if not os.path.exists(path):
        return [], stats
    with open(path, "r", encoding="utf-8") as fh:
        raw = fh.read()
    entries: List[Optional[Dict[str, Any]]] = []
    for line in raw.split("\n"):
        if not line.strip():
            continue
        entries.append(verify_line(line))
    last_ok = -1
    for i, record in enumerate(entries):
        if record is not None:
            last_ok = i
    records: List[Dict[str, Any]] = []
    for i, record in enumerate(entries):
        if record is None:
            stats["bad_mid" if i < last_ok else "bad_tail"] += 1
        else:
            stats["ok"] += 1
            records.append(record)
    return records, stats


def read_jsonl(path: str, quarantine: bool = False) -> List[Dict[str, Any]]:
    """Every intact record in *path*, oldest first (invalid tail healed).

    The maximal run of damaged lines at the *end* of the file -- torn
    fragments, checksum-failing leftovers of a lying fsync -- is
    silently dropped: it can only be what a crash left behind.  Damage
    *before* intact records raises ``json.JSONDecodeError`` (single-
    write appends cannot produce it, so it is worth surfacing) unless
    ``quarantine=True``, which skips it and keeps the survivors.
    """
    records, stats = scan_jsonl(path)
    if stats["bad_mid"] and not quarantine:
        raise json.JSONDecodeError(
            f"{stats['bad_mid']} damaged record(s) before intact data "
            f"in {path}",
            "",
            0,
        )
    return records


def write_jsonl_atomic(
    path: str,
    records: Iterable[Dict[str, Any]],
    sync: bool = True,
    io: Any = None,
    label: str = "jsonl",
) -> None:
    """Replace *path* wholesale with *records* (temp + fsync + rename).

    A crash mid-rewrite leaves either the old file or the new one, never
    a torn mix.  Records are sealed, same as appended ones.
    """
    directory = os.path.dirname(path)
    if directory:
        os.makedirs(directory, exist_ok=True)
    body = "".join(seal_line(record) + "\n" for record in records)
    if io is not None:
        io.write_atomic(path, body.encode("utf-8"), label, sync=sync)
        return
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(body)
        fh.flush()
        if sync:
            os.fsync(fh.fileno())
    os.replace(tmp, path)
