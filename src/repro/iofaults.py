"""Deterministic storage-fault injection: the I/O plane of the chaos layer.

``repro.faults`` makes the *scheduler* lie on command; this module makes
the *disk* lie.  Every durable artifact the runner produces -- campaign
journal, trace, perflogs, the case-result store's objects and pack, the
postprocess ingest cache -- funnels its raw ``os.open/write/fsync/
replace`` calls through one :class:`FaultyIO` shim, which consults a
:class:`repro.faults.FaultPlan` *per operation* (``FaultPlan.check_io``)
and acts out five storage pathologies:

``enospc``
    The volume is full: the operation fails cleanly before any byte
    lands (``errno.ENOSPC``).
``eio``
    The device errored: ditto, with ``errno.EIO``.
``torn``
    A partial write: a prefix of the payload physically lands, then the
    operation errors.  The shim rolls the file back to its pre-operation
    size before raising, so the *caller* observes atomic-or-fail -- the
    torn state only survives a simulated crash (:meth:`FaultyIO.
    lose_unsynced`) or an explicit damage helper, which is exactly how a
    real page cache behaves between a torn write and the crash that
    exposes it.
``bitrot``
    Silent corruption: an appended payload is rolled back and the
    operation errors (append sites can retry), but an *atomic-commit*
    site (:meth:`FaultyIO.write_atomic`) commits the flipped byte and
    reports success -- the canonical silent-corruption scenario that
    only a read-time checksum can catch.
``fsync-lie``
    The write "succeeds" and fsync returns, but the data never became
    durable.  The shim records the unsynced watermark per path;
    :meth:`FaultyIO.lose_unsynced` then simulates the power cut: each
    affected file is truncated back to its watermark plus a torn
    fragment of the first unsynced payload.

Every fault raises :class:`InjectedIOFault`, an ``OSError`` subclass, so
code written against real I/O errors handles injected ones identically.
All draws are pure functions of ``(seed, kind, label, op_ordinal)`` --
rerunning a campaign with the same ``--fault-seed`` tears exactly the
same bytes.

Damage helpers (:func:`tear_tail`, :func:`flip_byte`) mutate artifacts
*post hoc* for heal/``repro-fsck`` testing, independent of any plan.
"""

from __future__ import annotations

import errno
import os
import threading
from typing import Dict, List, Optional, Tuple

from repro.faults import Fault, FaultPlan

__all__ = [
    "FaultyIO",
    "InjectedIOFault",
    "flip_byte",
    "tear_tail",
]

_ERRNO = {
    "enospc": errno.ENOSPC,
    "eio": errno.EIO,
    "torn": errno.EIO,
    "bitrot": errno.EIO,
    "fsync-lie": 0,
}


class InjectedIOFault(OSError):
    """An injected storage failure (an ``OSError``, so real handlers apply).

    ``transient`` is always true in the retry taxonomy: storage faults
    are drawn per operation, so the next attempt faces fresh odds.
    """

    def __init__(self, fault: Fault, path: str):
        code = _ERRNO.get(fault.kind, errno.EIO)
        super().__init__(
            code,
            f"injected-io:{fault.kind}@{fault.target}#{fault.attempt}",
            path,
        )
        self.fault = fault
        self.artifact = fault.target

    @property
    def transient(self) -> bool:
        return True


def _flip(data: bytes, ordinal: int) -> Tuple[bytes, int]:
    """Flip one deterministic bit of *data*; returns (mutated, offset)."""
    if not data:
        return data, 0
    offset = ordinal % len(data)
    mutated = bytearray(data)
    mutated[offset] ^= 0x40  # stays printable-ish, never flips a newline
    return bytes(mutated), offset


class FaultyIO:
    """The storage shim: raw os-level I/O with deterministic sabotage.

    One instance serves a whole campaign; callers tag each operation
    with the *artifact label* (``journal``, ``trace``, ``perflog``,
    ``store``, ``pack``, ``index``, ``ingest``) that the fault-spec
    globs select on.  With no matching clause armed, every method is a
    thin wrapper over the plain os calls.
    """

    def __init__(self, plan: Optional[FaultPlan] = None):
        self.plan = plan
        self._lock = threading.Lock()
        #: path -> (watermark_size, first_unsynced_payload)
        self._unsynced: Dict[str, Tuple[int, bytes]] = {}
        #: every fault acted out, for diagnostics: (kind, label, path)
        self.damage_log: List[Tuple[str, str, str]] = []

    # -- consultation --------------------------------------------------------
    def _consult(self, label: str) -> Optional[Fault]:
        if self.plan is None:
            return None
        return self.plan.check_io(label)

    def _record(self, fault: Fault, path: str) -> None:
        with self._lock:
            self.damage_log.append((fault.kind, fault.target, path))

    # -- operations ----------------------------------------------------------
    def append(self, path: str, data: bytes, label: str,
               sync: bool = True) -> None:
        """Append *data* to *path* atomically-or-fail.

        A clean run is open/write/fsync/close.  Injected ``torn`` and
        ``bitrot`` faults physically write damaged bytes, then roll the
        file back to its pre-operation size before raising -- the caller
        sees a failed op against an unchanged file, and the damage only
        becomes durable through :meth:`lose_unsynced` (simulated crash).
        """
        fault = self._consult(label)
        if fault is not None and fault.kind in ("enospc", "eio"):
            self._record(fault, path)
            raise InjectedIOFault(fault, path)
        fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            pre_size = os.fstat(fd).st_size
            if fault is None:
                os.write(fd, data)
                if sync:
                    os.fsync(fd)
                return
            self._record(fault, path)
            if fault.kind == "torn":
                torn_at = max(1, fault.attempt % max(1, len(data)))
                os.write(fd, data[:torn_at])
                os.ftruncate(fd, pre_size)
                raise InjectedIOFault(fault, path)
            if fault.kind == "bitrot":
                os.write(fd, _flip(data, fault.attempt)[0])
                os.ftruncate(fd, pre_size)
                raise InjectedIOFault(fault, path)
            # fsync-lie: the write lands and "succeeds", but nothing is
            # durable past pre_size until a real sync happens later.
            os.write(fd, data)
            with self._lock:
                if path not in self._unsynced:
                    self._unsynced[path] = (pre_size, data)
        finally:
            os.close(fd)

    def write_atomic(self, path: str, data: bytes, label: str,
                     sync: bool = True) -> None:
        """tmp-write + rename commit, with per-site sabotage.

        ``enospc``/``eio`` fail before commit (tmp removed); ``torn``
        simulates a crash between tmp-write and rename (no commit);
        ``bitrot`` *commits* a flipped byte and returns success -- the
        silent-corruption case read-time checksums exist for;
        ``fsync-lie`` commits without durability and is exposed by
        :meth:`lose_unsynced`.
        """
        fault = self._consult(label)
        if fault is not None and fault.kind in ("enospc", "eio", "torn"):
            self._record(fault, path)
            raise InjectedIOFault(fault, path)
        tmp = path + ".tmp"
        payload = data
        if fault is not None and fault.kind == "bitrot":
            self._record(fault, path)
            payload = _flip(data, fault.attempt)[0]
        fd = os.open(tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644)
        try:
            os.write(fd, payload)
            if sync and not (fault is not None and fault.kind == "fsync-lie"):
                os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, path)
        if fault is not None and fault.kind == "fsync-lie":
            self._record(fault, path)
            with self._lock:
                if path not in self._unsynced:
                    self._unsynced[path] = (0, payload)

    def replace(self, src: str, dst: str, label: str) -> None:
        """``os.replace`` guarded by the fault plan (pack/manifest swaps)."""
        fault = self._consult(label)
        if fault is not None and fault.kind in ("enospc", "eio", "torn"):
            self._record(fault, src)
            raise InjectedIOFault(fault, dst)
        os.replace(src, dst)

    # -- crash simulation ----------------------------------------------------
    def lose_unsynced(self) -> List[str]:
        """Simulate the power cut that exposes every ``fsync-lie``.

        Each affected file is truncated back to its unsynced watermark,
        then a torn fragment of the first unsynced payload is
        re-appended -- the classic post-crash state: a valid prefix plus
        a garbage tail that read-time checksums (or ``repro-fsck``) must
        detect and drop.  Returns the damaged paths.
        """
        with self._lock:
            pending = dict(self._unsynced)
            self._unsynced.clear()
        damaged = []
        for path, (watermark, payload) in sorted(pending.items()):
            if not os.path.exists(path):
                continue
            frag = payload[: max(1, len(payload) // 2)] if payload else b""
            with open(path, "r+b") as handle:
                handle.truncate(watermark)
                handle.seek(watermark)
                handle.write(frag)
            damaged.append(path)
        return damaged

    @property
    def unsynced_paths(self) -> List[str]:
        with self._lock:
            return sorted(self._unsynced)


# -- post-hoc damage helpers (tests + fsck fixtures) -------------------------

def tear_tail(path: str, drop: int = 7) -> int:
    """Truncate the last *drop* bytes off *path* (a torn final record).

    Returns the new size.  ``drop`` is clamped so the file never
    empties completely unless it was already shorter than *drop*.
    """
    size = os.path.getsize(path)
    new_size = max(0, size - drop)
    with open(path, "r+b") as handle:
        handle.truncate(new_size)
    return new_size


def flip_byte(path: str, offset: Optional[int] = None) -> int:
    """Corrupt one byte of *path* in place; returns the offset flipped.

    The default picks a deterministic mid-file position and never lands
    on a newline, so record framing survives while content rots --
    precisely the damage only checksums can see.
    """
    with open(path, "r+b") as handle:
        data = handle.read()
        if not data:
            return 0
        pos = (len(data) // 2) if offset is None else offset % len(data)
        for probe in range(len(data)):
            candidate = (pos + probe) % len(data)
            if data[candidate : candidate + 1] != b"\n":
                pos = candidate
                break
        handle.seek(pos)
        handle.write(bytes([data[pos] ^ 0x40]))
    return pos
