"""The batch-scheduler engine shared by the SLURM and PBS frontends.

FIFO-with-backfill over a :class:`~repro.scheduler.allocation.NodePool`,
driven by the discrete-event queue.  Subclasses only differ in the job
script dialect they render and the option spellings they accept -- exactly
the per-system variation Principle 5 says must be captured, not retyped.

Slow-fault robustness (DESIGN.md section 6.4): running jobs keep live
bookkeeping (:class:`_RunningJob`) so they can be *cancelled mid-run* --
their nodes freed, their partial stdout preserved -- which is what the
watchdog's hang kill and a user ``scancel`` both need.  An optional
``watchdog`` is armed at every job start (it schedules heartbeat /
progress events plus a deadline kill on the same discrete-event queue),
and an optional ``health`` tracker receives per-node outcome attribution
when jobs finish, feeding drain decisions back into the pool's
health-aware placement.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.scheduler.allocation import NodePool
from repro.scheduler.events import EventQueue, SimClock
from repro.scheduler.job import Job, JobContext, JobResult, JobState

__all__ = ["AdmissionError", "BatchScheduler", "SchedulerError"]


class SchedulerError(Exception):
    """Submission-time or runtime scheduler errors.

    The resilience layer treats plain scheduler errors as *transient*
    (submit hiccups, dispatch trouble: retry with backoff) -- except for
    :class:`AdmissionError`, which is a configuration problem that no
    amount of retrying fixes.
    """


class AdmissionError(SchedulerError):
    """Admission control rejected the job (missing account/QoS, too big).

    Deliberately *permanent*: resubmitting an unchanged job cannot
    succeed, so retry policies classify this as a hard failure."""


def _partial_stdout(stdout: str, fraction: float) -> str:
    """The prefix of *stdout* a killed job would have flushed.

    Cut at a line boundary when possible -- schedulers deliver whole
    flushed lines, then silence -- falling back to a raw byte cut for
    single-line output.
    """
    if not stdout:
        return stdout
    fraction = min(max(fraction, 0.0), 1.0)
    cut = int(len(stdout) * fraction)
    boundary = stdout.rfind("\n", 0, cut)
    if boundary > 0:
        return stdout[: boundary + 1]
    return stdout[:cut]


@dataclass
class _RunningJob:
    """Live bookkeeping for one dispatched job (until it finishes).

    Keeping the precomputed outcome *out* of the finish closure is what
    makes mid-run cancellation possible: ``cancel`` can drop the record,
    release the nodes and synthesize a partial result, and the pending
    finish event then sees the record gone and no-ops.
    """

    job: Job
    ctx: JobContext
    nodes: List[str]
    #: outcome the job is heading for if nothing cancels it
    end_state: JobState
    stdout: str
    stderr: str
    #: duration the program *would* take (post-degradation, pre-clamp);
    #: the denominator for progress/partial-stdout fractions
    full_duration: float
    #: scheduled sim-time until the finish event (clamped to walltime)
    run_duration: float
    #: slow-fault degradations applied at start (duck-typed JobEffects)
    effects: Optional[object] = None
    sick_nodes: List[str] = field(default_factory=list)
    #: the scheduled finish event's entry -- cancel disarms it in place
    #: instead of leaving a no-op to churn through the heap
    finish_entry: Optional[object] = None


class BatchScheduler:
    """Simulated batch system over one node pool."""

    #: human name of the dialect; subclasses override
    kind = "abstract"
    #: seconds of scheduler overhead per job (dispatch latency)
    dispatch_latency = 1.0

    def __init__(
        self,
        num_nodes: int = 8,
        cores_per_node: int = 128,
        node_prefix: str = "nid",
        require_account: bool = False,
        require_qos: bool = False,
        fault_injector: Optional[object] = None,
        watchdog: Optional[object] = None,
        health: Optional[object] = None,
        trace: Optional[object] = None,
    ):
        self.clock = SimClock()
        self.events = EventQueue(self.clock)
        #: optional node-health tracker (repro.runner.health.HealthTracker):
        #: duck-typed object with is_drained(node), record_fault(node, kind)
        #: and record_ok(node); drained nodes are avoided by allocation
        self.health = health
        self.pool = NodePool(
            node_prefix,
            num_nodes,
            cores_per_node,
            avoid=health.is_drained if health is not None else None,
            # O(1) short-circuit: on an all-healthy pool the allocator
            # skips the drain partition (and its per-node predicate
            # calls) entirely
            avoid_active=getattr(health, "any_drained", None)
            if health is not None else None,
        )
        self.require_account = require_account
        self.require_qos = require_qos
        #: optional chaos hook (see repro.faults.SchedulerFaultInjector):
        #: duck-typed object with on_submit(job) (raising aborts the
        #: submission), on_start(job) -> Optional[fault] (the job dies
        #: as NODE_FAIL with partial stdout) and job_effects(job, nodes)
        #: -> JobEffects (hang/slow/sicknode degradations)
        self.fault_injector = fault_injector
        #: optional hang watchdog (repro.runner.watchdog.Watchdog):
        #: duck-typed object with arm(scheduler, job_id) called at every
        #: job start; it schedules heartbeat/deadline events on *this*
        #: scheduler's event queue and kills hung jobs via cancel()
        self.watchdog = watchdog
        #: optional span recorder view (repro.obs.trace, offset onto the
        #: case timeline): duck-typed object with record(name, t0, t1,
        #: cat, **attrs) and event(name, t, cat, **attrs).  Receives the
        #: job lifecycle -- submit events, queue-wait and job-run spans,
        #: cancellations -- in this scheduler's simulated clock.
        self.trace = trace
        self._next_id = 1000
        self._queue: List[Job] = []
        self._jobs: Dict[int, Job] = {}
        self._running: Dict[int, _RunningJob] = {}
        #: true submission instants (ctx.submit_time is set at dispatch
        #: for historical reasons; the queue-wait span wants submit time)
        self._submit_times: Dict[int, float] = {}

    # -- submission ---------------------------------------------------------
    def validate(self, job: Job) -> None:
        """System-specific admission control (the appendix's accounting note)."""
        if self.require_account and not job.account:
            raise AdmissionError(
                f"{self.kind}: job {job.name!r} rejected: no account given "
                f"(pass -J'--account=...' or set the system's "
                f"default_account, as on the real system)"
            )
        if self.require_qos and not job.qos:
            raise AdmissionError(
                f"{self.kind}: job {job.name!r} rejected: no QoS given "
                f"(ARCHER2 needs -J'--qos=standard')"
            )
        needed = job.nodes_needed(self.pool.cores_per_node)
        if not self.pool.fits_at_all(needed):
            raise AdmissionError(
                f"{self.kind}: job {job.name!r} needs {needed} nodes, "
                f"system has {self.pool.num_nodes}"
            )

    def submit(self, job: Job) -> int:
        self.validate(job)
        if self.fault_injector is not None:
            # a transient submit failure (the sbatch/qsub call erroring
            # out), injected *after* admission control: real systems
            # validate the request before the RPC can flake
            self.fault_injector.on_submit(job)
        job.job_id = self._next_id
        self._next_id += 1
        job.state = JobState.PENDING
        self._jobs[job.job_id] = job
        self._queue.append(job)
        self._submit_times[job.job_id] = self.clock.now
        if self.trace is not None:
            self.trace.event("submit", self.clock.now, "sched",
                             job=job.name, job_id=job.job_id)
        self.events.schedule_in(self.dispatch_latency, self._try_dispatch)
        return job.job_id

    # -- dispatch loop ---------------------------------------------------------
    def _try_dispatch(self) -> None:
        """FIFO with conservative backfill: later jobs may jump only onto
        nodes the head job cannot use right now."""
        still_waiting: List[Job] = []
        head_blocked_nodes: Optional[int] = None
        for job in self._queue:
            needed = job.nodes_needed(self.pool.cores_per_node)
            blocked = (
                head_blocked_nodes is not None and needed >= head_blocked_nodes
            )
            if not blocked and self.pool.can_allocate(needed):
                self._start(job, needed)
            else:
                still_waiting.append(job)
                if head_blocked_nodes is None:
                    head_blocked_nodes = needed
        self._queue = still_waiting

    def _start(self, job: Job, needed: int) -> None:
        nodes = self.pool.allocate(needed, job.job_id)
        job.state = JobState.RUNNING
        if self.trace is not None:
            self.trace.record(
                "queue-wait",
                self._submit_times.get(job.job_id, self.clock.now),
                self.clock.now, "sched", job=job.name, job_id=job.job_id,
            )
        ctx = JobContext(
            job_id=job.job_id,
            nodes=nodes,
            num_tasks=job.num_tasks,
            num_cpus_per_task=job.num_cpus_per_task,
            submit_time=self.clock.now,
            start_time=self.clock.now,
        )
        try:
            stdout, duration = job.payload(ctx)
            failed = False
            stderr = ""
        except Exception as exc:  # payload crash == program crash
            stdout, duration = "", 0.0
            stderr = f"{type(exc).__name__}: {exc}"
            failed = True

        # slow faults first: a hang / straggle / sick node stretches the
        # program's duration *before* walltime policing, so an undetected
        # hang still terminates as TIMEOUT rather than wedging the queue
        effects = None
        if self.fault_injector is not None and hasattr(
            self.fault_injector, "job_effects"
        ):
            effects = self.fault_injector.job_effects(job, nodes)
            if not failed and effects.degraded:
                duration = max(duration, 1e-6) * effects.slowdown

        full_duration = duration
        node_fault = (
            self.fault_injector.on_start(job)
            if self.fault_injector is not None
            else None
        )
        if node_fault is not None:
            # the allocation dies mid-run: whatever the program printed
            # before the node went away survives (half, here), the rest
            # is lost -- exactly what sacct shows after a NODE_FAIL
            end_state = JobState.NODE_FAIL
            stdout = _partial_stdout(stdout, 0.5)
            duration = max(min(duration, job.time_limit) * 0.5, 1e-6)
            stderr = (
                f"{self.kind.upper()}: job {job.job_id} lost node "
                f"{nodes[0] if nodes else '?'} ({node_fault.describe()})"
            )
        elif duration > job.time_limit:
            end_state = JobState.TIMEOUT
            # keep the *partial* stdout: the fraction of output the
            # program managed to write before the walltime kill -- real
            # schedulers deliver truncated logs, and sanity checking
            # against them must fail cleanly rather than crash
            stdout = _partial_stdout(stdout, job.time_limit / duration)
            duration = job.time_limit
            stderr = (
                f"{self.kind.upper()}: job {job.job_id} exceeded time limit "
                f"({job.time_limit}s)"
            )
        elif failed:
            end_state = JobState.FAILED
        else:
            end_state = JobState.COMPLETED

        rec = _RunningJob(
            job=job,
            ctx=ctx,
            nodes=nodes,
            end_state=end_state,
            stdout=stdout,
            stderr=stderr,
            full_duration=full_duration,
            run_duration=max(duration, 1e-6),
            effects=effects,
            sick_nodes=list(effects.sick_nodes) if effects is not None else [],
        )
        job_id = job.job_id
        self._running[job_id] = rec
        rec.finish_entry = self.events.schedule_in(
            max(duration, 1e-6), self._finish, job_id
        )
        if self.watchdog is not None:
            # the watchdog schedules its own heartbeat/progress events
            # and the deadline kill on this scheduler's event queue
            self.watchdog.arm(self, job_id)

    def _finish(self, job_id: int) -> None:
        rec = self._running.pop(job_id, None)
        if rec is None:
            return  # cancelled mid-run; the cancel already cleaned up
        job = rec.job
        self.pool.release(rec.nodes, job_id)
        self.pool.check_counts()
        job.state = rec.end_state
        job.result = JobResult(
            job_id=job_id,
            state=rec.end_state,
            stdout=rec.stdout,
            stderr=rec.stderr,
            exit_code=0 if rec.end_state is JobState.COMPLETED else 1,
            submit_time=rec.ctx.submit_time,
            start_time=rec.ctx.start_time,
            end_time=self.clock.now,
            nodes=rec.nodes,
        )
        if self.trace is not None:
            self.trace.record(
                "job-run", rec.ctx.start_time, self.clock.now, "sched",
                job=job.name, job_id=job_id, state=rec.end_state.value,
            )
        self._attribute_health(rec, rec.end_state)
        if self.watchdog is not None:
            # drop the pending heartbeat/deadline events for this job so
            # the queue drains at the finish instant (no no-op tail)
            disarm = getattr(self.watchdog, "disarm", None)
            if disarm is not None:
                disarm(self, job_id)
        self._try_dispatch()

    # -- watchdog/health support ------------------------------------------------
    def is_running(self, job_id: int) -> bool:
        return job_id in self._running

    def job_progress(self, job_id: int) -> Optional[float]:
        """Fraction of the program's work done so far (None: not running).

        The heartbeat/progress signal the watchdog reads: a healthy job's
        progress tracks elapsed/duration, a hung job's stays pinned near
        zero because its effective duration exploded.
        """
        rec = self._running.get(job_id)
        if rec is None:
            return None
        elapsed = self.clock.now - rec.ctx.start_time
        if rec.full_duration <= 0:
            return 1.0
        return min(elapsed / rec.full_duration, 1.0)

    def _attribute_health(self, rec: _RunningJob, end_state: JobState) -> None:
        """Credit or blame each allocated node for this job's outcome.

        HUNG and NODE_FAIL blame every node in the allocation (the
        sacct-level signal gives no finer attribution); a sicknode fault
        blames exactly the degraded node(s); a plain ``slow`` straggle
        blames the whole allocation (indistinguishable from a degraded
        node in real telemetry).  A program crash (FAILED) is *not* a
        node's fault, and TIMEOUT is ambiguous -- neither credits nor
        blames.
        """
        if self.health is None:
            return
        slowed = (
            rec.effects is not None
            and getattr(rec.effects, "slowdown", 1.0) > 1.0
        )
        sick = set(rec.sick_nodes)
        for node in rec.nodes:
            if end_state is JobState.HUNG:
                self.health.record_fault(node, "hang")
            elif end_state is JobState.NODE_FAIL:
                self.health.record_fault(node, "fail")
            elif node in sick:
                self.health.record_fault(node, "sick")
            elif slowed:
                self.health.record_fault(node, "slow")
            elif end_state is JobState.COMPLETED:
                self.health.record_ok(node)

    # -- polling ------------------------------------------------------------------
    def wait_all(self) -> None:
        """Drive the simulation until every submitted job finishes.

        An exception escaping an event callback leaves the discrete-event
        schedule referencing half-updated jobs; the queue is cleared and
        the error re-raised as a :class:`SchedulerError` so callers
        (the pipeline's retry layer) see one classified, transient
        failure instead of a corrupted simulation.

        The runaway-event ceiling scales with the submitted work: a
        large campaign legitimately needs more events than the queue's
        fixed default, while a self-perpetuating event loop (a bug) is
        still caught within a bounded multiple of the job count.
        """
        budget = max(
            self.events.DEFAULT_MAX_EVENTS, 1_000 * len(self._jobs)
        )
        try:
            self.events.run_until_idle(max_events=budget)
        except SchedulerError:
            self.events.clear()
            raise
        except Exception as exc:
            self.events.clear()
            raise SchedulerError(
                f"{self.kind}: event loop failed: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        stuck = [j for j in self._jobs.values() if not j.state.finished]
        if stuck:
            raise SchedulerError(
                f"{len(stuck)} jobs never finished: "
                f"{[j.name for j in stuck]} (insufficient nodes?)"
            )

    def cancel(
        self,
        job_id: int,
        state: JobState = JobState.CANCELLED,
        reason: str = "",
    ) -> bool:
        """Cancel a queued or *running* job; returns whether it acted.

        A queued job is simply removed.  A running job is terminated:
        its nodes are released back to the pool (waking the dispatch
        loop), its pending finish event is disarmed, and its result
        carries the stdout prefix the program had flushed by now --
        exactly the ``scancel`` contract.  Cancelling an already-finished
        job is a no-op (returns False), matching real schedulers.

        ``state`` lets the watchdog classify its kills as
        :attr:`JobState.HUNG` instead of plain CANCELLED.
        """
        job = self._jobs.get(job_id)
        if job is None:
            raise SchedulerError(f"no such job {job_id}")
        if job in self._queue:
            self._queue.remove(job)
            job.state = state
            if self.trace is not None:
                self.trace.event("cancel", self.clock.now, "sched",
                                 job=job.name, job_id=job_id,
                                 state=state.value, queued=True)
            job.result = JobResult(
                job_id=job_id,
                state=state,
                stderr=reason,
                exit_code=1,
                submit_time=self.clock.now,
                start_time=self.clock.now,
                end_time=self.clock.now,
            )
            return True
        rec = self._running.pop(job_id, None)
        if rec is not None:
            elapsed = self.clock.now - rec.ctx.start_time
            fraction = (
                min(elapsed / rec.full_duration, 1.0)
                if rec.full_duration > 0
                else 1.0
            )
            self.pool.release(rec.nodes, job_id)
            self.pool.check_counts()
            if rec.finish_entry is not None:
                self.events.cancel(rec.finish_entry)
            job.state = state
            job.result = JobResult(
                job_id=job_id,
                state=state,
                # the prefix of output the program managed to flush
                # before the kill signal landed
                stdout=_partial_stdout(rec.stdout, fraction),
                stderr=reason
                or f"{self.kind.upper()}: job {job_id} cancelled",
                exit_code=1,
                submit_time=rec.ctx.submit_time,
                start_time=rec.ctx.start_time,
                end_time=self.clock.now,
                nodes=rec.nodes,
            )
            if self.trace is not None:
                self.trace.record(
                    "job-run", rec.ctx.start_time, self.clock.now, "sched",
                    job=job.name, job_id=job_id, state=state.value,
                    cancelled=True,
                )
            self._attribute_health(rec, state)
            if self.watchdog is not None:
                # safe even when the watchdog's own kill triggered this
                # cancel: cancelling an already-ran entry is a no-op
                disarm = getattr(self.watchdog, "disarm", None)
                if disarm is not None:
                    disarm(self, job_id)
            self._try_dispatch()
            return True
        return False  # already finished: scancel semantics, no-op

    def job(self, job_id: int) -> Job:
        if job_id not in self._jobs:
            raise SchedulerError(f"no such job {job_id}")
        return self._jobs[job_id]

    def result(self, job_id: int) -> JobResult:
        job = self.job(job_id)
        if job.result is None:
            raise SchedulerError(f"job {job_id} has not finished")
        return job.result

    # -- provenance ------------------------------------------------------------------
    def render_script(self, job: Job, command: str) -> str:
        """The batch script a user would submit for this job (Principle 5)."""
        raise NotImplementedError

    def queue_depth(self) -> int:
        return len(self._queue)
