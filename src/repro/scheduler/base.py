"""The batch-scheduler engine shared by the SLURM and PBS frontends.

FIFO-with-backfill over a :class:`~repro.scheduler.allocation.NodePool`,
driven by the discrete-event queue.  Subclasses only differ in the job
script dialect they render and the option spellings they accept -- exactly
the per-system variation Principle 5 says must be captured, not retyped.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.scheduler.allocation import NodePool
from repro.scheduler.events import EventQueue, SimClock
from repro.scheduler.job import Job, JobContext, JobResult, JobState

__all__ = ["AdmissionError", "BatchScheduler", "SchedulerError"]


class SchedulerError(Exception):
    """Submission-time or runtime scheduler errors.

    The resilience layer treats plain scheduler errors as *transient*
    (submit hiccups, dispatch trouble: retry with backoff) -- except for
    :class:`AdmissionError`, which is a configuration problem that no
    amount of retrying fixes.
    """


class AdmissionError(SchedulerError):
    """Admission control rejected the job (missing account/QoS, too big).

    Deliberately *permanent*: resubmitting an unchanged job cannot
    succeed, so retry policies classify this as a hard failure."""


def _partial_stdout(stdout: str, fraction: float) -> str:
    """The prefix of *stdout* a killed job would have flushed.

    Cut at a line boundary when possible -- schedulers deliver whole
    flushed lines, then silence -- falling back to a raw byte cut for
    single-line output.
    """
    if not stdout:
        return stdout
    fraction = min(max(fraction, 0.0), 1.0)
    cut = int(len(stdout) * fraction)
    boundary = stdout.rfind("\n", 0, cut)
    if boundary > 0:
        return stdout[: boundary + 1]
    return stdout[:cut]


class BatchScheduler:
    """Simulated batch system over one node pool."""

    #: human name of the dialect; subclasses override
    kind = "abstract"
    #: seconds of scheduler overhead per job (dispatch latency)
    dispatch_latency = 1.0

    def __init__(
        self,
        num_nodes: int = 8,
        cores_per_node: int = 128,
        node_prefix: str = "nid",
        require_account: bool = False,
        require_qos: bool = False,
        fault_injector: Optional[object] = None,
    ):
        self.clock = SimClock()
        self.events = EventQueue(self.clock)
        self.pool = NodePool(node_prefix, num_nodes, cores_per_node)
        self.require_account = require_account
        self.require_qos = require_qos
        #: optional chaos hook (see repro.faults.SchedulerFaultInjector):
        #: duck-typed object with on_submit(job) (raising aborts the
        #: submission) and on_start(job) -> Optional[fault] (the job dies
        #: as NODE_FAIL with partial stdout)
        self.fault_injector = fault_injector
        self._next_id = 1000
        self._queue: List[Job] = []
        self._jobs: Dict[int, Job] = {}

    # -- submission ---------------------------------------------------------
    def validate(self, job: Job) -> None:
        """System-specific admission control (the appendix's accounting note)."""
        if self.require_account and not job.account:
            raise AdmissionError(
                f"{self.kind}: job {job.name!r} rejected: no account given "
                f"(pass -J'--account=...' or set the system's "
                f"default_account, as on the real system)"
            )
        if self.require_qos and not job.qos:
            raise AdmissionError(
                f"{self.kind}: job {job.name!r} rejected: no QoS given "
                f"(ARCHER2 needs -J'--qos=standard')"
            )
        needed = job.nodes_needed(self.pool.cores_per_node)
        if not self.pool.fits_at_all(needed):
            raise AdmissionError(
                f"{self.kind}: job {job.name!r} needs {needed} nodes, "
                f"system has {self.pool.num_nodes}"
            )

    def submit(self, job: Job) -> int:
        self.validate(job)
        if self.fault_injector is not None:
            # a transient submit failure (the sbatch/qsub call erroring
            # out), injected *after* admission control: real systems
            # validate the request before the RPC can flake
            self.fault_injector.on_submit(job)
        job.job_id = self._next_id
        self._next_id += 1
        job.state = JobState.PENDING
        self._jobs[job.job_id] = job
        self._queue.append(job)
        self.events.schedule_in(self.dispatch_latency, self._try_dispatch)
        return job.job_id

    # -- dispatch loop ---------------------------------------------------------
    def _try_dispatch(self) -> None:
        """FIFO with conservative backfill: later jobs may jump only onto
        nodes the head job cannot use right now."""
        still_waiting: List[Job] = []
        head_blocked_nodes: Optional[int] = None
        for job in self._queue:
            needed = job.nodes_needed(self.pool.cores_per_node)
            blocked = (
                head_blocked_nodes is not None and needed >= head_blocked_nodes
            )
            if not blocked and self.pool.can_allocate(needed):
                self._start(job, needed)
            else:
                still_waiting.append(job)
                if head_blocked_nodes is None:
                    head_blocked_nodes = needed
        self._queue = still_waiting

    def _start(self, job: Job, needed: int) -> None:
        nodes = self.pool.allocate(needed, job.job_id)
        job.state = JobState.RUNNING
        ctx = JobContext(
            job_id=job.job_id,
            nodes=nodes,
            num_tasks=job.num_tasks,
            num_cpus_per_task=job.num_cpus_per_task,
            submit_time=self.clock.now,
            start_time=self.clock.now,
        )
        try:
            stdout, duration = job.payload(ctx)
            failed = False
            stderr = ""
        except Exception as exc:  # payload crash == program crash
            stdout, duration = "", 0.0
            stderr = f"{type(exc).__name__}: {exc}"
            failed = True

        node_fault = (
            self.fault_injector.on_start(job)
            if self.fault_injector is not None
            else None
        )
        if node_fault is not None:
            # the allocation dies mid-run: whatever the program printed
            # before the node went away survives (half, here), the rest
            # is lost -- exactly what sacct shows after a NODE_FAIL
            end_state = JobState.NODE_FAIL
            stdout = _partial_stdout(stdout, 0.5)
            duration = max(min(duration, job.time_limit) * 0.5, 1e-6)
            stderr = (
                f"{self.kind.upper()}: job {job.job_id} lost node "
                f"{nodes[0] if nodes else '?'} ({node_fault.describe()})"
            )
        elif duration > job.time_limit:
            end_state = JobState.TIMEOUT
            # keep the *partial* stdout: the fraction of output the
            # program managed to write before the walltime kill -- real
            # schedulers deliver truncated logs, and sanity checking
            # against them must fail cleanly rather than crash
            stdout = _partial_stdout(stdout, job.time_limit / duration)
            duration = job.time_limit
            stderr = (
                f"{self.kind.upper()}: job {job.job_id} exceeded time limit "
                f"({job.time_limit}s)"
            )
        elif failed:
            end_state = JobState.FAILED
        else:
            end_state = JobState.COMPLETED

        def finish() -> None:
            self.pool.release(nodes, job.job_id)
            self.pool.check_invariants()
            job.state = end_state
            job.result = JobResult(
                job_id=job.job_id,
                state=end_state,
                stdout=stdout,
                stderr=stderr,
                exit_code=0 if end_state is JobState.COMPLETED else 1,
                submit_time=ctx.submit_time,
                start_time=ctx.start_time,
                end_time=self.clock.now,
                nodes=nodes,
            )
            self._try_dispatch()

        self.events.schedule_in(max(duration, 1e-6), finish)

    # -- polling ------------------------------------------------------------------
    def wait_all(self) -> None:
        """Drive the simulation until every submitted job finishes.

        An exception escaping an event callback leaves the discrete-event
        schedule referencing half-updated jobs; the queue is cleared and
        the error re-raised as a :class:`SchedulerError` so callers
        (the pipeline's retry layer) see one classified, transient
        failure instead of a corrupted simulation.
        """
        try:
            self.events.run_until_idle()
        except SchedulerError:
            self.events.clear()
            raise
        except Exception as exc:
            self.events.clear()
            raise SchedulerError(
                f"{self.kind}: event loop failed: "
                f"{type(exc).__name__}: {exc}"
            ) from exc
        stuck = [j for j in self._jobs.values() if not j.state.finished]
        if stuck:
            raise SchedulerError(
                f"{len(stuck)} jobs never finished: "
                f"{[j.name for j in stuck]} (insufficient nodes?)"
            )

    def cancel(self, job_id: int) -> None:
        job = self._jobs.get(job_id)
        if job is None:
            raise SchedulerError(f"no such job {job_id}")
        if job in self._queue:
            self._queue.remove(job)
            job.state = JobState.CANCELLED
            job.result = JobResult(job_id=job_id, state=JobState.CANCELLED)

    def job(self, job_id: int) -> Job:
        if job_id not in self._jobs:
            raise SchedulerError(f"no such job {job_id}")
        return self._jobs[job_id]

    def result(self, job_id: int) -> JobResult:
        job = self.job(job_id)
        if job.result is None:
            raise SchedulerError(f"job {job_id} has not finished")
        return job.result

    # -- provenance ------------------------------------------------------------------
    def render_script(self, job: Job, command: str) -> str:
        """The batch script a user would submit for this job (Principle 5)."""
        raise NotImplementedError

    def queue_depth(self) -> int:
        return len(self._queue)
