"""The batch-scheduler engine shared by the SLURM and PBS frontends.

FIFO-with-backfill over a :class:`~repro.scheduler.allocation.NodePool`,
driven by the discrete-event queue.  Subclasses only differ in the job
script dialect they render and the option spellings they accept -- exactly
the per-system variation Principle 5 says must be captured, not retyped.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.scheduler.allocation import NodePool
from repro.scheduler.events import EventQueue, SimClock
from repro.scheduler.job import Job, JobContext, JobResult, JobState

__all__ = ["BatchScheduler", "SchedulerError"]


class SchedulerError(Exception):
    """Submission-time or runtime scheduler errors."""


class BatchScheduler:
    """Simulated batch system over one node pool."""

    #: human name of the dialect; subclasses override
    kind = "abstract"
    #: seconds of scheduler overhead per job (dispatch latency)
    dispatch_latency = 1.0

    def __init__(
        self,
        num_nodes: int = 8,
        cores_per_node: int = 128,
        node_prefix: str = "nid",
        require_account: bool = False,
        require_qos: bool = False,
    ):
        self.clock = SimClock()
        self.events = EventQueue(self.clock)
        self.pool = NodePool(node_prefix, num_nodes, cores_per_node)
        self.require_account = require_account
        self.require_qos = require_qos
        self._next_id = 1000
        self._queue: List[Job] = []
        self._jobs: Dict[int, Job] = {}

    # -- submission ---------------------------------------------------------
    def validate(self, job: Job) -> None:
        """System-specific admission control (the appendix's accounting note)."""
        if self.require_account and not job.account:
            raise SchedulerError(
                f"{self.kind}: job {job.name!r} rejected: no account given "
                f"(pass -J'--account=...' as on the real system)"
            )
        if self.require_qos and not job.qos:
            raise SchedulerError(
                f"{self.kind}: job {job.name!r} rejected: no QoS given "
                f"(ARCHER2 needs -J'--qos=standard')"
            )
        needed = job.nodes_needed(self.pool.cores_per_node)
        if not self.pool.fits_at_all(needed):
            raise SchedulerError(
                f"{self.kind}: job {job.name!r} needs {needed} nodes, "
                f"system has {self.pool.num_nodes}"
            )

    def submit(self, job: Job) -> int:
        self.validate(job)
        job.job_id = self._next_id
        self._next_id += 1
        job.state = JobState.PENDING
        self._jobs[job.job_id] = job
        self._queue.append(job)
        self.events.schedule_in(self.dispatch_latency, self._try_dispatch)
        return job.job_id

    # -- dispatch loop ---------------------------------------------------------
    def _try_dispatch(self) -> None:
        """FIFO with conservative backfill: later jobs may jump only onto
        nodes the head job cannot use right now."""
        still_waiting: List[Job] = []
        head_blocked_nodes: Optional[int] = None
        for job in self._queue:
            needed = job.nodes_needed(self.pool.cores_per_node)
            blocked = (
                head_blocked_nodes is not None and needed >= head_blocked_nodes
            )
            if not blocked and self.pool.can_allocate(needed):
                self._start(job, needed)
            else:
                still_waiting.append(job)
                if head_blocked_nodes is None:
                    head_blocked_nodes = needed
        self._queue = still_waiting

    def _start(self, job: Job, needed: int) -> None:
        nodes = self.pool.allocate(needed, job.job_id)
        job.state = JobState.RUNNING
        ctx = JobContext(
            job_id=job.job_id,
            nodes=nodes,
            num_tasks=job.num_tasks,
            num_cpus_per_task=job.num_cpus_per_task,
            submit_time=self.clock.now,
            start_time=self.clock.now,
        )
        try:
            stdout, duration = job.payload(ctx)
            failed = False
            stderr = ""
        except Exception as exc:  # payload crash == program crash
            stdout, duration = "", 0.0
            stderr = f"{type(exc).__name__}: {exc}"
            failed = True

        if duration > job.time_limit:
            end_state = JobState.TIMEOUT
            duration = job.time_limit
            stderr = (
                f"{self.kind.upper()}: job {job.job_id} exceeded time limit "
                f"({job.time_limit}s)"
            )
        elif failed:
            end_state = JobState.FAILED
        else:
            end_state = JobState.COMPLETED

        def finish() -> None:
            self.pool.release(nodes, job.job_id)
            self.pool.check_invariants()
            job.state = end_state
            job.result = JobResult(
                job_id=job.job_id,
                state=end_state,
                stdout=stdout,
                stderr=stderr,
                exit_code=0 if end_state is JobState.COMPLETED else 1,
                submit_time=ctx.submit_time,
                start_time=ctx.start_time,
                end_time=self.clock.now,
                nodes=nodes,
            )
            self._try_dispatch()

        self.events.schedule_in(max(duration, 1e-6), finish)

    # -- polling ------------------------------------------------------------------
    def wait_all(self) -> None:
        """Drive the simulation until every submitted job finishes."""
        self.events.run_until_idle()
        stuck = [j for j in self._jobs.values() if not j.state.finished]
        if stuck:
            raise SchedulerError(
                f"{len(stuck)} jobs never finished: "
                f"{[j.name for j in stuck]} (insufficient nodes?)"
            )

    def cancel(self, job_id: int) -> None:
        job = self._jobs.get(job_id)
        if job is None:
            raise SchedulerError(f"no such job {job_id}")
        if job in self._queue:
            self._queue.remove(job)
            job.state = JobState.CANCELLED
            job.result = JobResult(job_id=job_id, state=JobState.CANCELLED)

    def job(self, job_id: int) -> Job:
        if job_id not in self._jobs:
            raise SchedulerError(f"no such job {job_id}")
        return self._jobs[job_id]

    def result(self, job_id: int) -> JobResult:
        job = self.job(job_id)
        if job.result is None:
            raise SchedulerError(f"job {job_id} has not finished")
        return job.result

    # -- provenance ------------------------------------------------------------------
    def render_script(self, job: Job, command: str) -> str:
        """The batch script a user would submit for this job (Principle 5)."""
        raise NotImplementedError

    def queue_depth(self) -> int:
        return len(self._queue)
