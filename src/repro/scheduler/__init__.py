"""Discrete-event simulation of HPC batch schedulers (SLURM, PBS).

Principle 5 requires capturing *all* steps needed to run a benchmark --
scheduler directives, accounts/QoS, process layout, launcher command.  On
real systems those steps go through sbatch/qsub; here they go through a
faithful simulation: jobs are submitted with the same directives, wait in
a FIFO queue for free nodes, are allocated without oversubscription, run
their payload (which returns output text plus simulated duration from the
machine model), and complete or fail.  The generated job scripts are real
sbatch/qsub scripts, recorded for provenance.
"""

from repro.scheduler.events import SimClock, EventQueue
from repro.scheduler.job import Job, JobState, JobResult
from repro.scheduler.allocation import NodePool, AllocationError
from repro.scheduler.base import AdmissionError, SchedulerError, BatchScheduler
from repro.scheduler.slurm import SlurmScheduler
from repro.scheduler.pbs import PbsScheduler
from repro.scheduler.local import LocalScheduler

__all__ = [
    "SimClock",
    "EventQueue",
    "Job",
    "JobState",
    "JobResult",
    "NodePool",
    "AllocationError",
    "AdmissionError",
    "SchedulerError",
    "BatchScheduler",
    "SlurmScheduler",
    "PbsScheduler",
    "LocalScheduler",
]


def make_scheduler(kind: str, **kwargs):
    """Factory: ``'slurm' | 'pbs' | 'local'`` -> scheduler instance."""
    kinds = {
        "slurm": SlurmScheduler,
        "pbs": PbsScheduler,
        "local": LocalScheduler,
    }
    if kind not in kinds:
        raise SchedulerError(f"unknown scheduler kind {kind!r}")
    return kinds[kind](**kwargs)
