"""Discrete-event simulation core: a virtual clock and an event queue.

All scheduler time is *simulated* seconds -- a whole benchmarking campaign
that would occupy a supercomputer for hours replays in milliseconds, which
is what lets the repository regenerate every table of the paper on a
laptop.

Hot-path design (DESIGN.md "Scaling the simulator"): at 100k cases the
event queue processes millions of events, so the per-event cost budget is
a handful of bytecode operations.  Three choices follow:

* **Entry records, not closures.**  ``schedule`` accepts the callback and
  its arguments separately (``schedule(at, cb, job_id)``) and stores one
  small mutable list per event.  Callers that used to build a dedicated
  ``lambda`` per event (the scheduler's finish events, the watchdog's
  kill events) pass a bound method plus args instead, eliminating one
  closure + one cell object per event.
* **Tombstone cancellation.**  ``schedule`` returns the entry itself as a
  cancellation token; :meth:`cancel` nulls the callback in place (O(1))
  and the drain loop discards dead entries as they surface.  Disarming a
  watchdog deadline or a finish event no longer needs a heap rebuild --
  and crucially, a discarded tombstone does *not* advance the clock, so
  cancellation is invisible to the simulated timeline.
* **Batched drain.**  :meth:`run_until_idle` pops events in a tight loop,
  advancing the clock once per distinct timestamp rather than once per
  event; same-timestamp events dispatch back to back with no clock
  traffic between them.  Semantics are identical to repeated
  :meth:`step` calls (ties still break by insertion order).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

__all__ = ["SimClock", "EventQueue"]


class SimClock:
    """Monotonic virtual time in seconds."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> None:
        if t < self._now:
            raise ValueError(f"clock cannot go backwards: {t} < {self._now}")
        self._now = t

    def advance_by(self, dt: float) -> None:
        if dt < 0:
            raise ValueError("negative time step")
        self._now += dt

    def __repr__(self) -> str:
        return f"SimClock(t={self._now:.6f})"


class EventQueue:
    """A time-ordered queue of callbacks; ties break by insertion order.

    Entries are ``[at, seq, callback, args]`` lists; ``seq`` is unique so
    heap comparisons never reach the callback.  A cancelled entry keeps
    its heap slot with ``callback = None`` and is skipped (without
    touching the clock) when it reaches the front.
    """

    #: default runaway-loop ceiling when no explicit budget is given;
    #: callers that know their workload (BatchScheduler.wait_all) pass a
    #: budget scaled to the submitted jobs instead
    DEFAULT_MAX_EVENTS = 1_000_000

    def __init__(self, clock: Optional[SimClock] = None):
        self.clock = clock or SimClock()
        self._heap: List[List[Any]] = []
        self._seq = 0
        self._live = 0

    def schedule(
        self, at: float, action: Callable[..., None], *args: Any
    ) -> List[Any]:
        """Schedule ``action(*args)`` at time ``at``; returns the entry.

        The returned entry is an opaque token for :meth:`cancel`.
        """
        if at < self.clock.now:
            raise ValueError(
                f"cannot schedule in the past: {at} < {self.clock.now}"
            )
        self._seq += 1
        entry = [at, self._seq, action, args]
        heapq.heappush(self._heap, entry)
        self._live += 1
        return entry

    def schedule_in(
        self, delay: float, action: Callable[..., None], *args: Any
    ) -> List[Any]:
        return self.schedule(self.clock.now + delay, action, *args)

    def cancel(self, entry: List[Any]) -> bool:
        """Disarm a scheduled entry in place; returns whether it acted.

        Cancelling an entry that already ran (or was already cancelled)
        is a no-op returning False, so holders of stale tokens need no
        bookkeeping of their own.
        """
        if entry[2] is None:
            return False
        entry[2] = None
        entry[3] = ()
        self._live -= 1
        return True

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) scheduled events."""
        return self._live

    def clear(self) -> int:
        """Drop every pending event; returns how many were dropped.

        Used by the scheduler's failure path: after an event callback
        raises, the remaining schedule references jobs whose bookkeeping
        may be inconsistent, so the queue is abandoned wholesale rather
        than replayed (the resilience layer then retries the whole case
        on a fresh scheduler instance).
        """
        dropped = self._live
        self._heap.clear()
        self._live = 0
        return dropped

    def step(self) -> bool:
        """Run the next live event; False when the queue is empty."""
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            action = entry[2]
            if action is None:
                continue  # tombstone: skipped, clock untouched
            entry[2] = None  # late cancel() of a ran entry is a no-op
            self._live -= 1
            self.clock.advance_to(entry[0])
            action(*entry[3])
            return True
        return False

    def run_until_idle(self, max_events: Optional[int] = None) -> int:
        """Drain the queue; returns the number of events processed.

        ``max_events`` is the runaway-loop ceiling: ``None`` means the
        module default (:data:`DEFAULT_MAX_EVENTS`).  Callers whose
        legitimate workload can exceed the default -- a 100k-job
        campaign -- pass a budget proportional to the submitted work.
        """
        cap = self.DEFAULT_MAX_EVENTS if max_events is None else max_events
        heap = self._heap
        clock = self.clock
        count = 0
        while heap:
            entry = heapq.heappop(heap)
            action = entry[2]
            if action is None:
                continue  # tombstone: skipped, clock untouched
            entry[2] = None
            self._live -= 1
            at = entry[0]
            if at > clock._now:
                # heap order guarantees monotonicity; skip advance_to's
                # backwards check and advance once per distinct timestamp
                # (same-timestamp events dispatch back to back)
                clock._now = at
            action(*entry[3])
            count += 1
            if count >= cap:
                raise RuntimeError(
                    f"event queue did not drain after {cap} events"
                )
        return count
