"""Discrete-event simulation core: a virtual clock and an event queue.

All scheduler time is *simulated* seconds -- a whole benchmarking campaign
that would occupy a supercomputer for hours replays in milliseconds, which
is what lets the repository regenerate every table of the paper on a
laptop.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

__all__ = ["SimClock", "EventQueue"]


class SimClock:
    """Monotonic virtual time in seconds."""

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> None:
        if t < self._now:
            raise ValueError(f"clock cannot go backwards: {t} < {self._now}")
        self._now = t

    def advance_by(self, dt: float) -> None:
        if dt < 0:
            raise ValueError("negative time step")
        self._now += dt

    def __repr__(self) -> str:
        return f"SimClock(t={self._now:.6f})"


class EventQueue:
    """A time-ordered queue of callbacks; ties break by insertion order."""

    def __init__(self, clock: Optional[SimClock] = None):
        self.clock = clock or SimClock()
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()

    def schedule(self, at: float, action: Callable[[], None]) -> None:
        if at < self.clock.now:
            raise ValueError(
                f"cannot schedule in the past: {at} < {self.clock.now}"
            )
        heapq.heappush(self._heap, (at, next(self._counter), action))

    def schedule_in(self, delay: float, action: Callable[[], None]) -> None:
        self.schedule(self.clock.now + delay, action)

    @property
    def pending(self) -> int:
        return len(self._heap)

    def clear(self) -> int:
        """Drop every pending event; returns how many were dropped.

        Used by the scheduler's failure path: after an event callback
        raises, the remaining schedule references jobs whose bookkeeping
        may be inconsistent, so the queue is abandoned wholesale rather
        than replayed (the resilience layer then retries the whole case
        on a fresh scheduler instance).
        """
        dropped = len(self._heap)
        self._heap.clear()
        return dropped

    def step(self) -> bool:
        """Run the next event; False when the queue is empty."""
        if not self._heap:
            return False
        at, _, action = heapq.heappop(self._heap)
        self.clock.advance_to(at)
        action()
        return True

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Drain the queue; returns the number of events processed."""
        count = 0
        while self.step():
            count += 1
            if count >= max_events:
                raise RuntimeError(
                    f"event queue did not drain after {max_events} events"
                )
        return count
