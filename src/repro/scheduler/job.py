"""Batch jobs: resource requests, lifecycle, results.

A job's resource request uses the same three knobs the paper's appendix
documents for ReFrame (``num_tasks``, ``num_tasks_per_node``,
``num_cpus_per_task``) plus the accounting options that "vary between HPC
systems" (account, qos, partition).  The payload is a Python callable
standing in for the job script's srun/mpirun line; it receives a
:class:`JobContext` and returns the program's stdout.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Callable, List, Optional

__all__ = ["Job", "JobState", "JobResult", "JobContext"]


class JobState(enum.Enum):
    PENDING = "PENDING"
    RUNNING = "RUNNING"
    COMPLETED = "COMPLETED"
    FAILED = "FAILED"
    TIMEOUT = "TIMEOUT"
    #: the allocation died under the job (Slurm's NODE_FAIL): the job is
    #: finished but its outcome says nothing about the program -- the
    #: archetypal *transient* infrastructure failure the resilience layer
    #: retries
    NODE_FAIL = "NODE_FAIL"
    CANCELLED = "CANCELLED"
    #: the watchdog killed a job that stopped making progress (a *slow*
    #: fault: hung build node, dead MPI rank, wedged filesystem).  Like
    #: NODE_FAIL this blames the infrastructure, not the program, so the
    #: retry taxonomy classifies it transient -- but it is kept distinct
    #: because hang detection has its own deadline provenance
    HUNG = "HUNG"

    @property
    def finished(self) -> bool:
        return self in (
            JobState.COMPLETED,
            JobState.FAILED,
            JobState.TIMEOUT,
            JobState.NODE_FAIL,
            JobState.CANCELLED,
            JobState.HUNG,
        )

    @property
    def transient_failure(self) -> bool:
        """Failure states that blame the infrastructure, not the program."""
        return self in (JobState.TIMEOUT, JobState.NODE_FAIL, JobState.HUNG)


@dataclass
class JobContext:
    """What the payload sees at 'runtime'."""

    job_id: int
    nodes: List[str]
    num_tasks: int
    num_cpus_per_task: int
    submit_time: float
    start_time: float


@dataclass
class JobResult:
    """Outcome of a finished job."""

    job_id: int
    state: JobState
    stdout: str = ""
    stderr: str = ""
    exit_code: int = 0
    submit_time: float = 0.0
    start_time: float = 0.0
    end_time: float = 0.0
    nodes: List[str] = field(default_factory=list)

    @property
    def queue_seconds(self) -> float:
        return self.start_time - self.submit_time

    @property
    def run_seconds(self) -> float:
        return self.end_time - self.start_time


#: Payload signature: context -> (stdout, simulated_runtime_seconds).
Payload = Callable[[JobContext], "tuple[str, float]"]


@dataclass
class Job:
    """A submitted batch job."""

    name: str
    payload: Payload
    num_tasks: int = 1
    num_tasks_per_node: Optional[int] = None
    num_cpus_per_task: int = 1
    time_limit: float = 3600.0  # simulated seconds
    account: Optional[str] = None
    qos: Optional[str] = None
    partition: Optional[str] = None
    extra_options: tuple = ()

    # lifecycle, managed by the scheduler
    job_id: int = -1
    state: JobState = JobState.PENDING
    result: Optional[JobResult] = None

    def __post_init__(self) -> None:
        if self.num_tasks < 1:
            raise ValueError("num_tasks must be >= 1")
        if self.num_cpus_per_task < 1:
            raise ValueError("num_cpus_per_task must be >= 1")
        if self.num_tasks_per_node is not None and self.num_tasks_per_node < 1:
            raise ValueError("num_tasks_per_node must be >= 1")

    def nodes_needed(self, cores_per_node: int) -> int:
        """Nodes this job occupies on a node type with the given core count."""
        if self.num_tasks_per_node is not None:
            per_node = self.num_tasks_per_node
        else:
            per_node = max(1, cores_per_node // self.num_cpus_per_task)
        cores_wanted = self.num_tasks_per_node_cores(per_node)
        if cores_wanted > cores_per_node:
            raise ValueError(
                f"job {self.name!r} wants {cores_wanted} cores/node, "
                f"nodes have {cores_per_node}"
            )
        return math.ceil(self.num_tasks / per_node)

    def num_tasks_per_node_cores(self, per_node: int) -> int:
        return per_node * self.num_cpus_per_task
