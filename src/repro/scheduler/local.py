"""The no-scheduler backend: run immediately on the 'login node'.

ReFrame supports local execution for laptops and unscheduled testbeds;
the framework uses it for unknown systems (which get a basic environment
and no batch system) and in unit tests.
"""

from __future__ import annotations

from repro.scheduler.base import BatchScheduler
from repro.scheduler.job import Job

__all__ = ["LocalScheduler"]


class LocalScheduler(BatchScheduler):
    """Immediate execution, single 'node', no queueing semantics."""

    kind = "local"
    dispatch_latency = 0.0

    def __init__(self, cores_per_node: int = 16, **kwargs):
        kwargs.pop("num_nodes", None)
        kwargs.pop("node_prefix", None)
        super().__init__(
            num_nodes=1,
            cores_per_node=cores_per_node,
            node_prefix="localhost",
            **kwargs,
        )

    def render_script(self, job: Job, command: str) -> str:
        return "\n".join(["#!/bin/bash", command, ""])
