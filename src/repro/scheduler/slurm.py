"""SLURM dialect: sbatch script rendering and option spellings."""

from __future__ import annotations

from repro.scheduler.base import BatchScheduler
from repro.scheduler.job import Job

__all__ = ["SlurmScheduler"]


def _hms(seconds: float) -> str:
    s = int(seconds)
    return f"{s // 3600:02d}:{(s % 3600) // 60:02d}:{s % 60:02d}"


class SlurmScheduler(BatchScheduler):
    """The SLURM frontend (ARCHER2, COSMA8, CSD3, Noctua2)."""

    kind = "slurm"

    def render_script(self, job: Job, command: str) -> str:
        nodes = job.nodes_needed(self.pool.cores_per_node)
        lines = [
            "#!/bin/bash",
            f"#SBATCH --job-name={job.name}",
            f"#SBATCH --nodes={nodes}",
            f"#SBATCH --ntasks={job.num_tasks}",
            f"#SBATCH --cpus-per-task={job.num_cpus_per_task}",
            f"#SBATCH --time={_hms(job.time_limit)}",
        ]
        if job.num_tasks_per_node is not None:
            lines.append(f"#SBATCH --ntasks-per-node={job.num_tasks_per_node}")
        if job.partition:
            lines.append(f"#SBATCH --partition={job.partition}")
        if job.account:
            lines.append(f"#SBATCH --account={job.account}")
        if job.qos:
            lines.append(f"#SBATCH --qos={job.qos}")
        for opt in job.extra_options:
            lines.append(f"#SBATCH {opt}")
        lines += ["", command, ""]
        return "\n".join(lines)
