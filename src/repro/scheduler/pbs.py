"""PBS dialect (Isambard XCI and MACS): qsub script rendering."""

from __future__ import annotations

from repro.scheduler.base import BatchScheduler
from repro.scheduler.job import Job

__all__ = ["PbsScheduler"]


def _hms(seconds: float) -> str:
    s = int(seconds)
    return f"{s // 3600:02d}:{(s % 3600) // 60:02d}:{s % 60:02d}"


class PbsScheduler(BatchScheduler):
    """The PBS Pro frontend."""

    kind = "pbs"

    def render_script(self, job: Job, command: str) -> str:
        nodes = job.nodes_needed(self.pool.cores_per_node)
        per_node = job.num_tasks_per_node or max(
            1, self.pool.cores_per_node // job.num_cpus_per_task
        )
        lines = [
            "#!/bin/bash",
            f"#PBS -N {job.name}",
            f"#PBS -l select={nodes}:ncpus={self.pool.cores_per_node}"
            f":mpiprocs={per_node}",
            f"#PBS -l walltime={_hms(job.time_limit)}",
        ]
        if job.partition:
            lines.append(f"#PBS -q {job.partition}")
        if job.account:
            lines.append(f"#PBS -A {job.account}")
        for opt in job.extra_options:
            lines.append(f"#PBS {opt}")
        lines += ["", "cd $PBS_O_WORKDIR", command, ""]
        return "\n".join(lines)
