"""Node allocation tracking with a no-oversubscription invariant.

Health-aware placement (DESIGN.md section 6.4): the pool accepts an
optional ``avoid`` predicate -- typically
:meth:`repro.runner.health.HealthTracker.is_drained` -- and fills
requests from non-avoided (healthy) free nodes first, falling back to
drained nodes only when the request cannot otherwise be satisfied.
Draining is *soft*: a sick node stops attracting work but a campaign
whose pool is mostly drained still completes rather than deadlocking.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set

__all__ = ["NodePool", "AllocationError"]


class AllocationError(Exception):
    """Raised for impossible requests or accounting violations."""


class NodePool:
    """A set of identical nodes handed out whole (exclusive node policy).

    Exclusive allocation matches both ARCHER2 and the paper's fixed
    "two tasks per node" HPGMG layout; shared-node policies belong to the
    local scheduler, which does not allocate at all.
    """

    def __init__(
        self,
        name_prefix: str,
        num_nodes: int,
        cores_per_node: int,
        avoid: Optional[Callable[[str], bool]] = None,
    ):
        if num_nodes < 1:
            raise AllocationError("a pool needs at least one node")
        self.cores_per_node = cores_per_node
        self.all_nodes: List[str] = [
            f"{name_prefix}{i:04d}" for i in range(1, num_nodes + 1)
        ]
        self.free: List[str] = list(self.all_nodes)
        self.busy: Dict[str, int] = {}  # node -> job id
        #: health predicate: ``avoid(node) -> True`` means the node is
        #: drained -- allocate it only as a last resort
        self.avoid = avoid

    @property
    def num_nodes(self) -> int:
        return len(self.all_nodes)

    @property
    def num_free(self) -> int:
        return len(self.free)

    def can_allocate(self, count: int) -> bool:
        return count <= self.num_free

    def fits_at_all(self, count: int) -> bool:
        """Could the request ever run on this pool (even when empty)?"""
        return count <= self.num_nodes

    def allocate(self, count: int, job_id: int) -> List[str]:
        if count > self.num_nodes:
            raise AllocationError(
                f"request for {count} nodes exceeds pool size {self.num_nodes}"
            )
        if count > self.num_free:
            raise AllocationError(
                f"request for {count} nodes, only {self.num_free} free"
            )
        if self.avoid is not None:
            # health-aware placement: healthy free nodes first (in name
            # order -- deterministic), drained nodes only if unavoidable
            healthy = [n for n in self.free if not self.avoid(n)]
            drained = [n for n in self.free if self.avoid(n)]
            candidates = healthy + drained
        else:
            candidates = self.free
        taken = candidates[:count]
        taken_set = set(taken)
        self.free = [n for n in self.free if n not in taken_set]
        for node in taken:
            self.busy[node] = job_id
        return taken

    def release(self, nodes: List[str], job_id: int) -> None:
        for node in nodes:
            owner = self.busy.get(node)
            if owner != job_id:
                raise AllocationError(
                    f"job {job_id} releasing node {node} owned by {owner}"
                )
            del self.busy[node]
            self.free.append(node)
        self.free.sort()

    def check_invariants(self) -> None:
        """No node is both free and busy; every node is accounted for."""
        free_set: Set[str] = set(self.free)
        busy_set: Set[str] = set(self.busy)
        if free_set & busy_set:
            raise AllocationError(f"nodes both free and busy: {free_set & busy_set}")
        if free_set | busy_set != set(self.all_nodes):
            missing = set(self.all_nodes) - (free_set | busy_set)
            raise AllocationError(f"nodes unaccounted for: {missing}")
