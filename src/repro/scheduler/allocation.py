"""Node allocation tracking with a no-oversubscription invariant.

Health-aware placement (DESIGN.md section 6.4): the pool accepts an
optional ``avoid`` predicate -- typically
:meth:`repro.runner.health.HealthTracker.is_drained` -- and fills
requests from non-avoided (healthy) free nodes first, falling back to
drained nodes only when the request cannot otherwise be satisfied.
Draining is *soft*: a sick node stops attracting work but a campaign
whose pool is mostly drained still completes rather than deadlocking.

Hot-path design (DESIGN.md "Scaling the simulator"): the original pool
materialized every node name up front and rebuilt the whole free list on
each allocate/release -- O(pool) work per request, paid per *case* at
campaign scale because every case constructs a fresh scheduler.  This
version keeps a **slotted free-index** instead:

* node names are derived from their integer slot on demand (``nid0001``
  ...), so constructing a 10k-node pool allocates nothing per node;
* the free set is ``{virgin slots >= _virgin} | _recycled`` where
  ``_recycled`` is a min-heap of released slots -- all released slots
  are numerically below the virgin frontier, so popping
  ``min(recycled-min, virgin-frontier)`` yields free nodes in exactly
  the name order the original sorted list produced;
* health partitioning is evaluated lazily at pop time: a request
  inspects only the nodes it pops (healthy taken immediately, drained
  stashed and either used as last resort or pushed back), so an
  allocation is O(request + drained-scanned), not O(pool).

Placement order is bit-for-bit identical to the reference
implementation; ``tests/scheduler/test_allocator_property.py`` checks
that against a reference pool over randomized allocate/release/drain
sequences.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Optional, Set

__all__ = ["NodePool", "AllocationError"]


class AllocationError(Exception):
    """Raised for impossible requests or accounting violations."""


class NodePool:
    """A set of identical nodes handed out whole (exclusive node policy).

    Exclusive allocation matches both ARCHER2 and the paper's fixed
    "two tasks per node" HPGMG layout; shared-node policies belong to the
    local scheduler, which does not allocate at all.
    """

    def __init__(
        self,
        name_prefix: str,
        num_nodes: int,
        cores_per_node: int,
        avoid: Optional[Callable[[str], bool]] = None,
        avoid_active: Optional[Callable[[], bool]] = None,
    ):
        if num_nodes < 1:
            raise AllocationError("a pool needs at least one node")
        self.cores_per_node = cores_per_node
        self._prefix = name_prefix
        self._num = num_nodes
        # four digits up to 9999 nodes (the historical name shape); wider
        # pools widen the field so lexicographic order stays numeric
        width = max(4, len(str(num_nodes)))
        self._fmt = f"{name_prefix}{{:0{width}d}}".format
        #: slots >= _virgin (and not busy) have never been handed out yet
        self._virgin = 1
        #: min-heap of released slots; every entry is below ``_virgin``
        self._recycled: List[int] = []
        self.busy: Dict[str, int] = {}  # node -> job id
        #: health predicate: ``avoid(node) -> True`` means the node is
        #: drained -- allocate it only as a last resort
        self.avoid = avoid
        #: optional O(1) short-circuit: when it returns False no node is
        #: currently drained, so the health partition is skipped entirely
        #: (typically ``HealthTracker.any_drained``)
        self.avoid_active = avoid_active
        self._all_cache: Optional[List[str]] = None

    # -- derived views (compat; not on the hot path) ------------------------
    @property
    def all_nodes(self) -> List[str]:
        """Every node name, in order (materialized on first use)."""
        if self._all_cache is None:
            self._all_cache = [
                self._fmt(i) for i in range(1, self._num + 1)
            ]
        return self._all_cache

    @property
    def free(self) -> List[str]:
        """The free node names in allocation (name) order."""
        fmt = self._fmt
        slots = sorted(self._recycled)
        slots.extend(range(self._virgin, self._num + 1))
        return [fmt(i) for i in slots]

    @property
    def num_nodes(self) -> int:
        return self._num

    @property
    def num_free(self) -> int:
        return self._num - len(self.busy)

    def can_allocate(self, count: int) -> bool:
        return count <= self.num_free

    def fits_at_all(self, count: int) -> bool:
        """Could the request ever run on this pool (even when empty)?"""
        return count <= self._num

    # -- slot plumbing ------------------------------------------------------
    def _pop_slot(self) -> int:
        """The lowest free slot (recycled slots are all below virgin)."""
        if self._recycled:
            return heapq.heappop(self._recycled)
        slot = self._virgin
        self._virgin += 1
        return slot

    def _slot_of(self, node: str) -> int:
        try:
            return int(node[len(self._prefix):])
        except ValueError:
            raise AllocationError(f"node {node!r} is not from this pool")

    # -- allocation ---------------------------------------------------------
    def allocate(self, count: int, job_id: int) -> List[str]:
        if count > self._num:
            raise AllocationError(
                f"request for {count} nodes exceeds pool size {self._num}"
            )
        if count > self.num_free:
            raise AllocationError(
                f"request for {count} nodes, only {self.num_free} free"
            )
        avoid = self.avoid
        if avoid is not None and (
            self.avoid_active is None or self.avoid_active()
        ):
            # health-aware placement: healthy free nodes first (in name
            # order -- deterministic), drained nodes only if unavoidable.
            # Evaluated lazily: pop free slots in name order, keep the
            # healthy ones, stash the drained; unused drained slots go
            # back on the heap.
            fmt = self._fmt
            free_at_start = self.num_free
            taken: List[str] = []
            drained: List[int] = []  # popped in name order
            drained_names: List[str] = []
            while len(taken) < count and \
                    len(taken) + len(drained) < free_at_start:
                slot = self._pop_slot()
                name = fmt(slot)
                if avoid(name):
                    drained.append(slot)
                    drained_names.append(name)
                else:
                    taken.append(name)
            short = count - len(taken)
            if short > 0:
                # not enough healthy nodes: drained as a last resort,
                # still in name order
                taken.extend(drained_names[:short])
                drained = drained[short:]
            for slot in drained:
                heapq.heappush(self._recycled, slot)
        else:
            fmt = self._fmt
            taken = [fmt(self._pop_slot()) for _ in range(count)]
        busy = self.busy
        for node in taken:
            busy[node] = job_id
        return taken

    def release(self, nodes: List[str], job_id: int) -> None:
        busy = self.busy
        recycled = self._recycled
        for node in nodes:
            owner = busy.get(node)
            if owner != job_id:
                raise AllocationError(
                    f"job {job_id} releasing node {node} owned by {owner}"
                )
            del busy[node]
            heapq.heappush(recycled, self._slot_of(node))

    # -- invariants ---------------------------------------------------------
    def check_counts(self) -> None:
        """O(1) accounting check for the per-finish hot path.

        The slot structures (recycled heap + virgin frontier) must agree
        with the busy map about how many nodes are free; a double release
        or a leaked slot breaks the equation immediately.
        """
        free_slots = len(self._recycled) + (self._num - self._virgin + 1)
        if free_slots + len(self.busy) != self._num:
            raise AllocationError(
                f"slot accounting broken: {free_slots} free slots + "
                f"{len(self.busy)} busy != {self._num} nodes"
            )

    def check_invariants(self) -> None:
        """No node is both free and busy; every node is accounted for.

        The full O(pool) audit -- kept for tests and debugging; the
        scheduler's per-job path uses :meth:`check_counts`.
        """
        self.check_counts()
        free_set: Set[str] = set(self.free)
        busy_set: Set[str] = set(self.busy)
        if free_set & busy_set:
            raise AllocationError(
                f"nodes both free and busy: {free_set & busy_set}"
            )
        if free_set | busy_set != set(self.all_nodes):
            missing = set(self.all_nodes) - (free_set | busy_set)
            raise AllocationError(f"nodes unaccounted for: {missing}")
