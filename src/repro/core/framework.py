"""The Benchmarking Framework facade: the paper's artifact as one object.

Wires together every subsystem the way the excalibur-tests framework wires
Spack + ReFrame + post-processing: suites are selected by name, systems by
the shared configuration, and a campaign produces perflogs, provenance,
a compliance audit and analysis-ready data in one call.

>>> fw = BenchmarkingFramework(perflog_prefix="perflogs")
>>> result = fw.run_campaign("babelstream", ["archer2", "csd3"], tags=["omp"])
>>> fw.audit(result)[0].compliant
True
"""

from __future__ import annotations

import os
from typing import Any, Dict, List, Optional, Sequence, Type

from repro.core.principles import ComplianceAuditor, ComplianceReport
from repro.core.provenance import RunProvenance
from repro.core.workflow import BenchmarkingWorkflow, WorkflowResult
from repro.runner.benchmark import RegressionTest
from repro.runner.cli import SUITES, load_suite
from repro.runner.config import SiteConfig, default_site_config

__all__ = ["BenchmarkingFramework"]


class BenchmarkingFramework:
    """High-level entry point for benchmarking campaigns."""

    def __init__(
        self,
        site: Optional[SiteConfig] = None,
        perflog_prefix: Optional[str] = None,
    ):
        self.site = site or default_site_config()
        self.perflog_prefix = perflog_prefix
        self.auditor = ComplianceAuditor()

    # -- suite discovery ------------------------------------------------------
    @staticmethod
    def available_suites() -> List[str]:
        return sorted(set(SUITES))

    @staticmethod
    def suite(name: str) -> List[Type[RegressionTest]]:
        return load_suite(name)

    def available_systems(self) -> List[str]:
        return sorted(self.site.systems)

    # -- campaigns ----------------------------------------------------------------
    def run_campaign(
        self,
        suite: str,
        platforms: Sequence[str],
        **run_options: Any,
    ) -> WorkflowResult:
        """Run one suite across platforms (the Figure 1 workflow)."""
        classes = self.suite(suite)
        workflow = BenchmarkingWorkflow(
            classes,
            platforms,
            perflog_prefix=self.perflog_prefix,
            **run_options,
        )
        return workflow.run()

    # -- provenance & audit ----------------------------------------------------------
    def provenance(self, result: WorkflowResult) -> Dict[str, RunProvenance]:
        out = {}
        for platform, report in result.reports.items():
            prov = RunProvenance(system=platform)
            for case_result in report.results:
                prov.add_case(case_result)
            if getattr(report, "result_cache", None) is not None:
                prov.attach_result_cache(report.result_cache)
            out[platform] = prov
        return out

    def write_provenance(self, result: WorkflowResult, directory: str) -> List[str]:
        os.makedirs(directory, exist_ok=True)
        paths = []
        for platform, prov in self.provenance(result).items():
            path = os.path.join(
                directory, f"provenance-{platform.replace(':', '-')}.json"
            )
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(prov.to_json())
            paths.append(path)
        return paths

    def audit(self, result: WorkflowResult) -> List[ComplianceReport]:
        """Audit every passing case against the six Principles."""
        return self.auditor.audit_all(result.all_results)
