"""The Figure-1 workflow: Code -> (build, run)xPlatforms -> FOMs -> Analysis.

The paper's Figure 1 (after Pennycook) draws benchmarking as one code and
problem size flowing through per-platform build+run stages into a set of
comparable FOMs and a final analysis.  :class:`BenchmarkingWorkflow` is
that diagram as an object: configure once, point at N platforms, and get
the assimilated FOM set plus efficiency analysis back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Type

from repro.analysis.efficiency import architectural_efficiency
from repro.analysis.portability import performance_portability
from repro.postprocess.dataframe import DataFrame
from repro.runner.benchmark import RegressionTest
from repro.runner.executor import Executor, RunReport
from repro.runner.pipeline import CaseResult

__all__ = ["BenchmarkingWorkflow", "WorkflowResult"]


@dataclass
class WorkflowResult:
    """The right-hand side of Figure 1: FOMs + analysis."""

    reports: Dict[str, RunReport] = field(default_factory=dict)
    #: tidy frame: platform, test, perf_var, value, unit, efficiency
    frame: DataFrame = field(default_factory=DataFrame)

    @property
    def all_results(self) -> List[CaseResult]:
        return [r for rep in self.reports.values() for r in rep.results]

    def fom(self, platform: str, test_name: str, var: str) -> float:
        for r in self.reports[platform].results:
            if r.case.test.name == test_name and var in r.perfvars:
                return r.perfvars[var][0]
        raise KeyError(f"no FOM {var!r} for {test_name!r} on {platform!r}")

    def efficiencies(self, var: str) -> Dict[str, Dict[str, Optional[float]]]:
        """test name -> {platform -> efficiency or None-if-did-not-run}."""
        out: Dict[str, Dict[str, Optional[float]]] = {}
        for platform, report in self.reports.items():
            for r in report.results:
                name = r.case.test.name
                out.setdefault(name, {})
                if r.passed and var in r.perfvars:
                    peak = r.case.partition.node.peak_bandwidth_gbs
                    out[name][platform] = architectural_efficiency(
                        r.perfvars[var][0], peak
                    )
                else:
                    out[name][platform] = None
        return out

    def portability(self, var: str) -> Dict[str, float]:
        """test name -> Pennycook PP over every platform in the workflow."""
        effs = self.efficiencies(var)
        # PP demands efficiencies <= 1; measured/theoretical-peak satisfies it
        return {
            name: performance_portability(by_platform)
            for name, by_platform in effs.items()
        }


class BenchmarkingWorkflow:
    """Run one benchmark suite across many platforms and analyse the FOMs."""

    def __init__(
        self,
        test_classes: Sequence[Type[RegressionTest]],
        platforms: Sequence[str],
        perflog_prefix: Optional[str] = None,
        **run_options: Any,
    ):
        self.test_classes = list(test_classes)
        self.platforms = list(platforms)
        self.executor = Executor(perflog_prefix=perflog_prefix)
        self.run_options = run_options

    def run(self) -> WorkflowResult:
        result = WorkflowResult()
        records = []
        for platform in self.platforms:
            report = self.executor.run(
                self.test_classes, platform, **self.run_options
            )
            result.reports[platform] = report
            for r in report.results:
                base = {
                    "platform": platform,
                    "test": r.case.test.name,
                    "passed": r.passed,
                }
                if r.passed:
                    peak = r.case.partition.node.peak_bandwidth_gbs
                    for var, (value, unit) in r.perfvars.items():
                        records.append(
                            {
                                **base,
                                "perf_var": var,
                                "value": value,
                                "unit": unit,
                                "efficiency": architectural_efficiency(
                                    value, peak
                                ),
                            }
                        )
                else:
                    records.append(
                        {**base, "perf_var": None, "value": None,
                         "unit": None, "efficiency": None}
                    )
        result.frame = DataFrame.from_records(
            records,
            columns=["platform", "test", "passed", "perf_var", "value",
                     "unit", "efficiency"],
        )
        return result
