"""Performance-regression tracking over perflog history (CI support).

Section 4 of the paper: "the way is paved for making changes in
performance as important as changes in answers for scientific
applications ... a sweep of performance data across diverse computer
systems ... can be run as part of a CI pipeline, and enable researchers
to measure and track the performance portability of their applications
over time."

:class:`RegressionTracker` consumes the perflog history the framework
already writes (append-only, one file per system/partition/test) and
answers the CI question: *did the newest measurement regress against the
established baseline?*  The detector compares the latest value against a
reference window (mean of the previous N runs) with both a relative
threshold and a noise-aware z-score, on a higher-is-better or
lower-is-better basis per FOM.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.postprocess.dataframe import DataFrame
from repro.postprocess.perflog_reader import read_perflogs

__all__ = [
    "ChangePoint",
    "RegressionFinding",
    "RegressionReport",
    "RegressionTracker",
    "detect_change_point",
]


@dataclass(frozen=True)
class RegressionFinding:
    """One (system, partition, test, FOM) series' verdict."""

    key: Tuple[str, str, str, str]  # system, partition, test, perf_var
    status: str  # "ok" | "regressed" | "improved" | "insufficient-history"
    latest: float
    baseline: float
    change_fraction: float
    zscore: float
    history_length: int

    @property
    def label(self) -> str:
        system, partition, test, var = self.key
        return f"{test}/{var} @{system}:{partition}"


@dataclass
class RegressionReport:
    findings: List[RegressionFinding] = field(default_factory=list)

    @property
    def regressions(self) -> List[RegressionFinding]:
        return [f for f in self.findings if f.status == "regressed"]

    @property
    def improvements(self) -> List[RegressionFinding]:
        return [f for f in self.findings if f.status == "improved"]

    @property
    def ok(self) -> bool:
        """The CI gate: green iff nothing regressed."""
        return not self.regressions

    def exit_code(self) -> int:
        return 0 if self.ok else 1

    def render(self) -> str:
        lines = ["PERFORMANCE REGRESSION REPORT", "-" * 60]
        for f in sorted(self.findings, key=lambda f: f.label):
            arrow = {"regressed": "v", "improved": "^", "ok": "=",
                     "insufficient-history": "?"}[f.status]
            lines.append(
                f"[{arrow}] {f.label}: {f.latest:.4g} vs baseline "
                f"{f.baseline:.4g} ({f.change_fraction:+.1%}, "
                f"z={f.zscore:+.1f}) [{f.status}]"
            )
        lines.append(
            f"{len(self.regressions)} regression(s), "
            f"{len(self.improvements)} improvement(s), "
            f"{len(self.findings)} series checked"
        )
        return "\n".join(lines)


@dataclass(frozen=True)
class ChangePoint:
    """A sustained level shift in a cross-run FOM series.

    ``index`` is the first run of the new regime: runs ``[0, index)``
    form the before-segment, ``[index, n)`` the after-segment.
    """

    index: int
    before_mean: float
    after_mean: float
    change_fraction: float
    zscore: float
    direction: str  # "regressed" | "improved"


def detect_change_point(
    values: Sequence[float],
    min_segment: int = 2,
    threshold: float = 0.05,
    zscore_gate: float = 2.0,
    higher_is_better: bool = True,
    start: int = 0,
) -> Optional[ChangePoint]:
    """Find the strongest sustained level shift in a run series.

    Where :meth:`RegressionTracker.assess_series` judges only the
    *latest* run against a trailing window (the per-run CI gate), this
    is the cross-run question a fleet timeline asks: *did this series
    step to a new level at some point, and where?*  Every split with at
    least ``min_segment`` runs on each side is scored by the
    standardized mean shift between the segments (pooled within-segment
    noise); the strongest split wins if it clears both the relative
    ``threshold`` and the ``zscore_gate``.

    ``start`` is baseline management: runs before that index are
    accepted history and are excluded from the analysis entirely (not
    just as split candidates -- an accepted old level left inside the
    before-segment would keep re-flagging the very shift the operator
    acknowledged).  Reported indices stay in the full series'
    coordinates.
    """
    series = [float(v) for v in values if not math.isnan(float(v))]
    start = max(0, int(start))
    series = series[start:]
    n = len(series)
    if n < 2 * min_segment:
        return None
    best: Optional[ChangePoint] = None
    arr = np.array(series)
    for split in range(min_segment, n - min_segment + 1):
        before, after = arr[:split], arr[split:]
        before_mean = float(np.mean(before))
        after_mean = float(np.mean(after))
        # pooled within-segment noise; a tiny floor keeps a zero-noise
        # series (simulated, hence exactly repeatable) from dividing by 0
        # while still letting any real step register as very significant
        pooled = math.sqrt(
            (float(np.var(before)) * len(before)
             + float(np.var(after)) * len(after)) / n
        )
        sigma = max(pooled, 1e-12 * max(abs(before_mean), 1.0))
        z = (after_mean - before_mean) / sigma
        change = (
            (after_mean - before_mean) / before_mean if before_mean else 0.0
        )
        if abs(change) < threshold or abs(z) < zscore_gate:
            continue
        if best is None or abs(z) > abs(best.zscore):
            worse = change < 0 if higher_is_better else change > 0
            best = ChangePoint(
                index=start + split,
                before_mean=before_mean,
                after_mean=after_mean,
                change_fraction=change,
                zscore=float(np.clip(z, -999, 999)),
                direction="regressed" if worse else "improved",
            )
    return best


class RegressionTracker:
    """Detects regressions in perflog time series.

    Parameters
    ----------
    threshold:
        Relative change treated as meaningful (default 5%, matching the
        ReFrame reference-window convention used in the paper's framework).
    min_history:
        Baseline runs required before verdicts are issued.
    zscore_gate:
        The change must also exceed this many baseline standard deviations,
        so noisy series do not page anyone on ordinary jitter.
    higher_is_better:
        Per-FOM direction override; defaults to True (bandwidths, GFlop/s,
        DOF/s).  Keys are ``perf_var`` names.
    """

    def __init__(
        self,
        threshold: float = 0.05,
        min_history: int = 3,
        zscore_gate: float = 2.0,
        higher_is_better: Optional[Dict[str, bool]] = None,
    ):
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.threshold = threshold
        self.min_history = max(min_history, 1)
        self.zscore_gate = zscore_gate
        self.higher_is_better = dict(higher_is_better or {})

    # -- series assessment ---------------------------------------------------
    def assess_series(
        self, key: Tuple[str, str, str, str], values: Sequence[float]
    ) -> RegressionFinding:
        values = [float(v) for v in values if not math.isnan(float(v))]
        var = key[3]
        better_high = self.higher_is_better.get(var, True)
        if len(values) < self.min_history + 1:
            latest = values[-1] if values else float("nan")
            return RegressionFinding(
                key=key, status="insufficient-history", latest=latest,
                baseline=float("nan"), change_fraction=0.0, zscore=0.0,
                history_length=len(values),
            )
        history = np.array(values[:-1][-20:])  # sliding baseline window
        latest = values[-1]
        baseline = float(np.mean(history))
        sigma = float(np.std(history))
        change = (latest - baseline) / baseline if baseline else 0.0
        if sigma > 0:
            z = (latest - baseline) / sigma
        elif latest == baseline:
            z = 0.0
        else:
            # a zero-noise baseline makes any change infinitely significant
            z = float("inf") if latest > baseline else float("-inf")
        worse = change < 0 if better_high else change > 0
        significant = abs(change) >= self.threshold and abs(z) >= self.zscore_gate
        if significant and worse:
            status = "regressed"
        elif significant:
            status = "improved"
        else:
            status = "ok"
        return RegressionFinding(
            key=key, status=status, latest=latest, baseline=baseline,
            change_fraction=change, zscore=float(np.clip(z, -99, 99)),
            history_length=len(values),
        )

    # -- perflog ingestion ------------------------------------------------------
    def series_from_frame(
        self, frame: DataFrame
    ) -> Dict[Tuple[str, str, str, str], List[float]]:
        """Group a perflog DataFrame into ordered FOM series.

        Perflogs are append-only, so file order *is* time order, which is
        what makes this work without trusting wall-clock timestamps.
        """
        out: Dict[Tuple[str, str, str, str], List[float]] = {}
        passing = frame.filter(lambda r: str(r["result"]) == "pass")
        for row in passing.to_records():
            key = (row["system"], row["partition"], row["test"],
                   row["perf_var"])
            out.setdefault(key, []).append(float(row["perf_value"]))
        return out

    def check(self, frame: DataFrame) -> RegressionReport:
        report = RegressionReport()
        for key, values in sorted(self.series_from_frame(frame).items()):
            report.findings.append(self.assess_series(key, values))
        return report

    def check_perflogs(self, prefix: str) -> RegressionReport:
        """The CI entry point: read everything under a prefix and judge."""
        return self.check(read_perflogs(prefix))
