"""The six Principles, as data and as a machine-checkable audit.

The paper states its methodology as prose Principles; this module encodes
them and -- going one step further than a checklist -- audits a finished
benchmarking run against each one.  A run that was collected through the
framework should audit clean by construction; the auditor exists so that
*deviations* (a test without FOMs, a cached binary, a missing job script)
are surfaced rather than silently tolerated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.runner.pipeline import CaseResult

__all__ = ["Principle", "PRINCIPLES", "ComplianceAuditor", "ComplianceReport"]


@dataclass(frozen=True)
class Principle:
    number: int
    title: str
    statement: str


PRINCIPLES: Dict[int, Principle] = {
    1: Principle(
        1,
        "Efficiency-capable Figure of Merit",
        "A benchmark application should have a Figure of Merit which can "
        "measure (directly or indirectly) the efficiency of the "
        "application on a given platform.",
    ),
    2: Principle(
        2,
        "Build knowledge lives in the build system",
        "Teach the build system how to build the benchmark using the best "
        "known parameters on each platform.",
    ),
    3: Principle(
        3,
        "Rebuild on every run",
        "Rebuild the benchmark every time it runs to guarantee the steps "
        "to reproduce the binary are known.",
    ),
    4: Principle(
        4,
        "Captured build steps",
        "Capture all steps taken to build the benchmark on a given "
        "platform so it can be reproduced by anyone else using the system "
        "default environment.",
    ),
    5: Principle(
        5,
        "Captured run steps",
        "Capture all steps to run the built benchmark so it can be run by "
        "anyone on the same system using the default environment.",
    ),
    6: Principle(
        6,
        "Programmatic post-processing",
        "Assimilate and post-process the data in a programmable manner so "
        "as to make extraction and presentation of Figures of Merit "
        "transparent and error-free.",
    ),
}


@dataclass
class ComplianceReport:
    """Outcome of auditing one case result against all six Principles."""

    case_name: str
    findings: Dict[int, "tuple[bool, str]"] = field(default_factory=dict)

    @property
    def compliant(self) -> bool:
        return all(ok for ok, _ in self.findings.values())

    def violations(self) -> List[str]:
        return [
            f"P{num} ({PRINCIPLES[num].title}): {msg}"
            for num, (ok, msg) in sorted(self.findings.items())
            if not ok
        ]

    def render(self) -> str:
        lines = [f"Compliance audit: {self.case_name}"]
        for num in sorted(self.findings):
            ok, msg = self.findings[num]
            mark = "PASS" if ok else "FAIL"
            lines.append(f"  [{mark}] P{num} {PRINCIPLES[num].title}: {msg}")
        return "\n".join(lines)


class ComplianceAuditor:
    """Audits finished :class:`CaseResult` objects against the Principles."""

    def __init__(self, theoretical_peak: Optional[Callable] = None):
        #: optional platform -> peak lookup; default uses the node's
        #: peak memory bandwidth (appropriate for bandwidth FOMs)
        self.theoretical_peak = theoretical_peak

    def audit(self, result: CaseResult) -> ComplianceReport:
        report = ComplianceReport(case_name=result.case.display_name)
        f = report.findings

        # P1: an efficiency can be formed: FOMs exist and a peak is known
        node = result.case.partition.node
        peak = (
            self.theoretical_peak(result)
            if self.theoretical_peak
            else node.peak_bandwidth_gbs
        )
        if not result.perfvars:
            f[1] = (False, "no Figures of Merit were extracted")
        elif peak <= 0:
            f[1] = (False, "no theoretical peak available for the platform")
        else:
            f[1] = (True, f"{len(result.perfvars)} FOM(s), peak={peak:g}")

        # P2: the build went through a recipe (a concretized spec exists)
        if result.concrete_spec is None:
            f[2] = (False, "benchmark was not built through the package manager")
        else:
            f[2] = (True, f"recipe-driven build: {result.concrete_spec.format(deps=False)}")

        # P3: the root was actually rebuilt this run
        fresh_root = any("Successfully installed" in line
                         for line in result.build_log)
        external = result.concrete_spec is not None and result.concrete_spec.external
        if fresh_root or external:
            f[3] = (True, "root binary rebuilt this run"
                    if fresh_root else "root is a system external")
        else:
            f[3] = (False, "root binary came from cache (rebuild skipped)")

        # P4: the full concretized DAG is recorded (hashable provenance)
        if result.concrete_spec is not None and result.concrete_spec.concrete:
            f[4] = (True, f"lockfile hash /{result.concrete_spec.dag_hash()}")
        else:
            f[4] = (False, "no concretized spec recorded")

        # P5: job script + run command captured
        if result.job_script and result.run_command:
            f[5] = (True, "job script and launcher command captured")
        else:
            f[5] = (False, "job script or run command missing")

        # P6: FOMs were extracted by the framework (not hand-copied): they
        # must re-extract identically from the recorded stdout
        try:
            re_extracted = result.case.test.extract_performance(result.stdout)
            if re_extracted == result.perfvars:
                f[6] = (True, "FOMs re-extract identically from stored output")
            else:
                f[6] = (False, "stored FOMs do not match re-extraction")
        except Exception as exc:
            f[6] = (False, f"re-extraction failed: {exc}")

        return report

    def audit_all(self, results: List[CaseResult]) -> List[ComplianceReport]:
        return [self.audit(r) for r in results if r.passed]
