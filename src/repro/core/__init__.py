"""The paper's contribution: the six Principles, the Figure-1 workflow,
and the framework facade tying package manager + runner + post-processing
into one cohesive benchmarking tool.
"""

from repro.core.principles import (
    PRINCIPLES,
    Principle,
    ComplianceAuditor,
    ComplianceReport,
)
from repro.core.workflow import BenchmarkingWorkflow, WorkflowResult
from repro.core.framework import BenchmarkingFramework
from repro.core.provenance import RunProvenance
from repro.core.regression import (
    RegressionFinding,
    RegressionReport,
    RegressionTracker,
)

__all__ = [
    "PRINCIPLES",
    "Principle",
    "ComplianceAuditor",
    "ComplianceReport",
    "BenchmarkingWorkflow",
    "WorkflowResult",
    "BenchmarkingFramework",
    "RunProvenance",
    "RegressionFinding",
    "RegressionReport",
    "RegressionTracker",
]
