"""Run provenance: everything needed to repeat a benchmarking campaign.

The paper contrasts *archaeological* reproducibility (documenting what
happened, for later audit) with collecting results so they are
reproducible *a priori*.  :class:`RunProvenance` serves both: it is
written as JSON next to the perflogs and contains the concretized specs,
job scripts, launcher commands and framework configuration -- enough for
anyone (including the original author, per the paper's "it becomes
impossible for someone else to reproduce our work if we ourselves do not
reproduce it") to re-run the campaign.
"""

from __future__ import annotations

import json
import platform as _platform
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.runner.pipeline import CaseResult

__all__ = ["RunProvenance"]

_FRAMEWORK_VERSION = "1.0.0"


@dataclass
class RunProvenance:
    """A JSON-able record of one campaign (one Executor run)."""

    system: str
    invocation: List[str] = field(default_factory=list)
    entries: List[Dict[str, Any]] = field(default_factory=list)
    #: perflog ingest-cache accounting (``PerflogStore.stats.as_dict()``),
    #: surfaced alongside the per-case concretization-memo hits: whether
    #: an analytics pass re-parsed history or extended a manifest is as
    #: provenance-relevant as whether a solve came from the memo table
    ingest_cache: Optional[Dict[str, Any]] = None
    #: campaign-level resilience accounting (DESIGN.md section 6): the
    #: fault plan + seed in force, retry policy, whether the run resumed
    #: from a journal, and the circuit-breaker outcome.  A retried or
    #: resumed campaign that is not *recorded* as such is archaeology.
    resilience: Optional[Dict[str, Any]] = None
    #: node-health ledger (``HealthTracker.as_dict()``): which nodes the
    #: campaign drained, their scores/strikes -- a result obtained while
    #: steering around a sick node must say so (DESIGN.md section 6.4)
    health: Optional[Dict[str, Any]] = None
    #: end-of-campaign metrics snapshot
    #: (``MetricsRegistry.snapshot()``, DESIGN.md section 7): the same
    #: counters/histograms the trace file's final record carries, so an
    #: auditor can cross-check provenance against the trace byte stream
    metrics: Optional[Dict[str, Any]] = None
    #: path of the JSONL span trace streamed during the campaign, when
    #: ``--trace`` was armed (the pointer, not the spans: traces can be
    #: large and live next to the perflogs they describe)
    trace_file: Optional[str] = None
    #: path of the sealed live-status artifact, when ``--live-status``
    #: was armed -- same pointer-not-payload rule as the trace, and the
    #: handle ``repro-fsck --provenance`` uses to discover/verify it
    live_status: Optional[str] = None
    #: result-store accounting (``ResultStoreStats.as_dict()``) when
    #: ``--result-store`` was armed: how many cases were replayed from
    #: the content-addressed store vs executed fresh.  An incremental
    #: campaign whose provenance hides that it replayed is archaeology
    #: (DESIGN.md section 8)
    result_cache: Optional[Dict[str, Any]] = None

    def attach_ingest_cache(self, stats: Any) -> None:
        """Record perflog-store accounting (a ``StoreStats`` or dict)."""
        self.ingest_cache = (
            stats.as_dict() if hasattr(stats, "as_dict") else dict(stats)
        )

    def attach_resilience(
        self,
        report: Any = None,
        faults: Any = None,
        retry: Any = None,
        journal_path: Optional[str] = None,
        resumed: bool = False,
    ) -> None:
        """Record the campaign's resilience configuration and outcome."""
        info: Dict[str, Any] = {
            "journal": journal_path,
            "resumed_from_journal": bool(resumed),
        }
        if faults is not None:
            info["fault_spec"] = faults.format()
            info["fault_seed"] = faults.seed
            info["faults_fired"] = faults.fired
        if retry is not None:
            info["retry"] = {
                "max_attempts": retry.max_attempts,
                "backoff_base": retry.backoff_base,
                "backoff_factor": retry.backoff_factor,
                "backoff_max": retry.backoff_max,
                "jitter": retry.jitter,
                "seed": retry.seed,
            }
        if report is not None:
            info["aborted"] = report.aborted
            info["cases_retried"] = len(report.retried)
            info["cases_resumed"] = len(report.resumed)
            info["cases_quarantined"] = len(report.quarantined)
            # slow-fault accounting (watchdog / speculation / drains)
            if getattr(report, "watchdog", None) is not None:
                info["watchdog"] = report.watchdog
            if getattr(report, "hung_attempts", 0):
                info["hung_attempts"] = report.hung_attempts
            speculated = getattr(report, "speculated", None)
            if speculated:
                info["cases_speculated"] = len(speculated)
                info["speculation_wins"] = len(report.speculation_wins)
            if getattr(report, "drained_nodes", None):
                info["drained_nodes"] = list(report.drained_nodes)
        self.resilience = info

    def attach_metrics(
        self, snapshot: Any, trace_path: Optional[str] = None,
        live_status: Optional[str] = None,
    ) -> None:
        """Record the campaign metrics snapshot (and the trace pointer).

        Accepts a :class:`~repro.obs.metrics.MetricsRegistry`, anything
        with ``snapshot()``/``as_dict()``, or a plain dict -- typically
        ``report.metrics`` straight off the :class:`RunReport`, with
        ``report.trace_path`` as *trace_path* and the ``--live-status``
        path (if armed) as *live_status*.
        """
        if hasattr(snapshot, "snapshot"):
            self.metrics = snapshot.snapshot()
        elif hasattr(snapshot, "as_dict"):
            self.metrics = snapshot.as_dict()
        elif snapshot is not None:
            self.metrics = dict(snapshot)
        if trace_path is not None:
            self.trace_file = str(trace_path)
        if live_status is not None:
            self.live_status = str(live_status)

    def attach_result_cache(self, stats: Any) -> None:
        """Record result-store accounting (``ResultStoreStats`` or dict)."""
        self.result_cache = (
            stats.as_dict() if hasattr(stats, "as_dict") else dict(stats)
        )

    def attach_health(self, tracker: Any) -> None:
        """Record the node-health ledger (a ``HealthTracker`` or dict)."""
        self.health = (
            tracker.as_dict() if hasattr(tracker, "as_dict")
            else dict(tracker)
        )

    def add_case(self, result: CaseResult) -> None:
        case = result.case
        self.entries.append(
            {
                "test": case.test.name,
                "platform": case.platform,
                "environ": case.environ_name,
                "passed": result.passed,
                "failing_stage": result.failing_stage,
                "failure_reason": result.failure_reason,
                "spec": (
                    result.concrete_spec.format()
                    if result.concrete_spec is not None
                    else None
                ),
                "spec_hash": (
                    result.concrete_spec.dag_hash()
                    if result.concrete_spec is not None
                    else None
                ),
                "spec_dag": (
                    result.concrete_spec.dag_dict()
                    if result.concrete_spec is not None
                    else None
                ),
                # whether the concretizer *solve* came from the memo cache
                # (the binary itself is still rebuilt every run, Principle
                # 3; the solve being reused is itself provenance-relevant)
                "concretize_cache_hit": result.concretize_cache_hit,
                "run_command": result.run_command,
                "job_script": result.job_script,
                "perfvars": {
                    k: {"value": v, "unit": u}
                    for k, (v, u) in result.perfvars.items()
                },
                "build_seconds": result.build_seconds,
                "job_seconds": result.job_seconds,
                "queue_seconds": result.queue_seconds,
                "energy": (
                    result.energy.as_dict() if result.energy is not None
                    else None
                ),
                # efficiency provenance: each FOM normalized by the
                # case's mean power draw (None without telemetry)
                "perfvars_per_watt": (
                    {
                        k: result.energy.fom_per_watt(v)
                        for k, (v, _u) in result.perfvars.items()
                    }
                    if result.energy is not None else None
                ),
                # resilience provenance: how hard this result was to get
                "attempts": result.attempts,
                "backoff_schedule": list(result.backoff_schedule),
                "faults": list(result.fault_log),
                "resumed": result.resumed,
                "quarantined": result.quarantined,
                "speculated": result.speculated,
                "speculation_won": result.speculation_won,
                "hung_attempts": result.hung_attempts,
            }
        )
        if result.replayed:
            # cache annotations only -- a cold run's provenance entry is
            # byte-identical whether or not a store was armed, and a
            # warm run's differs from it *only* by these two keys (the
            # byte-identity gate compares modulo them)
            self.entries[-1]["replayed"] = True
            self.entries[-1]["cached_from"] = result.cached_from

    def to_json(self) -> str:
        return json.dumps(
            {
                "framework_version": _FRAMEWORK_VERSION,
                "host_python": _platform.python_version(),
                "system": self.system,
                "invocation": self.invocation,
                "cases": self.entries,
                "ingest_cache": self.ingest_cache,
                "resilience": self.resilience,
                "health": self.health,
                "metrics": self.metrics,
                "trace_file": self.trace_file,
                "live_status": self.live_status,
                "result_cache": self.result_cache,
            },
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "RunProvenance":
        doc = json.loads(text)
        prov = cls(system=doc["system"], invocation=doc.get("invocation", []))
        prov.entries = doc.get("cases", [])
        prov.ingest_cache = doc.get("ingest_cache")
        prov.resilience = doc.get("resilience")
        prov.health = doc.get("health")
        # observability fields arrived later; .get keeps old files loading
        prov.metrics = doc.get("metrics")
        prov.trace_file = doc.get("trace_file")
        prov.live_status = doc.get("live_status")
        prov.result_cache = doc.get("result_cache")
        return prov

    def spec_hashes(self) -> List[str]:
        return [e["spec_hash"] for e in self.entries if e.get("spec_hash")]
