"""Perflog output: the performance record the whole analysis chain reads.

"Benchmark output data is appended to a performance log (also known as a
'perflog') associated with the benchmark on each system, and these logs
can be collated directly and post-processed" (Section 2.4).

Format: pipe-separated, one line per Figure of Merit per run, append-only,
one file per (system, partition, test) under::

    <prefix>/<system>/<partition>/<testname>.log

The format is plain enough to grep yet structured enough for
:mod:`repro.postprocess.perflog_reader` to load losslessly.
"""

from __future__ import annotations

import datetime as _dt
import os
from typing import List, Optional

from repro.runner.pipeline import CaseResult

__all__ = ["PerflogHandler", "PERFLOG_FIELDS", "format_record"]

#: column names, in file order
PERFLOG_FIELDS = (
    "timestamp",
    "version",
    "test",
    "system",
    "partition",
    "environ",
    "spec",
    "num_tasks",
    "perf_var",
    "perf_value",
    "perf_unit",
    "result",
)

_VERSION = "repro-1.0.0"


def format_record(result: CaseResult, timestamp: Optional[str] = None) -> List[str]:
    """Perflog lines for one finished case (one per FOM; one if failed)."""
    case = result.case
    ts = timestamp or _dt.datetime.now(_dt.timezone.utc).strftime(
        "%Y-%m-%dT%H:%M:%S"
    )
    spec = (
        result.concrete_spec.format(deps=False)
        if result.concrete_spec is not None
        else ""
    )
    base = [
        ts,
        _VERSION,
        case.test.name,
        case.system.name,
        case.partition.name,
        case.environ_name,
        spec,
        str(case.test.num_tasks),
    ]
    status = "pass" if result.passed else f"fail:{result.failing_stage}"
    lines = []
    if result.perfvars:
        for var, (value, unit) in sorted(result.perfvars.items()):
            lines.append("|".join(base + [var, f"{value:.6g}", unit, status]))
    else:
        lines.append("|".join(base + ["-", "nan", "-", status]))
    return lines


class PerflogHandler:
    """Appends case results to per-(system, partition, test) log files."""

    def __init__(self, prefix: str):
        self.prefix = prefix
        self.written: List[str] = []

    def path_for(self, result: CaseResult) -> str:
        case = result.case
        return os.path.join(
            self.prefix,
            case.system.name,
            case.partition.name,
            f"{case.test.name}.log",
        )

    def emit(self, result: CaseResult) -> str:
        path = self.path_for(result)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        new_file = not os.path.exists(path)
        with open(path, "a", encoding="utf-8") as fh:
            if new_file:
                fh.write("|".join(PERFLOG_FIELDS) + "\n")
            for line in format_record(result):
                fh.write(line + "\n")
        if path not in self.written:
            self.written.append(path)
        return path
