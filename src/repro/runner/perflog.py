"""Perflog output: the performance record the whole analysis chain reads.

"Benchmark output data is appended to a performance log (also known as a
'perflog') associated with the benchmark on each system, and these logs
can be collated directly and post-processed" (Section 2.4).

Format: pipe-separated, one line per Figure of Merit per run, append-only,
one file per (system, partition, test) under::

    <prefix>/<system>/<partition>/<testname>.log

The format is plain enough to grep yet structured enough for
:mod:`repro.postprocess.perflog_reader` to load losslessly.

Writing is **batched**: :meth:`PerflogHandler.emit` buffers formatted
records per target file and :meth:`PerflogHandler.flush` coalesces each
file's pending lines into a single append -- one ``open``/``write`` pair
per file per flush instead of one per record, which matters when an async
campaign emits hundreds of FOM lines.  ``batch_size=1`` (the default for
direct construction) preserves the historical write-through behaviour;
the executor uses a larger batch and flushes at end of run.  Buffered
lines are flushed in emission order, so the on-disk byte sequence is
identical to write-through mode.

The handler optionally carries a **manifest hook**: pass an ingest
``store`` (:class:`repro.postprocess.store.PerflogStore`) and every
flushed append is mirrored into the store's content/offset manifest via
``store.note_append`` -- the analytics side then re-ingests a growing
campaign without re-parsing a single already-written byte (the write
path keeps the read cache warm).
"""

from __future__ import annotations

import datetime as _dt
import os
import zlib
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.runner.pipeline import CaseResult

__all__ = [
    "PerflogHandler",
    "PERFLOG_FIELDS",
    "format_record",
    "sums_path",
    "verify_sums",
]

#: column names, in file order
PERFLOG_FIELDS = (
    "timestamp",
    "version",
    "test",
    "system",
    "partition",
    "environ",
    "spec",
    "num_tasks",
    "perf_var",
    "perf_value",
    "perf_unit",
    "result",
)

_VERSION = "repro-1.0.0"


def format_record(result: CaseResult, timestamp: Optional[str] = None) -> List[str]:
    """Perflog lines for one finished case (one per FOM; one if failed)."""
    case = result.case
    ts = timestamp or _dt.datetime.now(_dt.timezone.utc).strftime(
        "%Y-%m-%dT%H:%M:%S"
    )
    spec = (
        result.concrete_spec.format(deps=False)
        if result.concrete_spec is not None
        else ""
    )
    base = [
        ts,
        _VERSION,
        case.test.name,
        case.system.name,
        case.partition.name,
        case.environ_name,
        spec,
        str(case.test.num_tasks),
    ]
    status = "pass" if result.passed else f"fail:{result.failing_stage}"
    lines = []
    if result.perfvars:
        for var, (value, unit) in sorted(result.perfvars.items()):
            lines.append("|".join(base + [var, f"{value:.6g}", unit, status]))
    else:
        lines.append("|".join(base + ["-", "nan", "-", status]))
    return lines


def sums_path(path: str) -> str:
    """The checksum sidecar for perflog *path* (invisible to analytics:
    ``read_perflogs`` discovers ``*.log`` only)."""
    return path + ".sums"


def _sums_entries(start: int, data: bytes) -> Tuple[List[str], int]:
    """Per-line checksum entries for a chunk appended at byte *start*.

    Each entry is ``"<start> <length> <crc32>"`` over one newline-
    terminated line of the chunk.  Entries are self-contained ranges, so
    two runs that batch the same lines differently (a degraded run
    retries merge batches) still produce identical sidecars.
    """
    entries: List[str] = []
    offset = start
    for line in data.split(b"\n")[:-1]:
        chunk = line + b"\n"
        crc = zlib.crc32(chunk) & 0xFFFFFFFF
        entries.append(f"{offset} {len(chunk)} {crc:08x}")
        offset += len(chunk)
    return entries, offset


def verify_sums(path: str) -> Dict[str, object]:
    """Check *path* against its ``.sums`` sidecar.

    Returns ``{"covered": n, "valid": n, "invalid": [entry_index...],
    "uncovered_bytes": n}``.  A file shorter than an entry's range
    counts that entry invalid (torn tail); bytes past the last entry are
    *uncovered* (rows appended without a sidecar -- legal, unverifiable).
    A missing sidecar covers nothing.
    """
    report: Dict[str, object] = {
        "covered": 0, "valid": 0, "invalid": [], "uncovered_bytes": 0,
    }
    side = sums_path(path)
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError:
        data = b""
    if not os.path.exists(side):
        report["uncovered_bytes"] = len(data)
        return report
    end = 0
    invalid: List[int] = []
    with open(side, "r", encoding="utf-8") as fh:
        for i, raw in enumerate(fh):
            parts = raw.split()
            if len(parts) != 3:
                invalid.append(i)
                continue
            try:
                start, length = int(parts[0]), int(parts[1])
                want = int(parts[2], 16)
            except ValueError:
                invalid.append(i)
                continue
            report["covered"] = int(report["covered"]) + 1
            chunk = data[start : start + length]
            if (len(chunk) == length
                    and (zlib.crc32(chunk) & 0xFFFFFFFF) == want):
                report["valid"] = int(report["valid"]) + 1
            else:
                invalid.append(i)
            end = max(end, start + length)
    report["invalid"] = invalid
    report["uncovered_bytes"] = max(0, len(data) - end)
    return report


class PerflogHandler:
    """Appends case results to per-(system, partition, test) log files.

    Parameters
    ----------
    prefix:
        Root directory of the perflog tree.
    batch_size:
        Number of buffered lines that triggers an automatic flush.  ``1``
        writes through immediately (the historical behaviour); larger
        values coalesce appends.  Call :meth:`flush` (or use the handler
        as a context manager) to drain the buffer explicitly.
    timestamp:
        Optional fixed timestamp string, or a zero-argument callable
        returning one, stamped on every record.  Pinning the timestamp
        makes perflogs *byte-reproducible* across runs and execution
        policies -- what the serial-vs-async equivalence tests rely on.
        Default: wall-clock UTC at emit time.
    store:
        Optional perflog ingest store
        (:class:`repro.postprocess.store.PerflogStore`); every flushed
        append is mirrored into its manifest so later analytics reads
        start warm.  Duck-typed: anything with
        ``note_append(path, lines, wrote_header)`` works.
    faults:
        Optional fault plan (:class:`repro.faults.FaultPlan`); ``perflog``
        faults fire here, *before* a file's append, to exercise the
        durability path.  Duck-typed: anything with ``fire(kind, target)``.
    """

    def __init__(
        self,
        prefix: str,
        batch_size: int = 1,
        timestamp: Optional[Union[str, Callable[[], str]]] = None,
        store: Optional[object] = None,
        faults: Optional[object] = None,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.prefix = prefix
        self.batch_size = batch_size
        self.timestamp = timestamp
        self.store = store
        self.faults = faults
        self.written: List[str] = []
        #: set twin of ``written`` -- membership checks on the flush hot
        #: path are O(1) instead of scanning the list per flushed file
        self._written_set: set = set()
        #: directories already created (skip repeated makedirs syscalls)
        self._made_dirs: set = set()
        #: path -> pending lines (insertion-ordered: flush order is
        #: deterministic and equals emission order per file)
        self._buffer: Dict[str, List[str]] = {}
        self._pending = 0
        #: (path, lines) of the most recent emit/emit_replay -- how the
        #: result store captures the exact bytes a case contributed
        #: without re-formatting (re-formatting would consume a callable
        #: timestamp twice and could stamp a different value)
        self.last_emit: Optional[tuple] = None
        #: optional FaultyIO shim the raw append is routed through
        self._io: Optional[object] = None
        #: called (path, exc) when the ingest-store mirror hook fails;
        #: the store is demoted to None first, so the perflog itself is
        #: never re-appended for a store-side problem
        self.on_store_error: Optional[Callable[[str, Exception], None]] = None
        #: append subscribers beyond the ingest store -- duck-typed
        #: objects with ``note_append(path, lines, wrote_header=...)``.
        #: Same contract as the store hook, but best-effort: a sink that
        #: raises is dropped (the rows are already durable) instead of
        #: being demoted through ``on_store_error``.
        self._sinks: List[object] = []
        #: sidecars are best-effort: once one fails, stop writing it
        self._sums_disabled: set = set()
        #: ``.sums`` sidecars are opt-in (armed with the fault shim or
        #: :meth:`enable_sums`): a quiet campaign's perflog tree stays
        #: byte-for-byte what it always was
        self.sums_enabled = False

    def attach_io(self, io: object) -> None:
        """Route perflog appends through a :class:`FaultyIO` shim."""
        self._io = io
        self.sums_enabled = True
        if self.store is not None and hasattr(self.store, "attach_io"):
            # the ingest-cache mirror persists manifests on every append;
            # those writes are artifacts too and must see the same faults
            self.store.attach_io(io)

    def enable_sums(self) -> None:
        """Write ``.sums`` checksum sidecars alongside each perflog."""
        self.sums_enabled = True

    def add_sink(self, sink: object) -> None:
        """Subscribe *sink* to appends: ``note_append(path, lines, wrote_header)``.

        Sinks hear every durable append in flush order -- the same
        feed the ingest store gets -- so live observers see rows the
        moment they hit disk.  Idempotent per sink object.
        """
        if sink not in self._sinks:
            self._sinks.append(sink)

    def path_for(self, result: CaseResult) -> str:
        case = result.case
        return os.path.join(
            self.prefix,
            case.system.name,
            case.partition.name,
            f"{case.test.name}.log",
        )

    def _stamp(self) -> Optional[str]:
        if callable(self.timestamp):
            return self.timestamp()
        return self.timestamp

    def emit(self, result: CaseResult) -> str:
        """Buffer one case's record(s); auto-flush at ``batch_size``."""
        path = self.path_for(result)
        lines = format_record(result, timestamp=self._stamp())
        self.last_emit = (path, list(lines))
        self._buffer.setdefault(path, []).extend(lines)
        self._pending += len(lines)
        if self._pending >= self.batch_size:
            self.flush()
        return path

    def relpath_for(self, path: str) -> str:
        """A portable (``/``-separated) store key for a perflog path."""
        rel = os.path.relpath(path, self.prefix)
        return rel.replace(os.sep, "/")

    def emit_replay(self, relpath: str, lines: List[str]) -> str:
        """Buffer pre-formatted rows a result store replayed for one case.

        The rows were captured verbatim from the cold run's
        :meth:`emit`, so a warm campaign's perflog byte stream is
        identical to the cold one -- same lines, same per-file order --
        and flows through the same flush path (fault sites, manifest
        ``note_append`` hook, batch coalescing included).
        """
        path = os.path.join(self.prefix, *relpath.split("/"))
        self.last_emit = (path, list(lines))
        self._buffer.setdefault(path, []).extend(lines)
        self._pending += len(lines)
        if self._pending >= self.batch_size:
            self.flush()
        return path

    def flush(self) -> None:
        """Coalesce every file's pending lines into one append each.

        Files are drained *one at a time*, each removed from the buffer
        only after its append succeeded.  A write error (injected or
        real) therefore leaves exactly the unwritten files buffered --
        already-flushed files are never re-appended (no duplicate rows),
        and a later :meth:`flush` retries just the remainder.  Each
        file's batch goes down in a single newline-terminated ``write``
        call, so readers (and the campaign journal, which always lives
        in a different file) never observe a partial line.
        """
        while self._buffer:
            path = next(iter(self._buffer))
            lines = self._buffer[path]
            # fault site sits *before* the append: an injected perflog
            # error is indistinguishable from a failed write -- the
            # file's lines stay buffered for the retry
            if self.faults is not None:
                self.faults.fire("perflog", path)
            parent = os.path.dirname(path)
            if parent not in self._made_dirs:
                os.makedirs(parent, exist_ok=True)
                self._made_dirs.add(parent)
            seen = path in self._written_set
            data = "\n".join(lines) + "\n"
            if self._io is not None:
                # fault-injectable path: the shim appends atomically-or-
                # fails, so a failed file keeps its lines buffered and a
                # retry lays down byte-identical content
                pre_size = (0 if not os.path.exists(path)
                            else os.path.getsize(path))
                new_file = False if seen else pre_size == 0
                if new_file:
                    data = "|".join(PERFLOG_FIELDS) + "\n" + data
                payload = data.encode("utf-8")
                self._io.append(path, payload, "perflog", sync=False)
            else:
                # raw os.open/os.write: file creation dominates large
                # campaigns' flush cost, and the io.open text layer
                # roughly doubles it.  fstat on the open fd doubles as
                # the new-file check (header needed iff the file is
                # empty), and header + batch still go down in ONE write
                # -- readers never observe a partial line
                fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND,
                             0o644)
                try:
                    pre_size = os.fstat(fd).st_size
                    new_file = False if seen else pre_size == 0
                    if new_file:
                        data = "|".join(PERFLOG_FIELDS) + "\n" + data
                    payload = data.encode("utf-8")
                    os.write(fd, payload)
                finally:
                    os.close(fd)
            self._write_sums(path, pre_size, payload)
            if self.store is not None:
                try:
                    self.store.note_append(path, lines,
                                           wrote_header=new_file)
                except Exception as exc:
                    # the rows ARE durable; only the analytics mirror
                    # failed.  Demote the store before surfacing, so a
                    # flush retry cannot re-append the same rows.
                    self.store = None
                    if self.on_store_error is not None:
                        self.on_store_error(path, exc)
            for sink in list(self._sinks):
                try:
                    sink.note_append(path, lines, wrote_header=new_file)
                except Exception:
                    # observers never fail (or re-run) a flush: the rows
                    # are durable, so a broken sink is simply dropped.
                    self._sinks.remove(sink)
            if not seen:
                self.written.append(path)
                self._written_set.add(path)
            del self._buffer[path]
            self._pending -= len(lines)
        self._pending = 0

    def _write_sums(self, path: str, pre_size: int, payload: bytes) -> None:
        """Mirror a successful append into the ``.sums`` sidecar.

        Plain os calls on purpose -- never routed through the fault
        shim, never allowed to fail a flush: the sidecar is a read-time
        verification aid, and a run that cannot write it degrades to
        exactly the pre-sidecar verification story.
        """
        if not self.sums_enabled or path in self._sums_disabled:
            return
        entries, _ = _sums_entries(pre_size, payload)
        if not entries:
            return
        try:
            fd = os.open(sums_path(path),
                         os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
            try:
                os.write(fd, ("\n".join(entries) + "\n").encode("utf-8"))
            finally:
                os.close(fd)
        except OSError:
            self._sums_disabled.add(path)

    def close(self) -> None:
        self.flush()

    def __enter__(self) -> "PerflogHandler":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
