"""Sanity and performance extraction helpers (ReFrame's ``sn`` module).

The paper (Section 2.4): "When defining a benchmark in ReFrame, it can
automatically collect a dictionary of Figures of Merit by parsing the
output with user-provided regular expressions.  A similar mechanism is
used to check that the benchmark ran correctly."

These helpers implement that mechanism: extraction by regex with typed
conversion, and assertions that raise :class:`SanityError` with messages
pointing at what the output actually contained.
"""

from __future__ import annotations

import re
from typing import Any, Callable, List, Optional, Union

__all__ = [
    "SanityError",
    "extractall",
    "extractsingle",
    "count",
    "assert_found",
    "assert_not_found",
    "assert_eq",
    "assert_bounded",
    "assert_reference",
    "avg",
]


class SanityError(AssertionError):
    """A failed sanity check: the benchmark did not run correctly."""


def extractall(
    pattern: str,
    text: str,
    group: Union[int, str] = 0,
    conv: Callable[[str], Any] = str,
) -> List[Any]:
    """All regex matches of ``group``, converted by ``conv``."""
    out = []
    for match in re.finditer(pattern, text, re.MULTILINE):
        raw = match.group(group)
        try:
            out.append(conv(raw))
        except (TypeError, ValueError) as exc:
            raise SanityError(
                f"cannot convert match {raw!r} of {pattern!r}: {exc}"
            ) from exc
    return out


def extractsingle(
    pattern: str,
    text: str,
    group: Union[int, str] = 0,
    conv: Callable[[str], Any] = str,
    item: int = 0,
) -> Any:
    """The ``item``-th match of the pattern; raises if absent."""
    matches = extractall(pattern, text, group, conv)
    if not matches:
        snippet = text[:200].replace("\n", "\\n")
        raise SanityError(
            f"pattern {pattern!r} not found in output (starts: {snippet!r})"
        )
    try:
        return matches[item]
    except IndexError:
        raise SanityError(
            f"pattern {pattern!r} matched {len(matches)} times, "
            f"item {item} requested"
        ) from None


def count(pattern: str, text: str) -> int:
    return len(extractall(pattern, text))


def assert_found(pattern: str, text: str, msg: str = "") -> bool:
    if re.search(pattern, text, re.MULTILINE) is None:
        raise SanityError(msg or f"expected pattern {pattern!r} in output")
    return True


def assert_not_found(pattern: str, text: str, msg: str = "") -> bool:
    if re.search(pattern, text, re.MULTILINE) is not None:
        raise SanityError(msg or f"forbidden pattern {pattern!r} in output")
    return True


def assert_eq(actual: Any, expected: Any, msg: str = "") -> bool:
    if actual != expected:
        raise SanityError(msg or f"expected {expected!r}, got {actual!r}")
    return True


def assert_bounded(
    value: float,
    lo: Optional[float] = None,
    hi: Optional[float] = None,
    msg: str = "",
) -> bool:
    if lo is not None and value < lo:
        raise SanityError(msg or f"value {value} below lower bound {lo}")
    if hi is not None and value > hi:
        raise SanityError(msg or f"value {value} above upper bound {hi}")
    return True


def assert_reference(
    value: float,
    reference: float,
    lower_frac: float = -0.05,
    upper_frac: float = 0.05,
) -> bool:
    """ReFrame-style reference check: value within (1+lower, 1+upper)*ref.

    Works for references of either sign: multiplying a *negative*
    reference by ``(1 + frac)`` swaps the endpoints (e.g. ref=-100 with
    a +/-5% window gives raw bounds [-95, -105]), so the bounds are
    ordered before checking -- otherwise every correct value would fail.
    A zero reference makes a relative window degenerate (it admits only
    exactly 0.0) and raises a clear error instead.
    """
    if reference == 0:
        raise SanityError(
            "assert_reference: reference value is 0, so a relative "
            "window is degenerate; use assert_bounded with absolute "
            "bounds instead"
        )
    lo = reference * (1 + lower_frac)
    hi = reference * (1 + upper_frac)
    if lo > hi:  # negative reference: the multiplication inverted them
        lo, hi = hi, lo
    return assert_bounded(
        value, lo, hi,
        msg=f"value {value:.4g} outside reference window [{lo:.4g}, {hi:.4g}]",
    )


def avg(values: List[float]) -> float:
    if not values:
        raise SanityError("average of no values")
    return sum(values) / len(values)
