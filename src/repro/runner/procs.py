"""Process-pool case execution: the ``--policy=procs`` backend.

The async policy's worker *threads* contend on the GIL: each case drives
a pure-Python discrete-event simulation, so threads buy overlap only for
the (rare) blocking I/O.  This module runs the CPU-bound part -- the
whole :func:`~repro.runner.pipeline.run_case` pipeline -- in worker
*processes* instead, while everything that touches shared campaign state
or disk stays in the parent:

* **parent side** -- dependency ordering, resume/quarantine prechecks,
  speculation decisions and duplicates, the circuit breaker, perflog
  emission, journal appends, trace flushing, metrics.  All of it runs in
  the executor's deterministic consumption order, exactly as for the
  serial and async policies -- which is why the procs policy's perflogs,
  journal and trace are *byte-identical* to serial;
* **worker side** -- one :class:`~repro.pkgmgr.installer.Installer`, one
  concretization cache and one :class:`~repro.faults.FaultPlan` replica
  per process (built by the pool initializer), a fresh
  :class:`~repro.runner.watchdog.Watchdog` and
  :class:`~repro.obs.trace.SpanRecorder` per case.  Everything a case
  produces -- the result, its span recorder, its watchdog accounting and
  its fault-site counters -- ships back with the return value.

Determinism argument: every injection-site key is ``(kind, target)``
and all pipeline/scheduler targets equal the case display name, which is
unique per case -- so a case's fault schedule depends only on its own
visit history, which is wholly contained in its worker task.  The parent
absorbs each returned delta into the campaign-wide plan/watchdog (merges
are commutative across distinct targets, so arrival order is
irrelevant), which is what lets a *speculative duplicate* -- always run
in the parent via ``duplicate_runner`` -- observe exactly the attempt
counters a serial campaign's duplicate would.

Three campaign features are inherently cross-process-global and are
rejected up front rather than silently diverging: node-health draining
(``--drain-after``: scores accumulate across cases on shared node
names), ``sicknode`` fault clauses (keyed by node name, not case), and
Spack-managed tests (dependency reuse makes ``build_seconds`` and
cache-hit provenance a function of the installer database -- per-worker
databases would make those fields depend on which worker happened to
run which case, i.e. nondeterministic run to run).
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Dict, List, Optional, Sequence

from repro.faults import FaultClause, FaultPlan
from repro.obs.trace import SpanRecorder
from repro.pkgmgr.installer import Installer
from repro.pkgmgr.memo import ConcretizationCache
from repro.runner.benchmark import SpackTest
from repro.runner.pipeline import CaseResult, TestCase, run_case
from repro.runner.resilience import RetryPolicy
from repro.runner.watchdog import Watchdog, WatchdogSpec

__all__ = ["ProcsPool", "procs_unsupported"]

#: per-process worker state, populated by :func:`_init_worker`
_STATE: Dict[str, Any] = {}


def _init_worker(
    fault_clauses: Optional[List[FaultClause]],
    fault_seed: int,
    watchdog_spec: Optional[WatchdogSpec],
    retry: Optional[RetryPolicy],
    trace: bool,
    trace_wall: bool,
) -> None:
    """Build one worker process's campaign replica (runs in the child)."""
    _STATE["faults"] = (
        FaultPlan(fault_clauses, seed=fault_seed)
        if fault_clauses is not None else None
    )
    _STATE["watchdog_spec"] = watchdog_spec
    _STATE["retry"] = retry
    _STATE["trace"] = trace
    _STATE["trace_wall"] = trace_wall
    # Spack campaigns are rejected under procs (see procs_unsupported),
    # but run_case would otherwise build a fresh Installer per call --
    # keep one per worker so the non-Spack hot loop never constructs one
    _STATE["installer"] = Installer()
    _STATE["cache"] = ConcretizationCache()


def _run_case_task(case: TestCase) -> CaseResult:
    """One case, end to end, inside a worker process."""
    faults: Optional[FaultPlan] = _STATE["faults"]
    spec: Optional[WatchdogSpec] = _STATE["watchdog_spec"]
    watchdog = Watchdog(spec) if spec is not None else None
    recorder = (
        SpanRecorder(case.display_name, wall=_STATE["trace_wall"])
        if _STATE["trace"] else None
    )
    result = run_case(
        case,
        installer=_STATE["installer"],
        concretizer_cache=_STATE["cache"],
        retry=_STATE["retry"],
        faults=faults,
        clock=faults.clock if faults is not None else None,
        watchdog=watchdog,
        trace=recorder,
    )
    # ship the per-case campaign-state deltas home with the result; the
    # executor absorbs them so parent-side state stays authoritative
    if faults is not None:
        result._fault_delta = faults.delta_for_target(case.display_name)
    if watchdog is not None:
        result._watchdog_delta = {
            "hung_jobs": list(watchdog.hung_jobs),
            "hung_builds": list(watchdog.hung_builds),
            "heartbeats": list(watchdog.heartbeats),
        }
    return result


def procs_unsupported(
    faults: Optional[FaultPlan] = None,
    health: Optional[object] = None,
    cases: Sequence[TestCase] = (),
) -> Optional[str]:
    """Why this campaign cannot run under ``--policy=procs`` (or None).

    Returns a human-readable reason for the features whose state is
    cross-case-global -- replicating them per process would silently
    diverge from serial (or worse, vary run to run with worker
    assignment), which is worse than refusing.
    """
    if health is not None:
        return (
            "node-health draining (--drain-after / health=) accumulates "
            "state across cases on shared node names and cannot be "
            "replicated into worker processes; use --policy=async"
        )
    if faults is not None and any(
        clause.kind == "sicknode" for clause in faults.clauses
    ):
        return (
            "sicknode fault clauses are keyed by node name (global "
            "across cases) and would diverge across worker processes; "
            "use --policy=async"
        )
    for case in cases:
        if isinstance(case.test, SpackTest):
            return (
                f"{case.display_name} is Spack-managed: dependency-reuse "
                f"provenance (build_seconds, cache hits) follows the "
                f"campaign-wide installer database, which per-worker "
                f"replicas would turn into a function of worker "
                f"assignment; use --policy=async"
            )
    return None


class ProcsPool:
    """A campaign-scoped pool of worker processes running cases.

    Workers are spawned eagerly at construction (before the executor's
    wavefront threads exist -- no fork-under-threads hazards) and each
    is initialized with its own installer/concretizer-cache/fault-plan
    replica.  :meth:`run` is thread-safe: the async wavefront machinery
    calls it from ``workers`` parent threads, each blocking on its own
    task while the simulation happens in a child process.
    """

    def __init__(
        self,
        workers: int,
        faults: Optional[FaultPlan] = None,
        watchdog_spec: Optional[WatchdogSpec] = None,
        retry: Optional[RetryPolicy] = None,
        trace: bool = False,
        trace_wall: bool = False,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        reason = procs_unsupported(faults=faults)
        if reason is not None:
            raise ValueError(f"--policy=procs: {reason}")
        self.workers = workers
        self._pool = multiprocessing.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(
                list(faults.clauses) if faults is not None else None,
                faults.seed if faults is not None else 0,
                watchdog_spec,
                retry,
                trace,
                trace_wall,
            ),
        )

    def run(self, case: TestCase) -> CaseResult:
        """Run one case in a worker process; blocks until it returns."""
        return self._pool.apply_async(_run_case_task, (case,)).get()

    def close(self) -> None:
        self._pool.close()
        self._pool.join()

    def __enter__(self) -> "ProcsPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
