"""ReFrame-like regression-test framework for benchmarks.

The paper (Section 2.3): "ReFrame ... separates the description of the
benchmarks from the system-specific details for compiling and running it.
A benchmark is defined by implementing a Python class that specifies how
to build the software, which executable to run, the inputs and the
parallel execution layout.  System-specific details are recorded in a
configuration file."

This subpackage reimplements that architecture:

* :mod:`repro.runner.fields` -- typed ``variable``/``parameter`` descriptors,
* :mod:`repro.runner.benchmark` -- :class:`RegressionTest` / :class:`SpackTest`,
* :mod:`repro.runner.sanity` -- output parsing and assertion helpers,
* :mod:`repro.runner.config` -- site configuration (systems, partitions,
  environments) generated from :mod:`repro.systems`,
* :mod:`repro.runner.launcher` -- mpirun/srun/aprun command rendering,
* :mod:`repro.runner.pipeline` -- the setup/build/run/sanity/performance
  stage machine (build *always* runs: Principle 3),
* :mod:`repro.runner.perflog` -- one (batched) perflog per (system,
  partition, test),
* :mod:`repro.runner.parallel` -- the async execution policy: dependency
  wavefronts on a worker pool, deterministic serial-identical output,
* :mod:`repro.runner.resilience` -- retry with deterministic backoff,
  circuit breaker, quarantine, and the crash-safe campaign journal
  behind ``--journal``/``--resume`` (DESIGN.md section 6),
* :mod:`repro.runner.executor` -- run a set of test cases (serial or
  async policy), collect a report,
* :mod:`repro.runner.cli` -- the ``repro-bench`` front-end mirroring the
  paper's ``reframe -c ... -r`` invocations.
"""

from repro.runner.fields import parameter, variable
from repro.runner.benchmark import (
    BenchmarkError,
    RegressionTest,
    SpackTest,
    TestRegistry,
    rfm_test,
)
from repro.runner.config import (
    EnvironConfig,
    PartitionConfig,
    SiteConfig,
    SystemConfig,
    default_site_config,
)
from repro.runner.launcher import Launcher, launcher_for
from repro.runner.pipeline import PipelineError, TestCase, run_case
from repro.runner.parallel import dependency_waves, run_waves
from repro.runner.resilience import (
    CampaignAborted,
    CampaignJournal,
    RetryPolicy,
    case_fingerprint,
    is_transient,
)
from repro.runner.executor import Executor, RunReport, POLICIES
from repro.runner.perflog import PerflogHandler

__all__ = [
    "parameter",
    "variable",
    "BenchmarkError",
    "RegressionTest",
    "SpackTest",
    "TestRegistry",
    "rfm_test",
    "EnvironConfig",
    "PartitionConfig",
    "SiteConfig",
    "SystemConfig",
    "default_site_config",
    "Launcher",
    "launcher_for",
    "PipelineError",
    "TestCase",
    "run_case",
    "dependency_waves",
    "run_waves",
    "CampaignAborted",
    "CampaignJournal",
    "RetryPolicy",
    "case_fingerprint",
    "is_transient",
    "Executor",
    "RunReport",
    "POLICIES",
    "PerflogHandler",
]
