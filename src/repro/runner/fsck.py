"""``repro-fsck``: verify and heal a campaign's on-disk artifacts.

Every artifact the runner writes is self-verifying (DESIGN.md section
6.6): journal and trace records carry a ``cs`` CRC32 field, perflogs
grow a ``.sums`` checksum sidecar when chaos injection is armed, and
result-store objects seal their entries the same way.  This tool is the
offline complement: it walks an artifact tree, re-verifies every
checksum, and -- with ``--repair`` -- excises exactly the damaged bytes
while preserving every intact record::

    repro-fsck perflogs/ campaign.jsonl trace.jsonl .result-store/
    repro-fsck --repair --provenance perflogs/provenance.json

What each artifact class gets:

* **JSONL (journal / trace / metrics / live-status)** -- every line is
  decoded and checksum-verified; repair rewrites the file atomically
  with only the intact records (re-sealed), dropping torn tails and
  quarantining mid-file bit rot.  ``*.live.jsonl`` streams are reported
  under their own ``live-status`` kind.
* **Perflogs** -- each ``.sums`` range is re-checksummed; repair
  rebuilds the log from the valid ranges plus any complete uncovered
  tail lines, then regenerates the sidecar.  Without a sidecar only a
  torn (unterminated) tail is healable.
* **Result store** -- every ``objects/*.json`` entry must verify;
  repair unlinks damaged objects (a store miss, never wrong data),
  rebuilds ``pack.jsonl`` from the surviving canonical objects, and
  filters ``index.json`` down to keys that still exist.

Exit status: 0 when everything verifies (or every problem was healed),
1 when damage was found (check mode) or remains (repair mode), 2 on
usage errors.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import zlib
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.jsonl import scan_jsonl, write_jsonl_atomic
from repro.runner.perflog import sums_path, verify_sums
from repro.runner.results import _verify_entry

__all__ = [
    "main", "fsck_jsonl", "fsck_live_status", "fsck_perflog", "fsck_store",
]


def _report(kind: str, path: str, checked: int, invalid: int,
            healed: int = 0) -> Dict[str, Any]:
    return {
        "kind": kind,
        "path": path,
        "checked": checked,
        "invalid": invalid,
        "healed": healed,
    }


# -- JSONL artifacts (journal / trace / metrics) ---------------------------------------
def fsck_jsonl(path: str, repair: bool = False) -> Dict[str, Any]:
    """Verify (and optionally heal) one sealed-JSONL artifact."""
    records, stats = scan_jsonl(path)
    invalid = stats["bad_tail"] + stats["bad_mid"]
    healed = 0
    if invalid and repair:
        # survivors only, re-sealed, swapped in atomically: the dropped
        # lines were unreadable regardless of what this tool does
        write_jsonl_atomic(path, records)
        healed = invalid
    return _report("jsonl", path, stats["ok"] + invalid, invalid, healed)


def fsck_live_status(path: str, repair: bool = False) -> Dict[str, Any]:
    """Verify/heal a ``repro-live`` status artifact.

    Mechanically identical to :func:`fsck_jsonl` (the live plane emits
    the same sealed-JSONL lines as journals and traces), but reported
    under its own kind so an auditor can see at a glance that the
    dashboard stream -- not the ledger -- is what rotted.
    """
    report = fsck_jsonl(path, repair=repair)
    report["kind"] = "live-status"
    return report


# -- perflogs + .sums sidecars ---------------------------------------------------------
def _read_sums(path: str) -> List[Tuple[int, int, int]]:
    """Parse a ``.sums`` sidecar into ``(start, length, crc)`` tuples."""
    ranges: List[Tuple[int, int, int]] = []
    try:
        with open(path, "r", encoding="utf-8") as fh:
            for raw in fh:
                parts = raw.split()
                if len(parts) != 3:
                    continue
                try:
                    ranges.append(
                        (int(parts[0]), int(parts[1]), int(parts[2], 16))
                    )
                except ValueError:
                    continue
    except OSError:
        pass
    return ranges


def _rebuild_sums(path: str, data: bytes) -> None:
    lines = []
    offset = 0
    for line in data.split(b"\n")[:-1]:
        chunk = line + b"\n"
        crc = zlib.crc32(chunk) & 0xFFFFFFFF
        lines.append(f"{offset} {len(chunk)} {crc:08x}\n")
        offset += len(chunk)
    tmp = sums_path(path) + ".tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write("".join(lines))
    os.replace(tmp, sums_path(path))


def fsck_perflog(path: str, repair: bool = False) -> Dict[str, Any]:
    """Verify one perflog against its sidecar; heal damaged ranges."""
    report = verify_sums(path)
    invalid = len(report["invalid"])
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except OSError:
        data = b""
    # a torn (unterminated) tail is damage even without a sidecar
    torn_tail = bool(data) and not data.endswith(b"\n")
    checked = int(report["covered"]) or data.count(b"\n")
    problems = invalid + (1 if torn_tail else 0)
    healed = 0
    if problems and repair:
        ranges = _read_sums(sums_path(path))
        if ranges:
            keep = bytearray()
            end = 0
            for start, length, want in ranges:
                chunk = data[start:start + length]
                if (len(chunk) == length
                        and (zlib.crc32(chunk) & 0xFFFFFFFF) == want):
                    keep.extend(chunk)
                end = max(end, start + length)
            # rows appended without a sidecar are unverifiable but
            # keepable when they are complete lines
            tail = data[end:]
            keep.extend(tail[: tail.rfind(b"\n") + 1])
            healed_data = bytes(keep)
        else:
            healed_data = data[: data.rfind(b"\n") + 1]
        tmp = path + ".tmp"
        with open(tmp, "wb") as fh:
            fh.write(healed_data)
        os.replace(tmp, path)
        _rebuild_sums(path, healed_data)
        healed = problems
    return _report("perflog", path, checked, problems, healed)


# -- result store ----------------------------------------------------------------------
def fsck_store(root: str, repair: bool = False) -> List[Dict[str, Any]]:
    """Verify a :class:`CaseResultStore` tree; heal objects/pack/index."""
    objects_dir = os.path.join(root, "objects")
    pack_file = os.path.join(root, "pack.jsonl")
    index_file = os.path.join(root, "index.json")
    survivors: Dict[str, Dict[str, Any]] = {}  # key -> sealed doc
    checked = bad = healed = 0
    names = []
    if os.path.isdir(objects_dir):
        names = sorted(
            n for n in os.listdir(objects_dir) if n.endswith(".json")
        )
    for name in names:
        full = os.path.join(objects_dir, name)
        checked += 1
        try:
            with open(full, encoding="utf-8") as fh:
                sealed = json.load(fh)
        except (OSError, ValueError):
            sealed = None
        if sealed is None or _verify_entry(sealed) is None:
            bad += 1
            if repair:
                # a damaged object becomes a cache miss, never wrong data
                try:
                    os.unlink(full)
                except OSError:
                    pass
                healed += 1
            continue
        survivors[name[: -len(".json")]] = sealed
    reports = [_report("store-objects", objects_dir, checked, bad, healed)]

    # pack: a sequential replica of the objects; every line must carry a
    # verifying sealed entry whose object survived
    pack_checked = pack_bad = pack_healed = 0
    if os.path.exists(pack_file):
        try:
            with open(pack_file, encoding="utf-8") as fh:
                pack_lines = fh.read().splitlines()
        except OSError:
            pack_lines = []
        for line in pack_lines:
            pack_checked += 1
            try:
                doc = json.loads(line)
                key = str(doc["key"])
                ok = (_verify_entry(doc["entry"]) is not None
                      and key in survivors)
            except (ValueError, KeyError, TypeError):
                ok = False
            if not ok:
                pack_bad += 1
        if pack_bad and repair:
            body = "".join(
                json.dumps({"key": key, "entry": sealed},
                           separators=(",", ":")) + "\n"
                for key, sealed in survivors.items()
            )
            tmp = pack_file + ".tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(body)
            os.replace(tmp, pack_file)
            pack_healed = pack_bad
    reports.append(
        _report("store-pack", pack_file, pack_checked, pack_bad,
                pack_healed)
    )

    # index: advisory identity map; entries must point at live objects
    idx_checked = idx_bad = idx_healed = 0
    if os.path.exists(index_file):
        try:
            with open(index_file, encoding="utf-8") as fh:
                index = json.load(fh)
            if not isinstance(index, dict):
                raise ValueError("index is not an object")
        except (OSError, ValueError):
            index = None
        if index is None:
            idx_checked = idx_bad = 1
            if repair:
                # rebuild from the surviving entries' own fingerprints
                index = {
                    str(sealed["fingerprint"]): key
                    for key, sealed in survivors.items()
                    if sealed.get("fingerprint")
                }
                idx_healed = 1
        else:
            idx_checked = len(index)
            live = {
                str(k): str(v) for k, v in index.items()
                if str(v) in survivors
            }
            idx_bad = len(index) - len(live)
            if idx_bad and repair:
                index = live
                idx_healed = idx_bad
        if repair and idx_healed:
            tmp = index_file + ".tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(index, fh, sort_keys=True)
            os.replace(tmp, index_file)
    reports.append(
        _report("store-index", index_file, idx_checked, idx_bad,
                idx_healed)
    )
    return reports


# -- target discovery ------------------------------------------------------------------
def _is_store(path: str) -> bool:
    return (
        os.path.isdir(os.path.join(path, "objects"))
        or os.path.exists(os.path.join(path, "pack.jsonl"))
        or os.path.exists(os.path.join(path, "index.json"))
    )


def collect_targets(paths: List[str]) -> List[Tuple[str, str]]:
    """Classify *paths* into ``(kind, path)`` work items.

    A directory that looks like a result store is checked as one; any
    other directory is walked for ``*.log`` perflogs, ``*.jsonl``
    artifacts, and nested store roots.
    """
    targets: List[Tuple[str, str]] = []
    seen = set()

    def add(kind: str, path: str) -> None:
        key = (kind, os.path.abspath(path))
        if key not in seen:
            seen.add(key)
            targets.append((kind, path))

    for path in paths:
        if os.path.isdir(path):
            if _is_store(path):
                add("store", path)
                continue
            for dirpath, dirnames, filenames in os.walk(path):
                if _is_store(dirpath):
                    add("store", dirpath)
                    dirnames[:] = []
                    continue
                for name in sorted(filenames):
                    full = os.path.join(dirpath, name)
                    if name.endswith(".log"):
                        add("perflog", full)
                    elif name.endswith(".live.jsonl"):
                        add("live-status", full)
                    elif name.endswith(".jsonl"):
                        add("jsonl", full)
        elif path.endswith(".log"):
            add("perflog", path)
        elif path.endswith(".live.jsonl"):
            add("live-status", path)
        else:
            add("jsonl", path)
    return targets


def targets_from_provenance(path: str) -> List[str]:
    """Artifact paths a provenance record names (plus its own tree)."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    out: List[str] = []
    trace = doc.get("trace_file")
    if trace:
        out.append(trace)
    live = doc.get("live_status")
    if live:
        out.append(live)
    journal = (doc.get("resilience") or {}).get("journal")
    if journal:
        out.append(journal)
    # provenance lives next to the perflogs it describes
    tree = os.path.dirname(os.path.abspath(path))
    out.append(tree)
    return out


# -- CLI -------------------------------------------------------------------------------
_CHECKERS = {
    "jsonl": fsck_jsonl,
    "live-status": fsck_live_status,
    "perflog": fsck_perflog,
}


def _run_pass(targets: List[Tuple[str, str]],
              repair: bool) -> List[Dict[str, Any]]:
    reports: List[Dict[str, Any]] = []
    for kind, path in targets:
        if kind == "store":
            reports.extend(fsck_store(path, repair=repair))
        else:
            reports.append(_CHECKERS[kind](path, repair=repair))
    return reports


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-fsck",
        description="verify and heal a campaign's self-verifying "
                    "artifacts (journals, traces, perflogs, result "
                    "stores)",
    )
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="artifact files or directories to check")
    parser.add_argument("--provenance", default=None, metavar="JSON",
                        help="seed the artifact list from a campaign "
                             "provenance record (trace file, journal, "
                             "and the perflog tree it lives in)")
    parser.add_argument("--repair", action="store_true",
                        help="heal what verification finds: drop torn/"
                             "rotten records, rebuild sidecars, excise "
                             "damaged store objects and rebuild the "
                             "pack (default: report only)")
    parser.add_argument("-q", "--quiet", action="store_true",
                        help="print only artifacts with problems")
    args = parser.parse_args(argv)

    paths = list(args.paths)
    if args.provenance:
        try:
            paths.extend(targets_from_provenance(args.provenance))
        except (OSError, ValueError) as exc:
            print(f"error: cannot read provenance {args.provenance}: "
                  f"{exc}", file=sys.stderr)
            return 2
    if not paths:
        parser.error("no artifacts given; pass PATH... or --provenance")
    missing = [p for p in paths if not os.path.exists(p)]
    if missing:
        for p in missing:
            print(f"error: no such artifact: {p}", file=sys.stderr)
        return 2

    targets = collect_targets(paths)
    reports = _run_pass(targets, repair=args.repair)
    if args.repair:
        # the proof is a clean re-verification, not the heal code path
        reverify = {
            (r["kind"], r["path"]): r
            for r in _run_pass(targets, repair=False)
        }
    else:
        reverify = {}

    found = healed = remaining = 0
    for rep in reports:
        found += rep["invalid"]
        healed += rep["healed"]
        after = reverify.get((rep["kind"], rep["path"]))
        left = after["invalid"] if after is not None else rep["invalid"]
        if args.repair:
            remaining += left
        if args.quiet and not rep["invalid"]:
            continue
        status = "ok"
        if rep["invalid"]:
            if args.repair:
                status = "healed" if left == 0 else "UNHEALED"
            else:
                status = "DAMAGED"
        print(f"{rep['kind']:<13} {rep['path']}: "
              f"{rep['checked']} checked, {rep['invalid']} invalid"
              f" [{status}]")
    verb = "healed" if args.repair else "found"
    count = healed if args.repair else found
    print(f"fsck: {len(targets)} artifact(s), {found} problem(s), "
          f"{count} {verb}")
    if args.repair:
        return 0 if remaining == 0 else 1
    return 0 if found == 0 else 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
