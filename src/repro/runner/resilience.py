"""Campaign resilience: retry, quarantine, circuit breaking, crash-safe resume.

The paper wants *automated, unattended* benchmarking (Principles 4-6);
exaCB and the continuous-benchmarking literature add that long campaigns
only stay unattended if they survive partial infrastructure failure.
This module is that survival layer:

* :class:`RetryPolicy` -- bounded retries with exponential backoff and
  *deterministic* jitter, slept on the virtual
  :class:`~repro.faults.FaultClock` (a campaign never sleeps wall-clock
  time, and its backoff schedule is reproducible provenance);
* :func:`is_transient` -- the retry taxonomy: which failures blame the
  infrastructure (scheduler submit errors, build flakes, job timeouts,
  node failures, transient injected faults) and which blame the
  experiment (concretization conflicts, sanity failures, admission
  control) and must never be retried;
* :class:`CircuitBreaker` -- the campaign-wide failure budget behind
  ``repro-bench --max-failures``: once too many cases have failed, the
  rest of the campaign is declined instead of burning allocation;
* :class:`Quarantine` -- a per-case failure ledger (persisted through the
  journal) so a case that keeps failing across resume cycles degrades to
  an immediate FAILED result without sinking its wavefront;
* :class:`CampaignJournal` -- an append-only JSONL journal keyed by a
  stable :func:`case_fingerprint`, written as results land; with
  ``repro-bench --journal PATH --resume`` completed cases are replayed
  from the journal and only failed/interrupted ones re-run.

Every knob here preserves the determinism contract: with transient-only
faults and enough attempts, a retried campaign's perflogs are
byte-identical to a fault-free serial run.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Union

from repro.faults import FaultClock, InjectedFault, unit_hash
from repro.obs.jsonl import JsonlAppender, read_jsonl, write_jsonl_atomic
from repro.pkgmgr.concretizer import ConcretizationError
from repro.pkgmgr.installer import BuildFailure
from repro.runner.sanity import SanityError
from repro.scheduler.base import AdmissionError, SchedulerError

__all__ = [
    "CampaignAborted",
    "CampaignJournal",
    "CircuitBreaker",
    "Quarantine",
    "RetryPolicy",
    "case_fingerprint",
    "is_transient",
    "result_from_record",
]


class CampaignAborted(BaseException):
    """A deliberate campaign kill (operator abort / simulated crash).

    Derives from :class:`BaseException` on purpose: the hardening layers
    convert every *unexpected* ``Exception`` into a structured case
    failure, but an abort must cut straight through them -- exactly like
    ``KeyboardInterrupt``.  The executor's ``finally`` blocks still flush
    perflogs and leave the journal consistent, which is what makes
    ``--resume`` after a kill work.
    """


# --------------------------------------------------------------------------
# retry taxonomy
# --------------------------------------------------------------------------

#: exception families whose failures are worth retrying (infrastructure)
TRANSIENT_TYPES = (SchedulerError, BuildFailure, OSError)

#: exception families that no retry can fix (experiment/configuration);
#: checked *before* TRANSIENT_TYPES so subclasses override
PERMANENT_TYPES = (AdmissionError, ConcretizationError, SanityError,
                   ValueError, KeyError, TypeError)


def is_transient(exc: BaseException) -> bool:
    """Whether retrying the failed stage could plausibly succeed.

    The taxonomy (DESIGN.md section 6): injected faults carry their own
    transience; admission control, concretization conflicts and sanity
    errors are permanent; scheduler errors, build failures and I/O errors
    are transient.  Anything unknown is treated as permanent -- an
    unattended campaign must not burn its allocation retrying a bug.
    """
    if isinstance(exc, InjectedFault):
        return exc.transient
    if isinstance(exc, PERMANENT_TYPES):
        return False
    return isinstance(exc, TRANSIENT_TYPES)


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded per-stage retry with deterministic exponential backoff.

    ``backoff(attempt, key)`` returns
    ``min(base * factor**(attempt-1), max) * (1 + jitter * u)`` where
    ``u`` is a deterministic draw in [-1, 1) from ``(seed, key,
    attempt)`` -- the same case backs off identically in every run and
    under every execution policy, so the recorded backoff schedule is
    itself reproducible provenance.
    """

    max_attempts: int = 3
    backoff_base: float = 1.0
    backoff_factor: float = 2.0
    backoff_max: float = 60.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_max < 0:
            raise ValueError("backoff durations must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    @classmethod
    def single(cls) -> "RetryPolicy":
        """No retries: one attempt, the historical run_case behaviour."""
        return cls(max_attempts=1)

    def backoff(self, attempt: int, key: str = "") -> float:
        """Seconds of (virtual) backoff after failed attempt *attempt*."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(
            self.backoff_base * self.backoff_factor ** (attempt - 1),
            self.backoff_max,
        )
        spread = 2.0 * unit_hash(self.seed, "backoff", key, str(attempt)) - 1.0
        return raw * (1.0 + self.jitter * spread)

    def schedule(self, key: str = "") -> List[float]:
        """The full backoff schedule this policy would sleep for *key*."""
        return [self.backoff(a, key) for a in range(1, self.max_attempts)]


# --------------------------------------------------------------------------
# circuit breaker & quarantine
# --------------------------------------------------------------------------

class CircuitBreaker:
    """Campaign-wide failure budget (``--max-failures``).

    Failures are recorded by the executor in deterministic result order
    (the same order the serial policy produces), so whether -- and where
    -- the breaker trips is identical under serial and async execution.
    Once open, remaining cases are declined with a structured failure
    instead of being run.
    """

    def __init__(self, max_failures: Optional[int] = None):
        if max_failures is not None and max_failures < 1:
            raise ValueError("max_failures must be >= 1 (or None)")
        self.max_failures = max_failures
        self._failures = 0
        self._lock = threading.Lock()

    def record_failure(self) -> None:
        with self._lock:
            self._failures += 1

    @property
    def failures(self) -> int:
        with self._lock:
            return self._failures

    @property
    def tripped(self) -> bool:
        if self.max_failures is None:
            return False
        with self._lock:
            return self._failures >= self.max_failures

    def describe(self) -> str:
        return (
            f"circuit breaker open: {self.failures} case failure(s) "
            f">= --max-failures={self.max_failures}"
        )


class Quarantine:
    """Per-case failure ledger: repeatedly failing cases stop running.

    Counts are keyed by :func:`case_fingerprint` and seeded from the
    journal on ``--resume``, so a case that has already failed (retries
    included) in ``threshold`` earlier campaigns degrades straight to a
    FAILED result -- its wavefront, and the rest of the campaign, keep
    going.  ``threshold=None`` disables quarantine.
    """

    def __init__(self, threshold: Optional[int] = 3):
        if threshold is not None and threshold < 1:
            raise ValueError("quarantine threshold must be >= 1 (or None)")
        self.threshold = threshold
        self._failures: Dict[str, int] = {}
        self._lock = threading.Lock()

    def seed(self, counts: Dict[str, int]) -> None:
        with self._lock:
            for fingerprint, count in counts.items():
                self._failures[fingerprint] = max(
                    self._failures.get(fingerprint, 0), int(count)
                )

    def record_failure(self, fingerprint: str) -> int:
        with self._lock:
            count = self._failures.get(fingerprint, 0) + 1
            self._failures[fingerprint] = count
            return count

    def failures(self, fingerprint: str) -> int:
        with self._lock:
            return self._failures.get(fingerprint, 0)

    def is_quarantined(self, fingerprint: str) -> bool:
        if self.threshold is None:
            return False
        with self._lock:
            return self._failures.get(fingerprint, 0) >= self.threshold


# --------------------------------------------------------------------------
# fingerprints & the campaign journal
# --------------------------------------------------------------------------

def case_fingerprint(case: Any) -> str:
    """A stable identity for one (test, platform, environment) case.

    Built from declarative case coordinates only -- never from runtime
    state -- so the same campaign expansion yields the same fingerprints
    across processes, which is what lets a resumed run match journal
    records written before a crash.
    """
    parts = [
        case.test.name,
        case.platform,
        case.environ_name,
        str(case.test.num_tasks),
        str(getattr(case.test, "spack_spec", "") or ""),
    ]
    digest = hashlib.sha256("\x1f".join(parts).encode("utf-8")).hexdigest()
    return digest[:16]


#: journal statuses that mean "do not re-run this case on --resume"
COMPLETED_STATUSES = ("passed", "skipped")


def _status_of(result: Any) -> str:
    if result.passed:
        return "passed"
    if result.skipped:
        return "skipped"
    return "failed"


class CampaignJournal:
    """Append-only JSONL campaign journal (crash-safe resume).

    One JSON object per line, one line per finished case, appended (and
    fsynced) the moment the result lands -- after its perflog rows were
    flushed, so a journal entry implies durable perflog data.  The
    durability machinery (single-write appends, fsync, torn-tail
    tolerance, atomic rewrites) lives in :mod:`repro.obs.jsonl` and is
    shared with the span trace file, so both artifacts survive a crash
    the same way -- and a post-crash ``--resume`` can append after a
    torn tail without gluing two records together (the appender repairs
    the tail before its first write).
    """

    def __init__(self, path: str, sync: bool = True):
        self.path = path
        self.sync = sync
        self._appender = JsonlAppender(path, sync=sync)
        self._lock = threading.Lock()

    # -- writing -------------------------------------------------------------
    def record(
        self,
        result: Any,
        fingerprint: Optional[str] = None,
        failures: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Append one case result; returns the record written."""
        record = self.make_record(result, fingerprint=fingerprint,
                                  failures=failures)
        self._append(record)
        return record

    def make_record(
        self,
        result: Any,
        fingerprint: Optional[str] = None,
        failures: Optional[int] = None,
    ) -> Dict[str, Any]:
        """Build (without writing) the journal record for one result.

        Group-commit support: the executor's ``journal_batch`` mode
        formats records as results arrive and appends a whole batch in
        one fsynced write via :meth:`record_many` -- the on-disk byte
        sequence is identical to per-case appends.
        """
        fingerprint = fingerprint or case_fingerprint(result.case)
        return {
            "fingerprint": fingerprint,
            "case": result.case.display_name,
            "test": result.case.test.name,
            "platform": result.case.platform,
            "environ": result.case.environ_name,
            "status": _status_of(result),
            "failing_stage": result.failing_stage,
            "failure_reason": result.failure_reason,
            "attempts": result.attempts,
            "backoff_schedule": list(result.backoff_schedule),
            "faults": list(result.fault_log),
            "quarantined": result.quarantined,
            "failures": (
                failures if failures is not None
                else (0 if result.passed else 1)
            ),
            "perfvars": {
                var: [value, unit]
                for var, (value, unit) in sorted(result.perfvars.items())
            },
            "build_seconds": result.build_seconds,
            "job_seconds": result.job_seconds,
            "queue_seconds": result.queue_seconds,
            "speculated": result.speculated,
            "speculation_won": result.speculation_won,
            "hung_attempts": result.hung_attempts,
            # energy provenance (satellite: a resumed campaign must not
            # lose the joules its crashed predecessor measured)
            "energy": (
                result.energy.as_dict()
                if getattr(result, "energy", None) is not None else None
            ),
        }

    def record_many(self, records: List[Dict[str, Any]]) -> None:
        """Append a batch of prebuilt records in one durable write."""
        if not records:
            return
        with self._lock:
            self._appender.append_many(records)

    def record_health(self, snapshot: Dict[str, Any]) -> Dict[str, Any]:
        """Append a node-health snapshot (``kind='health'`` meta record).

        Written whenever the tracker changed since the last journal
        write, so a resumed campaign restores the drain/score state the
        crashed one had accumulated.  Case-record readers
        (:meth:`load`, :meth:`failure_counts`) skip meta records; the
        *last* health record wins on restore.
        """
        record = {"kind": "health", "health": snapshot}
        self._append(record)
        return record

    def _append(self, record: Dict[str, Any]) -> None:
        # the journal-level lock additionally serializes appends against
        # compact(): an append never races the atomic rewrite
        with self._lock:
            self._appender.append(record)

    # -- reading -------------------------------------------------------------
    def entries(self) -> Iterable[Dict[str, Any]]:
        """Every intact record, oldest first (torn tail skipped)."""
        return self._entries_unlocked()

    def _entries_unlocked(self) -> List[Dict[str, Any]]:
        return read_jsonl(self.path)

    def load(self) -> Dict[str, Dict[str, Any]]:
        """Latest case record per fingerprint (the resume state)."""
        state: Dict[str, Dict[str, Any]] = {}
        for record in self.entries():
            fingerprint = record.get("fingerprint")
            if fingerprint is None:
                continue  # meta record (health snapshot etc.)
            state[fingerprint] = record
        return state

    def failure_counts(self) -> Dict[str, int]:
        """Cumulative failure count per fingerprint (quarantine seed)."""
        counts: Dict[str, int] = {}
        for record in self.entries():
            if record.get("status") == "failed" and "fingerprint" in record:
                counts[record["fingerprint"]] = max(
                    counts.get(record["fingerprint"], 0),
                    int(record.get("failures", 1)),
                )
        return counts

    def health_snapshot(self) -> Optional[Dict[str, Any]]:
        """The latest node-health snapshot, if any was journaled."""
        latest: Optional[Dict[str, Any]] = None
        for record in self.entries():
            if record.get("kind") == "health":
                latest = record.get("health")
        return latest

    # -- maintenance ---------------------------------------------------------
    def compact(self) -> int:
        """Rewrite the journal keeping only the *latest* record per key.

        An append-only journal grows without bound across retries and
        resume cycles (every re-run of a case appends another line).
        Compaction keeps the last case record per fingerprint -- exactly
        what :meth:`load` would reconstruct -- plus the last health
        snapshot, preserving their relative order, and replaces the file
        atomically (write temp + fsync + rename), so a crash mid-compact
        leaves either the old journal or the new one, never a torn mix.
        The executor runs this automatically when a campaign completes
        successfully.  Returns the number of records dropped.
        """
        with self._lock:
            records = list(self._entries_unlocked())
            keep_index: Dict[str, int] = {}
            last_health = -1
            for i, record in enumerate(records):
                if record.get("kind") == "health":
                    last_health = i
                elif "fingerprint" in record:
                    keep_index[record["fingerprint"]] = i
            keep = set(keep_index.values())
            if last_health >= 0:
                keep.add(last_health)
            # unknown record shapes are preserved: compaction must never
            # destroy data a newer writer understood and we do not
            keep.update(
                i for i, r in enumerate(records)
                if "fingerprint" not in r and r.get("kind") != "health"
            )
            kept = [records[i] for i in sorted(keep)]
            dropped = len(records) - len(kept)
            if dropped <= 0:
                return 0
            write_jsonl_atomic(self.path, kept, sync=self.sync)
            return dropped


JournalLike = Union[str, CampaignJournal]


def as_journal(journal: Optional[JournalLike]) -> Optional[CampaignJournal]:
    if journal is None or isinstance(journal, CampaignJournal):
        return journal
    return CampaignJournal(str(journal))


def result_from_record(case: Any, record: Dict[str, Any]) -> Any:
    """Reconstruct a completed CaseResult from its journal record.

    Used by ``--resume``: the case is *not* re-run; the replayed result
    is marked ``resumed=True`` so the executor neither re-emits its
    perflog rows nor re-journals it, and provenance shows exactly which
    results came from the journal.
    """
    from repro.runner.pipeline import CaseResult

    result = CaseResult(case=case)
    status = record.get("status", "failed")
    result.passed = status == "passed"
    result.skipped = status == "skipped"
    result.failing_stage = record.get("failing_stage")
    result.failure_reason = record.get("failure_reason", "")
    result.attempts = int(record.get("attempts", 1))
    result.backoff_schedule = [float(x) for x in
                               record.get("backoff_schedule", [])]
    result.fault_log = list(record.get("faults", []))
    result.quarantined = bool(record.get("quarantined", False))
    result.perfvars = {
        var: (float(value), str(unit))
        for var, (value, unit) in record.get("perfvars", {}).items()
    }
    result.build_seconds = float(record.get("build_seconds", 0.0))
    result.job_seconds = float(record.get("job_seconds", 0.0))
    result.queue_seconds = float(record.get("queue_seconds", 0.0))
    result.speculated = bool(record.get("speculated", False))
    result.speculation_won = bool(record.get("speculation_won", False))
    result.hung_attempts = int(record.get("hung_attempts", 0))
    energy = record.get("energy")
    if energy:
        # journals written before the energy field simply lack the key
        # (back-compat: .get returns None and the result stays None)
        from repro.machine.telemetry import EnergyReport

        result.energy = EnergyReport(
            joules=float(energy.get("joules", 0.0)),
            mean_watts=float(energy.get("mean_watts", 0.0)),
            duration_s=float(energy.get("duration_s", 0.0)),
            nodes=int(energy.get("nodes", 1)),
            mean_mem_util=float(energy.get("mean_mem_util", 0.0)),
            mean_network_util=float(energy.get("mean_network_util", 0.0)),
            mean_filesystem_util=float(
                energy.get("mean_filesystem_util", 0.0)
            ),
        )
    result.resumed = True
    return result
